"""F10 -- Figure 10 integrity constraints: declaration and addition."""

import pytest

from repro.adt.types import NUMERIC, REAL
from repro.engine.catalog import Catalog
from repro.engine.stats import EvalStats
from repro.errors import RuleError
from repro.core.rewriter import QueryRewriter
from repro.rules.semantic import (compile_integrity_constraint,
                                  figure10_constraints)
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def cat():
    c = Catalog()
    ts = c.type_system
    ts.define_enumeration("Category",
                          ["Comedy", "Adventure", "Science Fiction",
                           "Western"])
    ts.define_collection("SetCategory", "SET", ts.lookup("Category"))
    ts.define_tuple("Point", [("ABS", REAL), ("ORD", REAL)])
    ts.define_collection("Text", "LIST", ts.lookup("CHAR"))
    c.define_table("FILM", [
        ("Numf", NUMERIC), ("Title", ts.lookup("Text")),
        ("Categories", ts.lookup("SetCategory")),
    ])
    c.define_table("MARK", [("Id", NUMERIC), ("P", ts.lookup("Point"))])
    return c


def rewriter_with(cat, constraints):
    cat.integrity_constraints.extend(constraints)
    return QueryRewriter(cat)


class TestCompilation:
    def test_figure10_point_rule_compiles(self):
        rule = compile_integrity_constraint(
            "ic: F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0 /"
        )
        assert rule.type_name == "POINT"
        assert rule.hole == "x"

    def test_name_defaults_from_type(self):
        rule = compile_integrity_constraint(
            "F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0 /"
        )
        assert rule.name == "ic_point"

    def test_shape_enforced_lhs(self):
        with pytest.raises(RuleError):
            compile_integrity_constraint(
                "P(x) / ISA(x, Point) --> P(x) AND ABS(x) > 0 /"
            )

    def test_isa_condition_required(self):
        with pytest.raises(RuleError):
            compile_integrity_constraint("F(x) / --> F(x) AND x > 0 /")

    def test_rhs_must_extend_lhs(self):
        with pytest.raises(RuleError):
            compile_integrity_constraint(
                "F(x) / ISA(x, Point) --> ABS(x) > 0 /"
            )

    def test_figure10_library_builds(self):
        rules = figure10_constraints()
        assert {r.type_name for r in rules} >= {"POINT", "CATEGORY",
                                                "SETCATEGORY"}


class TestInconsistencyDetection:
    def test_cartoon_query_becomes_false(self, cat):
        """The paper's example: MEMBER('Cartoon', Categories) is
        inconsistent with the Category enumeration constraint."""
        rewriter = rewriter_with(cat, figure10_constraints())
        q = parse_term(
            "SEARCH(LIST(FILM), MEMBER('Cartoon', #1.3), LIST(#1.2))"
        )
        result = rewriter.rewrite(q)
        # the false qualification is pruned to the empty relation
        assert term_to_str(result.term) == "EMPTY(1)"

    def test_consistent_member_query_survives(self, cat):
        rewriter = rewriter_with(cat, figure10_constraints())
        q = parse_term(
            "SEARCH(LIST(FILM), MEMBER('Adventure', #1.3), LIST(#1.2))"
        )
        result = rewriter.rewrite(q)
        assert "MEMBER('Adventure', #1.3)" in term_to_str(result.term)
        assert "false" not in term_to_str(result.term)

    def test_false_plan_reads_no_data(self, cat):
        from repro.engine.evaluate import Evaluator
        cat.insert_many("FILM", [])
        rewriter = rewriter_with(cat, figure10_constraints())
        q = parse_term(
            "SEARCH(LIST(FILM), MEMBER('Cartoon', #1.3), LIST(#1.2))"
        )
        rewritten = rewriter.rewrite(q).term
        stats = EvalStats()
        Evaluator(cat, stats=stats).evaluate(rewritten)
        assert stats.tuples_scanned == 0

    def test_point_constraint_contradiction(self, cat):
        rewriter = rewriter_with(cat, figure10_constraints())
        # ABS(P) = -5 contradicts ABS(x) > 0; the LERA form uses PROJECT
        q = parse_term(
            "SEARCH(LIST(MARK), PROJECT(#1.2, 'ABS') = -5, LIST(#1.1))"
        )
        result = rewriter.rewrite(q)
        # the constraint ABS(x) > 0 joined the qualification; the
        # contradiction -5 > 0 folds to false and the plan is pruned
        assert term_to_str(result.term) == "EMPTY(1)"

    def test_scalar_enum_equality_contradiction(self, cat):
        cat.define_table("ONECAT", [
            ("Id", NUMERIC),
            ("Cat", cat.type_system.lookup("Category")),
        ])
        rewriter = rewriter_with(cat, figure10_constraints())
        q = parse_term(
            "SEARCH(LIST(ONECAT), #1.2 = 'Cartoon', LIST(#1.1))"
        )
        result = rewriter.rewrite(q)
        assert term_to_str(result.term) == "EMPTY(1)"


class TestBoundedAddition:
    def test_semantic_block_limit_respected(self, cat):
        cat.integrity_constraints.extend(figure10_constraints())
        rewriter = QueryRewriter(cat, semantic_limit=0)
        q = parse_term(
            "SEARCH(LIST(FILM), MEMBER('Cartoon', #1.3), LIST(#1.2))"
        )
        result = rewriter.rewrite(q)
        # with a zero budget the inconsistency is never exposed
        assert "false" not in term_to_str(result.term)

    def test_constraint_not_added_outside_matching_type(self, cat):
        rewriter = rewriter_with(cat, figure10_constraints())
        q = parse_term("SEARCH(LIST(MARK), #1.1 = 3, LIST(#1.1))")
        result = rewriter.rewrite(q)
        # Numf is NUMERIC; no Point/Category constraint applies to the
        # conjunct... the Point-typed column is not referenced at all
        assert "ABS" not in term_to_str(result.term)


class TestSubclassSubstitution:
    """Figure 11 (3): a predicate declared on a supertype applies to
    subtype instances -- here realised through the ISA check of the
    domain-constraint rules."""

    def make_catalog(self):
        c = Catalog()
        ts = c.type_system
        ts.define_object("Person", [("Age", NUMERIC)])
        ts.define_object("Actor", [("Salary", NUMERIC)],
                         supertype="Person")
        c.define_table("CAST0", [
            ("Numf", NUMERIC), ("Who", ts.lookup("Actor")),
        ])
        return c

    def test_supertype_constraint_reaches_subtype(self):
        cat = self.make_catalog()
        ic = compile_integrity_constraint(
            "ic_person_age: F(x) / ISA(x, Person) --> "
            "F(x) AND AGE(x) >= 0 /"
        )
        cat.integrity_constraints.append(ic)
        rewriter = QueryRewriter(cat)
        # Who is Actor-typed; Actor ISA Person, so the Person
        # constraint is added and the contradiction detected
        q = parse_term(
            "SEARCH(LIST(CAST0), "
            "PROJECT(VALUE(#1.2), 'Age') = -3, LIST(#1.1))"
        )
        result = rewriter.rewrite(q)
        assert term_to_str(result.term) == "EMPTY(1)"

    def test_sibling_type_not_affected(self):
        cat = self.make_catalog()
        ts = cat.type_system
        ts.define_object("Robot", [("Serial", NUMERIC)])
        cat.define_table("BOTS", [
            ("Id", NUMERIC), ("Unit", ts.lookup("Robot")),
        ])
        ic = compile_integrity_constraint(
            "ic_person_age: F(x) / ISA(x, Person) --> "
            "F(x) AND AGE(x) >= 0 /"
        )
        cat.integrity_constraints.append(ic)
        rewriter = QueryRewriter(cat)
        q = parse_term("SEARCH(LIST(BOTS), #1.1 = 1, LIST(#1.1))")
        result = rewriter.rewrite(q)
        assert "AGE" not in term_to_str(result.term)
