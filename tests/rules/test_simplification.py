"""F12 -- Figure 12 predicate simplification."""

import pytest

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.rules.semantic import simplification_rules
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("R", [("A", NUMERIC), ("B", NUMERIC)])
    return c


def simplify(qual_text, cat):
    q = parse_term(f"SEARCH(LIST(R), {qual_text}, LIST(#1.1))")
    engine = RewriteEngine(Seq([
        Block("simplify", simplification_rules()),
    ]))
    result = engine.rewrite(q, RuleContext(catalog=cat))
    return term_to_str(result.term.args[1])


class TestBooleanAbsorption:
    def test_and_false(self, cat):
        assert simplify("#1.1 = 1 AND false", cat) == "false"

    def test_or_true(self, cat):
        assert simplify("#1.1 = 1 OR true", cat) == "true"

    def test_not_constants(self, cat):
        assert simplify("NOT(true)", cat) == "false"
        assert simplify("NOT(false)", cat) == "true"

    def test_double_negation(self, cat):
        assert simplify("NOT(NOT(#1.1 = 1))", cat) == "1 = #1.1"

    def test_nested_false_collapses_everything(self, cat):
        out = simplify("#1.1 = 1 AND (#1.2 = 2 AND (1 > 2))", cat)
        assert out == "false"


class TestReflexivity:
    def test_gt_irreflexive(self, cat):
        assert simplify("#1.1 > #1.1", cat) == "true" or \
            simplify("#1.1 > #1.1", cat) == "false"
        assert simplify("#1.1 > #1.1", cat) == "false"

    def test_ge_reflexive(self, cat):
        assert simplify("#1.1 >= #1.1 AND #1.2 = 2", cat) == "2 = #1.2"

    def test_eq_reflexive(self, cat):
        assert simplify("#1.1 = #1.1", cat) == "true"

    def test_neq_irreflexive(self, cat):
        assert simplify("#1.1 <> #1.1", cat) == "false"


class TestOrientation:
    def test_lt_flipped(self, cat):
        assert simplify("1 < #1.1", cat) == "#1.1 > 1"

    def test_le_flipped(self, cat):
        assert simplify("1 <= #1.1", cat) == "#1.1 >= 1"


class TestContradictions:
    def test_gt_antisymmetry(self, cat):
        assert simplify("#1.1 > #1.2 AND #1.2 > #1.1", cat) == "false"

    def test_gt_vs_eq(self, cat):
        assert simplify("#1.1 > #1.2 AND #1.1 = #1.2", cat) == "false"

    def test_eq_vs_neq(self, cat):
        assert simplify("#1.1 = #1.2 AND #1.1 <> #1.2", cat) == "false"

    def test_ge_vs_gt(self, cat):
        assert simplify("#1.1 >= #1.2 AND #1.2 > #1.1", cat) == "false"

    def test_lt_gt_after_orientation(self, cat):
        # x < y normalises to y > x, then clashes with x > y
        assert simplify("#1.1 < #1.2 AND #1.1 > #1.2", cat) == "false"


class TestStrengthening:
    def test_ge_antisymmetry_to_eq(self, cat):
        out = simplify("#1.1 >= #1.2 AND #1.2 >= #1.1", cat)
        assert out == "#1.1 = #1.2"

    def test_constant_bounds_tightened(self, cat):
        out = simplify("#1.1 > 3 AND #1.1 > 7", cat)
        assert out == "#1.1 > 7"

    def test_minus_zero_normalises(self, cat):
        out = simplify("#1.1 - #1.2 = 0", cat)
        assert out == "#1.1 = #1.2"


class TestConstantFolding:
    def test_arithmetic_folds(self, cat):
        assert simplify("#1.1 = 2 + 3", cat) == "5 = #1.1"

    def test_comparison_folds(self, cat):
        assert simplify("2 > 5", cat) == "false"
        assert simplify("2 > 5 OR #1.1 = 1", cat) == "1 = #1.1"

    def test_member_of_literal_set_folds(self, cat):
        assert simplify("MEMBER(3, MAKESET(1, 2))", cat) == "false"
        assert simplify("MEMBER(1, MAKESET(1, 2))", cat) == "true"

    def test_nested_folding(self, cat):
        assert simplify("(2 + 3) * 2 = #1.1", cat) == "10 = #1.1"

    def test_non_ground_untouched(self, cat):
        out = simplify("#1.1 + 1 = 3", cat)
        assert "#1.1 + 1" in out

    def test_division_by_zero_not_folded(self, cat):
        # folding must fail soft and leave the term for runtime
        # (DIV is the rule-language spelling of division)
        out = simplify("#1.1 = DIV(1, 0)", cat)
        assert "DIV" in out


class TestPaperExamples:
    def test_figure12_composite(self, cat):
        """x - y = 0 with constants: folds through to a truth value."""
        assert simplify("5 - 5 = 0", cat) == "true"
        assert simplify("5 - 4 = 0", cat) == "false"

    def test_qualification_shrinks_not_grows(self, cat):
        from repro.terms.term import term_size
        q = parse_term(
            "SEARCH(LIST(R), #1.1 > 3 AND #1.1 > 7 AND 1 = 1, "
            "LIST(#1.1))"
        )
        engine = RewriteEngine(Seq([
            Block("simplify", simplification_rules()),
        ]))
        result = engine.rewrite(q, RuleContext(catalog=cat))
        assert term_size(result.term) < term_size(q)
