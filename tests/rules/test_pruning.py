"""Empty-relation propagation rules (the prune block)."""

import pytest

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import evaluate
from repro.core.rewriter import QueryRewriter
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("R", [("A", NUMERIC), ("B", NUMERIC)])
    c.insert_many("R", [(1, 2), (3, 4)])
    c.define_table("S", [("C", NUMERIC), ("D", NUMERIC)])
    c.insert_many("S", [(5, 6)])
    return c


def rewrite(text, cat):
    rewriter = QueryRewriter(cat)
    result = rewriter.rewrite(parse_term(text))
    return result, term_to_str(result.term)


class TestSearchPruning:
    def test_false_search_becomes_empty(self, cat):
        __, out = rewrite("SEARCH(LIST(R), false, LIST(#1.1))", cat)
        assert out == "EMPTY(1)"

    def test_width_follows_projection(self, cat):
        __, out = rewrite(
            "SEARCH(LIST(R), false, LIST(#1.1, #1.2, #1.1))", cat
        )
        assert out == "EMPTY(3)"

    def test_contradiction_then_pruned(self, cat):
        __, out = rewrite(
            "SEARCH(LIST(R), #1.1 > 5 AND #1.1 < 2, LIST(#1.1))", cat
        )
        assert out == "EMPTY(1)"

    def test_empty_input_propagates(self, cat):
        __, out = rewrite(
            "SEARCH(LIST(R, EMPTY(2)), #1.1 = #2.1, LIST(#1.1))", cat
        )
        assert out == "EMPTY(1)"

    def test_empty_plan_reads_nothing(self, cat):
        result, __ = rewrite(
            "SEARCH(LIST(R, S), #1.1 > 9 AND #1.1 < 1 AND #1.2 = #2.1, "
            "LIST(#1.1, #2.2))", cat
        )
        from repro.engine.stats import EvalStats
        from repro.engine.evaluate import Evaluator
        stats = EvalStats()
        rows = Evaluator(cat, stats=stats).evaluate(result.term)
        assert rows.rows == []
        assert stats.tuples_scanned == 0


class TestSetOperatorPruning:
    def test_union_drops_empty_branch(self, cat):
        # the unwrap keeps UNION's duplicate elimination (R is a bag)
        __, out = rewrite("UNION(SET(R, EMPTY(2)))", cat)
        assert out == "DISTINCT(R)"

    def test_union_of_two_empties(self, cat):
        __, out = rewrite("UNION(SET(EMPTY(2), EMPTY(2)))", cat)
        # the SET constructor deduplicates the identical branches and
        # union_singleton unwraps
        assert out == "EMPTY(2)"

    def test_difference_empty_left(self, cat):
        __, out = rewrite("DIFFERENCE(EMPTY(2), R)", cat)
        assert out == "EMPTY(2)"

    def test_difference_empty_right(self, cat):
        __, out = rewrite("DIFFERENCE(R, EMPTY(2))", cat)
        assert out == "R"

    def test_intersection_with_empty(self, cat):
        __, out = rewrite("INTERSECTION(SET(R, EMPTY(2)))", cat)
        assert out == "EMPTY(2)"


class TestStructuredPruning:
    def test_nest_of_empty(self, cat):
        __, out = rewrite(
            "NEST(EMPTY(3), LIST(#1.3), LIST('Xs', SET))", cat
        )
        assert out == "EMPTY(3)"  # 3 - 1 nested + 1 collection

    def test_unnest_of_empty(self, cat):
        __, out = rewrite("UNNEST(EMPTY(2), #1.2)", cat)
        assert out == "EMPTY(2)"

    def test_fix_of_empty_body(self, cat):
        __, out = rewrite("FIX(Z0, EMPTY(2))", cat)
        assert out == "EMPTY(2)"

    def test_recursive_fix_with_empty_base_prunes(self, cat):
        # base branch false -> empty -> dropped; the recursive branch
        # alone has no anchor and the whole fix collapses
        result, out = rewrite(
            "SEARCH(LIST(FIX(T0, UNION(SET("
            "SEARCH(LIST(R), false, LIST(#1.1, #1.2)), "
            "SEARCH(LIST(T0, R), #1.2 = #2.1, LIST(#1.1, #2.2)))))), "
            "true, LIST(#1.1))", cat
        )
        rows = evaluate(result.term, cat)
        assert rows.rows == []


class TestSemijoinPruning:
    def test_semijoin_empty_left(self, cat):
        __, out = rewrite("SEMIJOIN(EMPTY(2), R, #1.1 = #2.1)", cat)
        assert out == "EMPTY(2)"

    def test_semijoin_empty_right(self, cat):
        __, out = rewrite("SEMIJOIN(R, EMPTY(2), #1.1 = #2.1)", cat)
        assert out == "EMPTY(2)"

    def test_antijoin_empty_right_keeps_left(self, cat):
        __, out = rewrite("ANTIJOIN(R, EMPTY(2), #1.1 = #2.1)", cat)
        assert out == "R"

    def test_antijoin_empty_left(self, cat):
        __, out = rewrite("ANTIJOIN(EMPTY(2), R, #1.1 = #2.1)", cat)
        assert out == "EMPTY(2)"

    def test_selection_pushes_below_semijoin(self, cat):
        result, out = rewrite(
            "SEARCH(LIST(SEMIJOIN(R, S, #1.2 = #2.1)), #1.1 = 1, "
            "LIST(#1.1))", cat
        )
        assert "semijoin_push" in result.rules_fired()
        # the selection now sits on the left input, inside the semijoin
        assert "SEMIJOIN(SEARCH" in out.replace(" ", "")
