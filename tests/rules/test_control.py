"""Control-strategy tests: blocks, limits, sequences (section 4.2)."""

import pytest

from repro.errors import RewriteError
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext, rule_from_text
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


def engine_for(rules, limit=None, passes=1, count="applications"):
    block = Block("b", rules, limit=limit, count=count)
    return RewriteEngine(Seq([block], passes=passes))


SHRINK = rule_from_text("shrink: P(P(x)) --> P(x)")
GROW = rule_from_text("grow: Q(x) --> Q(P(x))")


class TestBlocks:
    def test_saturation_default(self):
        engine = engine_for([SHRINK])
        deep = parse_term("P(P(P(P(Z))))")
        result = engine.rewrite(deep, RuleContext())
        assert result.term == parse_term("P(Z)")
        assert result.applications == 3

    def test_limit_caps_applications(self):
        engine = engine_for([SHRINK], limit=2)
        deep = parse_term("P(P(P(P(Z))))")
        result = engine.rewrite(deep, RuleContext())
        assert result.term == parse_term("P(P(Z))")
        assert result.applications == 2

    def test_zero_limit_is_noop(self):
        engine = engine_for([SHRINK], limit=0)
        deep = parse_term("P(P(Z))")
        result = engine.rewrite(deep, RuleContext())
        assert result.term == deep
        assert result.applications == 0

    def test_checks_mode_counts_condition_checks(self):
        engine = engine_for([SHRINK], limit=1, count="checks")
        deep = parse_term("P(P(P(Z)))")
        result = engine.rewrite(deep, RuleContext())
        # one check budget: the first application consumes it
        assert result.applications <= 1

    def test_checks_counted_in_result(self):
        engine = engine_for([SHRINK])
        result = engine.rewrite(parse_term("P(P(Z))"), RuleContext())
        assert result.checks >= 1

    def test_invalid_count_mode(self):
        with pytest.raises(RewriteError):
            Block("b", [], count="time")

    def test_with_limit_copies(self):
        b = Block("b", [SHRINK], limit=None)
        b2 = b.with_limit(3)
        assert b2.limit == 3 and b.limit is None
        assert b2.rule_names() == ["shrink"]

    def test_growing_rule_capped_by_limit(self):
        engine = engine_for([GROW], limit=5)
        result = engine.rewrite(parse_term("Q(Z)"), RuleContext())
        assert result.applications == 5
        assert term_to_str(result.term).count("P(") == 5

    def test_safety_limit_stops_runaway(self):
        block = Block("b", [GROW])
        engine = RewriteEngine(Seq([block]), safety_limit=10)
        with pytest.raises(RewriteError):
            engine.rewrite(parse_term("Q(Z)"), RuleContext())


class TestSequences:
    def test_blocks_run_in_order(self):
        to_q = rule_from_text("a: P(x) --> Q(x)")
        to_r = rule_from_text("b: Q(x) --> R(x)")
        seq = Seq([Block("first", [to_q]), Block("second", [to_r])])
        result = RewriteEngine(seq).rewrite(parse_term("P(1)"),
                                            RuleContext())
        assert result.term == parse_term("R(1)")

    def test_single_pass_misses_feedback(self):
        # second block produces material for the first; one pass cannot
        # see it, two passes can
        to_q = rule_from_text("a: P(x) --> Q(x)")
        back = rule_from_text("b: Q(x) --> DONE(x)")
        make_p = rule_from_text("c: SEED(x) --> P(x)")
        seq1 = Seq([Block("ab", [to_q, back]), Block("c", [make_p])],
                   passes=1)
        seq2 = Seq([Block("ab", [to_q, back]), Block("c", [make_p])],
                   passes=2)
        start = parse_term("SEED(1)")
        one = RewriteEngine(seq1).rewrite(start, RuleContext()).term
        two = RewriteEngine(seq2).rewrite(start, RuleContext()).term
        assert one == parse_term("P(1)")
        assert two == parse_term("DONE(1)")

    def test_stops_early_at_global_saturation(self):
        seq = Seq([Block("b", [SHRINK])], passes=10)
        result = RewriteEngine(seq).rewrite(parse_term("P(P(Z))"),
                                            RuleContext())
        assert result.passes <= 2  # second pass sees no change and stops

    def test_negative_passes_rejected(self):
        with pytest.raises(RewriteError):
            Seq([], passes=-1)


class TestTrace:
    def test_trace_records_rule_and_path(self):
        engine = engine_for([SHRINK])
        result = engine.rewrite(parse_term("R(P(P(Z)))"), RuleContext())
        entry = result.trace[0]
        assert entry.rule == "shrink"
        assert entry.block == "b"
        assert entry.path == (0,)
        assert "shrink" in str(entry)

    def test_trace_disabled(self):
        block = Block("b", [SHRINK])
        engine = RewriteEngine(Seq([block]), collect_trace=False)
        result = engine.rewrite(parse_term("P(P(Z))"), RuleContext())
        assert result.trace == []
        assert result.applications == 1

    def test_rules_fired_helper(self):
        engine = engine_for([SHRINK])
        result = engine.rewrite(parse_term("P(P(P(Z)))"), RuleContext())
        assert result.rules_fired() == ["shrink", "shrink"]


class TestOutermostStrategy:
    def test_outermost_position_preferred(self):
        rule = rule_from_text("peel: W(x) --> x")
        engine = engine_for([rule], limit=1)
        result = engine.rewrite(parse_term("W(W(Z))"), RuleContext())
        # one application at the root, not the inner position
        assert result.term == parse_term("W(Z)")
        assert result.trace[0].path == ()
