"""Block-budget edge cases and the safety-limit diagnostic."""

import pytest

from repro.errors import RewriteError
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext, rule_from_text
from repro.terms.parser import parse_term

SHRINK = rule_from_text("shrink: P(P(x)) --> P(x)")
GROW = rule_from_text("grow: Q(x) --> Q(P(x))")
# same root symbol as SHRINK, so it consumes a condition check at
# every P(...) position without ever matching
DECOY = rule_from_text("decoy: P(Q(x)) --> x")


def engine_for(rules, limit=None, passes=1, count="applications",
               **kwargs):
    block = Block("b", rules, limit=limit, count=count)
    return RewriteEngine(Seq([block], passes=passes), **kwargs)


class TestZeroBudgets:
    def test_zero_limit_applications(self):
        engine = engine_for([SHRINK], limit=0)
        deep = parse_term("P(P(Z))")
        result = engine.rewrite(deep, RuleContext())
        assert result.term == deep
        assert result.applications == 0
        assert result.checks == 0  # the block never even scanned

    def test_zero_limit_checks(self):
        engine = engine_for([SHRINK], limit=0, count="checks")
        deep = parse_term("P(P(Z))")
        result = engine.rewrite(deep, RuleContext())
        assert result.term == deep
        assert result.checks == 0

    def test_seq_zero_passes(self):
        engine = engine_for([SHRINK], passes=0)
        deep = parse_term("P(P(Z))")
        result = engine.rewrite(deep, RuleContext())
        assert result.term == deep
        assert result.passes == 0
        assert result.applications == 0


class TestChecksBudgetMidScan:
    def test_scan_aborts_when_checks_run_out(self):
        # the decoy burns the single check at the root; shrink would
        # need a second one, which the budget no longer covers
        engine = engine_for([DECOY, SHRINK], limit=1, count="checks")
        deep = parse_term("P(P(Z))")
        result = engine.rewrite(deep, RuleContext())
        assert result.term == deep
        assert result.applications == 0
        assert result.checks == 2  # the aborting check is still counted

    def test_exact_budget_still_applies(self):
        engine = engine_for([DECOY, SHRINK], limit=2, count="checks")
        result = engine.rewrite(parse_term("P(P(Z))"), RuleContext())
        # two checks: decoy misses, shrink fires on the second
        assert result.term == parse_term("P(Z)")
        assert result.applications == 1

    def test_budget_spent_by_fruitless_rescans(self):
        # after the only shrink fires, a re-scan costs checks but
        # finds nothing; the block must stop without looping
        engine = engine_for([SHRINK], limit=10, count="checks")
        result = engine.rewrite(parse_term("P(P(Z))"), RuleContext())
        assert result.term == parse_term("P(Z)")
        assert result.applications == 1


class TestWithLimitRoundTrips:
    def test_round_trip_preserves_everything_else(self):
        block = Block("b", [SHRINK], limit=None, count="checks")
        back = block.with_limit(3).with_limit(None)
        assert back.limit is None
        assert back.count == "checks"
        assert back.name == "b"
        assert back.rules == [SHRINK]

    def test_with_limit_does_not_mutate_the_original(self):
        block = Block("b", [SHRINK], limit=7)
        capped = block.with_limit(0)
        assert block.limit == 7
        assert capped.limit == 0

    def test_round_trip_behaviour_identical(self):
        original = Block("b", [SHRINK], limit=2)
        round_tripped = original.with_limit(99).with_limit(2)
        deep = parse_term("P(P(P(P(Z))))")
        a = RewriteEngine(Seq([original])).rewrite(deep, RuleContext())
        b = RewriteEngine(Seq([round_tripped])).rewrite(deep,
                                                        RuleContext())
        assert a.term == b.term
        assert a.applications == b.applications == 2


class TestSafetyLimitDiagnostic:
    def test_error_names_rule_block_and_term(self):
        engine = engine_for([GROW], safety_limit=5)
        with pytest.raises(RewriteError) as excinfo:
            engine.rewrite(parse_term("Q(Z)"), RuleContext())
        message = str(excinfo.value)
        assert "safety limit of 5" in message
        assert "'grow'" in message
        assert "'b'" in message
        assert "Q(" in message  # a printer snapshot of the term

    def test_snapshot_is_truncated(self):
        wide = rule_from_text(
            "widen: W(x) --> W(PAD(x, AAAAAAAAAAAAAAAAAAAAAAAA))"
        )
        engine = engine_for([wide], safety_limit=20)
        with pytest.raises(RewriteError) as excinfo:
            engine.rewrite(parse_term("W(Z)"), RuleContext())
        # the embedded snapshot stays bounded
        assert len(str(excinfo.value)) < 600
        assert "..." in str(excinfo.value)
