"""The section 4.2 meta-rule language: block(...) / seq(...)."""

import pytest

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.errors import ParseError, RewriteError
from repro.core.rewriter import QueryRewriter
from repro.rules.meta import (parse_program, program_to_text,
                              standard_rule_library)
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def library():
    return standard_rule_library()


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("R", [("A", NUMERIC), ("B", NUMERIC)])
    return c


PROGRAM = """
block(merge, {search_merge, union_merge}, inf)
block(clean, {and_false, constant_folding}, 20);
seq((merge, clean), 2)
"""


class TestParsing:
    def test_blocks_and_limits(self, library):
        seq = parse_program(PROGRAM, library)
        assert [b.name for b in seq.blocks] == ["merge", "clean"]
        assert seq.blocks[0].limit is None
        assert seq.blocks[1].limit == 20
        assert seq.passes == 2

    def test_infinite_spellings(self, library):
        seq = parse_program(
            "block(b, {search_merge}, infinite) seq((b), 1)", library
        )
        assert seq.blocks[0].limit is None

    def test_unknown_rule_lists_library(self, library):
        with pytest.raises(RewriteError) as err:
            parse_program("block(b, {warp_drive}, 1) seq((b), 1)",
                          library)
        assert "warp_drive" in str(err.value)
        assert "search_merge" in str(err.value)

    def test_seq_requires_defined_blocks(self, library):
        with pytest.raises(RewriteError):
            parse_program("block(b, {search_merge}, 1) seq((zz), 1)",
                          library)

    def test_seq_required(self, library):
        with pytest.raises(RewriteError):
            parse_program("block(b, {search_merge}, 1)", library)

    def test_same_rule_in_two_blocks(self, library):
        """The paper: 'the same rule may appear in different blocks'."""
        seq = parse_program(
            "block(b1, {search_merge}, inf)"
            "block(b2, {search_merge}, inf)"
            "seq((b1, b2), 1)",
            library,
        )
        assert seq.blocks[0].rules[0] is seq.blocks[1].rules[0]

    def test_same_block_twice_in_seq(self, library):
        """...'and the same block may be executed several times'."""
        seq = parse_program(
            "block(b, {search_merge}, inf) seq((b, b), 1)", library
        )
        assert len(seq.blocks) == 2

    def test_syntax_error(self, library):
        with pytest.raises(ParseError):
            parse_program("block b {search_merge} 1", library)

    def test_bad_limit(self, library):
        with pytest.raises(ParseError):
            parse_program("block(b, {search_merge}, lots) seq((b), 1)",
                          library)


class TestRoundTrip:
    def test_program_to_text_round_trips(self, library):
        seq = parse_program(PROGRAM, library)
        text = program_to_text(seq)
        again = parse_program(text, library)
        assert [b.name for b in again.blocks] == \
            [b.name for b in seq.blocks]
        assert [b.limit for b in again.blocks] == \
            [b.limit for b in seq.blocks]
        assert again.passes == seq.passes


class TestGeneratedOptimizer:
    def test_from_program(self, cat):
        rewriter = QueryRewriter.from_program(cat, PROGRAM)
        q = parse_term(
            "SEARCH(LIST(SEARCH(LIST(R), #1.1 = 1, LIST(#1.1, #1.2))), "
            "#1.2 = 2 + 3, LIST(#1.2))"
        )
        result = rewriter.rewrite(q)
        assert "search_merge" in result.rules_fired()
        assert "constant_folding" in result.rules_fired()
        assert "5" in term_to_str(result.term)

    def test_program_excludes_unlisted_rules(self, cat):
        rewriter = QueryRewriter.from_program(cat, PROGRAM)
        # the program has no simplification beyond the two rules: the
        # contradiction below stays (gt_antisym is not installed)
        q = parse_term(
            "SEARCH(LIST(R), #1.1 > #1.2 AND #1.2 > #1.1, LIST(#1.1))"
        )
        result = rewriter.rewrite(q)
        assert "false" not in term_to_str(result.term)

    def test_integrity_constraints_in_library(self, cat):
        from repro.rules.semantic import compile_integrity_constraint
        ic = compile_integrity_constraint(
            "ic_pos: F(x) / ISA(x, NUMERIC) --> F(x) AND x >= 0 /"
        )
        cat.integrity_constraints.append(ic)
        rewriter = QueryRewriter.from_program(cat, """
        block(sem, {ic_pos}, 8)
        block(clean, {and_false, constant_folding, gt_tighten,
                      ge_gt_clash, eq_subst_1x, eq_subst_2ax,
                      eq_subst_2ay}, inf)
        seq((sem, clean), 3)
        """)
        q = parse_term("SEARCH(LIST(R), #1.1 < 0, LIST(#1.1))")
        # orientation rules are absent; write the oriented form directly
        q = parse_term("SEARCH(LIST(R), 0 > #1.1, LIST(#1.1))")
        result = rewriter.rewrite(q)
        assert "false" in term_to_str(result.term)

    def test_library_covers_all_builtin_rules(self):
        library = standard_rule_library()
        for expected in ("search_merge", "union_merge",
                         "search_union_push", "fix_alexander",
                         "fix_linearize", "eq_transitivity",
                         "and_false", "constant_folding",
                         "search_false", "semijoin_push",
                         "search_or_split"):
            assert expected in library
