"""F8 -- Figure 8 permutation rules: push searches toward the data."""

import pytest

from repro.adt.types import CHAR, NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import Evaluator, evaluate
from repro.engine.stats import EvalStats
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.rules.syntactic import (canonicalization_rules, merging_rules,
                                   permutation_rules)
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import is_fun


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("OLD_EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    c.define_table("NEW_EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    c.insert_many("OLD_EDGE", [(1, 2), (2, 3), (5, 6)])
    c.insert_many("NEW_EDGE", [(1, 9), (7, 8)])
    c.define_table("SALE", [("Shop", NUMERIC), ("Amount", NUMERIC)])
    c.insert_many("SALE", [(1, 10), (1, 20), (2, 30), (3, 40), (3, 5)])
    return c


def push_engine():
    return RewriteEngine(Seq([
        Block("push", permutation_rules()),
        Block("merge", merging_rules() + canonicalization_rules()),
    ], passes=2))


def rewrite(term, cat):
    return push_engine().rewrite(term, RuleContext(catalog=cat))


class TestSearchThroughUnion:
    def test_selection_distributes(self, cat):
        t = parse_term(
            "SEARCH(LIST(UNION(SET(OLD_EDGE, NEW_EDGE))), "
            "#1.1 = 1, LIST(#1.2))"
        )
        result = rewrite(t, cat)
        assert "search_union_push" in result.rules_fired()
        assert is_fun(result.term, "UNION")

    def test_equivalence(self, cat):
        t = parse_term(
            "SEARCH(LIST(UNION(SET(OLD_EDGE, NEW_EDGE))), "
            "#1.1 = 1, LIST(#1.2))"
        )
        pushed = rewrite(t, cat).term
        assert set(evaluate(t, cat).rows) == set(evaluate(pushed, cat).rows)

    def test_three_branch_union_fully_split(self, cat):
        t = parse_term(
            "SEARCH(LIST(UNION(SET(OLD_EDGE, NEW_EDGE, "
            "SEARCH(LIST(OLD_EDGE), #1.1 > 4, LIST(#1.1, #1.2))))), "
            "#1.2 > 1, LIST(#1.1))"
        )
        result = rewrite(t, cat)
        # every branch ends up under its own search; no UNION inside a
        # SEARCH remains
        rendered = term_to_str(result.term)
        assert result.rules_fired().count("search_union_push") >= 2
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(result.term, cat).rows)

    def test_union_with_join_partner(self, cat):
        # the union is one input of a two-input search
        t = parse_term(
            "SEARCH(LIST(UNION(SET(OLD_EDGE, NEW_EDGE)), OLD_EDGE), "
            "#1.2 = #2.1 AND #1.1 = 1, LIST(#1.1, #2.2))"
        )
        result = rewrite(t, cat)
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(result.term, cat).rows)

    def test_pushdown_reduces_work(self, cat):
        # enlarge one branch so filtering early matters
        cat.insert_many("OLD_EDGE", [(50 + i, 50 + i) for i in range(50)])
        t = parse_term(
            "SEARCH(LIST(UNION(SET(OLD_EDGE, NEW_EDGE)), OLD_EDGE), "
            "#1.2 = #2.1 AND #1.1 = 1, LIST(#1.1, #2.2))"
        )
        pushed = rewrite(t, cat).term
        plain, opt = EvalStats(), EvalStats()
        Evaluator(cat, stats=plain).evaluate(t)
        Evaluator(cat, stats=opt).evaluate(pushed)
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(pushed, cat).rows)


class TestSearchThroughNest:
    def nest_term(self):
        # NEST the sales per shop, then select a shop upstream
        return parse_term(
            "SEARCH(LIST(NEST(SALE, LIST(#1.2), "
            "LIST('Amounts', SET))), #1.1 = 3, LIST(#1.1, #1.2))"
        )

    def test_conjunct_on_kept_attribute_pushes(self, cat):
        result = rewrite(self.nest_term(), cat)
        fired = result.rules_fired()
        assert "search_nest_push_all" in fired or \
            "search_nest_push" in fired
        # the NEST input became a search
        assert "NEST(SEARCH" in term_to_str(result.term).replace(" ", "")

    def test_equivalence_after_nest_push(self, cat):
        t = self.nest_term()
        pushed = rewrite(t, cat).term
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(pushed, cat).rows)

    def test_condition_on_nested_attribute_blocks_push(self, cat):
        t = parse_term(
            "SEARCH(LIST(NEST(SALE, LIST(#1.2), "
            "LIST('Amounts', SET))), MEMBER(30, #1.2), LIST(#1.1))"
        )
        result = rewrite(t, cat)
        assert "search_nest_push" not in result.rules_fired()
        assert "search_nest_push_all" not in result.rules_fired()

    def test_mixed_qualification_splits(self, cat):
        # one pushable conjunct, one on the nested collection
        t = parse_term(
            "SEARCH(LIST(NEST(SALE, LIST(#1.2), "
            "LIST('Amounts', SET))), "
            "#1.1 = 1 AND MEMBER(10, #1.2), LIST(#1.1))"
        )
        result = rewrite(t, cat)
        assert "search_nest_push" in result.rules_fired()
        pushed = result.term
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(pushed, cat).rows)
        # the nested-attribute conjunct stays above the NEST
        outer_qual = term_to_str(pushed.args[1])
        assert "MEMBER" in outer_qual

    def test_push_reduces_nest_input(self, cat):
        t = self.nest_term()
        pushed = rewrite(t, cat).term
        plain, opt = EvalStats(), EvalStats()
        Evaluator(cat, stats=plain).evaluate(t)
        Evaluator(cat, stats=opt).evaluate(pushed)
        assert opt.tuples_output <= plain.tuples_output


class TestSetOperatorPush:
    @pytest.fixture
    def setop_cat(self):
        c = Catalog()
        c.define_table("A1", [("X", NUMERIC), ("Y", NUMERIC)])
        c.define_table("B1", [("X", NUMERIC), ("Y", NUMERIC)])
        c.insert_many("A1", [(i, i % 5) for i in range(20)])
        c.insert_many("B1", [(i, i % 5) for i in range(0, 20, 2)])
        return c

    def test_difference_push(self, setop_cat):
        t = parse_term(
            "SEARCH(LIST(DIFFERENCE(A1, B1)), #1.2 = 3, LIST(#1.1))"
        )
        result = rewrite(t, setop_cat)
        assert "search_diff_push" in result.rules_fired()
        assert set(evaluate(t, setop_cat).rows) == \
            set(evaluate(result.term, setop_cat).rows)

    def test_intersection_push(self, setop_cat):
        t = parse_term(
            "SEARCH(LIST(INTERSECTION(SET(A1, B1))), #1.2 = 3, "
            "LIST(#1.1))"
        )
        result = rewrite(t, setop_cat)
        assert "search_intersect_push" in result.rules_fired()
        assert set(evaluate(t, setop_cat).rows) == \
            set(evaluate(result.term, setop_cat).rows)

    def test_push_does_not_loop(self, setop_cat):
        t = parse_term(
            "SEARCH(LIST(DIFFERENCE(A1, B1)), #1.2 = 3, LIST(#1.1))"
        )
        result = rewrite(t, setop_cat)
        assert result.rules_fired().count("search_diff_push") == 1

    def test_true_qualification_not_pushed(self, setop_cat):
        t = parse_term(
            "SEARCH(LIST(DIFFERENCE(A1, B1)), true, LIST(#1.1))"
        )
        result = rewrite(t, setop_cat)
        assert "search_diff_push" not in result.rules_fired()
