"""Rule compilation and application tests."""

import pytest

from repro.errors import RuleError
from repro.rules.rule import RuleContext, compile_rule, rule_from_text
from repro.terms.parser import parse_rule_text, parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import is_fun


def apply_text(rule_text, subject_text, ctx=None):
    rule = rule_from_text(rule_text)
    result = rule.apply(parse_term(subject_text), ctx or RuleContext())
    return None if result is None else result[0]


class TestCompilation:
    def test_names_generated_when_missing(self):
        r1 = rule_from_text("P(x) --> Q(x)")
        r2 = rule_from_text("P(x) --> Q(x)")
        assert r1.name != r2.name

    def test_named_rule(self):
        assert rule_from_text("myrule: P(x) --> Q(x)").name == "myrule"

    def test_unbound_rhs_variable_rejected(self):
        with pytest.raises(RuleError):
            rule_from_text("P(x) --> Q(y)")

    def test_unbound_rhs_collvar_rejected(self):
        with pytest.raises(RuleError):
            rule_from_text("P(x) --> Q(y*)")

    def test_method_output_counts_as_bound(self):
        rule = rule_from_text("P(x) --> Q(y) / M(x, y)")
        assert rule.name

    def test_unbound_rhs_funvar_rejected(self):
        with pytest.raises(RuleError):
            rule_from_text("P(x) --> F(x)")

    def test_funvar_bound_by_lhs(self):
        rule = rule_from_text("F(x) / ISA(x, T) --> F(x) AND Q(x)")
        assert rule.lhs.name == "F"

    def test_ac_extension_applied(self):
        rule = rule_from_text("f AND false --> false")
        # lhs got a fresh collection variable, rhs reattaches it
        from repro.terms.term import CollVar
        assert any(isinstance(a, CollVar) for a in rule.lhs.args)
        assert is_fun(rule.rhs, "AND")

    def test_ac_extension_skipped_with_explicit_collvar(self):
        rule = rule_from_text("AND(f, q*) --> AND(q*)")
        assert len(rule.lhs.args) == 2


class TestApplication:
    def test_simple_rewrite(self):
        out = apply_text("P(x) --> Q(x)", "P(1)")
        assert out == parse_term("Q(1)")

    def test_no_match_returns_none(self):
        assert apply_text("P(x) --> Q(x)", "R(1)") is None

    def test_noop_rejected(self):
        # an identity rewrite must not count as an application
        assert apply_text("P(x) --> P(x)", "P(1)") is None

    def test_ac_rule_inside_conjunction(self):
        out = apply_text("f AND false --> false",
                         "(a1 = 1) AND (a2 = 2) AND false")
        # one application removes one conjunct; the result still
        # contains FALSE and fewer conjuncts
        assert "false" in term_to_str(out)

    def test_constraint_gates_application(self):
        ok = apply_text("x > y / 2 > 1 --> TRAF(x, y)", "3 > 4")
        assert ok is not None
        blocked = apply_text("x > y / 1 > 2 --> TRAF(x, y)", "3 > 4")
        assert blocked is None

    def test_failed_method_blocks_application(self):
        # EVALUATE on a non-ground argument fails -> no application
        out = apply_text("P(x) --> Q(a) / EVALUATE(x, a)", "P(z0 + 1)")
        assert out is None

    def test_method_output_used_in_rhs(self):
        out = apply_text("P(x) --> Q(a) / EVALUATE(x, a)", "P(1 + 2)")
        assert out == parse_term("Q(3)")

    def test_applications_enumerates_alternatives(self):
        rule = rule_from_text("SET(x, v*) --> PICKED(x)")
        results = list(rule.applications(
            parse_term("SET(A, B)"), RuleContext()
        ))
        picked = {term_to_str(t) for t, __ in results}
        assert picked == {"PICKED(A)", "PICKED(B)"}

    def test_quick_applicable_discriminator(self):
        rule = rule_from_text("SEARCH(a, b, c) --> FOO(a)")
        assert rule.quick_applicable(parse_term("SEARCH(1, 2, 3)"))
        assert not rule.quick_applicable(parse_term("UNION(x)"))

    def test_funvar_rule_applies_to_any_function(self):
        rule = rule_from_text("F(x, y) / --> F(y, x) /")
        out = rule.apply(parse_term("PAIR(1, 2)"), RuleContext())
        assert out[0] == parse_term("PAIR(2, 1)")

    def test_second_application_binding_returned(self):
        rule = rule_from_text("P(x) --> Q(x)")
        result, binding = rule.apply(parse_term("P(7)"), RuleContext())
        assert binding["x"] == parse_term("7")

    def test_method_rebinding_conflict_detected(self):
        from repro.rules.methods import MethodRegistry
        from repro.terms.term import num
        registry = MethodRegistry()
        registry.register(
            "CLASH", 1, lambda inst, raw, b, ctx: {"x": num(99)}
        )
        ctx = RuleContext(methods=registry)
        rule = rule_from_text("P(x) --> Q(x) / CLASH(x)")
        with pytest.raises(RuleError):
            rule.apply(parse_term("P(1)"), ctx)


class TestPaperSection41Example:
    """The paper's own example rule (section 4.1):
    F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(x*)
    -- redundant set element removal under a membership constraint."""

    RULE = ("paper41: F(SET(x*, G(y, f))) / MEMBER(y, x*), f = true "
            "--> F(SET(x*)) /")

    def test_fires_when_member_and_true(self):
        rule = rule_from_text(self.RULE)
        out = rule.apply(parse_term("P(SET(1, 2, Q(2, true)))"),
                         RuleContext())
        assert out is not None
        assert out[0] == parse_term("P(SET(1, 2))")

    def test_blocked_when_not_member(self):
        rule = rule_from_text(self.RULE)
        assert rule.apply(parse_term("P(SET(1, 2, Q(9, true)))"),
                          RuleContext()) is None

    def test_blocked_when_flag_false(self):
        rule = rule_from_text(self.RULE)
        assert rule.apply(parse_term("P(SET(1, 2, Q(2, false)))"),
                          RuleContext()) is None

    def test_generic_symbols_bind_any_names(self):
        rule = rule_from_text(self.RULE)
        out = rule.apply(parse_term("ZAP(SET(7, WIBBLE(7, true)))"),
                         RuleContext())
        assert out is not None
        assert out[0] == parse_term("ZAP(SET(7))")
