"""Primary keys: enforcement + redundant self-join elimination."""

import pytest

from repro import Database
from repro.errors import ValueError_
from repro.terms.printer import term_to_str


@pytest.fixture
def db():
    d = Database()
    d.execute("TABLE ACCT (Id : NUMERIC, Owner : CHAR, Bal : NUMERIC, "
              "PRIMARY KEY (Id))")
    d.execute("INSERT INTO ACCT VALUES (1, 'a', 10), (2, 'b', 20), "
              "(3, 'c', 30)")
    d.execute("TABLE NOTE (Id : NUMERIC, Txt : CHAR)")  # no key
    d.execute("INSERT INTO NOTE VALUES (1, 'x'), (1, 'y')")
    return d


class TestEnforcement:
    def test_duplicate_key_rejected(self, db):
        with pytest.raises(ValueError_):
            db.execute("INSERT INTO ACCT VALUES (1, 'z', 0)")

    def test_composite_key(self):
        d = Database()
        d.execute("TABLE M (A : NUMERIC, B : NUMERIC, C : CHAR, "
                  "PRIMARY KEY (A, B))")
        d.execute("INSERT INTO M VALUES (1, 1, 'x'), (1, 2, 'y')")
        with pytest.raises(ValueError_):
            d.execute("INSERT INTO M VALUES (1, 2, 'z')")

    def test_delete_frees_key(self, db):
        db.execute("DELETE FROM ACCT WHERE Id = 1")
        db.execute("INSERT INTO ACCT VALUES (1, 'again', 5)")
        assert len(db.catalog.rows("ACCT")) == 3

    def test_update_rechecks_key(self, db):
        with pytest.raises(ValueError_):
            db.execute("UPDATE ACCT SET Id = 2 WHERE Id = 1")

    def test_unknown_key_column_rejected(self):
        d = Database()
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            d.execute("TABLE T (A : INT, PRIMARY KEY (Z))")


class TestSelfJoinElimination:
    def test_key_join_collapses(self, db):
        q = ("SELECT A.Owner, B.Bal FROM ACCT A, ACCT B "
             "WHERE A.Id = B.Id AND A.Bal > 15")
        optimized = db.optimize(q)
        assert "key_self_join" in optimized.rewrite_result.rules_fired()
        assert term_to_str(optimized.final).count("ACCT") == 1

    def test_equivalence(self, db):
        q = ("SELECT A.Owner, B.Bal FROM ACCT A, ACCT B "
             "WHERE A.Id = B.Id AND A.Bal > 15")
        assert set(db.query(q, rewrite=True).rows) == \
            set(db.query(q, rewrite=False).rows)

    def test_work_reduction(self, db):
        q = ("SELECT A.Owner, B.Bal FROM ACCT A, ACCT B "
             "WHERE A.Id = B.Id")
        __, opt, ___ = db.query_with_stats(q, rewrite=True)
        __, plain, ___ = db.query_with_stats(q, rewrite=False)
        assert opt.join_pairs < plain.join_pairs

    def test_keyless_table_not_collapsed(self, db):
        q = ("SELECT A.Txt, B.Txt FROM NOTE A, NOTE B "
             "WHERE A.Id = B.Id")
        optimized = db.optimize(q)
        assert "key_self_join" not in \
            optimized.rewrite_result.rules_fired()
        # a keyless self-join genuinely multiplies rows: must not touch
        assert len(db.query(q).rows) == 4

    def test_partial_key_match_not_collapsed(self):
        d = Database()
        d.execute("TABLE M (A : NUMERIC, B : NUMERIC, "
                  "PRIMARY KEY (A, B))")
        d.execute("INSERT INTO M VALUES (1, 1), (1, 2)")
        q = "SELECT X.B, Y.B FROM M X, M Y WHERE X.A = Y.A"
        optimized = d.optimize(q)
        assert "key_self_join" not in \
            optimized.rewrite_result.rules_fired()
        assert len(d.query(q).rows) == 4

    def test_three_way_collapse(self, db):
        q = ("SELECT A.Owner FROM ACCT A, ACCT B, ACCT C "
             "WHERE A.Id = B.Id AND B.Id = C.Id")
        optimized = db.optimize(q)
        fired = optimized.rewrite_result.rules_fired()
        assert fired.count("key_self_join") == 2
        assert term_to_str(optimized.final).count("ACCT") == 1
        assert set(db.query(q, rewrite=True).rows) == \
            set(db.query(q, rewrite=False).rows)


class TestUnnestNest:
    def test_identity_fires(self, db):
        from repro.terms.parser import parse_term
        t = parse_term(
            "UNNEST(NEST(ACCT, LIST(#1.3), LIST('Bals', SET)), #1.3)"
        )
        result = db.optimizer.rewriter.rewrite(t)
        assert "unnest_nest" in result.rules_fired()
        assert term_to_str(result.term) == "ACCT"

    def test_non_trailing_nest_untouched(self, db):
        from repro.terms.parser import parse_term
        # nesting a non-trailing column reorders attributes: not identity
        t = parse_term(
            "UNNEST(NEST(ACCT, LIST(#1.1), LIST('Ids', SET)), #1.3)"
        )
        result = db.optimizer.rewriter.rewrite(t)
        assert "unnest_nest" not in result.rules_fired()

    def test_wrong_unnest_attr_untouched(self, db):
        from repro.terms.parser import parse_term
        t = parse_term(
            "UNNEST(NEST(ACCT, LIST(#1.3), LIST('Bals', SET)), #1.1)"
        )
        result = db.optimizer.rewriter.rewrite(t)
        assert "unnest_nest" not in result.rules_fired()


class TestSemijoinProjectionPruning:
    @pytest.fixture
    def sdb(self):
        d = Database()
        d.execute("""
        TABLE CUSTOMER (Cid : NUMERIC, Region : NUMERIC, Name : CHAR,
                        Notes : CHAR);
        TABLE ORDERS (Oid : NUMERIC, Cust : NUMERIC, Total : NUMERIC)
        """)
        d.execute("INSERT INTO CUSTOMER VALUES (1, 10, 'a', 'x'), "
                  "(2, 10, 'b', 'y'), (3, 20, 'c', 'z')")
        d.execute("INSERT INTO ORDERS VALUES (100, 1, 50), (102, 3, 70)")
        return d

    QUERY = ("SELECT Name FROM CUSTOMER C WHERE EXISTS "
             "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")

    def test_core_narrowed(self, sdb):
        optimized = sdb.optimize(self.QUERY)
        fired = optimized.rewrite_result.rules_fired()
        assert "semijoin_prune" in fired
        # the pruned core projects only Cid and Name (2 of 4 columns)
        from repro.lera.ops import proj_items
        from repro.terms.term import walk, Fun
        cores = [t for t in walk(optimized.final)
                 if isinstance(t, Fun) and t.name == "SEARCH"
                 and "CUSTOMER" in term_to_str(t)]
        inner = min(cores, key=lambda t: len(term_to_str(t)))
        assert len(proj_items(inner)) == 2

    def test_equivalence(self, sdb):
        assert set(sdb.query(self.QUERY, rewrite=True).rows) == \
            set(sdb.query(self.QUERY, rewrite=False).rows)

    def test_fires_once(self, sdb):
        optimized = sdb.optimize(self.QUERY)
        fired = optimized.rewrite_result.rules_fired()
        assert fired.count("semijoin_prune") == 1

    def test_all_columns_used_no_pruning(self, sdb):
        q = ("SELECT * FROM CUSTOMER C WHERE EXISTS "
             "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")
        optimized = sdb.optimize(q)
        assert "semijoin_prune" not in \
            optimized.rewrite_result.rules_fired()

    def test_antijoin_pruned_too(self, sdb):
        q = ("SELECT Name FROM CUSTOMER C WHERE NOT EXISTS "
             "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")
        optimized = sdb.optimize(q)
        assert "semijoin_prune" in optimized.rewrite_result.rules_fired()
        assert set(sdb.query(q, rewrite=True).rows) == \
            set(sdb.query(q, rewrite=False).rows)
