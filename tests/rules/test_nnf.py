"""Negation normal form, absorption and complement rules."""

import pytest

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import evaluate
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.rules.semantic import simplification_rules
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("R", [("A", NUMERIC), ("B", NUMERIC)])
    c.insert_many("R", [(i, i % 4) for i in range(12)])
    return c


def simplify(qual, cat):
    q = parse_term(f"SEARCH(LIST(R), {qual}, LIST(#1.1))")
    engine = RewriteEngine(Seq([
        Block("simplify", simplification_rules()),
    ]))
    result = engine.rewrite(q, RuleContext(catalog=cat))
    return result, term_to_str(result.term.args[1])


class TestNegationNormalForm:
    def test_not_over_and(self, cat):
        __, out = simplify("NOT(#1.1 = 1 AND #1.2 = 2)", cat)
        assert "NOT" not in out  # negated comparisons flipped away
        assert "OR" in out

    def test_not_over_or(self, cat):
        __, out = simplify("NOT(#1.1 = 1 OR #1.2 = 2)", cat)
        assert "<>" in out and "AND" in out

    def test_comparison_flips(self, cat):
        cases = {
            "NOT(#1.1 > #1.2)": "#1.2 >= #1.1",
            "NOT(#1.1 >= #1.2)": "#1.2 > #1.1",
            "NOT(#1.1 = #1.2)": "#1.1 <> #1.2",
            "NOT(#1.1 <> #1.2)": "#1.1 = #1.2",
        }
        for source, expected in cases.items():
            __, out = simplify(source, cat)
            assert out == expected, source

    def test_deeply_nested_negation(self, cat):
        __, out = simplify(
            "NOT(NOT(NOT(#1.1 = 1 AND #1.2 = 2)))", cat
        )
        assert "NOT" not in out

    def test_nnf_enables_contradiction_detection(self, cat):
        # NOT(A <> 1) is A = 1; with A <> 1 alongside -> false
        __, out = simplify("NOT(#1.1 <> 1) AND #1.1 <> 1", cat)
        assert out == "false"

    def test_semantics_preserved(self, cat):
        source = "NOT(#1.1 > 4 AND (#1.2 = 1 OR #1.1 = 7))"
        q = parse_term(f"SEARCH(LIST(R), {source}, LIST(#1.1))")
        result, __ = simplify(source, cat)
        assert sorted(evaluate(q, cat).rows) == \
            sorted(evaluate(result.term, cat).rows)


class TestAbsorptionAndComplements:
    def test_or_absorption(self, cat):
        __, out = simplify(
            "#1.1 = 1 OR (#1.1 = 1 AND #1.2 = 2)", cat
        )
        assert out == "1 = #1.1"

    def test_and_absorption(self, cat):
        __, out = simplify(
            "#1.1 = 1 AND (#1.1 = 1 OR #1.2 = 2)", cat
        )
        assert out == "1 = #1.1"

    def test_and_complement(self, cat):
        __, out = simplify("#1.1 = 1 AND NOT(#1.1 = 1)", cat)
        assert out == "false"

    def test_or_complement(self, cat):
        __, out = simplify("#1.1 > 3 OR NOT(#1.1 > 3)", cat)
        assert out == "true"

    def test_complement_through_nnf(self, cat):
        # the complement appears only after NOT-pushing
        __, out = simplify(
            "(#1.1 = 1 AND #1.2 = 2) AND NOT(#1.1 = 1 AND #1.2 = 2)",
            cat,
        )
        assert out == "false"
