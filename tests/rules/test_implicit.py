"""F11 -- Figure 11 implicit semantic knowledge."""

import pytest

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.core.rewriter import QueryRewriter
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.rules.semantic import (implicit_knowledge_rules,
                                  simplification_rules)
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("R", [("A", NUMERIC), ("B", NUMERIC), ("C", NUMERIC)])
    return c


def semantic_engine(limit=64):
    return RewriteEngine(Seq([
        Block("semantic", implicit_knowledge_rules(), limit=limit),
        Block("simplify", simplification_rules()),
    ], passes=2))


def rewrite_qual(qual_text, cat):
    q = parse_term(f"SEARCH(LIST(R), {qual_text}, LIST(#1.1))")
    engine = semantic_engine()
    result = engine.rewrite(q, RuleContext(catalog=cat))
    return result, term_to_str(result.term.args[1])


class TestTransitivity:
    def test_equality_transitivity_adds_conjunct(self, cat):
        result, qual = rewrite_qual(
            "#1.1 = #1.2 AND #1.2 = #1.3", cat
        )
        assert "eq_transitivity" in result.rules_fired()
        assert "#1.1 = #1.3" in qual

    def test_gt_transitivity(self, cat):
        __, qual = rewrite_qual("#1.1 > #1.2 AND #1.2 > #1.3", cat)
        assert "#1.1 > #1.3" in qual

    def test_transitivity_saturates(self, cat):
        # a chain of equalities closes without looping forever
        result, qual = rewrite_qual(
            "#1.1 = #1.2 AND #1.2 = #1.3 AND #1.3 = 5", cat
        )
        assert result.applications < 64

    def test_include_transitivity_needs_collections(self, cat):
        # over NUMERIC columns the ISA(Collection) constraints fail
        result, __ = rewrite_qual(
            "INCLUDE(#1.1, #1.2) AND INCLUDE(#1.2, #1.3)", cat
        )
        assert "include_transitivity" not in result.rules_fired()

    def test_include_transitivity_on_sets(self):
        c = Catalog()
        ts = c.type_system
        setnum = ts.define_collection("SetNum", "SET", NUMERIC)
        c.define_table("S", [("X", setnum), ("Y", setnum), ("Z", setnum)])
        q = parse_term(
            "SEARCH(LIST(S), INCLUDE(#1.1, #1.2) AND "
            "INCLUDE(#1.2, #1.3), LIST(#1.1))"
        )
        result = semantic_engine().rewrite(q, RuleContext(catalog=c))
        assert "include_transitivity" in result.rules_fired()
        assert "INCLUDE(#1.1, #1.3)" in term_to_str(result.term)


class TestEqualitySubstitution:
    def test_constant_propagates_into_comparison(self, cat):
        # A = 5 and A > B entails 5 > B
        __, qual = rewrite_qual("#1.1 = 5 AND #1.1 > #1.2", cat)
        assert "5 > #1.2" in qual

    def test_exposes_contradiction_through_constants(self, cat):
        # A = 5 and A > 7 -> 5 > 7 -> false
        __, qual = rewrite_qual("#1.1 = 5 AND #1.1 > 7", cat)
        assert qual == "false"

    def test_equal_columns_share_predicates(self, cat):
        __, qual = rewrite_qual("#1.1 = #1.2 AND #1.1 > 3", cat)
        assert "#1.2 > 3" in qual

    def test_substitution_in_second_argument(self, cat):
        __, qual = rewrite_qual("#1.1 = 5 AND #1.2 > #1.1", cat)
        assert "#1.2 > 5" in qual


class TestMemberInclude:
    def test_membership_propagates(self):
        c = Catalog()
        ts = c.type_system
        setnum = ts.define_collection("SetNum", "SET", NUMERIC)
        c.define_table("S", [("X", setnum)])
        q = parse_term(
            "SEARCH(LIST(S), MEMBER(3, #1.1) AND "
            "INCLUDE(MAKESET(1, 2), #1.1), LIST(#1.1))"
        )
        result = semantic_engine().rewrite(q, RuleContext(catalog=c))
        # MEMBER(3, {1,2}) folds to false -> the qualification collapses
        assert term_to_str(result.term.args[1]) == "false"


class TestBudget:
    def test_zero_budget_blocks_semantics(self, cat):
        q = parse_term(
            "SEARCH(LIST(R), #1.1 = 5 AND #1.1 > 7, LIST(#1.1))"
        )
        engine = RewriteEngine(Seq([
            Block("semantic", implicit_knowledge_rules(), limit=0),
            Block("simplify", simplification_rules()),
        ]))
        result = engine.rewrite(q, RuleContext(catalog=cat))
        assert "false" not in term_to_str(result.term)

    def test_additions_bounded_by_budget(self, cat):
        # a long equality chain wants many additions; the budget caps it
        chain = " AND ".join(
            f"#1.1 + {i} = #1.2 + {i}" for i in range(6)
        )
        q = parse_term(f"SEARCH(LIST(R), {chain}, LIST(#1.1))")
        engine = RewriteEngine(Seq([
            Block("semantic", implicit_knowledge_rules(), limit=3),
        ]))
        result = engine.rewrite(q, RuleContext(catalog=cat))
        assert result.applications <= 3
