"""F7 -- Figure 7 merging rules: search merging, union merging."""

import pytest

from repro.adt.types import CHAR, NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import evaluate
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.rules.syntactic import canonicalization_rules, merging_rules
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import is_fun


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    c.insert_many("EDGE", [(1, 2), (2, 3), (3, 4), (2, 4)])
    c.define_table("NODE", [("Id", NUMERIC), ("Label", CHAR)])
    c.insert_many("NODE", [(1, "a"), (2, "b"), (3, "c"), (4, "d")])
    return c


def merge_engine():
    return RewriteEngine(Seq([
        Block("canonicalize", canonicalization_rules()),
        Block("merge", merging_rules()),
    ]))


def rewrite(term, cat):
    return merge_engine().rewrite(term, RuleContext(catalog=cat))


class TestSearchMerging:
    def test_two_stacked_searches_collapse(self, cat):
        t = parse_term(
            "SEARCH(LIST(SEARCH(LIST(EDGE), #1.1 = 2, "
            "LIST(#1.1, #1.2))), #1.2 > 2, LIST(#1.2))"
        )
        result = rewrite(t, cat)
        assert result.rules_fired().count("search_merge") == 1
        out = result.term
        assert is_fun(out, "SEARCH")
        # a single search remains over the base relation
        assert term_to_str(out).count("SEARCH") == 1

    def test_merged_plan_is_equivalent(self, cat):
        t = parse_term(
            "SEARCH(LIST(SEARCH(LIST(EDGE), #1.1 = 2, "
            "LIST(#1.1, #1.2))), #1.2 > 2, LIST(#1.2))"
        )
        merged = rewrite(t, cat).term
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(merged, cat).rows)

    def test_projection_expressions_inlined(self, cat):
        # the inner search projects an expression; the outer reference
        # to it must be replaced by the expression itself
        t = parse_term(
            "SEARCH(LIST(SEARCH(LIST(EDGE), true, "
            "LIST(#1.1 + #1.2))), #1.1 > 4, LIST(#1.1))"
        )
        merged = rewrite(t, cat).term
        assert "#1.1 + #1.2" in term_to_str(merged)
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(merged, cat).rows)

    def test_merge_with_surrounding_relations(self, cat):
        # inner search sits between two other inputs; indices of the
        # following relations must shift down
        t = parse_term(
            "SEARCH(LIST(NODE, SEARCH(LIST(EDGE), #1.1 = 2, "
            "LIST(#1.1, #1.2)), NODE), "
            "#1.1 = #2.1 AND #2.2 = #3.1, LIST(#3.2))"
        )
        result = rewrite(t, cat)
        merged = result.term
        assert "search_merge" in result.rules_fired()
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(merged, cat).rows)

    def test_deep_stack_merges_fully(self, cat):
        t = parse_term(
            "SEARCH(LIST(SEARCH(LIST(SEARCH(LIST(EDGE), #1.1 > 0, "
            "LIST(#1.1, #1.2))), #1.1 > 1, LIST(#1.1, #1.2))), "
            "#1.2 > 2, LIST(#1.1))"
        )
        result = rewrite(t, cat)
        assert result.rules_fired().count("search_merge") == 2
        assert term_to_str(result.term).count("SEARCH") == 1
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(result.term, cat).rows)

    def test_qualifications_anded_together(self, cat):
        t = parse_term(
            "SEARCH(LIST(SEARCH(LIST(EDGE), #1.1 = 2, "
            "LIST(#1.1, #1.2))), #1.2 = 3, LIST(#1.1))"
        )
        merged = rewrite(t, cat).term
        qual = term_to_str(merged.args[1])
        assert "AND" in qual

    def test_plan_node_count_shrinks(self, cat):
        t = parse_term(
            "SEARCH(LIST(SEARCH(LIST(EDGE), #1.1 = 2, "
            "LIST(#1.1, #1.2))), #1.2 > 2, LIST(#1.2))"
        )
        from repro.terms.term import term_size
        merged = rewrite(t, cat).term
        assert term_size(merged) < term_size(t)


class TestUnionMerging:
    def test_nested_unions_flatten(self, cat):
        t = parse_term("UNION(SET(EDGE, UNION(SET(NODE, EDGE))))")
        result = rewrite(t, cat)
        assert "union_merge" in result.rules_fired()
        out = result.term
        inner = out.args[0]
        assert all(not is_fun(b, "UNION") for b in inner.args)

    def test_union_merge_equivalent(self, cat):
        t = parse_term("UNION(SET(EDGE, UNION(SET(EDGE))))")
        merged = rewrite(t, cat).term
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(merged, cat).rows)


class TestCanonicalization:
    def test_filter_becomes_search(self, cat):
        t = parse_term("FILTER(EDGE, #1.1 = 2)")
        result = rewrite(t, cat)
        assert "filter_to_search" in result.rules_fired()
        assert is_fun(result.term, "SEARCH")
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(result.term, cat).rows)

    def test_projection_becomes_search(self, cat):
        t = parse_term("PROJECTION(EDGE, LIST(#1.2))")
        result = rewrite(t, cat)
        assert is_fun(result.term, "SEARCH")

    def test_join_becomes_search(self, cat):
        t = parse_term("JOIN(LIST(EDGE, NODE), #1.2 = #2.1)")
        result = rewrite(t, cat)
        assert is_fun(result.term, "SEARCH")
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(result.term, cat).rows)

    def test_filter_over_join_merges_into_one_search(self, cat):
        t = parse_term(
            "FILTER(JOIN(LIST(EDGE, NODE), #1.2 = #2.1), #1.1 = 1)"
        )
        result = rewrite(t, cat)
        assert term_to_str(result.term).count("SEARCH") == 1
        assert sorted(evaluate(t, cat).rows) == \
            sorted(evaluate(result.term, cat).rows)

    def test_singleton_union_unwrapped(self, cat):
        # unwrapping must keep the duplicate elimination: UNION has
        # set semantics while its branch may be a bag (a bare unwrap
        # returned duplicate rows; tests/qa_corpus holds the repro)
        t = parse_term("UNION(SET(EDGE))")
        result = rewrite(t, cat)
        assert result.term == parse_term("DISTINCT(EDGE)")


class TestUnionFactoring:
    def test_shared_shape_branches_factor(self, cat):
        t = parse_term(
            "UNION(SET("
            "SEARCH(LIST(EDGE), #1.1 = 1, LIST(#1.1, #1.2)), "
            "SEARCH(LIST(EDGE), #1.1 = 3, LIST(#1.1, #1.2))))"
        )
        result = rewrite(t, cat)
        assert "union_factor" in result.rules_fired()
        out = term_to_str(result.term)
        assert out.count("SEARCH") == 1
        assert "OR" in out
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(result.term, cat).rows)

    def test_three_branches_factor_fully(self, cat):
        t = parse_term(
            "UNION(SET("
            "SEARCH(LIST(EDGE), #1.1 = 1, LIST(#1.2)), "
            "SEARCH(LIST(EDGE), #1.1 = 2, LIST(#1.2)), "
            "SEARCH(LIST(EDGE), #1.1 = 3, LIST(#1.2))))"
        )
        result = rewrite(t, cat)
        assert result.rules_fired().count("union_factor") == 2
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(result.term, cat).rows)

    def test_different_projections_not_factored(self, cat):
        t = parse_term(
            "UNION(SET("
            "SEARCH(LIST(EDGE), #1.1 = 1, LIST(#1.1)), "
            "SEARCH(LIST(EDGE), #1.1 = 3, LIST(#1.2))))"
        )
        result = rewrite(t, cat)
        assert "union_factor" not in result.rules_fired()

    def test_different_inputs_not_factored(self, cat):
        t = parse_term(
            "UNION(SET("
            "SEARCH(LIST(EDGE), #1.1 = 1, LIST(#1.1)), "
            "SEARCH(LIST(NODE), #1.1 = 1, LIST(#1.1))))"
        )
        result = rewrite(t, cat)
        assert "union_factor" not in result.rules_fired()

    def test_no_ping_pong_with_union_push(self, cat):
        """union_factor and search_union_push must not cycle."""
        from repro.core.rewriter import QueryRewriter
        rewriter = QueryRewriter(cat)
        t = parse_term(
            "SEARCH(LIST(UNION(SET("
            "SEARCH(LIST(EDGE), #1.1 = 1, LIST(#1.1, #1.2)), "
            "SEARCH(LIST(EDGE), #1.1 = 3, LIST(#1.1, #1.2))))), "
            "#1.2 > 2, LIST(#1.2))"
        )
        result = rewriter.rewrite(t)   # must terminate
        assert set(evaluate(t, cat).rows) == \
            set(evaluate(result.term, cat).rows)
