"""Constraint-evaluation tests: ISA, REFER, NONEMPTY, ground terms."""

import pytest

from repro.adt.types import CHAR, NUMERIC, REAL
from repro.engine.catalog import Catalog
from repro.lera.schema import Schema
from repro.rules.constraints import (ConstraintEvaluator, isa_predicate,
                                     nonempty_predicate)
from repro.rules.rule import RuleContext
from repro.terms.parser import parse_term
from repro.terms.term import Seq, num, string, sym


@pytest.fixture
def cat():
    c = Catalog()
    ts = c.type_system
    ts.define_enumeration("Category", ["Comedy", "Western"])
    ts.define_tuple("Point", [("ABS", REAL), ("ORD", REAL)])
    ts.define_collection("SetCategory", "SET", ts.lookup("Category"))
    c.define_table("FILM", [
        ("Numf", NUMERIC), ("Cat", ts.lookup("Category")),
        ("Cats", ts.lookup("SetCategory")),
    ])
    return c


def ctx_with_schemas(cat):
    return RuleContext(catalog=cat,
                       schemas=[cat.relation_schema("FILM")])


@pytest.fixture
def ev():
    return ConstraintEvaluator()


class TestIsa:
    def test_constant(self, ev):
        assert ev.holds(parse_term("ISA(x, CONSTANT)"),
                        {"x": num(3)}, None)
        assert ev.holds(parse_term("ISA(x, CONSTANT)"),
                        {"x": string("a")}, None)

    def test_symbol_is_not_constant(self, ev):
        assert not ev.holds(parse_term("ISA(x, CONSTANT)"),
                            {"x": sym("REL")}, None)

    def test_fun_is_not_constant(self, ev):
        assert not ev.holds(parse_term("ISA(x, CONSTANT)"),
                            {"x": parse_term("P(1)")}, None)

    def test_attref_typed_through_schemas(self, ev, cat):
        ctx = ctx_with_schemas(cat)
        assert ev.holds(parse_term("ISA(x, Category)"),
                        {"x": parse_term("#1.2")}, ctx)
        assert not ev.holds(parse_term("ISA(x, Category)"),
                            {"x": parse_term("#1.1")}, ctx)

    def test_collection_kinds(self, ev, cat):
        ctx = ctx_with_schemas(cat)
        binding = {"x": parse_term("#1.3")}
        assert ev.holds(parse_term("ISA(x, Set)"), binding, ctx)
        assert ev.holds(parse_term("ISA(x, Collection)"), binding, ctx)
        assert not ev.holds(parse_term("ISA(x, List)"), binding, ctx)

    def test_numeric_tower(self, ev, cat):
        ctx = ctx_with_schemas(cat)
        assert ev.holds(parse_term("ISA(x, Numeric)"),
                        {"x": num(3)}, ctx)

    def test_no_schemas_makes_attref_untypable(self, ev, cat):
        ctx = RuleContext(catalog=cat, schemas=None)
        assert not ev.holds(parse_term("ISA(x, Category)"),
                            {"x": parse_term("#1.2")}, ctx)

    def test_unknown_type_is_false(self, ev, cat):
        ctx = ctx_with_schemas(cat)
        assert not ev.holds(parse_term("ISA(x, Martian)"),
                            {"x": num(1)}, ctx)

    def test_unbound_variable_is_false(self, ev, cat):
        assert not ev.holds(parse_term("ISA(x, CONSTANT)"), {}, None)


class TestNonempty:
    def test_seq_lengths(self):
        assert nonempty_predicate([Seq([num(1)])], {}, None)
        assert not nonempty_predicate([Seq([])], {}, None)

    def test_single_term_counts(self):
        assert nonempty_predicate([num(1)], {}, None)


class TestGroundComparisons:
    def test_ground_true(self, ev):
        assert ev.holds(parse_term("y >= z"),
                        {"y": num(5), "z": num(3)}, None)

    def test_ground_false(self, ev):
        assert not ev.holds(parse_term("y >= z"),
                            {"y": num(1), "z": num(3)}, None)

    def test_non_ground_is_false(self, ev):
        assert not ev.holds(parse_term("y >= z"), {"y": num(1)}, None)

    def test_ground_function_through_registry(self, ev):
        assert ev.holds(parse_term("MEMBER(x, MAKESET(1, 2))"),
                        {"x": num(2)}, None)

    def test_connectives(self, ev):
        b = {"y": num(5), "z": num(3)}
        assert ev.holds(parse_term("y > z AND y > 0"), b, None)
        assert ev.holds(parse_term("y < z OR y > 0"), b, None)
        assert ev.holds(parse_term("NOT(y < z)"), b, None)

    def test_boolean_constants(self, ev):
        assert ev.holds(parse_term("true"), {}, None)
        assert not ev.holds(parse_term("false"), {}, None)


class TestCustomPredicates:
    def test_register_and_use(self, ev):
        ev.register("ALWAYS", lambda args, binding, ctx: True)
        assert ev.knows("always")
        assert ev.holds(parse_term("ALWAYS(x)"), {"x": num(1)}, None)

    def test_predicate_sees_instantiated_args(self, ev):
        seen = []
        ev.register("SPY", lambda args, b, c: seen.append(args) or True)
        ev.holds(parse_term("SPY(x)"), {"x": num(7)}, None)
        assert seen[0][0] == num(7)
