"""Every text-based rule in the shipped library round-trips.

The rules are written in the Figure 6 language; their stored source
must re-parse and re-compile to an equivalent rule (same name, same
left/right terms, same constraints and methods).
"""

import pytest

from repro.rules.meta import standard_rule_library
from repro.rules.rule import RewriteRule, rule_from_text

_TEXT_RULES = [
    rule for rule in standard_rule_library().values()
    if isinstance(rule, RewriteRule) and rule.source
]


@pytest.mark.parametrize("rule", _TEXT_RULES,
                         ids=[r.name for r in _TEXT_RULES])
def test_source_round_trips(rule):
    again = rule_from_text(rule.source)
    assert again.name == rule.name
    assert again.lhs == rule.lhs
    assert again.rhs == rule.rhs
    assert again.constraints == rule.constraints
    assert again.methods == rule.methods


def test_library_size_sanity():
    # the shipped library keeps growing; guard against accidental loss
    assert len(_TEXT_RULES) >= 50
