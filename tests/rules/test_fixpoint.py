"""F9 -- Figure 9 fixpoint reduction: linearization + Alexander/magic."""

import pytest

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import Evaluator, evaluate
from repro.engine.stats import EvalStats
from repro.rules.fixpoint import Adornment, adorn, build_alexander
from repro.core.rewriter import QueryRewriter
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import num


def edge_cat(edges):
    cat = Catalog()
    cat.define_table("EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    cat.insert_many("EDGE", edges)
    return cat


RIGHT_LINEAR = (
    "FIX(TC, UNION(SET(EDGE, SEARCH(LIST(EDGE, TC), #1.2 = #2.1, "
    "LIST(#1.1, #2.2)))))"
)
LEFT_LINEAR = (
    "FIX(TC, UNION(SET(EDGE, SEARCH(LIST(TC, EDGE), #1.2 = #2.1, "
    "LIST(#1.1, #2.2)))))"
)
NON_LINEAR = (
    "FIX(TC, UNION(SET(EDGE, SEARCH(LIST(TC, TC), #1.2 = #2.1, "
    "LIST(#1.1, #2.2)))))"
)


def bound_query(fix_text, qual):
    return parse_term(
        f"SEARCH(LIST({fix_text}), {qual}, LIST(#1.1, #1.2))"
    )


class TestAdornment:
    def test_detects_bound_first_column(self):
        fix = parse_term(RIGHT_LINEAR)
        adornment = adorn(fix, parse_term("#1.1 = 1"), 1)
        assert adornment is not None
        assert adornment.bound == (1,)
        assert adornment.constants == (num(1),)

    def test_detects_bound_second_column(self):
        fix = parse_term(LEFT_LINEAR)
        adornment = adorn(fix, parse_term("#1.2 = 5"), 1)
        assert adornment is not None
        assert adornment.bound == (2,)

    def test_no_constant_no_adornment(self):
        fix = parse_term(RIGHT_LINEAR)
        assert adorn(fix, parse_term("#1.1 = #1.2"), 1) is None

    def test_wrong_position_ignored(self):
        fix = parse_term(RIGHT_LINEAR)
        assert adorn(fix, parse_term("#2.1 = 1"), 1) is None

    def test_non_linear_refused(self):
        fix = parse_term(NON_LINEAR)
        assert adorn(fix, parse_term("#1.1 = 1"), 1) is None

    def test_already_reduced_refused(self):
        fix = parse_term(RIGHT_LINEAR.replace("TC", "TC$BOUND1"))
        assert adorn(fix, parse_term("#1.1 = 1"), 1) is None

    def test_signature_roundtrip(self):
        a = Adornment([1, 2], [num(3), num(4)])
        assert Adornment.from_term(a.to_term()).bound == (1, 2)


class TestAlexanderConstruction:
    @pytest.mark.parametrize("fix_text,qual", [
        (RIGHT_LINEAR, "#1.1 = 1"),
        (LEFT_LINEAR, "#1.1 = 1"),
        (RIGHT_LINEAR, "#1.2 = 5"),
        (LEFT_LINEAR, "#1.2 = 5"),
    ], ids=["right-b1", "left-b1", "right-b2", "left-b2"])
    def test_reduced_fixpoint_equivalent_under_selection(self, fix_text,
                                                         qual):
        edges = [(i, i + 1) for i in range(1, 12)] + [(3, 7), (2, 9)]
        cat = edge_cat(edges)
        fix = parse_term(fix_text)
        adornment = adorn(fix, parse_term(qual), 1, cat)
        assert adornment is not None
        reduced = build_alexander(fix, adornment, cat)
        query_plain = bound_query(fix_text, qual)
        query_opt = parse_term(
            f"SEARCH(LIST({term_to_str(reduced)}), {qual}, "
            f"LIST(#1.1, #1.2))"
        )
        assert set(evaluate(query_plain, cat).rows) == \
            set(evaluate(query_opt, cat).rows)

    def test_reduced_plan_does_less_work(self):
        edges = [(i, i + 1) for i in range(1, 40)]
        cat = edge_cat(edges)
        fix = parse_term(LEFT_LINEAR)
        adornment = adorn(fix, parse_term("#1.1 = 35"), 1, cat)
        reduced = build_alexander(fix, adornment, cat)
        plain, opt = EvalStats(), EvalStats()
        Evaluator(cat, stats=plain).evaluate(
            bound_query(LEFT_LINEAR, "#1.1 = 35")
        )
        Evaluator(cat, stats=opt).evaluate(parse_term(
            f"SEARCH(LIST({term_to_str(reduced)}), #1.1 = 35, "
            f"LIST(#1.1, #1.2))"
        ))
        assert opt.total_work < plain.total_work

    def test_magic_fixpoint_inlined_and_shared(self):
        cat = edge_cat([(1, 2), (2, 3)])
        fix = parse_term(RIGHT_LINEAR)
        adornment = adorn(fix, parse_term("#1.1 = 1"), 1, cat)
        reduced = build_alexander(fix, adornment, cat)
        rendered = term_to_str(reduced)
        assert "$MAGIC" in rendered
        assert "$BOUND" in rendered


class TestEndToEndRule:
    def make_rewriter(self, cat):
        return QueryRewriter(cat)

    def test_alexander_rule_fires_on_linear_fix(self):
        cat = edge_cat([(1, 2), (2, 3), (3, 4)])
        rewriter = self.make_rewriter(cat)
        result = rewriter.rewrite(bound_query(RIGHT_LINEAR, "#1.1 = 1"))
        assert "fix_alexander" in result.rules_fired()

    def test_linearize_then_alexander_on_nonlinear(self):
        cat = edge_cat([(1, 2), (2, 3), (3, 4)])
        rewriter = self.make_rewriter(cat)
        result = rewriter.rewrite(bound_query(NON_LINEAR, "#1.1 = 1"))
        fired = result.rules_fired()
        assert "fix_linearize" in fired
        assert "fix_alexander" in fired

    def test_rule_does_not_fire_without_selection(self):
        cat = edge_cat([(1, 2)])
        rewriter = self.make_rewriter(cat)
        result = rewriter.rewrite(bound_query(RIGHT_LINEAR, "true"))
        assert "fix_alexander" not in result.rules_fired()

    def test_rule_does_not_refire_on_reduced_plan(self):
        cat = edge_cat([(1, 2), (2, 3)])
        rewriter = self.make_rewriter(cat)
        once = rewriter.rewrite(bound_query(RIGHT_LINEAR, "#1.1 = 1"))
        again = rewriter.rewrite(once.term)
        assert "fix_alexander" not in again.rules_fired()

    def test_full_pipeline_equivalence_on_random_graph(self):
        import random
        rng = random.Random(7)
        edges = list({(rng.randint(1, 25), rng.randint(1, 25))
                      for __ in range(60)})
        cat = edge_cat(edges)
        rewriter = self.make_rewriter(cat)
        q = bound_query(NON_LINEAR, "#1.1 = 3")
        rewritten = rewriter.rewrite(q).term
        assert set(evaluate(q, cat).rows) == \
            set(evaluate(rewritten, cat).rows)

    def test_linearized_only_when_tc_shape(self):
        cat = edge_cat([(1, 2)])
        # same-generation style recursion: projection is (#1.1, #2.2)
        # but the join condition is different -> not the TC shape
        other = (
            "FIX(SG, UNION(SET(EDGE, SEARCH(LIST(SG, SG), "
            "#1.1 = #2.2, LIST(#1.1, #2.2)))))"
        )
        rewriter = self.make_rewriter(cat)
        result = rewriter.rewrite(bound_query(other, "#1.1 = 1"))
        assert "fix_linearize" not in result.rules_fired()


class TestMultiColumnBinding:
    def test_both_columns_bound(self):
        """B = {1, 2}: the magic seed carries both constants."""
        cat = edge_cat([(i, i + 1) for i in range(1, 15)])
        fix = parse_term(RIGHT_LINEAR)
        adornment = adorn(fix, parse_term("#1.1 = 2 AND #1.2 = 9"), 1,
                          cat)
        assert adornment is not None
        assert adornment.bound == (1, 2)
        reduced = build_alexander(fix, adornment, cat)
        query_plain = bound_query(RIGHT_LINEAR,
                                  "#1.1 = 2 AND #1.2 = 9")
        query_opt = parse_term(
            f"SEARCH(LIST({term_to_str(reduced)}), "
            f"#1.1 = 2 AND #1.2 = 9, LIST(#1.1, #1.2))"
        )
        assert set(evaluate(query_plain, cat).rows) == \
            set(evaluate(query_opt, cat).rows) == {(2, 9)}

    def test_multi_bound_end_to_end(self):
        """Both columns bound: the rule fires and stays correct.

        (The guard joins over a two-column magic set can cost more than
        they save on short chains -- a genuine crossover, so no work
        assertion here; the single-column wins are asserted above.)
        """
        cat = edge_cat([(i, i + 1) for i in range(1, 25)])
        db_q = "#1.1 = 3 AND #1.2 = 20"
        rewriter = QueryRewriter(cat)
        q = bound_query(RIGHT_LINEAR, db_q)
        result = rewriter.rewrite(q)
        assert "fix_alexander" in result.rules_fired()
        assert set(evaluate(result.term, cat).rows) == \
            set(evaluate(q, cat).rows) == {(3, 20)}

    def test_conflicting_constants_empty(self):
        """Two different constants on the same column still evaluate
        correctly (adornment picks a consistent pair or none)."""
        cat = edge_cat([(1, 2), (2, 3)])
        rewriter = QueryRewriter(cat)
        q = bound_query(RIGHT_LINEAR, "#1.1 = 1 AND #1.1 = 2")
        result = rewriter.rewrite(q)
        assert set(evaluate(result.term, cat).rows) == \
            set(evaluate(q, cat).rows) == set()
