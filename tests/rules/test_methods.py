"""Method-call tests: SUBSTITUTE, SHIFT, SCHEMA, EVALUATE dispatch."""

import pytest

from repro.adt.types import CHAR, NUMERIC
from repro.engine.catalog import Catalog
from repro.errors import MethodError
from repro.rules.methods import (MethodRegistry, default_method_registry,
                                 value_to_term)
from repro.rules.rule import RuleContext
from repro.terms.match import match_first
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import Fun, boolean, mk_fun, num, string


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("A", [("A1", NUMERIC), ("A2", NUMERIC)])
    c.define_table("B", [("B1", NUMERIC), ("B2", CHAR)])
    c.define_table("C", [("C1", NUMERIC)])
    return c


@pytest.fixture
def registry():
    return default_method_registry()


def ctx(cat):
    return RuleContext(catalog=cat)


class TestValueToTerm:
    def test_scalars(self):
        assert value_to_term(3) == num(3)
        assert value_to_term(2.5) == num(2.5)
        assert value_to_term("x") == string("x")
        assert value_to_term(True) == boolean(True)

    def test_unexpressible(self):
        with pytest.raises(MethodError):
            value_to_term(object())


class TestEvaluate:
    def test_folds_ground_call(self, registry, cat):
        call = parse_term("EVALUATE(x, a)")
        out = registry.invoke(call, {"x": parse_term("2 + 3")}, ctx(cat))
        assert out == {"a": num(5)}

    def test_non_ground_fails_soft(self, registry, cat):
        call = parse_term("EVALUATE(x, a)")
        out = registry.invoke(call, {"x": parse_term("z0 + 3")}, ctx(cat))
        assert out is None

    def test_unknown_method(self, registry, cat):
        with pytest.raises(MethodError):
            registry.invoke(parse_term("NOPE(x)"), {}, ctx(cat))


class TestSchema:
    def test_single_relation(self, registry, cat):
        call = parse_term("SCHEMA(z, s)")
        out = registry.invoke(call, {"z": parse_term("A")}, ctx(cat))
        assert term_to_str(out["s"]) == "LIST(#1.1, #1.2)"

    def test_relation_list(self, registry, cat):
        call = parse_term("SCHEMA(z, s)")
        out = registry.invoke(call, {"z": parse_term("LIST(A, C)")},
                              ctx(cat))
        assert term_to_str(out["s"]) == "LIST(#1.1, #1.2, #2.1)"


class TestMergeSubstitute:
    """SUBSTITUTE/3 and SHIFT/3 use the search-merging binding layout."""

    def _binding(self):
        # outer: SEARCH(LIST(A, SEARCH(LIST(B, C), g, b), A2?), f, a)
        lhs = parse_term("SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)")
        subject = parse_term(
            "SEARCH(LIST(A, SEARCH(LIST(B, C), #1.1 = #2.1, "
            "LIST(#1.2, #2.1))), #1.1 = #2.2, LIST(#2.1))"
        )
        binding = match_first(lhs, subject)
        assert binding is not None
        return binding

    def test_substitute_remaps_inner_position(self, registry, cat):
        binding = self._binding()
        call = parse_term("SUBSTITUTE(f, z, f2)")
        out = registry.invoke(call, binding, ctx(cat))
        # #2.2 (inner output 2) becomes the inner expr #2.1 shifted by
        # k+l = 1 -> #3.1 ... wait: inner items are (#1.2, #2.1), item 2
        # is #2.1, shifted by 1 -> #3.1
        assert "#3.1" in term_to_str(out["f2"])

    def test_substitute_keeps_outer_refs(self, registry, cat):
        binding = self._binding()
        out = registry.invoke(parse_term("SUBSTITUTE(f, z, f2)"),
                              binding, ctx(cat))
        assert "#1.1" in term_to_str(out["f2"])

    def test_shift_renumbers_inner_qual(self, registry, cat):
        binding = self._binding()
        out = registry.invoke(parse_term("SHIFT(g, z, g2)"),
                              binding, ctx(cat))
        assert term_to_str(out["g2"]) == "#2.1 = #3.1"

    def test_substitute_rejects_out_of_range(self, registry, cat):
        binding = self._binding()
        binding = dict(binding)
        binding["f"] = parse_term("#2.9 = 1")  # inner has 2 outputs only
        out = registry.invoke(parse_term("SUBSTITUTE(f, z, f2)"),
                              binding, ctx(cat))
        assert out is None  # soft failure: the rule does not fire


class TestCustomMethods:
    def test_register_and_invoke(self, cat):
        registry = MethodRegistry()
        registry.register(
            "TWICE", 2,
            lambda inst, raw, b, c: {raw[1].name: mk_fun(
                "*", [inst[0], num(2)]
            )},
        )
        assert registry.knows("twice", 2)
        out = registry.invoke(parse_term("TWICE(x, y)"),
                              {"x": num(5)}, ctx(cat))
        assert out == {"y": parse_term("5 * 2")}
