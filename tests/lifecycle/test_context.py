"""Unit tests for QueryContext: the cooperative check protocol,
budgets, degrade mode, and the memory accountant."""

import threading
import time

import pytest

from repro.errors import (BudgetExceeded, LifecycleError, QueryCancelled,
                          error_payload)
from repro.lifecycle import (MemoryAccountant, QueryContext, Truncation,
                             current_context, use_context)


class TestCancellation:
    def test_cancel_raises_at_next_check(self):
        ctx = QueryContext(query_id="q7", check_interval=4)
        ctx.tick(3)  # below the interval: no check yet
        assert ctx.cancel("kill") is True
        with pytest.raises(QueryCancelled) as err:
            ctx.tick()  # the flag forces an immediate check
        assert err.value.query_id == "q7"
        assert err.value.reason == "kill"

    def test_first_cancel_reason_wins(self):
        ctx = QueryContext()
        assert ctx.cancel("watchdog") is True
        assert ctx.cancel("kill") is False
        assert ctx.cancel_reason == "watchdog"

    def test_cancel_from_another_thread(self):
        ctx = QueryContext(check_interval=1)
        seen = []

        def evaluate():
            try:
                while True:
                    ctx.tick()
                    time.sleep(0.001)
            except QueryCancelled as error:
                seen.append(error)

        thread = threading.Thread(target=evaluate)
        thread.start()
        time.sleep(0.02)
        ctx.cancel("kill")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert seen and seen[0].reason == "kill"

    def test_cancel_beats_degrade(self):
        # degrade turns budget trips into truncation, never a cancel
        ctx = QueryContext(degrade=True)
        ctx.cancel("kill")
        with pytest.raises(QueryCancelled):
            ctx.check()

    def test_typed_error_payload(self):
        ctx = QueryContext(query_id="q3")
        ctx.cancel("chaos")
        with pytest.raises(QueryCancelled) as err:
            ctx.check()
        payload = error_payload(err.value)
        assert payload["query_id"] == "q3"
        assert payload["reason"] == "chaos"
        assert isinstance(err.value, LifecycleError)


class TestDeadline:
    def test_deadline_trips(self):
        ctx = QueryContext(timeout_ms=0.01)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded) as err:
            ctx.check()
        assert err.value.resource == "deadline"

    def test_remaining_ms_decreases(self):
        ctx = QueryContext(timeout_ms=10_000)
        first = ctx.remaining_ms()
        time.sleep(0.005)
        assert ctx.remaining_ms() < first
        assert ctx.remaining_ms() > 0

    def test_remaining_ms_unbounded_is_none(self):
        assert QueryContext().remaining_ms() is None

    def test_over_deadline_predicate(self):
        assert QueryContext().over_deadline() is False
        ctx = QueryContext(timeout_ms=0.01)
        time.sleep(0.002)
        assert ctx.over_deadline() is True


class TestRowBudget:
    def test_row_budget_trips(self):
        ctx = QueryContext(query_id="q5", row_budget=10)
        ctx.charge_rows(10)  # exactly at the budget: fine
        with pytest.raises(BudgetExceeded) as err:
            ctx.charge_rows(1)
        assert err.value.resource == "rows"
        assert err.value.limit == 10
        assert err.value.consumed == 11

    def test_degrade_turns_trip_into_truncation(self):
        ctx = QueryContext(row_budget=5, degrade=True)
        with pytest.raises(Truncation):
            ctx.charge_rows(6)
        assert ctx.truncated is True
        assert ctx.trip_info == ("rows", 5, 6)

    def test_truncated_context_unwinds_fast(self):
        # once truncated, every subsequent full check re-raises
        ctx = QueryContext(row_budget=5, degrade=True)
        with pytest.raises(Truncation):
            ctx.charge_rows(6)
        with pytest.raises(Truncation):
            ctx.check()


class TestMemoryBudget:
    def test_memory_budget_trips(self):
        ctx = QueryContext(memory_budget=100)
        ctx.reserve(60)
        with pytest.raises(BudgetExceeded) as err:
            ctx.reserve(50)
        assert err.value.resource == "memory"
        # the tripping reservation still counts: release stays balanced
        assert ctx.memory.current == 110

    def test_release_balances(self):
        ctx = QueryContext()
        ctx.reserve(100)
        ctx.release(100)
        assert ctx.memory.current == 0
        assert ctx.memory.peak == 100


class TestMemoryAccountant:
    def test_peak_is_monotone(self):
        accountant = MemoryAccountant()
        accountant.reserve(50)
        accountant.release(30)
        accountant.reserve(10)
        assert accountant.current == 30
        assert accountant.peak == 50

    def test_over_release_rejected(self):
        accountant = MemoryAccountant()
        accountant.reserve(10)
        with pytest.raises(ValueError):
            accountant.release(11)

    def test_negative_amounts_rejected(self):
        accountant = MemoryAccountant()
        with pytest.raises(ValueError):
            accountant.reserve(-1)
        with pytest.raises(ValueError):
            accountant.release(-1)

    def test_release_all(self):
        accountant = MemoryAccountant()
        accountant.reserve(40)
        assert accountant.release_all() == 40
        assert accountant.current == 0


class TestPropagation:
    def test_ambient_context(self):
        assert current_context() is None
        ctx = QueryContext()
        with use_context(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_nested_context_restores(self):
        outer, inner = QueryContext(), QueryContext()
        with use_context(outer):
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer


class TestSnapshot:
    def test_snapshot_shape(self):
        ctx = QueryContext(query_id="q9", session="s1",
                           timeout_ms=500, row_budget=10, degrade=True,
                           source="SELECT 1")
        snap = ctx.snapshot()
        assert snap["query_id"] == "q9"
        assert snap["session"] == "s1"
        assert snap["timeout_ms"] == 500
        assert snap["row_budget"] == 10
        assert snap["degrade"] is True
        assert snap["cancelled"] is False
        assert snap["elapsed_ms"] >= 0

    def test_elapsed_freezes_at_finish(self):
        ctx = QueryContext()
        ctx.finished = time.perf_counter()
        frozen = ctx.elapsed_ms()
        time.sleep(0.005)
        assert ctx.elapsed_ms() == frozen

    def test_tick_interval_bounds_check_frequency(self):
        ctx = QueryContext(timeout_ms=0.001, check_interval=64)
        time.sleep(0.002)
        # 63 ticks: no full check, so no trip despite the dead deadline
        for _ in range(63):
            ctx.tick()
        with pytest.raises(BudgetExceeded):
            ctx.tick()  # the 64th runs the full check
