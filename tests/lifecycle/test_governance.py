"""End-to-end governance through Database: budgets, degrade mode, the
unified statement budget, explain's lifecycle section, sys.queries."""

import pytest

from repro import Database
from repro.core.explain import validate_explain
from repro.engine.stats import EvalStats
from repro.errors import BudgetExceeded, QueryCancelled
from repro.lifecycle import QueryContext, use_context


@pytest.fixture
def db():
    database = Database()
    database.execute("TABLE T (A : NUMERIC, B : NUMERIC)")
    values = ", ".join(f"({i}, {i * 2})" for i in range(60))
    database.execute(f"INSERT INTO T VALUES {values}")
    return database


class TestUngovernedFastPath:
    def test_no_context_minted_without_knobs(self, db):
        db.query("SELECT A FROM T")
        assert len(db.lifecycle) == 0
        assert db.lifecycle.recent() == []

    def test_explain_lifecycle_is_null(self, db):
        report = db.explain_json("SELECT A FROM T")
        assert report["lifecycle"] is None
        assert validate_explain(report) == []


class TestRowBudget:
    def test_database_default_trips(self):
        db = Database()
        db.execute("TABLE T (A : NUMERIC)")
        db.execute("INSERT INTO T VALUES " +
                   ", ".join(f"({i})" for i in range(30)))
        db.row_budget = 10  # the database-wide default, set post-seed
        with pytest.raises(BudgetExceeded) as err:
            db.query("SELECT A FROM T")
        assert err.value.resource == "rows"
        assert db.lifecycle.recent()[-1].phase == "failed"

    def test_per_call_override(self, db):
        with pytest.raises(BudgetExceeded):
            db.query("SELECT A FROM T", row_budget=5)
        # and the same query unbudgeted still works
        assert len(db.query("SELECT A FROM T").rows) == 60

    def test_degrade_returns_flagged_prefix(self, db):
        stats = EvalStats()
        result = db.query("SELECT A FROM T", row_budget=20,
                          degrade=True, stats=stats)
        assert 0 < len(result.rows) < 60
        assert stats.truncated == 1
        assert db.lifecycle.recent()[-1].phase == "truncated"

    def test_complete_result_not_flagged(self, db):
        stats = EvalStats()
        result = db.query("SELECT A FROM T", row_budget=100_000,
                          degrade=True, stats=stats)
        assert len(result.rows) == 60
        assert stats.truncated == 0


class TestMemoryBudget:
    def test_memory_budget_trips(self, db):
        with pytest.raises(BudgetExceeded) as err:
            db.query("SELECT A, B FROM T", memory_budget=64)
        assert err.value.resource == "memory"

    def test_memory_zero_balanced_after_trip(self, db):
        with pytest.raises(BudgetExceeded):
            db.query("SELECT A, B FROM T", memory_budget=64)
        done = db.lifecycle.recent()[-1]
        assert done.memory.current == 0
        assert done.memory.peak > 0


class TestUnifiedBudget:
    def test_expired_statement_budget_blocks_evaluation(self, db):
        # an already-exhausted ambient budget trips before any rows flow
        ctx = QueryContext(timeout_ms=0.000001)
        with use_context(ctx):
            with pytest.raises(BudgetExceeded) as err:
                db.query("SELECT A FROM T")
        assert err.value.resource == "deadline"

    def test_rewrite_deadline_clamped_to_statement_budget(self, db):
        # with a 10s statement budget and no explicit rewrite deadline,
        # the optimizer must receive a clamped, finite deadline
        ctx = QueryContext(timeout_ms=10_000)
        with use_context(ctx):
            kwargs = db._resilience_kwargs(None, None)
        assert kwargs["deadline_ms"] is not None
        assert kwargs["deadline_ms"] <= 10_000
        # an explicit rewrite deadline smaller than the statement
        # budget survives; a larger one is clamped down
        with use_context(QueryContext(timeout_ms=10_000)):
            assert db._resilience_kwargs(None, 50.0)["deadline_ms"] == 50.0
            big = db._resilience_kwargs(None, 60_000)["deadline_ms"]
        assert big <= 10_000

    def test_no_clamp_outside_governed_statement(self, db):
        assert db._resilience_kwargs(None, None)["deadline_ms"] is None


class TestCancellation:
    def test_ambient_cancel_observed(self, db):
        ctx = QueryContext()
        ctx.cancel("kill")
        with use_context(ctx):
            with pytest.raises(QueryCancelled):
                db.query("SELECT A FROM T")

    def test_kill_by_id_mid_registry(self):
        db = Database(statement_timeout_ms=60_000)
        db.execute("TABLE T (A : NUMERIC)")
        db.execute("INSERT INTO T VALUES (1)")
        # registered statements are killable; finished ones are not
        assert db.kill("q999") is False


class TestExplainLifecycle:
    def test_governed_explain_has_section(self):
        db = Database(statement_timeout_ms=60_000)
        db.execute("TABLE T (A : NUMERIC)")
        db.execute("INSERT INTO T VALUES (1), (2)")
        report = db.explain_json("SELECT A FROM T", execute=True)
        section = report["lifecycle"]
        assert section is not None
        assert section["query_id"].startswith("q")
        assert section["timeout_ms"] == 60_000
        assert section["rows_charged"] > 0
        assert section["truncated"] is False
        assert validate_explain(report) == []

    def test_truncated_flag_reaches_explain(self):
        db = Database()
        db.execute("TABLE T (A : NUMERIC)")
        db.execute("INSERT INTO T VALUES (1), (2), (3), (4)")
        db.row_budget, db.degrade = 2, True
        report = db.explain_json("SELECT A FROM T", execute=True)
        assert report["lifecycle"]["truncated"] is True
        assert report["eval"]["truncated"] == 1
        assert validate_explain(report) == []


class TestSysQueries:
    def test_done_statements_visible(self):
        db = Database(statement_timeout_ms=60_000)
        db.execute("TABLE T (A : NUMERIC)")
        db.execute("INSERT INTO T VALUES (1), (2)")
        db.query("SELECT A FROM T")
        rows = db.query("SELECT QueryId, Phase, Source FROM sys.queries").rows
        phases = {qid: phase for qid, phase, _ in rows}
        assert phases["q1"] == "done"
        assert phases["q3"] == "done"
        # the sys.queries SELECT itself is governed and in flight
        assert "evaluate" in {phase for _, phase, _ in rows}
        sources = [source for _, _, source in rows]
        assert any("INSERT INTO T" in source for source in sources)

    def test_failed_statement_shows_outcome(self):
        db = Database(row_budget=1)
        db.execute("TABLE T (A : NUMERIC)")
        try:
            db.execute("INSERT INTO T VALUES (1), (2), (3)")
        except BudgetExceeded:
            pass
        recent = {c.query_id: c.phase for c in db.lifecycle.recent()}
        assert "failed" in recent.values()


class TestDmlGovernance:
    def test_insert_trips_hard(self):
        db = Database()
        db.execute("TABLE T (A : NUMERIC, PRIMARY KEY (A))")
        db.execute("INSERT INTO T VALUES (1), (2)")
        with pytest.raises(BudgetExceeded) as err:
            db.execute("INSERT INTO T VALUES (3), (4), (5)",
                       row_budget=2)
        assert err.value.resource == "rows"
        # the failed INSERT rolled back whole -- no partial DML
        assert len(db.query("SELECT A FROM T").rows) == 2
        assert db.fsck().violations == []

    def test_delete_scan_counts_toward_budget(self):
        db = Database()
        db.execute("TABLE T (A : NUMERIC, PRIMARY KEY (A))")
        db.execute("INSERT INTO T VALUES (1), (2)")
        with pytest.raises(BudgetExceeded):
            # the DELETE's row scan trips the budget mid-statement --
            # and must roll back
            db.execute("DELETE FROM T WHERE A >= 0", row_budget=1)
        assert len(db.query("SELECT A FROM T").rows) == 2
        assert db.fsck().violations == []

    def test_dml_never_degrades(self):
        # degrade mode must not truncate a mutation into a partial
        # write: the trip stays a hard error and rolls back
        db = Database()
        db.execute("TABLE T (A : NUMERIC, PRIMARY KEY (A))")
        db.execute("INSERT INTO T VALUES (1), (2)")
        with pytest.raises(BudgetExceeded):
            db.execute("UPDATE T SET A = A + 10 WHERE A >= 0",
                       row_budget=1, degrade=True)
        assert sorted(r[0] for r in db.query("SELECT A FROM T").rows) \
            == [1, 2]
        assert db.fsck().violations == []
