"""The acceptance scenario: a runaway statement is visible in
``sys.queries`` from another session and killed -- by ``Server.kill``
or the watchdog -- within one cooperative check interval; mid-flight
aborts leave a durable database fsck-clean with a gap-free WAL and a
released writer lock."""

import threading
import time

import pytest

from repro import Database
from repro.durability.wal import scan_wal
from repro.errors import BudgetExceeded, QueryCancelled
from repro.server import Server

# generous bound for "the victim thread died after the kill": actual
# latency is one cooperative check interval (64 ticks) of pure-python
# evaluation, i.e. well under a millisecond
_JOIN_TIMEOUT_S = 30.0


def _wait_for_phase(registry, phase, deadline_s=10.0):
    """Poll until some active statement reaches ``phase``."""
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        for context in registry.active():
            if context.phase == phase:
                return context
        time.sleep(0.002)
    raise AssertionError(f"no active statement reached {phase!r}")


def _runaway_server():
    db = Database()
    db.execute("TABLE BIG (Id : NUMERIC, V : NUMERIC, PRIMARY KEY (Id))")
    values = ", ".join(f"({i}, {i * 7})" for i in range(200))
    db.execute(f"INSERT INTO BIG VALUES {values}")
    return Server(db)


# an unindexed triple cross product: ~8M probe ticks, far longer than
# the test will wait, so it only ever finishes by being killed
_RUNAWAY = ("SELECT B1.Id FROM BIG B1, BIG B2, BIG B3 "
            "WHERE B1.V + B2.V + B3.V < -1")


class TestKillRunaway:
    def test_visible_and_killed_from_another_session(self):
        server = _runaway_server()
        try:
            victim = server.open_session("victim")
            observer = server.open_session("observer")
            outcome = {}

            def run():
                try:
                    victim.query(_RUNAWAY)
                    outcome["result"] = "completed"
                except QueryCancelled as error:
                    outcome["error"] = error

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            runaway = _wait_for_phase(server.db.lifecycle, "evaluate")

            # visible from the observer session, attributed to victim
            rows = observer.query(
                "SELECT QueryId, Session, Phase FROM sys.queries"
            ).rows
            live = {qid: (sess, phase) for qid, sess, phase in rows}
            assert live[runaway.query_id] == ("victim", "evaluate")

            assert server.kill(runaway.query_id) is True
            thread.join(timeout=_JOIN_TIMEOUT_S)
            assert not thread.is_alive(), "kill did not stop the victim"
            error = outcome["error"]
            assert error.query_id == runaway.query_id
            assert error.reason == "kill"

            # retired as cancelled, visible in the done ring
            recent = {c.query_id: c.phase
                      for c in server.db.lifecycle.recent()}
            assert recent[runaway.query_id] == "cancelled"
            assert server.metrics.snapshot()["counters"][
                "lifecycle.cancels.kill"] == 1
        finally:
            server.close()

    def test_watchdog_reaps_stuck_statement(self):
        # a registered statement whose thread never reaches a
        # cooperative check (stuck in a lock wait, say) is the
        # watchdog's case: the background sweep pulls its token
        server = _runaway_server()
        try:
            stuck = server.db.lifecycle.begin(
                session="stuck", timeout_ms=10.0, source="SELECT ..."
            )
            deadline = time.time() + 10.0
            while not stuck.cancelled and time.time() < deadline:
                time.sleep(0.005)
            assert stuck.cancelled
            assert stuck.cancel_reason == "watchdog"
            assert server.watchdog.reaped_total >= 1
            server.db.lifecycle.finish(stuck, "cancelled")
        finally:
            server.close()

    def test_deadline_self_trips_during_evaluation(self):
        # the evaluating thread normally beats the watchdog to its own
        # deadline: the cooperative check trips BudgetExceeded
        server = _runaway_server()
        try:
            with pytest.raises(BudgetExceeded) as err:
                server.db.query(_RUNAWAY, timeout_ms=50.0)
            assert err.value.resource == "deadline"
        finally:
            server.close()

    def test_cancel_during_recursive_fixpoint(self):
        # a semi-naive fixpoint observes cancellation between
        # iterations: inject a deterministic mid-evaluation cancel
        # (the chaos path) and assert it lands inside the fixpoint
        from repro.lifecycle import ChaosInjector

        db = Database()
        db.govern_statements = True
        db.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
        values = ", ".join(f"({i}, {i + 1})" for i in range(300))
        db.execute(f"INSERT INTO EDGE VALUES {values}")
        db.execute("""
            CREATE VIEW REACH (Src, Dst) AS (
                SELECT Src, Dst FROM EDGE
                UNION
                SELECT R.Src, E.Dst FROM REACH R, EDGE E
                WHERE R.Dst = E.Src
            )
        """)
        db.chaos = ChaosInjector(seed=7, cancel_rate=1.0, min_checks=20)
        with pytest.raises(QueryCancelled) as err:
            # the full transitive closure: ~45k derived pairs, hundreds
            # of cooperative checks inside the fixpoint
            db.query("SELECT Src, Dst FROM REACH")
        assert err.value.reason == "chaos"
        assert err.value.phase == "evaluate"
        # the registry retired it as cancelled; the database still works
        db.chaos = None
        recent = db.lifecycle.recent()[-1]
        assert recent.phase == "cancelled"
        assert len(db.query("SELECT Src FROM EDGE WHERE Src = 0").rows) \
            == 1


class TestAbortLeavesDatabaseClean:
    def _durable(self, path):
        db = Database(path=path)
        db.execute("TABLE INV (Id : NUMERIC, Qty : NUMERIC, "
                   "PRIMARY KEY (Id))")
        values = ", ".join(f"({i}, {i * 3})" for i in range(50))
        db.execute(f"INSERT INTO INV VALUES {values}")
        return db

    def _assert_clean(self, db, path):
        assert db.fsck().violations == []
        scan = scan_wal(db.durability.wal.path)
        lsns = [record["lsn"] for record in scan.records]
        assert lsns == list(range(1, len(lsns) + 1))
        # the committed image survives a crash-recovery reopen
        db.close()
        recovered = Database(path=path)
        assert recovered.fsck().violations == []
        rows = recovered.query("SELECT Id, Qty FROM INV").rows
        assert sorted(rows) == [(i, i * 3) for i in range(50)]
        recovered.close()

    def test_budget_abort_mid_update(self, tmp_path):
        path = tmp_path / "abort.db"
        db = self._durable(path)
        with pytest.raises(BudgetExceeded):
            db.execute("UPDATE INV SET Qty = Qty + 1 WHERE Id >= 0",
                       row_budget=10)
        self._assert_clean(db, path)

    def test_cancel_abort_mid_delete_releases_writer_lock(self, tmp_path):
        path = tmp_path / "kill.db"
        db = self._durable(path)
        server = Server(db)
        try:
            session = server.open_session("writer")
            outcome = {}

            def run():
                try:
                    # the predicate scan ticks: a mid-flight kill
                    # aborts the statement under the writer lock
                    session.execute("DELETE FROM INV WHERE Id >= 0")
                    outcome["result"] = "completed"
                except QueryCancelled as error:
                    outcome["error"] = error

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            deadline = time.time() + 10.0
            killed = False
            while time.time() < deadline and thread.is_alive():
                for context in server.db.lifecycle.active():
                    if context.session == "writer":
                        context.cancel("kill")
                        killed = True
                if killed:
                    break
                time.sleep(0.001)
            thread.join(timeout=_JOIN_TIMEOUT_S)
            assert not thread.is_alive()
            if "error" in outcome:
                # the abort path: lock released, nothing partial
                with server.guard.write():
                    pass
                rows = db.query("SELECT Id FROM INV").rows
                assert len(rows) == 50
            else:
                # the DELETE won the race and committed whole
                assert outcome["result"] == "completed"
                assert len(db.query("SELECT Id FROM INV").rows) == 0
                db.execute("INSERT INTO INV VALUES " + ", ".join(
                    f"({i}, {i * 3})" for i in range(50)))
        finally:
            server.close()
        self._assert_clean(db, path)
