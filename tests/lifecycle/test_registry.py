"""Unit tests for the statement registry and the chaos injector."""

import time

from repro.lifecycle import ChaosInjector, QueryContext, StatementRegistry
from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry


class TestRegistry:
    def test_begin_mints_sequential_ids(self):
        registry = StatementRegistry()
        first = registry.begin(source="SELECT 1")
        second = registry.begin()
        assert first.query_id == "q1"
        assert second.query_id == "q2"
        assert len(registry) == 2

    def test_finish_moves_to_done_ring(self):
        registry = StatementRegistry()
        ctx = registry.begin()
        registry.finish(ctx, "done")
        assert len(registry) == 0
        assert registry.get(ctx.query_id) is None
        recent = registry.recent()
        assert [c.query_id for c in recent] == [ctx.query_id]
        assert recent[0].phase == "done"
        assert recent[0].finished is not None

    def test_done_ring_is_bounded(self):
        registry = StatementRegistry(done_capacity=3)
        for _ in range(5):
            registry.finish(registry.begin())
        assert [c.query_id for c in registry.recent()] == \
            ["q3", "q4", "q5"]

    def test_kill_pulls_the_token(self):
        registry = StatementRegistry()
        ctx = registry.begin()
        assert registry.kill(ctx.query_id) is True
        assert ctx.cancelled is True
        # idempotent: a second kill reports nothing to do
        assert registry.kill(ctx.query_id) is False

    def test_kill_unknown_id_is_not_an_error(self):
        assert StatementRegistry().kill("q999") is False

    def test_cancel_all(self):
        registry = StatementRegistry()
        contexts = [registry.begin() for _ in range(3)]
        registry.finish(contexts[1])
        cancelled = registry.cancel_all("keyboard-interrupt")
        assert sorted(cancelled) == ["q1", "q3"]
        assert contexts[0].cancel_reason == "keyboard-interrupt"

    def test_reap_overdue_only_past_deadline(self):
        registry = StatementRegistry()
        overdue = registry.begin(timeout_ms=0.01)
        fresh = registry.begin(timeout_ms=60_000)
        unbounded = registry.begin()
        time.sleep(0.002)
        assert registry.reap_overdue() == [overdue.query_id]
        assert overdue.cancel_reason == "watchdog"
        assert not fresh.cancelled
        assert not unbounded.cancelled

    def test_cancel_emits_event_and_metric(self):
        registry = StatementRegistry()
        bus, metrics = EventBus(), MetricsRegistry()
        seen = []
        bus.subscribe(seen.append)
        registry.obs = bus
        registry.metrics = metrics
        ctx = registry.begin(session="s1")
        registry.kill(ctx.query_id, reason="kill")
        assert [type(e).__name__ for e in seen] == ["StatementCancelled"]
        assert seen[0].session == "s1"
        counters = metrics.snapshot()["counters"]
        assert counters["lifecycle.cancels"] == 1
        assert counters["lifecycle.cancels.kill"] == 1

    def test_adopts_externally_minted_context(self):
        registry = StatementRegistry()
        ctx = QueryContext(query_id="placeholder")
        registered = registry.begin(context=ctx)
        assert registered is ctx
        assert ctx.query_id == "q1"  # the registry owns id minting


class TestChaosInjector:
    def test_deterministic_schedule(self):
        rolls = lambda: [  # noqa: E731
            ChaosInjector(seed=42, cancel_rate=0.5)._random.random()
            for _ in range(3)
        ]
        assert rolls() == rolls()

    def test_cancel_injection(self):
        injector = ChaosInjector(seed=1, cancel_rate=1.0)
        ctx = QueryContext(chaos=injector)
        ctx.cancel = lambda reason: setattr(ctx, "_pulled", reason)
        injector.maybe_inject(ctx)
        assert injector.injected == "cancel"
        assert ctx._pulled == "chaos"

    def test_at_most_one_fault(self):
        injector = ChaosInjector(seed=1, cancel_rate=1.0)
        ctx = QueryContext()
        ctx.cancel("chaos")  # simulate the first injection's effect
        injector.injected = "cancel"
        before = injector._checks
        injector.maybe_inject(ctx)
        assert injector._checks == before  # short-circuited

    def test_min_checks_delays_faults(self):
        injector = ChaosInjector(seed=1, cancel_rate=1.0, min_checks=5)
        ctx = QueryContext()
        for _ in range(5):
            injector.maybe_inject(ctx)
        assert injector.injected is None
        injector.maybe_inject(ctx)
        assert injector.injected == "cancel"

    def test_fork_is_independent(self):
        parent = ChaosInjector(seed=3, cancel_rate=0.5)
        a, b = parent.fork(1), parent.fork(2)
        assert a.seed != b.seed
        assert a.cancel_rate == parent.cancel_rate

    def test_budget_injection_honours_degrade(self):
        from repro.lifecycle import Truncation
        injector = ChaosInjector(seed=1, budget_rate=1.0)
        ctx = QueryContext(degrade=True, chaos=injector)
        try:
            ctx.check()
        except Truncation:
            pass
        assert injector.injected == "budget"
        assert ctx.truncated is True
