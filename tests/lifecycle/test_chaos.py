"""Cancellation chaos under the 16-thread stress shape.

The server-stress harness proves the serving layer holds under load;
this suite turns lifecycle governance against it: a deterministic
:class:`~repro.lifecycle.ChaosInjector` rides every statement, pulling
cancel tokens and tripping synthetic budgets mid-evaluation, while a
pair of killer threads reap anything slow through the registry.  The
acceptance bar is the ISSUE's: typed errors only, zero fsck
violations, no partial DML (every surviving row a whole batch, every
row's invariant intact), a gap-free WAL, and a writer lock that is
free when the storm ends.

``LIFECYCLE_CHAOS_SECONDS`` raises the duration in CI's chaos job;
the default keeps tier-1 fast.
"""

import os
import threading
import time

from repro import Database
from repro.durability.wal import scan_wal
from repro.errors import (BudgetExceeded, QueryCancelled,
                          ServerOverloaded)
from repro.lifecycle import ChaosInjector
from repro.server import Server

CHAOS_SECONDS = float(os.environ.get("LIFECYCLE_CHAOS_SECONDS", "2"))

_BATCH = 80         # rows per INSERT: big enough to cross the
                    # 64-tick check interval, so writes are injectable
_SCALE = 7          # the V = Id * _SCALE invariant
_WRITERS = 4
_READERS = 6
_DEGRADE = 2        # readers running with degrade-mode budgets
_SYS = 2            # readers watching sys.queries itself
_KILLERS = 2        # threads reaping via the registry

_TOLERATED = (QueryCancelled, BudgetExceeded)


def _build(path):
    db = Database(path=path, resilient=True)
    db.execute(
        "TABLE INV (Id : NUMERIC, V : NUMERIC, PRIMARY KEY (Id))"
    )
    # every statement forks an independently-seeded injector: faults
    # land mid-evaluation on the cooperative check path
    db.chaos = ChaosInjector(
        seed=1337, cancel_rate=0.04, budget_rate=0.04, min_checks=2
    )
    return db


def _batch_insert(writer: int, round_: int) -> str:
    base = 1_000_000 * writer + _BATCH * round_
    values = ", ".join(
        f"({i}, {i * _SCALE})" for i in range(base, base + _BATCH)
    )
    return f"INSERT INTO INV VALUES {values}"


class Harness:
    def __init__(self, server):
        self.server = server
        self.stop = threading.Event()
        self.lock = threading.Lock()
        self.violations = []
        self.failures = []
        self.batches_written = 0
        self.cancels = 0
        self.budget_trips = 0
        self.kills_sent = 0

    def violation(self, text):
        with self.lock:
            self.violations.append(text)

    def failure(self, error):
        with self.lock:
            self.failures.append(repr(error))

    def wrote(self):
        with self.lock:
            self.batches_written += 1

    def tolerated(self, error):
        with self.lock:
            if isinstance(error, QueryCancelled):
                self.cancels += 1
            else:
                self.budget_trips += 1


def _guarded(harness, body):
    """Run one request; classify the outcome."""
    try:
        body()
        return True
    except _TOLERATED as error:
        harness.tolerated(error)
    except ServerOverloaded:
        time.sleep(0.01)
    except Exception as error:  # pragma: no cover
        harness.failure(error)
        harness.stop.set()
    return False


def _writer(harness, tag):
    session = harness.server.open_session(f"writer-{tag}")
    round_ = 0
    while not harness.stop.is_set():
        committed = _guarded(harness, lambda: harness.server.execute(
            _batch_insert(tag, round_), session=session.id
        ))
        if committed:
            harness.wrote()
        # an aborted batch is retried under fresh ids: simplest way to
        # keep every surviving row unique without coordinating writers
        round_ += 1


def _reader(harness, tag):
    session = harness.server.open_session(f"reader-{tag}")
    while not harness.stop.is_set():
        box = {}

        def read():
            box["rows"] = harness.server.query(
                "SELECT Id, V FROM INV", session=session.id
            ).rows

        if not _guarded(harness, read):
            continue
        rows = box["rows"]
        if len(rows) % _BATCH != 0:
            harness.violation(
                f"torn read: {len(rows)} rows is not a multiple of "
                f"the {_BATCH}-row batch"
            )
        for row_id, value in rows:
            if value != row_id * _SCALE:
                harness.violation(f"corrupt row ({row_id}, {value})")
                break


def _degrade_reader(harness, tag):
    """Budgeted, degrade-mode reads: truncation is a legal outcome,
    so only the per-row invariant is checked (a truncated prefix of a
    consistent snapshot is still row-wise consistent)."""
    from repro.server import SessionSettings
    session = harness.server.open_session(
        f"degrade-{tag}",
        settings=SessionSettings(row_budget=150, degrade=True),
    )
    while not harness.stop.is_set():
        box = {}

        def read():
            box["rows"] = harness.server.query(
                "SELECT Id, V FROM INV", session=session.id
            ).rows

        if not _guarded(harness, read):
            continue
        for row_id, value in box["rows"]:
            if value != row_id * _SCALE:
                harness.violation(
                    f"degrade read saw corrupt row "
                    f"({row_id}, {value})"
                )
                break


def _sys_reader(harness, tag):
    """Watches sys.queries while the storm rages: every row must be
    well-formed, and the relation must never fail to materialize."""
    session = harness.server.open_session(f"sys-{tag}")
    while not harness.stop.is_set():
        box = {}

        def read():
            box["rows"] = harness.server.query(
                "SELECT QueryId, Phase, ElapsedMs FROM sys.queries",
                session=session.id,
            ).rows

        if not _guarded(harness, read):
            continue
        for query_id, phase, elapsed in box["rows"]:
            if not query_id.startswith("q") or elapsed < 0:
                harness.violation(
                    f"malformed sys.queries row "
                    f"({query_id}, {phase}, {elapsed})"
                )
                break


def _killer(harness, tag):
    """Reaps long-running statements through the registry, the same
    path Server.kill and the watchdog use."""
    registry = harness.server.db.lifecycle
    while not harness.stop.is_set():
        for context in registry.active():
            if context.elapsed_ms() > 25.0:
                if harness.server.kill(context.query_id):
                    with harness.lock:
                        harness.kills_sent += 1
        time.sleep(0.005)


def test_cancellation_chaos_storm(tmp_path):
    path = str(tmp_path / "chaos.db")
    db = _build(path)
    server = Server(db, watchdog_interval_s=0.02)
    harness = Harness(server)

    threads = (
        [threading.Thread(target=_writer, args=(harness, t))
         for t in range(_WRITERS)]
        + [threading.Thread(target=_reader, args=(harness, t))
           for t in range(_READERS)]
        + [threading.Thread(target=_degrade_reader, args=(harness, t))
           for t in range(_DEGRADE)]
        + [threading.Thread(target=_sys_reader, args=(harness, t))
           for t in range(_SYS)]
        + [threading.Thread(target=_killer, args=(harness, t))
           for t in range(_KILLERS)]
    )
    assert len(threads) == 16
    for t in threads:
        t.start()
    time.sleep(CHAOS_SECONDS)
    harness.stop.set()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads)
    db.chaos = None  # the verification queries run fault-free
    try:
        # the storm actually stormed: work committed AND faults landed
        assert harness.batches_written > 0
        assert harness.cancels + harness.budget_trips > 0
        assert harness.failures == []
        assert harness.violations == []

        # no partial DML: exactly the committed batches survive, and
        # every surviving row satisfies the invariant
        final = db.query("SELECT Id, V FROM INV").rows
        assert len(final) == harness.batches_written * _BATCH
        assert all(value == row_id * _SCALE for row_id, value in final)

        # the writer lock is free: a fresh write admits immediately
        with server.guard.write():
            pass

        # on-disk state is clean with a gap-free WAL
        assert db.fsck().violations == []
        scan = scan_wal(db.durability.wal.path)
        lsns = [record["lsn"] for record in scan.records]
        assert lsns == list(range(1, len(lsns) + 1))
    finally:
        server.close()

    # and the WAL replays to the same committed image
    db.close()
    recovered = Database(path=path)
    try:
        assert recovered.fsck().violations == []
        rows = recovered.query("SELECT Id FROM INV").rows
        assert len(rows) == harness.batches_written * _BATCH
    finally:
        recovered.close()
