"""The watchdog: over-deadline reaping and poisoned-lock recovery."""

import threading
import time

from repro.lifecycle import StatementRegistry, Watchdog
from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.server.locks import ConcurrencyGuard, ReadWriteLock


class TestSweep:
    def test_sweep_reaps_overdue(self):
        registry = StatementRegistry()
        overdue = registry.begin(timeout_ms=0.01)
        fresh = registry.begin(timeout_ms=60_000)
        time.sleep(0.002)
        watchdog = Watchdog(registry)
        assert watchdog.sweep() == [overdue.query_id]
        assert overdue.cancel_reason == "watchdog"
        assert not fresh.cancelled
        assert watchdog.reaped_total == 1

    def test_sweep_emits_events_and_metrics(self):
        registry = StatementRegistry()
        registry.begin(timeout_ms=0.01)
        time.sleep(0.002)
        bus, metrics = EventBus(), MetricsRegistry()
        seen = []
        bus.subscribe(seen.append)
        Watchdog(registry, obs=bus, metrics=metrics).sweep()
        assert [type(e).__name__ for e in seen] == ["WatchdogReaped"]
        assert seen[0].kind == "statement"
        counters = metrics.snapshot()["counters"]
        assert counters["lifecycle.watchdog.reaped"] == 1

    def test_background_thread_reaps(self):
        registry = StatementRegistry()
        overdue = registry.begin(timeout_ms=10)
        watchdog = Watchdog(registry, interval_s=0.005).start()
        try:
            deadline = time.time() + 5.0
            while not overdue.cancelled and time.time() < deadline:
                time.sleep(0.005)
            assert overdue.cancelled
            assert overdue.cancel_reason == "watchdog"
        finally:
            watchdog.stop()
        assert watchdog.running is False

    def test_start_is_idempotent(self):
        watchdog = Watchdog(StatementRegistry(), interval_s=0.01)
        try:
            assert watchdog.start() is watchdog.start()
        finally:
            watchdog.stop()

    def test_stop_without_start(self):
        Watchdog(StatementRegistry()).stop()  # must not raise


class TestPoisonedLock:
    def _poison(self, lock: ReadWriteLock) -> None:
        """Acquire the write side on a thread that then dies."""

        def hold_and_die():
            assert lock.acquire_write()
            # die without releasing: the poisoned-writer scenario

        thread = threading.Thread(target=hold_and_die)
        thread.start()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_recover_poisoned_lock(self):
        lock = ReadWriteLock()
        self._poison(lock)
        assert lock.acquire_write(timeout=0.01) is False  # wedged
        assert lock.recover_poisoned() is True
        assert lock.acquire_write(timeout=1.0) is True  # usable again
        lock.release_write()

    def test_live_writer_is_never_preempted(self):
        lock = ReadWriteLock()
        assert lock.acquire_write()
        try:
            assert lock.recover_poisoned() is False
        finally:
            lock.release_write()

    def test_unheld_lock_needs_no_recovery(self):
        assert ReadWriteLock().recover_poisoned() is False

    def test_guard_delegates(self):
        guard = ConcurrencyGuard()
        self._poison(guard._lock)
        assert guard.recover_poisoned() is True

    def test_watchdog_recovers_lock_on_sweep(self):
        guard = ConcurrencyGuard()
        self._poison(guard._lock)
        bus, metrics = EventBus(), MetricsRegistry()
        seen = []
        bus.subscribe(seen.append)
        watchdog = Watchdog(StatementRegistry(), guard=guard,
                            obs=bus, metrics=metrics)
        watchdog.sweep()
        assert watchdog.recovered_locks == 1
        assert [e.kind for e in seen] == ["writer_lock"]
        counters = metrics.snapshot()["counters"]
        assert counters["lifecycle.watchdog.locks_recovered"] == 1
        # the database is writable again
        with guard.write():
            pass
