"""The crash-injection matrix (the recovery-contract acceptance test).

A reference script runs once without faults to capture, after every
statement, (a) the WAL byte position and (b) the full engine state.
Then, for every WAL record boundary and every mid-record offset, a
fresh database executes the same script with a :class:`CrashPoint`
armed at that byte; the process "dies", the directory is reopened, and
the recovered state must equal one of the recorded statement-boundary
prefixes -- with fsck reporting zero violations.
"""

import pytest

from repro import Database
from repro.durability import CrashPoint, SimulatedCrash

_SETUP = """
TYPE Person OBJECT TUPLE (Name : CHAR);
TABLE T (Id : NUMERIC, Tag : CHAR, PRIMARY KEY (Id));
TABLE P (Id : NUMERIC, Who : Person, PRIMARY KEY (Id));
"""

_STATEMENTS = [
    "INSERT INTO T VALUES (1, 'a'), (2, 'b')",
    "INSERT INTO P VALUES (1, NEW Person('Quinn'))",
    "UPDATE T SET Tag = 'z' WHERE Id = 2",
    "INSERT INTO P VALUES (2, NEW Person('Bo')), "
    "(3, NEW Person('Ann'))",
    "DELETE FROM T WHERE Id = 1",
    "INSERT INTO T VALUES (3, 'c')",
]


def _state(db):
    return {
        "tables": {
            name: [list(r) for r in db.catalog.table(name).rows]
            for name in sorted(db.catalog.relation_names())
        },
        "objects": db.catalog.objects.items(),
        "next_oid": db.catalog.objects.mark(),
    }


def _reference(tmp_path):
    """Run the script fault-free; return (boundary offsets, states)."""
    db = Database(path=str(tmp_path / "ref"))
    db.execute(_SETUP)
    offsets = [db.durability.wal.position]
    states = [_state(db)]
    for sql in _STATEMENTS:
        db.execute(sql)
        offsets.append(db.durability.wal.position)
        states.append(_state(db))
    db.close()
    return offsets, states


def _crash_offsets(offsets):
    """Every record boundary plus a midpoint inside every record."""
    out = list(offsets)
    for a, b in zip(offsets, offsets[1:]):
        out.append((a + b) // 2)
    return sorted(set(out))


def test_reference_script_is_deterministic(tmp_path):
    a = _reference(tmp_path / "one")
    b = _reference(tmp_path / "two")
    assert a == b


def test_crash_matrix_recovers_a_statement_prefix(tmp_path):
    offsets, states = _reference(tmp_path)
    for at_byte in _crash_offsets(offsets):
        root = tmp_path / f"crash_{at_byte}"
        db = Database(path=str(root))
        db.execute(_SETUP)
        db.durability.crashpoint = CrashPoint("wal", at_byte=at_byte)
        crashed = False
        try:
            for sql in _STATEMENTS:
                db.execute(sql)
        except SimulatedCrash:
            crashed = True
        db.durability.wal.close()  # the dead process's fd goes away
        assert crashed == (at_byte < offsets[-1])

        recovered = Database(path=str(root))
        got = _state(recovered)
        assert got in states, (
            f"crash at byte {at_byte} recovered a non-prefix state"
        )
        report = recovered.fsck()
        assert report.ok, (
            f"crash at byte {at_byte}: {report.violations}"
        )
        recovered.close()


def test_crash_matrix_after_a_checkpoint(tmp_path):
    """Same contract when the script crosses a checkpoint: recovery
    stitches snapshot + WAL suffix back to a statement boundary."""
    half = len(_STATEMENTS) // 2

    def run(root, crashpoint=None):
        db = Database(path=str(root))
        db.execute(_SETUP)
        states = [_state(db)]
        try:
            for i, sql in enumerate(_STATEMENTS):
                if i == half:
                    db.checkpoint()
                    if crashpoint is not None:
                        db.durability.crashpoint = crashpoint
                db.execute(sql)
                states.append(_state(db))
        except SimulatedCrash:
            pass
        db.durability.wal.close()
        return db, states

    ref_db, states = run(tmp_path / "ref")
    post_checkpoint_bytes = ref_db.durability.wal.position

    for at_byte in range(7, post_checkpoint_bytes, 29):
        root = tmp_path / f"crash_{at_byte}"
        _, _ = run(root, CrashPoint("wal", at_byte=at_byte))
        recovered = Database(path=str(root))
        assert _state(recovered) in states
        assert recovered.fsck().ok
        recovered.close()


def test_every_site_recovers_with_clean_fsck(tmp_path):
    """One pass over the non-WAL sites with data in flight."""
    for site in ("checkpoint-temp", "checkpoint-rename", "wal-reset"):
        root = tmp_path / site
        db = Database(path=str(root))
        db.execute(_SETUP)
        db.execute(_STATEMENTS[0])
        expected = _state(db)
        db.durability.crashpoint = CrashPoint(site, at_byte=10)
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        db.durability.wal.close()

        recovered = Database(path=str(root))
        assert _state(recovered) == expected
        assert recovered.fsck().ok
        recovered.close()
