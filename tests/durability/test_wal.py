"""WAL frame format, torn-tail detection and the appender."""

import json
import struct
import zlib

import pytest

from repro.durability.wal import (WAL_MAGIC, WriteAheadLog, encode_frame,
                                  scan_wal)
from repro.errors import DurabilityError

_HEADER = struct.Struct("<II")


def _record(lsn, sql="TABLE T (A : INT)"):
    return {"kind": "stmt", "lsn": lsn, "sql": sql}


def _write_wal(path, records):
    blob = WAL_MAGIC + b"".join(encode_frame(r) for r in records)
    path.write_bytes(blob)
    return blob


class TestFrameFormat:
    def test_roundtrip_through_scan(self, tmp_path):
        wal = tmp_path / "wal.log"
        records = [_record(1), _record(2, "INSERT INTO T VALUES (1)")]
        _write_wal(wal, records)
        scan = scan_wal(str(wal))
        assert scan.records == records
        assert scan.truncated_bytes == 0
        assert scan.reason is None

    def test_header_is_length_then_crc(self):
        frame = encode_frame(_record(1))
        length, crc = _HEADER.unpack_from(frame)
        payload = frame[_HEADER.size:]
        assert length == len(payload)
        assert crc == zlib.crc32(payload)
        assert json.loads(payload)["lsn"] == 1

    def test_payload_is_compact_sorted_json(self):
        frame = encode_frame(_record(1, "x"))
        payload = frame[_HEADER.size:]
        assert payload == b'{"kind":"stmt","lsn":1,"sql":"x"}'

    def test_oversized_record_rejected(self):
        with pytest.raises(DurabilityError):
            encode_frame(_record(1, "x" * (64 * 1024 * 1024)))


class TestScan:
    def test_missing_file(self, tmp_path):
        scan = scan_wal(str(tmp_path / "nope.log"))
        assert scan.records == [] and scan.truncated_bytes == 0

    def test_empty_file(self, tmp_path):
        wal = tmp_path / "wal.log"
        wal.write_bytes(b"")
        scan = scan_wal(str(wal))
        assert scan.records == [] and scan.truncated_bytes == 0

    def test_bad_magic_salvages_nothing(self, tmp_path):
        wal = tmp_path / "wal.log"
        wal.write_bytes(b"garbage")
        scan = scan_wal(str(wal))
        assert scan.records == []
        assert scan.good_offset == 0
        assert scan.truncated_bytes == len(b"garbage")
        assert scan.reason == "bad magic"

    def test_torn_tail_at_every_byte(self, tmp_path):
        """Truncating the file anywhere inside the last frame keeps the
        full prefix and reports exactly the torn bytes."""
        wal = tmp_path / "wal.log"
        records = [_record(1), _record(2)]
        blob = _write_wal(wal, records)
        first_end = len(WAL_MAGIC) + len(encode_frame(records[0]))
        for cut in range(first_end, len(blob)):
            wal.write_bytes(blob[:cut])
            scan = scan_wal(str(wal))
            if cut == first_end:
                # clean boundary: nothing torn
                assert scan.records == records[:1]
                assert scan.truncated_bytes == 0
            else:
                assert scan.records == records[:1]
                assert scan.good_offset == first_end
                assert scan.truncated_bytes == cut - first_end
                assert scan.reason in ("torn frame header",
                                       "torn frame payload")

    def test_crc_mismatch_stops_scan(self, tmp_path):
        wal = tmp_path / "wal.log"
        records = [_record(1), _record(2), _record(3)]
        blob = bytearray(_write_wal(wal, records))
        # flip one payload byte of the second frame
        second = len(WAL_MAGIC) + len(encode_frame(records[0]))
        blob[second + _HEADER.size] ^= 0xFF
        wal.write_bytes(bytes(blob))
        scan = scan_wal(str(wal))
        assert scan.records == records[:1]
        assert scan.reason == "crc mismatch"
        assert scan.truncated_bytes == len(blob) - second

    def test_implausible_length_stops_scan(self, tmp_path):
        wal = tmp_path / "wal.log"
        blob = WAL_MAGIC + _HEADER.pack(2**31, 0) + b"xx"
        wal.write_bytes(blob)
        scan = scan_wal(str(wal))
        assert scan.records == []
        assert scan.reason == "implausible frame length"

    def test_malformed_json_stops_scan(self, tmp_path):
        wal = tmp_path / "wal.log"
        payload = b"{not json"
        blob = WAL_MAGIC + _HEADER.pack(
            len(payload), zlib.crc32(payload)
        ) + payload
        wal.write_bytes(blob)
        scan = scan_wal(str(wal))
        assert scan.records == []
        assert scan.reason == "malformed record"

    def test_record_without_lsn_stops_scan(self, tmp_path):
        wal = tmp_path / "wal.log"
        payload = json.dumps({"kind": "stmt"}).encode()
        blob = WAL_MAGIC + _HEADER.pack(
            len(payload), zlib.crc32(payload)
        ) + payload
        wal.write_bytes(blob)
        assert scan_wal(str(wal)).reason == "record without lsn"

    def test_non_increasing_lsn_stops_scan(self, tmp_path):
        wal = tmp_path / "wal.log"
        _write_wal(wal, [_record(1), _record(2), _record(2)])
        scan = scan_wal(str(wal))
        assert [r["lsn"] for r in scan.records] == [1, 2]
        assert scan.reason == "non-increasing lsn"


class TestWriteAheadLog:
    def test_open_writes_magic_once(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.open()
        wal.close()
        wal.open()
        wal.close()
        assert (tmp_path / "wal.log").read_bytes() == WAL_MAGIC

    def test_append_requires_open(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        with pytest.raises(DurabilityError):
            wal.append(_record(1))

    def test_append_then_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.open()
        for lsn in (1, 2, 3):
            wal.append(_record(lsn))
        wal.close()
        assert [r["lsn"] for r in scan_wal(path).records] == [1, 2, 3]

    def test_position_tracks_file_size(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.open()
        wal.append(_record(1))
        assert wal.position == (tmp_path / "wal.log").stat().st_size
        wal.close()

    def test_truncate_refused_while_open(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.open()
        with pytest.raises(DurabilityError):
            wal.truncate_to(6)
        wal.close()

    def test_truncate_chops_tail(self, tmp_path):
        wal = tmp_path / "wal.log"
        blob = _write_wal(wal, [_record(1)])
        torn = blob + b"\x01\x02\x03"
        wal.write_bytes(torn)
        log = WriteAheadLog(str(wal))
        log.truncate_to(len(blob))
        assert wal.read_bytes() == blob

    def test_reset_leaves_fresh_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.open()
        wal.append(_record(1))
        wal.reset()
        assert scan_wal(path).records == []
        wal.append(_record(2))  # still open and appendable
        wal.close()
        assert [r["lsn"] for r in scan_wal(path).records] == [2]


class TestConcurrentAppend:
    """Serving-layer writers against one WAL (the concurrent
    durability satellite): the writer lock serializes statement
    logging, so N threads of DML still produce one gap-free,
    replayable LSN sequence."""

    def test_threaded_writers_produce_gap_free_replayable_log(
            self, tmp_path):
        import threading

        from repro import Database
        from repro.server import Server

        path = str(tmp_path / "concurrent.db")
        db = Database(path=path)
        db.execute("TABLE T (W : NUMERIC, I : NUMERIC, "
                   "PRIMARY KEY (W, I))")
        server = Server(db)
        per_thread = 25

        def writer(tag):
            session = server.open_session(f"w{tag}")
            for i in range(per_thread):
                server.execute(f"INSERT INTO T VALUES ({tag}, {i})",
                               session=session.id)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)

        # one statement per frame, LSNs dense from 1 with no gaps
        scan = scan_wal(db.durability.wal.path)
        lsns = [r["lsn"] for r in scan.records]
        assert lsns == list(range(1, 4 * per_thread + 2))  # +1 DDL
        assert scan.truncated_bytes == 0
        db.close()

        # and the log replays to exactly the committed rows
        recovered = Database(path=path)
        rows = recovered.query("SELECT W, I FROM T").rows
        assert sorted(rows) == [(w, i) for w in range(4)
                                for i in range(per_thread)]
        recovered.close()
