"""Statement atomicity: every ESQL statement fully applies or fully
rolls back (the UndoLog + stage-then-swap DML paths)."""

import pytest

from repro import Database
from repro.adt.values import ObjectStore, TupleValue
from repro.durability import UndoLog, scan_wal
from repro.errors import ReproError

_SCHEMA = """
TYPE Person OBJECT TUPLE (Name : CHAR);
TABLE T (Id : NUMERIC, Tag : CHAR, PRIMARY KEY (Id));
"""


def _snapshot(db):
    """A deep, comparable image of the full engine state."""
    return {
        "tables": {
            name: [list(r) for r in db.catalog.table(name).rows]
            for name in db.catalog.relation_names()
        },
        "indexes": {
            name: set(db.catalog.table(name)._key_index)
            for name in db.catalog.relation_names()
        },
        "objects": db.catalog.objects.items(),
        "next_oid": db.catalog.objects.mark(),
    }


def _make_db(tmp_path, durable):
    db = Database(path=str(tmp_path / "data") if durable else None)
    db.execute(_SCHEMA)
    db.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
    return db


@pytest.mark.parametrize("durable", [False, True],
                         ids=["memory", "durable"])
class TestFailingInsert:
    """The acceptance criterion: a failing multi-row INSERT leaves the
    relation byte-identical to its pre-statement state, with and
    without a WAL attached."""

    def test_intra_batch_duplicate_key(self, tmp_path, durable):
        db = _make_db(tmp_path, durable)
        before = _snapshot(db)
        with pytest.raises(ReproError):
            db.execute("INSERT INTO T VALUES (7, 'a'), (7, 'b')")
        assert _snapshot(db) == before

    def test_duplicate_against_existing_key(self, tmp_path, durable):
        db = _make_db(tmp_path, durable)
        before = _snapshot(db)
        with pytest.raises(ReproError):
            db.execute("INSERT INTO T VALUES (3, 'a'), (1, 'dup')")
        assert _snapshot(db) == before

    def test_bad_value_in_later_row(self, tmp_path, durable):
        db = _make_db(tmp_path, durable)
        before = _snapshot(db)
        with pytest.raises(ReproError):
            db.execute("INSERT INTO T VALUES (3, 'ok'), (4, 5)")
        assert _snapshot(db) == before

    def test_object_allocation_rolled_back(self, tmp_path, durable):
        db = _make_db(tmp_path, durable)
        db.execute("TABLE P (Id : NUMERIC, Who : Person, "
                   "PRIMARY KEY (Id))")
        db.execute("INSERT INTO P VALUES (1, NEW Person('a'))")
        before = _snapshot(db)
        with pytest.raises(ReproError):
            # the NEW allocates an OID before the key check fails;
            # rollback must rewind the counter to keep allocation dense
            db.execute("INSERT INTO P VALUES (1, NEW Person('b'))")
        assert _snapshot(db) == before

    def test_good_statement_after_failure_applies(self, tmp_path,
                                                  durable):
        db = _make_db(tmp_path, durable)
        with pytest.raises(ReproError):
            db.execute("INSERT INTO T VALUES (3, 'a'), (3, 'b')")
        db.execute("INSERT INTO T VALUES (3, 'a')")
        assert sorted(r[0] for r in db.catalog.rows("T")) == [1, 2, 3]


class TestFailingUpdateDelete:
    def test_update_key_collision_rolls_back(self, tmp_path):
        db = _make_db(tmp_path, durable=False)
        before = _snapshot(db)
        with pytest.raises(ReproError):
            db.execute("UPDATE T SET Id = 1")  # both rows -> key 1
        assert _snapshot(db) == before

    def test_update_bad_value_rolls_back(self, tmp_path):
        db = _make_db(tmp_path, durable=False)
        before = _snapshot(db)
        with pytest.raises(ReproError):
            db.execute("UPDATE T SET Tag = Id WHERE Id = 2")
        assert _snapshot(db) == before

    def test_delete_keeps_index_consistent(self, tmp_path):
        db = _make_db(tmp_path, durable=False)
        db.execute("DELETE FROM T WHERE Id = 1")
        rel = db.catalog.table("T")
        assert rel._key_index == {(2,)}
        assert db.fsck().ok


class TestWalCommitBoundary:
    def test_failed_statement_not_logged(self, tmp_path):
        db = _make_db(tmp_path, durable=True)
        wal_path = db.durability.wal.path
        logged = len(scan_wal(wal_path).records)
        with pytest.raises(ReproError):
            db.execute("INSERT INTO T VALUES (9, 'a'), (9, 'b')")
        db.close()
        assert len(scan_wal(wal_path).records) == logged

    def test_lsn_not_consumed_by_failure(self, tmp_path):
        db = _make_db(tmp_path, durable=True)
        at = db.durability.last_lsn
        with pytest.raises(ReproError):
            db.execute("INSERT INTO T VALUES (9, 'a'), (9, 'b')")
        assert db.durability.last_lsn == at
        db.execute("INSERT INTO T VALUES (9, 'a')")
        assert db.durability.last_lsn == at + 1
        db.close()


class TestUndoLog:
    def test_rollback_restores_rows_and_index(self):
        from repro.adt.types import INT
        from repro.engine.storage import BaseRelation
        from repro.lera.schema import Schema
        store = ObjectStore()
        rel = BaseRelation("R", Schema([("A", INT)]), key=(1,))
        rel.insert((1,), store)
        undo = UndoLog()
        undo.note_relation(rel)
        rel.insert((2,), store)
        undo.rollback()
        assert rel.rows == [(1,)]
        assert rel._key_index == {(1,)}

    def test_note_relation_keeps_first_image(self):
        from repro.adt.types import INT
        from repro.engine.storage import BaseRelation
        from repro.lera.schema import Schema
        store = ObjectStore()
        rel = BaseRelation("R", Schema([("A", INT)]))
        undo = UndoLog()
        undo.note_relation(rel)
        rel.insert((1,), store)
        undo.note_relation(rel)  # deduped: the first image wins
        rel.insert((2,), store)
        assert len(undo) == 1
        undo.rollback()
        assert rel.rows == []

    def test_note_objects_rewinds_and_stays_dense(self):
        store = ObjectStore()
        keep = store.create("Person", TupleValue({"Name": "a"}))
        undo = UndoLog()
        undo.note_objects(store)
        store.create("Person", TupleValue({"Name": "b"}))
        store.create("Person", TupleValue({"Name": "c"}))
        undo.rollback()
        assert store.items() == [(keep.oid, "Person",
                                  TupleValue({"Name": "a"}))]
        redo = store.create("Person", TupleValue({"Name": "d"}))
        assert redo.oid == keep.oid + 1  # allocation stayed dense

    def test_clear_commits(self):
        from repro.adt.types import INT
        from repro.engine.storage import BaseRelation
        from repro.lera.schema import Schema
        store = ObjectStore()
        rel = BaseRelation("R", Schema([("A", INT)]))
        undo = UndoLog()
        undo.note_relation(rel)
        rel.insert((1,), store)
        undo.clear()
        undo.rollback()  # nothing to undo
        assert rel.rows == [(1,)]
