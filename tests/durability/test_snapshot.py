"""Snapshots: value encoding, atomic install, restore, crash windows."""

import pytest

from repro import Database
from repro.adt.values import (BagValue, ListValue, ObjectRef, SetValue,
                              TupleValue)
from repro.durability import (CrashPoint, SimulatedCrash, decode_value,
                              encode_value, load_snapshot, scan_wal)
from repro.errors import DurabilityError

_SCRIPT = """
TYPE Category ENUMERATION OF ('Comedy', 'Adventure');
TYPE Point TUPLE (ABS : REAL, ORD : REAL);
TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR,
                          Caricature : LIST OF Point);
TYPE Text LIST OF CHAR;
TABLE FILM (Numf : NUMERIC, Title : Text, Cat : Category,
            PRIMARY KEY (Numf));
TABLE CAST_IN (Numf : NUMERIC, Who : Person);
CREATE VIEW COMEDIES (Numf) AS
  SELECT Numf FROM FILM WHERE Cat = 'Comedy';
INSERT INTO FILM VALUES (1, LIST('U','p'), 'Comedy'),
                        (2, LIST('Z'), 'Adventure');
INSERT INTO CAST_IN VALUES
  (1, NEW Person('Quinn', SET('A','B'), LIST())),
  (2, NEW Person('Bo', SET('B'), LIST()));
"""


def _state(db):
    return {
        "tables": {
            name: [list(r) for r in db.catalog.table(name).rows]
            for name in sorted(db.catalog.relation_names())
        },
        "views": sorted(db.catalog.view_names()),
        "objects": db.catalog.objects.items(),
        "next_oid": db.catalog.objects.mark(),
    }


class TestValueEncoding:
    @pytest.mark.parametrize("value", [
        None, True, 7, 2.5, "text",
        SetValue([1, 2]), BagValue(["a", "a"]), ListValue([1.0, 2.0]),
        TupleValue([("X", 1), ("Y", SetValue(["a"]))]),
        ObjectRef(3, "Person"),
        ListValue([TupleValue([("P", ObjectRef(1, "Person"))])]),
    ])
    def test_roundtrip(self, value):
        import json
        wire = json.loads(json.dumps(encode_value(value)))
        assert decode_value(wire) == value

    def test_collection_kind_preserved(self):
        assert isinstance(decode_value(encode_value(SetValue([1]))),
                          SetValue)
        assert isinstance(decode_value(encode_value(BagValue([1]))),
                          BagValue)

    def test_unknown_tag_rejected(self):
        with pytest.raises(DurabilityError):
            decode_value({"$x": 1})

    def test_unserialisable_value_rejected(self):
        with pytest.raises(DurabilityError):
            encode_value(object())


class TestCheckpointRoundtrip:
    def test_reopen_restores_everything(self, tmp_path):
        path = str(tmp_path / "data")
        db = Database(path=path)
        db.execute(_SCRIPT)
        db.checkpoint()
        before = _state(db)
        db.close()

        db2 = Database(path=path)
        assert _state(db2) == before
        # the view still evaluates against the restored data
        assert db2.query("SELECT Numf FROM COMEDIES").rows == [(1,)]
        assert db2.fsck().ok
        db2.close()

    def test_checkpoint_resets_wal(self, tmp_path):
        path = str(tmp_path / "data")
        db = Database(path=path)
        db.execute(_SCRIPT)
        assert scan_wal(db.durability.wal.path).records
        report = db.checkpoint()
        assert scan_wal(db.durability.wal.path).records == []
        assert report.last_lsn == db.durability.last_lsn
        assert report.relations == 2
        db.close()

    def test_recovery_skips_snapshotted_statements(self, tmp_path):
        """Post-checkpoint statements replay; the snapshot covers the
        rest (no stale records on the clean path)."""
        path = str(tmp_path / "data")
        db = Database(path=path)
        db.execute(_SCRIPT)
        db.checkpoint()
        db.execute("INSERT INTO FILM VALUES (3, LIST('N'), 'Comedy')")
        db.close()

        db2 = Database(path=path)
        assert db2.recovery.replayed == 1
        assert db2.recovery.stale == 0
        assert db2.recovery.snapshot_lsn > 0
        assert sorted(r[0] for r in db2.catalog.rows("FILM")) == [1, 2, 3]
        db2.close()

    def test_replayed_statements_reuse_original_oids(self, tmp_path):
        """OID allocation after restore continues where the snapshot
        left off, so WAL replay reproduces identical references."""
        path = str(tmp_path / "data")
        db = Database(path=path)
        db.execute(_SCRIPT)
        db.checkpoint()
        db.execute("INSERT INTO CAST_IN VALUES "
                   "(2, NEW Person('Ann', SET('A'), LIST()))")
        expected = _state(db)
        db.close()

        db2 = Database(path=path)
        assert _state(db2) == expected
        db2.close()

    def test_checkpoint_requires_path(self):
        with pytest.raises(DurabilityError):
            Database().checkpoint()


class TestSnapshotCorruption:
    def _durable(self, tmp_path):
        path = str(tmp_path / "data")
        db = Database(path=path)
        db.execute(_SCRIPT)
        db.checkpoint()
        db.close()
        return path

    def test_bad_magic(self, tmp_path):
        path = self._durable(tmp_path)
        snap = tmp_path / "data" / "snapshot.db"
        snap.write_bytes(b"junk" + snap.read_bytes())
        with pytest.raises(DurabilityError, match="bad magic"):
            Database(path=path)

    def test_checksum_mismatch_names_the_remedy(self, tmp_path):
        path = self._durable(tmp_path)
        snap = tmp_path / "data" / "snapshot.db"
        blob = bytearray(snap.read_bytes())
        blob[-1] ^= 0xFF
        snap.write_bytes(bytes(blob))
        with pytest.raises(DurabilityError,
                           match="delete it to recover"):
            Database(path=path)

    def test_unreadable_header(self, tmp_path):
        path = self._durable(tmp_path)
        snap = tmp_path / "data" / "snapshot.db"
        snap.write_bytes(b"RSNAP1 nonsense\n{}")
        with pytest.raises(DurabilityError, match="unreadable header"):
            Database(path=path)

    def test_deleting_snapshot_recovers_from_wal(self, tmp_path):
        """The remedy the error message promises actually works."""
        path = str(tmp_path / "data")
        db = Database(path=path)
        db.execute(_SCRIPT)  # never checkpointed: WAL has everything
        expected = _state(db)
        db.close()
        db2 = Database(path=path)
        assert _state(db2) == expected
        db2.close()


class TestCheckpointCrashWindows:
    def _run(self, tmp_path, site):
        path = str(tmp_path / "data")
        db = Database(path=path)
        db.execute(_SCRIPT)
        expected = _state(db)
        db.durability.crashpoint = CrashPoint(site, at_byte=40)
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        db.close()
        db2 = Database(path=path)
        assert _state(db2) == expected
        assert db2.fsck().ok
        return db2

    def test_crash_in_temp_file(self, tmp_path):
        db2 = self._run(tmp_path, "checkpoint-temp")
        # snapshot was never installed; recovery came from the WAL
        assert db2.recovery.snapshot_lsn == 0
        assert db2.recovery.stale == 0
        db2.close()

    def test_crash_before_rename(self, tmp_path):
        db2 = self._run(tmp_path, "checkpoint-rename")
        assert db2.recovery.snapshot_lsn == 0
        db2.close()

    def test_crash_before_wal_reset_skips_stale_records(self, tmp_path):
        """The snapshot installed but the old WAL survived: every
        pre-checkpoint record is stale and skipped by its LSN."""
        db2 = self._run(tmp_path, "wal-reset")
        assert db2.recovery.snapshot_lsn > 0
        assert db2.recovery.replayed == 0
        assert db2.recovery.stale > 0
        db2.close()

    def test_second_checkpoint_after_crash(self, tmp_path):
        db2 = self._run(tmp_path, "wal-reset")
        db2.checkpoint()  # the crash point is gone on the new manager
        snap = load_snapshot(db2.durability.snapshot_path)
        assert snap["last_lsn"] == db2.durability.last_lsn
        db2.close()
