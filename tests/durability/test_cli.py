"""The shell's durability dot-commands (.open/.checkpoint/.fsck/.sync)."""

import pytest

from repro.cli import Shell


def run(shell, text):
    return list(shell.run(text.strip().splitlines()))


@pytest.fixture
def shell():
    return Shell()


class TestOpen:
    def test_open_reports_recovery_summary(self, shell, tmp_path):
        (out,) = run(shell, f".open {tmp_path / 'data'}")
        assert out.startswith(f"opened {tmp_path / 'data'}: ")
        assert "recovered to lsn 0" in out

    def test_usage(self, shell):
        assert run(shell, ".open") == ["usage: .open <path>"]

    def test_statements_survive_reopen(self, shell, tmp_path):
        path = tmp_path / "data"
        run(shell, f"""
        .open {path}
        TABLE T (A : INT);
        INSERT INTO T VALUES (1), (2);
        """)
        other = Shell()
        out = run(other, f".open {path}\nSELECT A FROM T;")
        assert "2 statement(s) replayed" in out[0]
        assert "(2 rows)" in out[1]

    def test_open_preserves_session_settings(self, shell, tmp_path):
        run(shell, ".engine hash")
        run(shell, f".open {tmp_path / 'data'}")
        assert shell.db.hash_joins is True

    def test_corrupt_snapshot_is_one_error_line(self, shell, tmp_path):
        """Satellite: a corrupt file yields a diagnosis, not a
        traceback, and the shell stays alive."""
        path = tmp_path / "data"
        run(shell, f".open {path}\nTABLE T (A : INT);\n.checkpoint")
        blob = bytearray((path / "snapshot.db").read_bytes())
        blob[-1] ^= 0xFF
        (path / "snapshot.db").write_bytes(bytes(blob))
        fresh = Shell()
        (out,) = run(fresh, f".open {path}")
        assert out.startswith("error: ")
        assert "delete it to recover" in out
        assert run(fresh, ".help")  # still serving

    def test_torn_wal_reported_in_summary(self, shell, tmp_path):
        path = tmp_path / "data"
        run(shell, f".open {path}\nTABLE T (A : INT);")
        shell.db.close()
        with open(path / "wal.log", "ab") as handle:
            handle.write(b"\x00\x01")
        (out,) = run(Shell(), f".open {path}")
        assert "2 byte(s) of torn tail truncated" in out

    def test_path_that_is_a_file_is_an_error(self, shell, tmp_path):
        target = tmp_path / "plain"
        target.write_text("not a directory")
        (out,) = run(shell, f".open {target}")
        assert out.startswith("error: ")


class TestCheckpointAndFsck:
    def test_checkpoint_summary(self, shell, tmp_path):
        out = run(shell, f"""
        .open {tmp_path / 'data'}
        TABLE T (A : INT);
        INSERT INTO T VALUES (1);
        .checkpoint
        """)
        assert any(o.startswith("checkpoint at lsn 2") for o in out)

    def test_checkpoint_needs_durable_db(self, shell):
        (out,) = run(shell, ".checkpoint")
        assert out == "error: no durable database open (use .open <path>)"

    def test_fsck_clean(self, shell):
        run(shell, "TABLE T (A : INT);\nINSERT INTO T VALUES (1);")
        (out,) = run(shell, ".fsck")
        assert out.startswith("fsck ok")

    def test_fsck_lists_violations_indented(self, shell):
        run(shell, "TABLE T (A : INT);")
        shell.db.catalog.table("T").rows.append((1, 2))
        out = run(shell, ".fsck")
        assert out[0] == "fsck: 1 violation(s)"
        assert out[1].startswith("  arity: ")


class TestSync:
    def test_toggle(self, shell, tmp_path):
        run(shell, f".open {tmp_path / 'data'}")
        assert run(shell, ".sync") == ["fsync on commit is off"]
        assert run(shell, ".sync on") == ["fsync on commit on"]
        assert shell.db.sync is True
        assert run(shell, ".sync off") == ["fsync on commit off"]

    def test_needs_durable_db(self, shell):
        (out,) = run(shell, ".sync on")
        assert out == "error: no durable database open (use .open <path>)"


class TestHelp:
    def test_durability_commands_documented(self, shell):
        (out,) = run(shell, ".help")
        for command in (".open", ".checkpoint", ".fsck", ".sync"):
            assert command in out
