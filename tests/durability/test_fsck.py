"""The fsck invariant checker: clean bills of health and planted
corruption in each invariant family."""

import pytest

from repro import Database
from repro.adt.values import ObjectRef
from repro.durability import check_catalog, check_database
from repro.durability.check import check_durability
from repro.durability.wal import WAL_MAGIC, encode_frame
from repro.obs.profile import Profiler


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TYPE Person OBJECT TUPLE (Name : CHAR);
    TABLE T (Id : NUMERIC, Tag : CHAR, PRIMARY KEY (Id));
    TABLE P (Id : NUMERIC, Who : Person)
    """)
    d.execute("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
    d.execute("INSERT INTO P VALUES (1, NEW Person('Quinn'))")
    return d


class TestCleanDatabase:
    def test_ok_and_counts(self, db):
        report = check_database(db)
        assert report.ok
        assert report.relations_checked == 2
        assert report.rows_checked == 3
        assert report.objects_checked == 1
        assert "fsck ok" in report.summary()

    def test_durable_clean(self, tmp_path):
        d = Database(path=str(tmp_path / "data"))
        d.execute("TABLE T (A : INT)")
        d.execute("INSERT INTO T VALUES (1)")
        d.checkpoint()
        d.execute("INSERT INTO T VALUES (2)")
        assert d.fsck().ok
        d.close()


class TestPlantedViolations:
    def test_arity(self, db):
        db.catalog.table("T").rows.append((9,))  # missing Tag
        report = check_catalog(db.catalog)
        assert [v.kind for v in report.violations] == ["arity"]
        assert "row 2" in report.violations[0].detail

    def test_duplicate_key_among_rows(self, db):
        rel = db.catalog.table("T")
        rel.rows.append(rel.rows[0])
        report = check_catalog(db.catalog)
        kinds = [v.kind for v in report.violations]
        assert "key-index" in kinds
        assert any("duplicate key" in v.detail
                   for v in report.violations)

    def test_index_disagrees_with_rows(self, db):
        db.catalog.table("T")._key_index.add((99,))
        report = check_catalog(db.catalog)
        assert any(v.kind == "key-index" and "disagrees" in v.detail
                   for v in report.violations)

    def test_dangling_ref_in_row(self, db):
        db.catalog.table("P").rows.append(
            (2, ObjectRef(999, "Person"))
        )
        report = check_catalog(db.catalog)
        assert [v.kind for v in report.violations] == ["dangling-ref"]

    def test_dangling_ref_inside_stored_object(self, db):
        from repro.adt.values import TupleValue
        db.catalog.objects.create(
            "Person", TupleValue({"Friend": ObjectRef(999, "Person")})
        )
        report = check_catalog(db.catalog)
        assert [v.kind for v in report.violations] == ["dangling-ref"]

    def test_summary_counts_violations(self, db):
        db.catalog.table("T").rows.append((9,))
        report = check_catalog(db.catalog)
        assert report.summary() == "fsck: 1 violation(s)"


class TestWalSequence:
    def _durable(self, tmp_path):
        d = Database(path=str(tmp_path / "data"))
        d.execute("TABLE T (A : INT)")
        d.execute("INSERT INTO T VALUES (1)")
        return d

    def test_torn_tail_reported(self, tmp_path):
        d = self._durable(tmp_path)
        with open(d.durability.wal.path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        report = check_durability(d.durability)
        assert any(v.kind == "wal-sequence" and "torn tail" in v.detail
                   for v in report.violations)
        d.close()

    def test_lsn_gap_reported(self, tmp_path):
        d = self._durable(tmp_path)
        d.close()
        wal = tmp_path / "data" / "wal.log"
        wal.write_bytes(
            WAL_MAGIC
            + encode_frame({"kind": "stmt", "lsn": 1, "sql": "x"})
            + encode_frame({"kind": "stmt", "lsn": 5, "sql": "y"})
        )
        d2 = Database.__new__(Database)  # only the manager matters here
        from repro.durability import DurabilityManager
        manager = DurabilityManager(str(tmp_path / "data"))
        manager.last_lsn = 5
        report = check_durability(manager)
        assert any("jumps from 1 to 5" in v.detail
                   for v in report.violations)

    def test_manager_position_mismatch(self, tmp_path):
        d = self._durable(tmp_path)
        d.durability.last_lsn += 3
        report = check_durability(d.durability)
        assert any(v.kind == "wal-sequence" and "manager" in v.detail
                   for v in report.violations)
        d.close()


class TestObsIntegration:
    def test_violations_emitted_as_events(self, db):
        profiler = Profiler()
        db.obs = profiler.bus
        db.catalog.table("T").rows.append((9,))
        report = db.fsck()
        assert not report.ok
        assert profiler.metrics.value("durability.fsck.violations") == 1

    def test_clean_run_emits_nothing(self, db):
        profiler = Profiler()
        db.obs = profiler.bus
        assert db.fsck().ok
        assert profiler.metrics.value("durability.fsck.violations") == 0
