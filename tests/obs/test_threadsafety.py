"""Observability under concurrency: the serving layer's substrate.

The server publishes ``server.*`` metrics and events from many
threads at once, so the registry and bus must be exact under
contention -- no lost increments, no corrupted subscriber lists.
"""

import threading

from repro.obs.bus import EventBus
from repro.obs.events import RequestAdmitted, RequestCompleted
from repro.obs.metrics import MetricsRegistry

_THREADS = 8
_ROUNDS = 500


def _run(threads):
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)


class TestMetricsRegistry:
    def test_concurrent_increments_are_exact(self):
        metrics = MetricsRegistry()

        def worker():
            for _ in range(_ROUNDS):
                metrics.inc("server.requests.read")

        _run([threading.Thread(target=worker)
              for _ in range(_THREADS)])
        assert metrics.value("server.requests.read") \
            == _THREADS * _ROUNDS

    def test_concurrent_get_or_create_yields_one_counter(self):
        metrics = MetricsRegistry()
        barrier = threading.Barrier(_THREADS)
        seen = []
        lock = threading.Lock()

        def worker():
            barrier.wait(timeout=10.0)
            counter = metrics.counter("server.shed")
            with lock:
                seen.append(counter)

        _run([threading.Thread(target=worker)
              for _ in range(_THREADS)])
        assert len({id(c) for c in seen}) == 1

    def test_concurrent_histogram_observes_all_samples(self):
        metrics = MetricsRegistry()

        def worker():
            for i in range(_ROUNDS):
                metrics.observe("server.request.seconds", i * 1e-6)

        _run([threading.Thread(target=worker)
              for _ in range(_THREADS)])
        histogram = metrics.histogram("server.request.seconds")
        assert histogram.count == _THREADS * _ROUNDS


class TestEventBus:
    def test_concurrent_emits_reach_the_subscriber(self):
        bus = EventBus()
        count = {"n": 0}
        lock = threading.Lock()

        def on_event(_event):
            with lock:
                count["n"] += 1

        bus.subscribe(on_event, kinds=(RequestAdmitted,))

        def worker():
            for _ in range(_ROUNDS):
                bus.emit(RequestAdmitted(
                    request_class="read", queue_wait=0.0, queue_depth=0
                ))

        _run([threading.Thread(target=worker)
              for _ in range(_THREADS)])
        assert count["n"] == _THREADS * _ROUNDS

    def test_subscribe_unsubscribe_during_emit_storm(self):
        """Copy-on-write subscriber lists: churning subscriptions
        while other threads emit must neither raise nor deliver to a
        handle after its unsubscribe returns."""
        bus = EventBus()
        stop = threading.Event()
        errors = []

        def emitter():
            try:
                while not stop.is_set():
                    bus.emit(RequestCompleted(
                        request_class="read", session="s",
                        duration=0.0,
                    ))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def churner():
            try:
                for _ in range(200):
                    subscription = bus.subscribe(
                        lambda _e: None, kinds=(RequestCompleted,)
                    )
                    subscription.cancel()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        emitters = [threading.Thread(target=emitter)
                    for _ in range(2)]
        churners = [threading.Thread(target=churner)
                    for _ in range(4)]
        for t in emitters + churners:
            t.start()
        for t in churners:
            t.join(timeout=60.0)
        stop.set()
        for t in emitters:
            t.join(timeout=60.0)
        assert errors == []
        assert not bus.active
