"""Workload intelligence: StatementStats, PlanLog, and the
sys.statements / sys.plan_nodes relations."""

import pytest

from repro import Database
from repro.obs.workload import PlanLog, StatementStats


class TestStatementStats:
    def test_aggregates_per_fingerprint(self):
        stats = StatementStats()
        stats.record_call("abc", "SELECT A FROM T WHERE B = $1",
                          rewrite_ms=1.0, eval_ms=2.0, rows=5)
        stats.record_call("abc", "SELECT A FROM T WHERE B = $1",
                          rewrite_ms=3.0, eval_ms=4.0, rows=7)
        (row,) = stats.rows()
        assert row[0] == "abc"
        assert row[2] == 2          # calls
        assert row[3] == 12         # rows
        assert row[4] == pytest.approx(4.0)   # rewrite_ms
        assert row[5] == pytest.approx(6.0)   # eval_ms

    def test_rows_sorted_hottest_first(self):
        stats = StatementStats()
        stats.record_call("cold", "Q1")
        for __ in range(3):
            stats.record_call("hot", "Q2")
        assert [r[0] for r in stats.rows()] == ["hot", "cold"]

    def test_capacity_overflow_bucket(self):
        stats = StatementStats(capacity=2)
        stats.record_call("a", "QA")
        stats.record_call("b", "QB")
        stats.record_call("c", "QC")  # over capacity -> (other)
        stats.record_call("a", "QA")  # existing entries keep updating
        rows = {r[0]: r[2] for r in stats.rows()}
        assert rows["a"] == 2
        assert rows[StatementStats.OVERFLOW] == 1

    def test_note_abnormal_outcomes(self):
        stats = StatementStats()
        stats.note("abc", "Q", "shed")
        stats.note("abc", "Q", "cancelled")
        stats.note("abc", "Q", "retries", count=2)
        (row,) = stats.rows()
        assert row[2] == 0         # notes are not calls
        shed, retries, cancelled = row[11], row[12], row[13]
        assert (shed, retries, cancelled) == (1, 2, 1)

    def test_last_and_merge_call_round_trip(self):
        source = StatementStats()
        source.record_call("abc", "Q", rewrite_ms=1.5, eval_ms=2.5,
                           rows=4, rule_firings=3)
        record = source.last("abc")
        assert record["fingerprint"] == "abc"
        parent = StatementStats()
        parent.merge_call(record)
        parent.merge_call(record)
        (row,) = parent.rows()
        assert row[2] == 2
        assert row[3] == 8
        assert row[10] == 6        # rule firings

    def test_clear(self):
        stats = StatementStats()
        stats.record_call("abc", "Q")
        stats.clear()
        assert stats.rows() == []
        assert stats.tracked == 0


class TestPlanLog:
    def _node(self, **overrides):
        node = {"node": 0, "operator": "SCAN", "hash": "a" * 12,
                "depth": 0, "rows": 3, "loops": 1, "self_ms": 0.1,
                "total_ms": 0.1, "bytes": 24}
        node.update(overrides)
        return node

    def test_ring_is_bounded_but_numbering_monotonic(self):
        log = PlanLog(capacity=2)
        for __ in range(3):
            log.push("f" * 12, "t" * 32, [self._node()])
        assert log.recorded == 3
        plans = {row[0] for row in log.rows()}
        assert plans == {2, 3}     # plan 1 evicted, numbering keeps

    def test_rows_flatten_nodes(self):
        log = PlanLog()
        log.push("f" * 12, "t" * 32,
                 [self._node(), self._node(node=1, operator="SEARCH")])
        rows = log.rows()
        assert len(rows) == 2
        assert rows[0][4] == "SCAN" and rows[1][4] == "SEARCH"


@pytest.fixture
def db():
    d = Database()
    d.execute("TABLE T (A : NUMERIC, B : NUMERIC)")
    d.execute("INSERT INTO T VALUES (1, 10), (2, 20), (3, 30)")
    return d


class TestSysStatements:
    def test_mixed_repeated_workload_aggregates(self, db):
        for i in range(4):
            db.query(f"SELECT A FROM T WHERE B = {i * 10}")
        db.query("select a from t where b = 999")  # same template
        db.query("SELECT B FROM T")                # different one
        rows = db.query(
            "SELECT Fingerprint, Template, Calls, Rows "
            "FROM sys.statements"
        ).rows
        by_template = {r[1]: r for r in rows}
        hot = by_template["SELECT A FROM T WHERE (B = $1)"]
        assert hot[2] == 5
        assert by_template["SELECT B FROM T"][2] == 1
        # the catalog read itself is recorded on the *next* read
        assert all(len(r[0]) == 12 for r in rows)

    def test_writes_and_ddl_recorded(self, db):
        db.execute("INSERT INTO T VALUES (4, 40)")
        rows = db.query(
            "SELECT Template, Calls FROM sys.statements"
        ).rows
        templates = dict(rows)
        assert templates["INSERT INTO T VALUES ($1, $2)"] == 1
        assert templates["TableDef"] == 1

    def test_joins_with_rule_heat_fingerprint(self, db):
        # a rule actually fires -> sys.rewrites rows carry the
        # statement fingerprint for joining back to sys.statements
        db.query("SELECT T.A FROM T WHERE EXISTS "
                 "(SELECT A FROM T WHERE B = 10)")
        rewrites = db.query(
            "SELECT Fingerprint FROM sys.rewrites"
        ).rows
        assert rewrites
        fingerprints = {r[0] for r in rewrites}
        statements = {
            r[0] for r in db.query(
                "SELECT Fingerprint FROM sys.statements"
            ).rows
        }
        assert fingerprints <= statements


class TestSysPlanNodes:
    def test_analyzed_plans_queryable(self, db):
        db.query("SELECT A FROM T WHERE B > 10", analyze=True)
        rows = db.query(
            "SELECT Plan, Operator, Rows, Loops FROM sys.plan_nodes"
        ).rows
        assert rows
        assert all(r[0] == 1 for r in rows)
        assert {r[1] for r in rows} & {"SCAN", "SEARCH"}

    def test_empty_without_analyze(self, db):
        db.query("SELECT A FROM T")
        assert db.query("SELECT Plan FROM sys.plan_nodes").rows == []
