"""End-to-end observability: a profiled optimize -> evaluate run emits
a consistent event stream, metrics and span tree."""

import pytest

from repro import Database
from repro.engine.evaluate import Evaluator
from repro.engine.stats import EvalStats
from repro.obs import events as ev
from repro.obs.bus import EventBus
from repro.obs.profile import Profiler


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW BIG (Shop, Amount) AS
      SELECT Shop, Amount FROM SALE WHERE Amount > 10;
    CREATE VIEW HUGE (Shop, Amount) AS
      SELECT Shop, Amount FROM BIG WHERE Amount > 20
    """)
    d.execute("INSERT INTO SALE VALUES (1, 5), (1, 15), (2, 25), (2, 40)")
    return d


QUERY = "SELECT Amount FROM HUGE WHERE Shop = 1"


class TestEventStream:
    def test_taxonomy_covered(self, db):
        seen = []
        bus = EventBus()
        bus.subscribe(seen.append)
        optimized = db.optimize(QUERY, obs=bus)
        Evaluator(db.catalog, obs=bus).evaluate(optimized.final)
        kinds = {type(e).__name__ for e in seen}
        assert {"PhaseStart", "PhaseEnd", "BlockStart", "BlockEnd",
                "PassEnd", "RuleAttempt", "RuleFired", "MethodCall",
                "ConstraintCheck", "EvalOp"} <= kinds

    def test_attempts_match_engine_checks(self, db):
        seen = []
        bus = EventBus()
        bus.subscribe(seen.append, kinds=[ev.RuleAttempt])
        optimized = db.optimize(QUERY, obs=bus)
        assert len(seen) == optimized.rewrite_result.checks

    def test_fired_match_trace(self, db):
        seen = []
        bus = EventBus()
        bus.subscribe(seen.append, kinds=[ev.RuleFired])
        optimized = db.optimize(QUERY, obs=bus)
        assert [e.rule for e in seen] == \
            optimized.rewrite_result.rules_fired()

    def test_results_identical_with_and_without_obs(self, db):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        profiled = db.optimize(QUERY, obs=bus)
        plain = db.optimize(QUERY)
        assert profiled.final == plain.final
        assert (profiled.rewrite_result.checks
                == plain.rewrite_result.checks)


class TestProfilerMetrics:
    def test_attempts_at_least_hits_at_least_fired(self, db):
        profiler = Profiler()
        db.optimize(QUERY, obs=profiler.bus)
        rules = profiler.rule_table()
        assert rules, "a saturating rewrite must attempt rules"
        for name, row in rules.items():
            attempts = row.get("attempts", 0)
            hits = row.get("hits", 0)
            assert attempts >= hits >= row.get("fired", 0), name
            assert attempts == hits + row.get("misses", 0), name

    def test_merge_rule_counted(self, db):
        profiler = Profiler()
        db.optimize(QUERY, obs=profiler.bus)
        merge = profiler.rule_table()["search_merge"]
        assert merge["fired"] == 2
        assert merge["hits"] >= 2
        # merging strictly shrinks the stacked-view plan
        assert merge["size_delta"]["max"] < 0

    def test_block_budget_consumed(self, db):
        profiler = Profiler()
        db.optimize(QUERY, obs=profiler.bus)
        blocks = profiler.block_table()
        assert blocks["merge"]["applications"] == 2
        assert blocks["merge"]["budget_consumed"] >= 2
        assert blocks["merge"]["checks"] >= 2

    def test_passes_counted(self, db):
        profiler = Profiler()
        optimized = db.optimize(QUERY, obs=profiler.bus)
        assert (profiler.metrics.value("rewrite.passes")
                == optimized.rewrite_result.passes)

    def test_constraint_and_method_metrics(self, db):
        profiler = Profiler()
        db.optimize(QUERY, obs=profiler.bus)
        assert profiler.metrics.value("constraint.checks") > 0
        methods = profiler.method_table()
        assert any(name.startswith("SUBSTITUTE/") for name in methods)

    def test_span_durations_non_negative(self, db):
        profiler = Profiler()
        db.optimize(QUERY, obs=profiler.bus)
        for root in profiler.tracer.span_tree():
            for span in root.walk():
                assert span.duration >= 0.0

    def test_span_hierarchy(self, db):
        profiler = Profiler()
        db.optimize(QUERY, obs=profiler.bus)
        (optimize,) = profiler.tracer.span_tree()
        assert optimize.name == "optimize"
        names = [c.name for c in optimize.children if c.kind == "phase"]
        assert names == ["typecheck", "rewrite", "typecheck_final"]

    def test_eval_ops_and_stats_absorption(self, db):
        profiler = Profiler()
        optimized = db.optimize(QUERY, obs=profiler.bus)
        stats = EvalStats()
        Evaluator(db.catalog, stats=stats, obs=profiler.bus).evaluate(
            optimized.final
        )
        profiler.absorb_eval_stats(stats)
        assert profiler.metrics.value("eval.op.SEARCH") >= 1
        assert (profiler.metrics.value("eval.tuples_scanned")
                == stats.tuples_scanned)

    def test_report_shape(self, db):
        profiler = Profiler()
        db.optimize(QUERY, obs=profiler.bus)
        report = profiler.report()
        assert set(report) == {"rules", "blocks", "methods", "passes",
                               "constraints", "spans", "metrics"}
        import json
        json.dumps(report)


class TestChecksBudgetTelemetry:
    def test_checks_mode_budget_consumption(self):
        """In checks mode the BlockEnd budget reflects condition checks,
        the paper's stricter accounting."""
        from repro.rules.control import Block, RewriteEngine, Seq
        from repro.rules.rule import RuleContext, rule_from_text
        from repro.terms.parser import parse_term

        rule = rule_from_text("collapse: DUP(DUP(x)) --> DUP(x)")
        seq = Seq([Block("only", [rule], limit=100, count="checks")])
        ends = []
        bus = EventBus()
        bus.subscribe(ends.append, kinds=[ev.BlockEnd])
        engine = RewriteEngine(seq, obs=bus)
        result = engine.rewrite(
            parse_term("DUP(DUP(DUP(1)))"), RuleContext()
        )
        assert result.applications == 2
        (end,) = ends
        assert end.checks == result.checks
        assert 0 < end.budget_consumed <= 100
