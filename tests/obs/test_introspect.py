"""The ``sys.*`` introspection catalog and the provenance ledger.

Covers the virtual-relation protocol end to end: every system
relation is SELECTable through the normal ESQL pipeline, the reserved
namespace rejects user DDL/DML, the rewrite-provenance ledger reflects
earlier statements in the session, sys reads never touch the writer
lock, and the explain v5 ``provenance`` section round-trips through
``validate_explain``.
"""

import json

import pytest

from repro import Database
from repro.adt.types import INT
from repro.core.explain import (EXPLAIN_SCHEMA_VERSION, explain_json,
                                validate_explain)
from repro.core.rewriter import term_hash
from repro.errors import CatalogError, TranslationError
from repro.obs.introspect import SYS_RELATIONS
from repro.obs.telemetry import TraceContext, use_trace
from repro.server import Server

_HEX = set("0123456789abcdef")

# fires push/semijoin_prune: the canonical "query that rewrites"
_EXISTS = ("SELECT T.A FROM T WHERE EXISTS "
           "(SELECT A FROM T WHERE B = 10)")


def _db():
    db = Database()
    db.execute("TABLE T (A : NUMERIC, B : NUMERIC)")
    db.execute("INSERT INTO T VALUES (1, 10), (2, 20), (3, 10)")
    return db


class TestCatalogProtocol:
    def test_every_sys_relation_selects_through_the_pipeline(self):
        db = _db()
        for name in SYS_RELATIONS:
            result = db.query(f"SELECT * FROM {name}")
            schema = db.catalog.relation_schema(name.upper())
            for row in result.rows:
                assert len(row) == len(schema)

    def test_sys_relations_lists_itself_and_user_tables(self):
        db = _db()
        rows = db.query(
            "SELECT Name, Kind, Columns, Rows FROM sys.relations"
        ).rows
        by_name = {name: (kind, cols, card)
                   for name, kind, cols, card in rows}
        assert by_name["T"] == ("table", 2, 3)
        # the catalog is self-describing: every sys.* appears, as a
        # virtual with unknown (-1) cardinality
        for name in SYS_RELATIONS:
            kind, __, card = by_name[name.upper()]
            assert kind == "virtual"
            assert card == -1

    def test_sys_relations_join_with_user_data(self):
        db = _db()
        # a genuine join between a virtual and a base table
        rows = db.query(
            "SELECT R.Name, T.A FROM sys.relations R, T "
            "WHERE R.Name = 'T' AND T.B = 10"
        ).rows
        assert sorted(rows) == [("T", 1), ("T", 3)]

    def test_view_over_a_sys_relation(self):
        db = _db()
        db.execute(
            "CREATE VIEW TABLES (Name) AS "
            "SELECT Name FROM sys.relations WHERE Kind = 'table'"
        )
        assert db.query("SELECT Name FROM TABLES").rows == [("T",)]

    def test_last_segment_resolves_column_qualifiers(self):
        db = _db()
        rows = db.query(
            "SELECT relations.Name FROM sys.relations "
            "WHERE relations.Kind = 'table'"
        ).rows
        assert rows == [("T",)]

    def test_serverless_tier_serves_empty_not_errors(self):
        db = _db()
        for name in ("sys.metrics", "sys.histograms",
                     "sys.sessions", "sys.slow_queries"):
            assert db.query(f"SELECT * FROM {name}").rows == []


class TestReservedNamespace:
    def test_create_table_rejected(self):
        db = _db()
        with pytest.raises(CatalogError, match="reserved"):
            db.execute("TABLE sys.mine (A : NUMERIC)")

    def test_create_view_rejected(self):
        db = _db()
        with pytest.raises(CatalogError, match="reserved"):
            db.execute("CREATE VIEW sys.v (A) AS SELECT A FROM T")

    def test_dml_rejected_as_read_only(self):
        db = _db()
        for stmt in (
            "INSERT INTO sys.metrics VALUES ('x', 1)",
            "DELETE FROM sys.metrics WHERE Value = 0",
            "UPDATE sys.metrics SET Value = 0 WHERE Name = 'x'",
            "DROP TABLE sys.metrics",
        ):
            with pytest.raises(TranslationError, match="read-only"):
                db.execute(stmt)

    def test_direct_registration_outside_sys_rejected(self):
        db = _db()
        with pytest.raises(CatalogError):
            db.catalog.register_virtual(
                "MINE", [("A", INT)], lambda: [])


class TestProvenanceLedger:
    def test_simple_select_fires_nothing(self):
        db = _db()
        db.query("SELECT A FROM T WHERE B = 10")
        assert db.ledger.recorded == 0
        assert db.query("SELECT * FROM sys.rewrites").rows == []

    def test_rewrites_reflect_earlier_statements(self):
        db = _db()
        db.query(_EXISTS)
        rows = db.query(
            "SELECT Block, Rule, Iteration, BeforeHash, AfterHash, "
            "ComplexityDelta FROM sys.rewrites"
        ).rows
        assert rows, "the EXISTS query must have fired a rule"
        for block, rule, iteration, before, after, delta in rows:
            assert block and rule
            assert iteration >= 0
            assert set(before) <= _HEX and len(before) == 12
            assert set(after) <= _HEX and len(after) == 12
            assert before != after
            assert isinstance(delta, int)
        assert ("push", "semijoin_prune") in {
            (block, rule) for block, rule, *__ in rows
        }

    def test_rule_heat_aggregates_across_statements(self):
        db = _db()
        db.query(_EXISTS)
        db.query(_EXISTS)
        heat = {
            (block, rule): (fired, total)
            for block, rule, fired, total, __, ___ in db.query(
                "SELECT * FROM sys.rule_heat"
            ).rows
        }
        fired, total = heat[("push", "semijoin_prune")]
        assert fired == 2
        assert total < 0  # pruning shrinks the term

    def test_ledger_is_a_bounded_ring(self):
        db = _db()
        capacity = db.ledger._ring.maxlen
        for __ in range(5):
            db.query(_EXISTS)
        assert len(db.ledger.entries()) <= capacity
        assert db.ledger.recorded >= 5

    def test_trace_stamping_under_a_request_context(self):
        db = _db()
        context = TraceContext.new()
        with use_trace(context):
            db.query(_EXISTS)
        stamped = {
            trace for (trace,) in db.query(
                "SELECT TraceId FROM sys.rewrites"
            ).rows
        }
        assert stamped == {context.trace_id}

    def test_ledger_survives_optimizer_regeneration(self):
        db = _db()
        db.query(_EXISTS)
        before = db.ledger.recorded
        db.regenerate_optimizer()
        assert db.ledger.recorded == before
        db.query(_EXISTS)
        assert db.ledger.recorded > before


class TestSnapshotSemantics:
    def test_self_join_sees_one_point_in_time(self):
        """Two scans of the same virtual inside one evaluate() must
        materialize the producer exactly once."""
        db = _db()
        calls = []
        db.catalog.register_virtual(
            "sys.probe", [("N", INT)],
            lambda: calls.append(1) or [(len(calls),)],
            "test probe",
        )
        rows = db.query(
            "SELECT A.N, B.N FROM sys.probe A, sys.probe B"
        ).rows
        assert len(calls) == 1
        assert rows == [(1, 1)]

    def test_separate_statements_rematerialize(self):
        db = _db()
        calls = []
        db.catalog.register_virtual(
            "sys.probe", [("N", INT)],
            lambda: calls.append(1) or [(len(calls),)],
            "test probe",
        )
        assert db.query("SELECT N FROM sys.probe").rows == [(1,)]
        assert db.query("SELECT N FROM sys.probe").rows == [(2,)]


class TestDurabilityRelations:
    def test_wal_and_snapshots(self, tmp_path):
        db = Database(path=str(tmp_path / "wal.db"))
        db.execute("TABLE T (A : NUMERIC)")
        db.execute("INSERT INTO T VALUES (1), (2)")
        wal = db.query(
            "SELECT Lsn, Kind, Statement FROM sys.wal"
        ).rows
        assert [lsn for lsn, __, ___ in wal] == list(
            range(1, len(wal) + 1)
        )
        assert any("INSERT INTO T" in stmt for __, ___, stmt in wal)

        before = db.query(
            "SELECT Present FROM sys.snapshots"
        ).rows
        db.checkpoint()
        after = db.query(
            "SELECT Present, Bytes, LastLsn FROM sys.snapshots"
        ).rows
        assert before == [(False,)]
        assert len(after) == 1
        present, size, last_lsn = after[0]
        assert present is True
        assert size > 0
        assert last_lsn >= 2
        db.close()

    def test_ephemeral_database_has_no_wal(self):
        db = _db()
        assert db.query("SELECT * FROM sys.wal").rows == []


class TestServerTier:
    def test_serving_upgrades_the_four_backed_relations(self):
        db = _db()
        server = Server(db)
        session = server.open_session("alice")
        server.query("SELECT A FROM T", session=session.id)

        metrics = dict(server.query(
            "SELECT Name, Value FROM sys.metrics"
        ).rows)
        assert metrics.get("server.requests.read", 0) >= 1

        sessions = server.query("SELECT Id FROM sys.sessions").rows
        assert ("alice",) in sessions

        hist = server.query(
            "SELECT Name, Kind, Count FROM sys.histograms"
        ).rows
        assert any(count >= 1 for __, ___, count in hist)
        server.close()

    def test_sys_reads_never_touch_the_writer_lock(self):
        db = _db()
        server = Server(db)

        def poisoned():  # pragma: no cover - must never run
            raise AssertionError(
                "a sys.* read acquired the writer lock"
            )

        server.guard._lock.acquire_write = poisoned
        for name in SYS_RELATIONS:
            server.query(f"SELECT * FROM {name}")
        server.close()

    def test_slow_queries_surface_as_rows(self):
        db = _db()
        server = Server(db, slow_query_ms=0.0)
        server.query("SELECT A FROM T")
        rows = server.query(
            "SELECT TraceId, Class, DurationMs FROM sys.slow_queries"
        ).rows
        assert rows
        trace, klass, duration = rows[0]
        assert set(trace) <= _HEX and len(trace) == 32
        assert klass == "read"
        assert duration >= 0.0
        server.close()


class TestExplainProvenance:
    def test_v5_provenance_round_trips(self):
        db = _db()
        report = db.explain_json(_EXISTS)
        assert report["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert validate_explain(report) == []

        provenance = report["provenance"]
        entries = provenance["entries"]
        assert entries, "a rewriting query must carry provenance"
        for entry in entries:
            assert set(entry["before_hash"]) <= _HEX
            assert len(entry["before_hash"]) == 12
            assert entry["trace_id"] == provenance["trace_id"]

        # the report survives a JSON round trip intact
        assert validate_explain(
            json.loads(json.dumps(report))
        ) == []

    def test_provenance_matches_the_ledger(self):
        db = _db()
        report = db.explain_json(_EXISTS)
        reported = [
            (e["block"], e["rule"], e["before_hash"], e["after_hash"])
            for e in report["provenance"]["entries"]
        ]
        # explain did not execute under the server, but the ledger
        # still recorded the same firings with the same hashes
        ledgered = [
            (e.block, e.rule, e.before_hash, e.after_hash)
            for e in db.ledger.entries()[-len(reported):]
        ]
        assert reported == ledgered

    def test_validation_rejects_tampered_provenance(self):
        db = _db()
        report = db.explain_json(_EXISTS)

        bad = json.loads(json.dumps(report))
        bad["provenance"]["entries"][0]["before_hash"] = "nothex!!!!!!"
        assert validate_explain(bad)

        bad = json.loads(json.dumps(report))
        bad["provenance"]["entries"].pop()
        assert validate_explain(bad)

        bad = json.loads(json.dumps(report))
        bad["provenance"]["entries"][0]["iteration"] = 99
        assert validate_explain(bad)

    def test_non_rewriting_query_has_empty_provenance(self):
        db = _db()
        report = db.explain_json("SELECT A FROM T WHERE B = 10")
        assert report["provenance"]["entries"] == []
        assert validate_explain(report) == []


def test_term_hash_is_stable_and_short():
    from repro.terms.term import num
    term = num(42)
    assert term_hash(term) == term_hash(num(42))
    assert len(term_hash(term)) == 12
    assert set(term_hash(term)) <= _HEX
