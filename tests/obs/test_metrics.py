"""MetricsRegistry: counters, histograms, grouping, EvalStats
absorption, bucket histograms, Prometheus exposition."""

import math

import pytest

from repro.engine.stats import EvalStats
from repro.obs.metrics import (BucketHistogram, Histogram, MetricsRegistry,
                               log_bucket_bounds, prometheus_name)


class TestCounters:
    def test_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.inc("rewrite.passes")
        registry.inc("rewrite.passes", 2)
        assert registry.value("rewrite.passes") == 3

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_prefix_query(self):
        registry = MetricsRegistry()
        registry.inc("rewrite.rule.a.hits")
        registry.inc("rewrite.rule.b.hits", 4)
        registry.inc("eval.op.SEARCH")
        assert registry.counters_with_prefix("rewrite.rule.") == {
            "rewrite.rule.a.hits": 1,
            "rewrite.rule.b.hits": 4,
        }


class TestHistograms:
    def test_summary_statistics(self):
        hist = Histogram("t")
        for v in (1.0, 2.0, 3.0, 10.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 16.0
        assert hist.mean == 4.0
        assert hist.min == 1.0
        assert hist.max == 10.0

    def test_percentiles_from_samples(self):
        hist = Histogram("t")
        for v in range(101):
            hist.observe(float(v))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0

    def test_empty_histogram_is_safe(self):
        hist = Histogram("t")
        data = hist.to_dict()
        assert data["count"] == 0
        assert data["mean"] == 0.0
        assert hist.percentile(99) == 0.0

    def test_reservoir_bounded(self):
        hist = Histogram("t", max_samples=8)
        for v in range(100):
            hist.observe(v)
        assert hist.count == 100
        assert len(hist._samples) == 8


class TestGrouping:
    def test_group_by_key(self):
        registry = MetricsRegistry()
        registry.inc("rewrite.rule.search_merge.attempts", 5)
        registry.inc("rewrite.rule.search_merge.hits", 2)
        registry.observe("rewrite.rule.search_merge.seconds", 0.25)
        registry.inc("rewrite.rule.and_true.attempts", 1)
        grouped = registry.group("rewrite.rule.")
        assert grouped["search_merge"]["attempts"] == 5
        assert grouped["search_merge"]["hits"] == 2
        assert grouped["search_merge"]["seconds"]["count"] == 1
        assert grouped["and_true"] == {"attempts": 1}

    def test_snapshot_is_json_ready(self):
        import json
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.observe("c.d", 1.5)
        json.dumps(registry.snapshot())


class TestEvalStatsAbsorption:
    def test_absorb_under_prefix(self):
        stats = EvalStats()
        stats.incr("tuples_scanned", 7)
        stats.incr("join_pairs", 3)
        registry = MetricsRegistry()
        registry.absorb_eval_stats(stats)
        assert registry.value("eval.tuples_scanned") == 7
        assert registry.value("eval.join_pairs") == 3
        # every tracked counter lands, even zero-valued ones
        assert "eval.fix_iterations" in registry.snapshot()["counters"]

    def test_stats_side_bridge(self):
        stats = EvalStats()
        stats.incr("tuples_output", 2)
        registry = MetricsRegistry()
        stats.to_metrics(registry, prefix="exec.")
        assert registry.value("exec.tuples_output") == 2


class TestReservoirSampling:
    def test_reservoir_is_deterministic_per_name(self):
        """The generator is seeded from the metric name: the same
        observation sequence always yields the same reservoir."""
        first, second = Histogram("t", max_samples=16), \
            Histogram("t", max_samples=16)
        for v in range(1000):
            first.observe(float(v))
            second.observe(float(v))
        assert first._samples == second._samples
        assert first.percentile(95) == second.percentile(95)

    def test_explicit_seed_overrides_the_name(self):
        first = Histogram("a", max_samples=16, seed=7)
        second = Histogram("b", max_samples=16, seed=7)
        for v in range(1000):
            first.observe(float(v))
            second.observe(float(v))
        assert first._samples == second._samples

    def test_percentiles_track_the_whole_stream(self):
        """Algorithm R keeps every observation equally likely, so the
        quantiles follow the stream -- a keep-first reservoir of 256
        would freeze p95 at <= 255 for this input."""
        hist = Histogram("t")          # default 256-slot reservoir
        for v in range(10_000):
            hist.observe(float(v))
        assert hist.percentile(95) > 5000.0
        assert hist.percentile(5) < 5000.0


class TestBucketHistogram:
    def test_log_bucket_ladder(self):
        bounds = log_bucket_bounds()
        assert len(bounds) == 27
        assert bounds[0] == pytest.approx(1e-6)
        for lower, upper in zip(bounds, bounds[1:]):
            assert upper == pytest.approx(lower * 2.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            BucketHistogram("t", bounds=(2.0, 1.0))

    def test_counts_are_exact(self):
        hist = BucketHistogram("t", bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 0, 1, 0, 1]   # last is overflow
        assert hist.cumulative_counts() == [
            (1.0, 2), (2.0, 2), (4.0, 3), (8.0, 3), (math.inf, 4),
        ]
        data = hist.to_dict()
        assert data["overflow"] == 1
        assert data["min"] == 0.5
        assert data["max"] == 100.0

    def test_percentile_lands_in_the_true_bucket(self):
        hist = BucketHistogram("t", bounds=tuple(
            float(b) for b in range(10, 110, 10)
        ))
        for value in range(1, 101):
            hist.observe(float(value))
        assert 40.0 <= hist.percentile(50) <= 60.0
        assert 90.0 <= hist.percentile(95) <= 100.0
        assert 95.0 <= hist.percentile(100) <= hist.max

    def test_single_valued_stream_is_clamped_exactly(self):
        hist = BucketHistogram("t", bounds=(1.0, 2.0, 4.0))
        for __ in range(100):
            hist.observe(1.5)
        assert hist.percentile(50) == 1.5
        assert hist.percentile(99) == 1.5

    def test_empty_is_safe(self):
        hist = BucketHistogram("t")
        assert hist.percentile(99) == 0.0
        assert hist.to_dict()["count"] == 0


class TestPrometheusExposition:
    def test_name_sanitisation(self):
        assert prometheus_name("rewrite.rule.a-b.seconds") == \
            "rewrite_rule_a_b_seconds"
        assert prometheus_name("ns:sub.metric_1") == "ns:sub_metric_1"
        assert prometheus_name("9lives") == "_9lives"

    def test_counter_summary_and_histogram_families(self):
        registry = MetricsRegistry()
        registry.inc("rewrite.passes", 3)
        for v in (0.1, 0.2, 0.3):
            registry.observe("rewrite.rule.r.seconds", v)
        registry.bucket("server.request.read.seconds").observe(0.05)
        text = registry.expose_text()
        assert "# TYPE rewrite_passes counter" in text
        assert "rewrite_passes 3" in text
        assert "# TYPE rewrite_rule_r_seconds summary" in text
        assert 'rewrite_rule_r_seconds{quantile="0.5"}' in text
        assert "rewrite_rule_r_seconds_count 3" in text
        assert "# TYPE server_request_read_seconds histogram" in text
        assert 'server_request_read_seconds_bucket{le="+Inf"} 1' in text
        assert "server_request_read_seconds_count 1" in text

    def test_bucket_cumulative_counts_are_monotone(self):
        registry = MetricsRegistry()
        bucket = registry.bucket("server.request.write.seconds")
        for value in (0.001, 0.01, 0.1, 1.0, 10.0):
            bucket.observe(value)
        lines = [line for line in registry.expose_text().splitlines()
                 if line.startswith(
                     'server_request_write_seconds_bucket')]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().expose_text() == ""


class TestEvalStatsSurface:
    def test_dunder_lookup_raises_with_message(self):
        stats = EvalStats()
        try:
            stats.__deepcopy__
        except AttributeError as error:
            assert "__deepcopy__" in str(error)
        else:
            raise AssertionError("expected AttributeError")

    def test_copy_and_deepcopy_work(self):
        import copy
        stats = EvalStats()
        stats.incr("tuples_scanned", 5)
        assert copy.copy(stats).tuples_scanned == 5
        assert copy.deepcopy(stats).tuples_scanned == 5

    def test_unknown_counter_message_lists_tracked(self):
        stats = EvalStats()
        try:
            stats.bogus
        except AttributeError as error:
            assert "bogus" in str(error)
            assert "tuples_scanned" in str(error)
        else:
            raise AssertionError("expected AttributeError")
