"""MetricsRegistry: counters, histograms, grouping, EvalStats
absorption."""

from repro.engine.stats import EvalStats
from repro.obs.metrics import Histogram, MetricsRegistry


class TestCounters:
    def test_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.inc("rewrite.passes")
        registry.inc("rewrite.passes", 2)
        assert registry.value("rewrite.passes") == 3

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_prefix_query(self):
        registry = MetricsRegistry()
        registry.inc("rewrite.rule.a.hits")
        registry.inc("rewrite.rule.b.hits", 4)
        registry.inc("eval.op.SEARCH")
        assert registry.counters_with_prefix("rewrite.rule.") == {
            "rewrite.rule.a.hits": 1,
            "rewrite.rule.b.hits": 4,
        }


class TestHistograms:
    def test_summary_statistics(self):
        hist = Histogram("t")
        for v in (1.0, 2.0, 3.0, 10.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 16.0
        assert hist.mean == 4.0
        assert hist.min == 1.0
        assert hist.max == 10.0

    def test_percentiles_from_samples(self):
        hist = Histogram("t")
        for v in range(101):
            hist.observe(float(v))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0

    def test_empty_histogram_is_safe(self):
        hist = Histogram("t")
        data = hist.to_dict()
        assert data["count"] == 0
        assert data["mean"] == 0.0
        assert hist.percentile(99) == 0.0

    def test_reservoir_bounded(self):
        hist = Histogram("t", max_samples=8)
        for v in range(100):
            hist.observe(v)
        assert hist.count == 100
        assert len(hist._samples) == 8


class TestGrouping:
    def test_group_by_key(self):
        registry = MetricsRegistry()
        registry.inc("rewrite.rule.search_merge.attempts", 5)
        registry.inc("rewrite.rule.search_merge.hits", 2)
        registry.observe("rewrite.rule.search_merge.seconds", 0.25)
        registry.inc("rewrite.rule.and_true.attempts", 1)
        grouped = registry.group("rewrite.rule.")
        assert grouped["search_merge"]["attempts"] == 5
        assert grouped["search_merge"]["hits"] == 2
        assert grouped["search_merge"]["seconds"]["count"] == 1
        assert grouped["and_true"] == {"attempts": 1}

    def test_snapshot_is_json_ready(self):
        import json
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.observe("c.d", 1.5)
        json.dumps(registry.snapshot())


class TestEvalStatsAbsorption:
    def test_absorb_under_prefix(self):
        stats = EvalStats()
        stats.incr("tuples_scanned", 7)
        stats.incr("join_pairs", 3)
        registry = MetricsRegistry()
        registry.absorb_eval_stats(stats)
        assert registry.value("eval.tuples_scanned") == 7
        assert registry.value("eval.join_pairs") == 3
        # every tracked counter lands, even zero-valued ones
        assert "eval.fix_iterations" in registry.snapshot()["counters"]

    def test_stats_side_bridge(self):
        stats = EvalStats()
        stats.incr("tuples_output", 2)
        registry = MetricsRegistry()
        stats.to_metrics(registry, prefix="exec.")
        assert registry.value("exec.tuples_output") == 2


class TestEvalStatsSurface:
    def test_dunder_lookup_raises_with_message(self):
        stats = EvalStats()
        try:
            stats.__deepcopy__
        except AttributeError as error:
            assert "__deepcopy__" in str(error)
        else:
            raise AssertionError("expected AttributeError")

    def test_copy_and_deepcopy_work(self):
        import copy
        stats = EvalStats()
        stats.incr("tuples_scanned", 5)
        assert copy.copy(stats).tuples_scanned == 5
        assert copy.deepcopy(stats).tuples_scanned == 5

    def test_unknown_counter_message_lists_tracked(self):
        stats = EvalStats()
        try:
            stats.bogus
        except AttributeError as error:
            assert "bogus" in str(error)
            assert "tuples_scanned" in str(error)
        else:
            raise AssertionError("expected AttributeError")
