"""Trace context propagation and the Telemetry exporter hub."""

import threading

import pytest

from repro import Database
from repro.obs import events as ev
from repro.obs.telemetry import (Telemetry, TraceContext, current_trace,
                                 use_trace)

_HEX = set("0123456789abcdef")


def _is_hex(value, length):
    return (isinstance(value, str) and len(value) == length
            and set(value) <= _HEX)


class TestTraceContext:
    def test_new_mints_w3c_sized_ids(self):
        context = TraceContext.new()
        assert _is_hex(context.trace_id, 32)
        assert _is_hex(context.span_id, 16)
        assert context.parent_id is None

    def test_every_trace_is_distinct(self):
        assert TraceContext.new().trace_id != TraceContext.new().trace_id

    def test_child_shares_trace_and_links_parent(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_id == root.span_id

    def test_siblings_get_distinct_span_ids(self):
        root = TraceContext.new()
        assert root.child().span_id != root.child().span_id

    def test_as_dict(self):
        root = TraceContext.new()
        assert root.as_dict() == {
            "trace_id": root.trace_id,
            "span_id": root.span_id,
            "parent_id": None,
            "fingerprint": "",
        }


class TestUseTrace:
    def test_no_context_outside_a_request(self):
        assert current_trace() is None

    def test_install_and_restore(self):
        context = TraceContext.new()
        with use_trace(context) as installed:
            assert installed is context
            assert current_trace() is context
        assert current_trace() is None

    def test_nesting_restores_the_outer_context(self):
        outer = TraceContext.new()
        inner = outer.child()
        with use_trace(outer):
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_restored_even_when_the_block_raises(self):
        with pytest.raises(RuntimeError):
            with use_trace(TraceContext.new()):
                raise RuntimeError("boom")
        assert current_trace() is None

    def test_contexts_are_per_thread(self):
        ready = threading.Event()
        release = threading.Event()
        results = {}

        def worker():
            context = TraceContext.new()
            with use_trace(context):
                ready.set()
                release.wait(timeout=10.0)
                results["held"] = current_trace().trace_id == context.trace_id

        thread = threading.Thread(target=worker)
        thread.start()
        assert ready.wait(timeout=10.0)
        # the worker's context must be invisible on this thread, and
        # installing one here must not leak into the worker
        assert current_trace() is None
        with use_trace(TraceContext.new()):
            release.set()
            thread.join(timeout=10.0)
        assert results["held"] is True


class TestTelemetry:
    def test_bare_hub_keeps_the_null_sink_path(self):
        hub = Telemetry(collect=False)
        assert not hub.bus          # no subscribers: producers skip events

    def test_collector_folds_events_into_the_registry(self):
        hub = Telemetry()
        assert hub.bus              # the collector subscribes
        hub.bus.emit(ev.RuleFired(
            block="B", rule="R", path=(), size_before=3,
            size_after=2, duration=0.001,
        ))
        assert hub.metrics.value("rewrite.rule.R.fired") == 1

    def test_jsonl_sink_mounts_and_closes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        hub = Telemetry(log_path=str(path), collect=False)
        hub.bus.emit(ev.PassEnd(pass_index=0, changed=False, duration=0.0))
        hub.close()
        assert hub.sink.stats()["written"] == 1
        assert path.read_text().count("\n") == 1

    def test_wire_database_points_engine_and_wal_at_the_bus(self, tmp_path):
        hub = Telemetry(collect=False)
        memory = Database()
        hub.wire_database(memory)
        assert memory.obs is hub.bus

        durable = Database(path=str(tmp_path / "wired.db"))
        hub.wire_database(durable)
        assert durable.obs is hub.bus
        assert durable.durability.obs is hub.bus
        durable.close()

    def test_export_spans_empty_without_the_otlp_exporter(self):
        assert Telemetry(collect=False).export_spans() == {
            "resourceSpans": [],
        }

    def test_otlp_exporter_collects_spans(self):
        hub = Telemetry(otlp=True, collect=False)
        with use_trace(TraceContext.new()):
            hub.bus.emit(ev.PhaseStart(phase="rewrite"))
            hub.bus.emit(ev.PhaseEnd(phase="rewrite", duration=0.002))
        document = hub.export_spans()
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert [span["name"] for span in spans] == ["phase:rewrite"]

    def test_expose_text_renders_the_registry(self):
        hub = Telemetry()
        hub.bus.emit(ev.PassEnd(pass_index=0, changed=True, duration=0.0))
        text = hub.expose_text()
        assert "# TYPE rewrite_passes counter" in text
        assert "rewrite_passes 1" in text
