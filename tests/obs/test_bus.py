"""EventBus: subscription, filtering, the null-sink fast path, and
misbehaving-subscriber quarantine."""

import pytest

from repro.obs.bus import MAX_SUBSCRIBER_ERRORS, EventBus
from repro.obs.events import (BlockStart, PassEnd, RuleAttempt,
                              RuleFired, SubscriberDetached)
from repro.obs.metrics import MetricsRegistry


def fired(rule="r", block="b"):
    return RuleFired(block, rule, (), 3, 2, 0.001)


class TestSubscription:
    def test_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        event = fired()
        bus.emit(event)
        assert seen == [event]

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[RuleFired])
        bus.emit(BlockStart("b", 0, None, "applications"))
        bus.emit(fired())
        assert [type(e).__name__ for e in seen] == ["RuleFired"]

    def test_unsubscribe_by_handler(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit(fired())
        assert seen == []
        assert not bus.active

    def test_cancel_via_subscription_handle(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe(seen.append)
        sub.cancel()
        bus.emit(fired())
        assert seen == []

    def test_multiple_subscribers_all_called(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe(a.append)
        bus.subscribe(b.append)
        bus.emit(fired())
        assert len(a) == len(b) == 1


class TestNullSinkFastPath:
    def test_empty_bus_is_falsy(self):
        bus = EventBus()
        assert not bus
        assert not bus.active

    def test_bus_with_subscriber_is_truthy(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        assert bus
        assert bus.active

    def test_engine_treats_empty_bus_as_none(self):
        """RewriteEngine normalises a subscriber-less bus to None, so
        the hot loop never constructs events."""
        from repro.rules.control import Block, RewriteEngine, Seq
        from repro.rules.rule import RuleContext
        from repro.terms.parser import parse_term

        engine = RewriteEngine(Seq([Block("empty", [])]), obs=EventBus())
        result = engine.rewrite(parse_term("F(1)"), RuleContext())
        assert result.applications == 0


class TestQuarantine:
    def test_failing_subscriber_dropped_after_threshold(self):
        bus = EventBus()

        def bad(event):
            raise RuntimeError("sink bug")

        seen = []
        bus.subscribe(bad)
        bus.subscribe(seen.append)
        for __ in range(MAX_SUBSCRIBER_ERRORS + 2):
            bus.emit(fired())
        # the good subscriber kept receiving every RuleFired; the bad
        # one was dropped, which the survivor was told about
        rule_events = [e for e in seen if isinstance(e, RuleFired)]
        assert len(rule_events) == MAX_SUBSCRIBER_ERRORS + 2
        assert len(bus._subscriptions) == 1

    def test_detachment_is_observable(self):
        metrics = MetricsRegistry()
        bus = EventBus(metrics=metrics)

        def bad(event):
            raise RuntimeError("sink bug")

        seen = []
        bus.subscribe(bad)
        bus.subscribe(seen.append)
        for __ in range(MAX_SUBSCRIBER_ERRORS):
            bus.emit(fired())
        detached = [e for e in seen if isinstance(e, SubscriberDetached)]
        assert len(detached) == 1
        assert detached[0].errors == MAX_SUBSCRIBER_ERRORS
        assert "bad" in detached[0].handler
        assert metrics.value("obs.subscribers.detached") == 1

    def test_detached_counter_without_remaining_subscribers(self):
        metrics = MetricsRegistry()
        bus = EventBus(metrics=metrics)

        def bad(event):
            raise RuntimeError("sink bug")

        bus.subscribe(bad)
        for __ in range(MAX_SUBSCRIBER_ERRORS):
            bus.emit(fired())
        assert not bus.active
        assert metrics.value("obs.subscribers.detached") == 1

    def test_success_resets_error_count(self):
        bus = EventBus()
        calls = []

        def flaky(event):
            calls.append(event)
            if isinstance(event, PassEnd):
                raise RuntimeError("only passes fail")

        bus.subscribe(flaky)
        for __ in range(MAX_SUBSCRIBER_ERRORS * 3):
            bus.emit(PassEnd(0, True, 0.0))  # fails
            bus.emit(fired())                # succeeds, resets
        assert bus.active


class TestEventSurface:
    def test_as_dict_includes_event_name(self):
        data = fired().as_dict()
        assert data["event"] == "RuleFired"
        assert data["size_before"] == 3

    def test_attempt_fields(self):
        event = RuleAttempt("merge", "search_merge", (1, 2), True, 0.5)
        assert event.field_names() == (
            "block", "rule", "path", "matched", "duration"
        )

    def test_events_are_frozen(self):
        with pytest.raises(Exception):
            fired().rule = "other"
