"""JSONL sink (rotation, sampling, trace stamping) and OTLP export."""

import json
import os

import pytest

from repro.obs import events as ev
from repro.obs.bus import EventBus
from repro.obs.export import JsonlSink, OtlpSpanExporter, spans_to_otlp
from repro.obs.telemetry import TraceContext, use_trace
from repro.obs.tracer import Tracer


def _fired(rule="R"):
    return ev.RuleFired(block="B", rule=rule, path=(), size_before=3,
                        size_after=2, duration=0.001)


def _attempt():
    return ev.RuleAttempt(block="B", rule="R", path=(), matched=False,
                          duration=0.0)


def _read(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestJsonlSink:
    def test_rejects_nonpositive_rotation_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "log.jsonl"), max_bytes=0)

    def test_records_carry_event_and_timestamp(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = JsonlSink(path, clock=lambda: 123.5)
        sink(_fired())
        sink.close()
        (record,) = _read(path)
        assert record["event"] == "RuleFired"
        assert record["rule"] == "R"
        assert record["ts"] == 123.5
        assert "trace_id" not in record     # emitted outside any request

    def test_records_are_trace_stamped_at_delivery(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = JsonlSink(path)
        root = TraceContext.new()
        child = root.child()
        with use_trace(child):
            sink(_fired())
        sink.close()
        (record,) = _read(path)
        assert record["trace_id"] == root.trace_id
        assert record["span_id"] == child.span_id
        assert record["parent_id"] == root.span_id

    def test_rotation_shifts_generations(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = JsonlSink(path, max_bytes=150, keep=2)
        for __ in range(12):
            sink(_fired())
        sink.close()
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert os.path.exists(path + ".2")
        assert not os.path.exists(path + ".3")   # oldest dropped, not kept
        # every surviving generation is intact JSONL
        for suffix in ("", ".1", ".2"):
            for record in _read(path + suffix):
                assert record["event"] == "RuleFired"

    def test_sampling_keeps_the_first_of_each_window(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = JsonlSink(path, sample={"RuleAttempt": 5})
        for __ in range(10):
            sink(_attempt())
        sink(_fired())                      # unlisted kinds never dropped
        sink.close()
        records = _read(path)
        kinds = [record["event"] for record in records]
        assert kinds.count("RuleAttempt") == 2    # windows 0-4 and 5-9
        assert kinds.count("RuleFired") == 1
        assert sink.stats() == {"written": 3, "dropped": 8}

    def test_attach_and_detach_on_a_bus(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = JsonlSink(path)
        bus = EventBus()
        assert not bus
        sink.attach(bus)
        assert bus
        bus.emit(_fired())
        sink.detach()
        assert not bus
        sink.close()
        assert sink.stats()["written"] == 1


class TestSpansToOtlp:
    def _tree(self):
        tracer = Tracer()
        tracer.on_event(ev.PhaseStart(phase="rewrite"))
        tracer.on_event(ev.BlockStart(block="simplify", pass_index=0,
                                      limit=None, count="many"))
        tracer.on_event(ev.BlockEnd(block="simplify", pass_index=0,
                                    applications=1, checks=2,
                                    budget_consumed=3, duration=0.001))
        tracer.on_event(ev.PhaseEnd(phase="rewrite", duration=0.002))
        return tracer.span_tree()

    def test_renders_a_parented_span_tree(self):
        trace = TraceContext.new()
        document = spans_to_otlp(self._tree(), trace=trace,
                                 epoch_anchor=0.0)
        (resource,) = document["resourceSpans"]
        assert resource["resource"]["attributes"] == [{
            "key": "service.name", "value": {"stringValue": "repro"},
        }]
        (scope,) = resource["scopeSpans"]
        phase, block = scope["spans"]
        assert phase["name"] == "phase:rewrite"
        assert block["name"] == "block:simplify"
        for span in (phase, block):
            assert span["traceId"] == trace.trace_id
            assert span["kind"] == 1
            assert span["startTimeUnixNano"].isdigit()
            assert int(span["endTimeUnixNano"]) >= int(
                span["startTimeUnixNano"])
        assert phase["parentSpanId"] == trace.span_id
        assert block["parentSpanId"] == phase["spanId"]

    def test_attributes_become_string_value_pairs(self):
        document = spans_to_otlp(self._tree(), epoch_anchor=0.0)
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        block = spans[1]
        attrs = {pair["key"]: pair["value"]["stringValue"]
                 for pair in block["attributes"]}
        assert attrs["applications"] == "1"

    def test_mints_a_trace_when_none_given(self):
        document = spans_to_otlp(self._tree(), epoch_anchor=0.0)
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        trace_ids = {span["traceId"] for span in spans}
        assert len(trace_ids) == 1
        assert len(trace_ids.pop()) == 32


class TestOtlpSpanExporter:
    def _emit_phase(self, bus, phase):
        bus.emit(ev.PhaseStart(phase=phase))
        bus.emit(ev.PhaseEnd(phase=phase, duration=0.001))

    def test_batches_per_trace_and_drains_on_export(self):
        exporter = OtlpSpanExporter()
        bus = EventBus()
        exporter.attach(bus)
        first, second = TraceContext.new(), TraceContext.new()
        with use_trace(first):
            self._emit_phase(bus, "rewrite")
        with use_trace(second):
            self._emit_phase(bus, "evaluate")
        self._emit_phase(bus, "typecheck")       # untraced traffic

        document = exporter.export()
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        by_trace = {span["traceId"]: span["name"] for span in spans}
        assert by_trace[first.trace_id] == "phase:rewrite"
        assert by_trace[second.trace_id] == "phase:evaluate"
        assert len(spans) == 3                   # untraced kept, own trace

        # export drains: a second call starts from empty
        assert exporter.export() == {"resourceSpans": []}

    def test_detach_stops_collection(self):
        exporter = OtlpSpanExporter()
        bus = EventBus()
        exporter.attach(bus)
        exporter.detach()
        assert not bus
        assert exporter.export() == {"resourceSpans": []}
