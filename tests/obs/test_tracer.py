"""Tracer: direct spans, event-stream folding, and JSON export."""

import json

from repro.obs import events as ev
from repro.obs.bus import EventBus
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


class TestDirectSpans:
    def test_nesting_and_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.span_tree()
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.duration >= outer.children[0].duration > 0

    def test_durations_non_negative_with_real_clock(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        for root in tracer.span_tree():
            for span in root.walk():
                assert span.duration >= 0.0

    def test_mark_is_zero_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            tracer.mark("note", detail=7)
        (outer,) = tracer.span_tree()
        (mark,) = outer.children
        assert mark.duration == 0.0
        assert mark.attrs["detail"] == 7

    def test_pop_on_empty_stack_is_safe(self):
        tracer = Tracer()
        assert tracer.pop() is None

    def test_json_round_trip(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", kind="phase"):
            pass
        data = json.loads(tracer.dumps())
        assert data[0]["name"] == "outer"
        assert data[0]["kind"] == "phase"
        assert data[0]["children"] == []

    def test_reset_clears_everything(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.span_tree() == []


class TestEventFolding:
    def emit_rewrite(self, bus):
        bus.emit(ev.PhaseStart("rewrite"))
        bus.emit(ev.BlockStart("merge", 0, 10, "applications"))
        bus.emit(ev.MethodCall("SUBSTITUTE", 3, True, 0.001))
        bus.emit(ev.ConstraintCheck("ISA", True))
        bus.emit(ev.RuleAttempt("merge", "search_merge", (), True, 0.002))
        bus.emit(ev.RuleFired("merge", "search_merge", (), 30, 20, 0.002))
        bus.emit(ev.BlockEnd("merge", 0, 1, 3, 1, 0.01))
        bus.emit(ev.PassEnd(0, True, 0.02))
        bus.emit(ev.PhaseEnd("rewrite", 0.03))

    def test_hierarchy_phase_block_rule_method(self):
        tracer = Tracer(clock=FakeClock())
        bus = EventBus()
        tracer.attach(bus)
        self.emit_rewrite(bus)
        (phase,) = tracer.span_tree()
        assert (phase.kind, phase.name) == ("phase", "rewrite")
        block = phase.children[0]
        assert (block.kind, block.name) == ("block", "merge")
        assert block.attrs["budget_consumed"] == 1
        (rule,) = [c for c in block.children if c.kind == "rule"]
        assert rule.name == "search_merge"
        assert rule.attrs["size_before"] == 30
        kinds = {c.kind for c in rule.children}
        assert kinds == {"method", "constraint"}

    def test_pass_marks_recorded(self):
        tracer = Tracer(clock=FakeClock())
        bus = EventBus()
        tracer.attach(bus)
        self.emit_rewrite(bus)
        (phase,) = tracer.span_tree()
        passes = [c for c in phase.children if c.kind == "pass"]
        assert len(passes) == 1
        assert passes[0].attrs["changed"] is True

    def test_misses_dropped_by_default(self):
        tracer = Tracer(clock=FakeClock())
        bus = EventBus()
        tracer.attach(bus)
        bus.emit(ev.BlockStart("simplify", 0, None, "applications"))
        bus.emit(ev.RuleAttempt("simplify", "and_true", (), False, 0.001))
        bus.emit(ev.BlockEnd("simplify", 0, 0, 1, 0, 0.01))
        (block,) = tracer.span_tree()
        assert block.children == []

    def test_misses_kept_when_requested(self):
        tracer = Tracer(keep_misses=True, clock=FakeClock())
        bus = EventBus()
        tracer.attach(bus)
        bus.emit(ev.BlockStart("simplify", 0, None, "applications"))
        bus.emit(ev.RuleAttempt("simplify", "and_true", (), False, 0.001))
        bus.emit(ev.BlockEnd("simplify", 0, 0, 1, 0, 0.01))
        (block,) = tracer.span_tree()
        assert [c.kind for c in block.children] == ["miss"]

    def test_pending_methods_cleared_on_miss(self):
        """A failed attempt's method calls must not leak into the next
        fired rule's children."""
        tracer = Tracer(clock=FakeClock())
        bus = EventBus()
        tracer.attach(bus)
        bus.emit(ev.BlockStart("merge", 0, None, "applications"))
        bus.emit(ev.MethodCall("ADORNMENT", 4, False, 0.001))
        bus.emit(ev.RuleAttempt("merge", "fix_reduce", (), False, 0.002))
        bus.emit(ev.RuleFired("merge", "search_merge", (), 9, 5, 0.001))
        bus.emit(ev.BlockEnd("merge", 0, 1, 2, 1, 0.01))
        (block,) = tracer.span_tree()
        (rule,) = block.children
        assert rule.name == "search_merge"
        assert rule.children == []

    def test_eval_ops_become_leaves(self):
        tracer = Tracer(clock=FakeClock())
        bus = EventBus()
        tracer.attach(bus)
        bus.emit(ev.EvalOp("SEARCH", 12, 0.004))
        (leaf,) = tracer.span_tree()
        assert (leaf.kind, leaf.name) == ("eval", "SEARCH")
        assert leaf.attrs["rows_out"] == 12
