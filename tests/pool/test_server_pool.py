"""The pool behind the server: routing, fallback, kill, introspection,
explain's execution section and the CLI ``.workers`` verbs."""

import threading
import time

import pytest

from repro.cli import Shell
from repro.core.explain import validate_explain
from repro.engine.database import Database
from repro.errors import QueryCancelled
from repro.pool import PoolConfig
from repro.server import Server


def _server(workers=1, config=None):
    db = Database()
    db.execute("CREATE TABLE T (A : INT, B : INT)")
    db.execute("INSERT INTO T VALUES (1, 10), (2, 20), (3, 30)")
    server = Server(db)
    pool = server.enable_pool(
        workers, config=config or PoolConfig(
            workers=workers, monitor_interval_s=0.02,
            restart_backoff_base_s=0.01,
        ),
    )
    assert pool.wait_ready(timeout_s=60.0, workers=workers)
    return server


class TestRouting:
    def test_eligible_reads_run_on_the_pool(self):
        server = _server()
        try:
            result = server.query("SELECT A, B FROM T WHERE A = 2")
            assert result.rows == [(2, 20)]
            assert server.pool.dispatched == 1
            assert server.stats()["pool"]["dispatched"] == 1
        finally:
            server.close()

    def test_writes_stay_in_process_and_reads_see_them(self):
        server = _server()
        try:
            server.execute("INSERT INTO T VALUES (4, 40)")
            rows = server.query("SELECT A FROM T").rows
            assert sorted(rows) == [(1,), (2,), (3,), (4,)]
            # the write itself was never dispatched
            assert server.pool.dispatched == 1
        finally:
            server.close()

    def test_union_selects_are_pooled_reads(self):
        # regression (qa tier oracle find): a top-level UNION parses
        # as ast.UnionSelect, which the worker's Select-only read
        # check sent down the DML path -- it ran as a write on the
        # worker's private replica and returned no rows
        server = _server()
        try:
            query = "SELECT A FROM T UNION SELECT A FROM T"
            rows = server.query(query).rows
            assert sorted(rows) == [(1,), (2,), (3,)]
            assert server.pool.dispatched == 1  # classified as a read
        finally:
            server.close()

    def test_sys_reads_stay_in_process(self):
        server = _server()
        try:
            before = server.pool.dispatched
            names = server.query("SELECT Name FROM sys.relations").rows
            assert ("SYS.WORKERS",) in names
            assert server.pool.dispatched == before
        finally:
            server.close()

    def test_unavailable_pool_degrades_to_in_process(self):
        server = _server()
        try:
            # the supervisor dies out from under the server (crash
            # loop, operator stop): reads must degrade, not fail
            server.pool.stop()
            rows = server.query("SELECT A FROM T WHERE A = 1").rows
            assert rows == [(1,)]
            counters = server.metrics.snapshot()["counters"]
            assert counters.get("pool.fallbacks", 0) >= 1
        finally:
            server.close()

    def test_disable_pool_detaches_cleanly(self):
        server = _server()
        try:
            hook = server.pool.note_write
            server.disable_pool()
            assert server.pool is None
            assert hook not in server.db.commit_hooks
            assert server.query("SELECT A FROM T WHERE A = 3").rows \
                == [(3,)]
        finally:
            server.close()


class TestKill:
    def test_server_kill_terminates_the_pooled_statement(self):
        from repro.pool.protocol import send_frame
        server = _server(config=PoolConfig(
            workers=1, monitor_interval_s=0.02, kill_grace_s=0.2,
        ))
        try:
            pool = server.pool
            slot = pool._slots[0]
            # wedge the worker so the statement is genuinely in flight
            # when the kill arrives
            send_frame(slot.proc.stdin,
                       {"type": "stall", "seconds": 30.0, "beat": True})
            outcome = {}

            def run():
                try:
                    server.query("SELECT A FROM T")
                except Exception as error:  # noqa: BLE001
                    outcome["error"] = error

            thread = threading.Thread(target=run)
            thread.start()
            # find the in-flight statement through the registry (what
            # sys.queries shows) and kill it by id
            query_id = None
            deadline = time.perf_counter() + 30.0
            while query_id is None and time.perf_counter() < deadline:
                active = server.db.lifecycle.active()
                if active:
                    query_id = active[0].query_id
                else:
                    time.sleep(0.01)
            assert query_id is not None
            assert server.kill(query_id)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert isinstance(outcome.get("error"), QueryCancelled)
            # the registry's done-ring records the worker it ran on
            done = server.query(
                "SELECT Worker, Cancelled FROM sys.queries"
            ).rows
            assert ("w1", True) in done
        finally:
            server.close()


class TestIntrospection:
    def test_sys_workers_reflects_the_pool(self):
        server = _server()
        try:
            server.query("SELECT A FROM T")
            rows = server.query(
                "SELECT Worker, State, Statements FROM sys.workers"
            ).rows
            assert rows == [("w1", "idle", 1)]
        finally:
            server.close()

    def test_sys_workers_is_empty_without_a_pool(self):
        db = Database()
        server = Server(db)
        try:
            assert server.query("SELECT * FROM sys.workers").rows == []
        finally:
            server.close()

    def test_sys_queries_records_queue_wait_and_worker(self):
        server = _server()
        try:
            server.query("SELECT A FROM T")
            rows = server.query(
                "SELECT Worker, QueueMs FROM sys.queries"
            ).rows
            pooled = [r for r in rows if r[0] == "w1"]
            assert pooled
            assert all(wait >= 0.0 for _, wait in rows)
        finally:
            server.close()


class TestExplain:
    def test_execution_section_names_the_tier(self):
        server = _server()
        try:
            report = server.explain_json("SELECT A FROM T")
            assert report["execution"]["tier"] == "pool"
            pool = report["execution"]["pool"]
            assert pool["state"] == "running"
            assert pool["workers"] == 1
            assert validate_explain(report) == []
            # a sys.* read is not pool-routable, and says so
            report = server.explain_json(
                "SELECT Name FROM sys.relations")
            assert report["execution"]["tier"] == "inprocess"
            assert validate_explain(report) == []
        finally:
            server.close()

    def test_core_explain_defaults_to_inprocess(self):
        db = Database()
        db.execute("CREATE TABLE T (A : INT, B : INT)")
        report = db.explain_json("SELECT A FROM T")
        assert report["execution"] == {
            "tier": "inprocess", "worker": None, "pool": None,
        }
        assert validate_explain(report) == []


class TestShellCommands:
    def test_workers_requires_serving(self):
        shell = Shell()
        assert shell.feed(".workers") == [
            "error: not serving (use .serve on)"
        ]

    def test_workers_on_status_off(self):
        shell = Shell()
        shell.feed("CREATE TABLE T (A : INT, B : INT);")
        shell.feed("INSERT INTO T VALUES (1, 10), (2, 20);")
        assert shell.feed(".serve on")[0].startswith("serving on")
        try:
            assert shell.feed(".workers") == ["pool is off"]
            assert shell.feed(".workers on") == ["pool on: 2 worker(s)"]
            shell.feed("SELECT A FROM T;")
            status = shell.feed(".workers status")
            assert status[0].startswith("pool running: 2 worker(s)")
            assert any(line.strip().startswith("w1:")
                       for line in status)
            assert shell.feed(".workers off") == ["pool off"]
            assert shell.feed(".workers off") == ["pool is off"]
            assert shell.feed(".workers bogus") == [
                "usage: .workers [on | off | N | status]"
            ]
        finally:
            shell.feed(".serve off")

    def test_workers_n_sets_the_count(self):
        shell = Shell()
        shell.feed(".serve on")
        try:
            assert shell.feed(".workers 1") == ["pool on: 1 worker(s)"]
            assert shell.server.pool.summary()["workers"] == 1
        finally:
            shell.feed(".serve off")

    def test_queries_shows_wait_and_execution_site(self):
        shell = Shell()
        shell.feed("CREATE TABLE T (A : INT, B : INT);")
        shell.feed("INSERT INTO T VALUES (1, 10);")
        shell.feed(".serve on")
        try:
            shell.feed(".workers 1")
            shell.feed("SELECT A FROM T;")
            lines = shell.feed(".queries")
            assert any("@w1" in line for line in lines)
            assert all("wait" in line for line in lines)
        finally:
            shell.feed(".serve off")
