"""Supervisor tests: boot, log shipping, the retry/no-retry matrix,
hang detection, cancellation escalation and the crash-loop breaker.

Crash injection is deterministic throughout: SIGKILL an *idle* worker
first, then submit -- the supervisor acquires the dead seat, notices
the death in its wait loop, and the failover policy answers.  No
sleep-and-hope timing against an in-flight statement.
"""

import os
import signal
import threading
import time

import pytest

from repro.engine.database import Database
from repro.errors import (ParseError, PoolUnavailable, QueryCancelled,
                          WorkerCrashed)
from repro.pool import PoolConfig, Supervisor
from repro.pool.protocol import send_frame


def _database():
    db = Database()
    db.execute("CREATE TABLE T (A : INT, B : INT)")
    db.execute("INSERT INTO T VALUES (1, 10), (2, 20), (3, 30)")
    return db


def _pool(db, **overrides):
    defaults = dict(workers=1, monitor_interval_s=0.02,
                    restart_backoff_base_s=0.01,
                    restart_backoff_max_s=0.1)
    defaults.update(overrides)
    pool = Supervisor(db, PoolConfig(**defaults))
    db.commit_hooks.append(pool.note_write)
    pool.start()
    assert pool.wait_ready(timeout_s=60.0, workers=1)
    return pool


def _kill_idle(pool):
    """SIGKILL one idle worker; returns its seat."""
    deadline = time.perf_counter() + 30.0
    while time.perf_counter() < deadline:
        for slot in pool._slots:
            if slot.state == "idle" and slot.proc is not None:
                os.kill(slot.proc.pid, signal.SIGKILL)
                return slot
        time.sleep(0.01)
    raise AssertionError("no idle worker to kill")


class TestDispatch:
    def test_boot_and_query(self):
        db = _database()
        pool = _pool(db)
        try:
            result = pool.submit("SELECT A, B FROM T WHERE A > 1")
            assert sorted(result.rows) == [(2, 20), (3, 30)]
            assert [c[0] for c in result.schema] == ["A", "B"]
            assert pool.dispatched == 1
            summary = pool.summary()
            assert summary["state"] == "running"
            assert summary["workers"] == 1
            assert summary["crashes"] == 0
        finally:
            pool.stop()

    def test_log_shipping_keeps_reads_fresh(self):
        db = _database()
        pool = _pool(db)
        try:
            assert len(pool.submit("SELECT A FROM T").rows) == 3
            # committed after the worker booted: the commit hook feeds
            # the shipped log, the next dispatch carries the delta
            db.execute("INSERT INTO T VALUES (4, 40)")
            db.execute("DELETE FROM T WHERE A = 1")
            rows = pool.submit("SELECT A FROM T").rows
            assert sorted(rows) == [(2,), (3,), (4,)]
            assert pool._slots[0].version == pool._version == 2
        finally:
            pool.stop()

    def test_remote_errors_come_back_typed(self):
        db = _database()
        pool = _pool(db)
        try:
            with pytest.raises(ParseError):
                pool.submit("SELECT FROM FROM T")
        finally:
            pool.stop()

    def test_sys_statements_are_not_eligible(self):
        pool = Supervisor(Database())
        assert pool.eligible("SELECT A FROM T")
        assert not pool.eligible("SELECT Name FROM sys.relations")
        assert not pool.eligible("select * from SYS.queries")


class TestFailurePolicy:
    def test_read_retries_transparently_after_kill9(self):
        db = _database()
        pool = _pool(db)
        try:
            _kill_idle(pool)
            # the seat is dead but still marked idle: the submit below
            # lands on it, crashes, and must retry on the respawn
            result = pool.submit("SELECT A FROM T WHERE A = 2")
            assert result.rows == [(2,)]
            assert pool.retries >= 1
            assert pool.crashes >= 1
        finally:
            pool.stop()

    def test_read_retry_budget_is_finite(self):
        db = _database()
        pool = _pool(db, read_retry_limit=0)
        try:
            _kill_idle(pool)
            with pytest.raises(WorkerCrashed) as info:
                pool.submit("SELECT A FROM T")
            assert info.value.attempts == 1
            assert info.value.worker_id == "w1"
        finally:
            pool.stop()

    def test_dml_never_retries(self):
        db = _database()
        pool = _pool(db)
        try:
            _kill_idle(pool)
            with pytest.raises(WorkerCrashed) as info:
                pool.submit("DELETE FROM T WHERE A = 1",
                            request_class="write")
            assert info.value.attempts == 1
            # the parent database was never touched: the write went to
            # the (now dead) worker's private replica only
            assert len(db.query("SELECT A FROM T").rows) == 3
        finally:
            pool.stop()

    def test_dead_worker_respawns_with_fresh_state(self):
        db = _database()
        pool = _pool(db)
        try:
            slot = _kill_idle(pool)
            deadline = time.perf_counter() + 30.0
            while slot.restarts == 0 and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert slot.restarts == 1
            assert pool.wait_ready(timeout_s=60.0, workers=1)
            db.execute("INSERT INTO T VALUES (9, 90)")
            rows = pool.submit("SELECT B FROM T WHERE A = 9").rows
            assert rows == [(90,)]
        finally:
            pool.stop()

    def test_hang_detection_reaps_a_wedged_worker(self):
        db = _database()
        pool = _pool(db, heartbeat_interval_s=0.05,
                     heartbeat_miss_limit=3)
        try:
            slot = pool._slots[0]
            # wedge the worker: heartbeats stop, as if a native call
            # were holding it (the run loop sleeps without beating)
            send_frame(slot.proc.stdin, {"type": "stall",
                                         "seconds": 30.0})
            deadline = time.perf_counter() + 30.0
            while pool.crashes == 0 and time.perf_counter() < deadline:
                time.sleep(0.02)
            assert pool.crashes >= 1
            assert pool.wait_ready(timeout_s=60.0, workers=1)
            assert pool.submit("SELECT A FROM T WHERE A = 1").rows \
                == [(1,)]
        finally:
            pool.stop()


class TestCancellation:
    def test_cancel_escalates_to_sigkill(self):
        db = _database()
        db.govern_statements = True
        pool = _pool(db, kill_grace_s=0.2)
        try:
            slot = pool._slots[0]
            # wedge the worker first: the execute frame queues behind
            # the stall, the cancel frame is ignored for longer than
            # the grace period, and the supervisor must escalate
            send_frame(slot.proc.stdin, {"type": "stall",
                                         "seconds": 30.0,
                                         "beat": True})
            failure = {}

            def run():
                with db._statement_context(
                        source="SELECT A FROM T") as context:
                    threading.Timer(0.05,
                                    lambda: context.cancel("kill")
                                    ).start()
                    try:
                        pool.submit("SELECT A FROM T", context=context)
                    except Exception as error:  # noqa: BLE001
                        failure["error"] = error

            thread = threading.Thread(target=run)
            thread.start()
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            # the killed statement surfaces as a cancellation, not as
            # a worker fault
            assert isinstance(failure.get("error"), QueryCancelled)
            assert pool.escalated_kills == 1
        finally:
            pool.stop()


class TestCircuitBreaker:
    def test_crash_loop_opens_then_rearms(self):
        db = _database()
        pool = _pool(db, crash_loop_threshold=2,
                     crash_loop_window_s=30.0,
                     crash_loop_cooldown_s=0.3)
        try:
            for _ in range(2):
                _kill_idle(pool)
                deadline = time.perf_counter() + 30.0
                while (pool._slots[0].state != "dead"
                       and pool.state == "running"
                       and time.perf_counter() < deadline):
                    time.sleep(0.01)
                if pool.state == "broken":
                    break
                pool.wait_ready(timeout_s=60.0, workers=1)
            assert pool.state == "broken"
            with pytest.raises(PoolUnavailable) as info:
                pool.submit("SELECT A FROM T")
            assert info.value.reason == "circuit-open"
            assert info.value.retry_after >= 0.0
            # after the cooldown the monitor re-arms and respawns
            deadline = time.perf_counter() + 30.0
            while pool.state != "running" \
                    and time.perf_counter() < deadline:
                time.sleep(0.02)
            assert pool.state == "running"
            assert pool.wait_ready(timeout_s=60.0, workers=1)
            assert len(pool.submit("SELECT A FROM T").rows) == 3
        finally:
            pool.stop()

    def test_saturated_pool_refuses_with_hint(self):
        db = _database()
        pool = _pool(db)
        try:
            slot = pool._slots[0]
            with pool._lock:
                slot.state = "busy"  # the one seat is taken
            try:
                with pytest.raises(PoolUnavailable) as info:
                    pool.submit("SELECT A FROM T")
            finally:
                with pool._lock:
                    slot.state = "idle"
            assert info.value.reason == "saturated"
            assert info.value.retry_after > 0
        finally:
            pool.stop()

    def test_stopped_pool_refuses(self):
        db = _database()
        pool = _pool(db)
        pool.stop()
        with pytest.raises(PoolUnavailable) as info:
            pool.submit("SELECT A FROM T")
        assert info.value.reason == "stopped"


class TestIntrospection:
    def test_rows_and_summary_shapes(self):
        db = _database()
        pool = _pool(db, workers=2)
        try:
            assert pool.wait_ready(timeout_s=60.0, workers=2)
            pool.submit("SELECT A FROM T")
            rows = pool.rows()
            assert [row[0] for row in rows] == ["w1", "w2"]
            for (worker, pid, state, statements, restarts, query_id,
                 source, beat_age, version) in rows:
                assert pid > 0
                assert state == "idle"
                assert restarts == 0
                assert query_id == "" and source == ""
                assert beat_age >= 0.0
            assert sum(row[3] for row in rows) == 1  # one statement
            summary = pool.summary()
            assert summary == {
                "workers": 2, "busy": 0, "ready": 2,
                "state": "running", "dispatched": 1, "retries": 0,
                "crashes": 0, "restarts": 0, "version": 0,
            }
        finally:
            pool.stop()
