"""Framing tests: every way a peer can die mid-write is a typed error."""

import io
import struct

import pytest

from repro.pool.protocol import (MAX_FRAME_BYTES, FrameError, recv_frame,
                                 send_frame)


def _buffer(*messages):
    stream = io.BytesIO()
    for message in messages:
        send_frame(stream, message)
    stream.seek(0)
    return stream


class TestRoundtrip:
    def test_single_frame(self):
        stream = _buffer({"type": "hello", "pid": 42})
        assert recv_frame(stream) == {"type": "hello", "pid": 42}

    def test_frames_preserve_order(self):
        stream = _buffer({"type": "a", "n": 1}, {"type": "b", "n": 2},
                         {"type": "c", "n": 3})
        kinds = [recv_frame(stream)["type"] for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_send_returns_bytes_written(self):
        stream = io.BytesIO()
        written = send_frame(stream, {"type": "x"})
        assert written == len(stream.getvalue())
        assert written > 4  # length prefix plus a non-empty payload

    def test_unicode_payload(self):
        stream = _buffer({"type": "execute", "source": "SELECT 'ü' -- ∆"})
        assert recv_frame(stream)["source"] == "SELECT 'ü' -- ∆"

    def test_nested_structures(self):
        message = {"type": "boot", "state": {"tables": [{"rows": [[1, 2]]}]},
                   "feed": ["INSERT INTO T VALUES (1, 2)"]}
        assert recv_frame(_buffer(message)) == message


class TestCleanEof:
    def test_empty_stream_is_none(self):
        assert recv_frame(io.BytesIO()) is None

    def test_eof_after_whole_frame_is_none(self):
        stream = _buffer({"type": "hello"})
        assert recv_frame(stream)["type"] == "hello"
        assert recv_frame(stream) is None


class TestTornFrames:
    def test_torn_length_prefix(self):
        stream = io.BytesIO(b"\x00\x00")
        with pytest.raises(FrameError):
            recv_frame(stream)

    def test_torn_payload(self):
        whole = _buffer({"type": "result", "rows": [[1]]}).getvalue()
        stream = io.BytesIO(whole[:-3])  # the peer died mid-write
        with pytest.raises(FrameError):
            recv_frame(stream)

    def test_malformed_json(self):
        payload = b"{not json"
        stream = io.BytesIO(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FrameError):
            recv_frame(stream)

    def test_non_dict_payload(self):
        payload = b"[1, 2, 3]"
        stream = io.BytesIO(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FrameError):
            recv_frame(stream)

    def test_untyped_message(self):
        payload = b'{"pid": 7}'
        stream = io.BytesIO(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FrameError):
            recv_frame(stream)

    def test_corrupt_length_is_capped(self):
        # a corrupt prefix must become a typed error, not a
        # multi-gigabyte allocation
        stream = io.BytesIO(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError) as info:
            recv_frame(stream)
        assert "cap" in str(info.value)
