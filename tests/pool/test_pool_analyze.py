"""Pooled EXPLAIN ANALYZE: worker-collected operator actuals ship
home in the reply frame and match an in-process run of the same
query."""

from repro.engine.analyze import AnalyzeCollector
from repro.engine.database import Database
from repro.pool import PoolConfig, Supervisor
from repro.server.server import Server
from repro.server.session import SessionSettings

QUERY = "SELECT A, B FROM T WHERE A > 1"


def _database(seed_rows=((1, 10), (2, 20), (3, 30), (4, 40))):
    db = Database()
    db.execute("CREATE TABLE T (A : INT, B : INT)")
    values = ", ".join(f"({a}, {b})" for a, b in seed_rows)
    db.execute(f"INSERT INTO T VALUES {values}")
    return db


def _pool(db, **overrides):
    defaults = dict(workers=1, monitor_interval_s=0.02,
                    restart_backoff_base_s=0.01,
                    restart_backoff_max_s=0.1)
    defaults.update(overrides)
    pool = Supervisor(db, PoolConfig(**defaults))
    db.commit_hooks.append(pool.note_write)
    pool.start()
    assert pool.wait_ready(timeout_s=60.0, workers=1)
    return pool


class TestWorkerShippedCounters:
    def test_pooled_counters_match_in_process(self):
        db = _database()
        pool = _pool(db)
        try:
            settings = SessionSettings(analyze=True)
            result = pool.submit(QUERY, settings=settings)
            assert sorted(result.rows) == [(2, 20), (3, 30), (4, 40)]
            assert db.plan_log.recorded == 1
            (plan,) = db.plan_log.plans()
            shipped = {
                (n["operator"], n["hash"]): (n["rows"], n["loops"])
                for n in plan["nodes"]
            }
        finally:
            pool.stop()
            db.close()

        local_db = _database()
        collector = AnalyzeCollector()
        local = local_db.query(QUERY, analyze=collector)
        assert sorted(local.rows) == [(2, 20), (3, 30), (4, 40)]
        local_nodes = {
            (n["operator"], n["hash"]): (n["rows"], n["loops"])
            for n in collector.snapshot()
        }
        # deterministic counters (rows, loops, per-operator identity)
        # agree exactly across tiers; only wall times may differ
        assert shipped == local_nodes

    def test_pooled_statement_folds_into_parent_workload(self):
        db = _database()
        pool = _pool(db)
        try:
            pool.submit(QUERY)
            pool.submit(QUERY)
            rows = {r[0]: r for r in db.workload.rows()}
            from repro.esql.fingerprint import fingerprint_source
            fp = fingerprint_source(QUERY).fingerprint
            assert rows[fp][2] == 2     # calls aggregated on the parent
            assert rows[fp][3] == 6     # 3 result rows per call
        finally:
            pool.stop()
            db.close()


class TestServerAnalyzeSession:
    def test_analyze_session_over_pool(self):
        db = _database()
        server = Server(db, workers=1)
        try:
            assert server.pool.wait_ready(timeout_s=60.0, workers=1)
            sess = server.open_session(
                settings=SessionSettings(analyze=True)
            )
            result = server.query(QUERY, session=sess.id)
            assert len(result.rows) == 3
            assert db.plan_log.recorded == 1
            nodes = db.query(
                "SELECT Operator, Rows FROM sys.plan_nodes"
            ).rows
            assert nodes
        finally:
            server.close()
