"""The pool-chaos acceptance scenario: a kill -9 storm under load.

Reader and writer threads hammer one durable, served database while
:class:`~repro.pool.WorkerChaos` SIGKILLs random pool workers at
random intervals.  The run must end with the server still serving,
zero fsck violations, a gap-free WAL, and the recovered database equal
to exactly the committed batches -- worker corpses are an execution
detail, never a durability event.

The default duration keeps the tier-1 run fast; CI's ``pool-chaos``
job raises it (and the thread count) via ``POOL_CHAOS_SECONDS`` /
``POOL_CHAOS_THREADS``.
"""

import os
import threading
import time

from repro import Database
from repro.durability.wal import scan_wal
from repro.errors import ServerOverloaded, WorkerCrashed
from repro.pool import PoolConfig, WorkerChaos
from repro.server import Server

CHAOS_SECONDS = float(os.environ.get("POOL_CHAOS_SECONDS", "2"))
CHAOS_THREADS = int(os.environ.get("POOL_CHAOS_THREADS", "6"))

_BATCH = 3   # rows per INSERT statement (the atomicity probe)
_SCALE = 7   # the V = Id * _SCALE invariant


def _batch_insert(writer: int, round_: int) -> str:
    base = 1_000_000 * writer + _BATCH * round_
    values = ", ".join(
        f"({i}, {i * _SCALE})" for i in range(base, base + _BATCH)
    )
    return f"INSERT INTO INV VALUES {values}"


class _Harness:
    def __init__(self):
        self.stop = threading.Event()
        self.lock = threading.Lock()
        self.violations: list[str] = []
        self.batches_written = 0
        self.reads = 0
        self.sheds = 0
        self.crash_surfaced = 0  # retry budget exhausted mid-storm

    def violation(self, text: str) -> None:
        with self.lock:
            self.violations.append(text)


def _writer(harness, server, writer_id):
    session = server.open_session(f"writer-{writer_id}")
    round_ = 0
    while not harness.stop.is_set():
        try:
            server.execute(_batch_insert(writer_id, round_),
                           session=session.id)
        except ServerOverloaded:
            harness.sheds += 1
            time.sleep(0.01)
            continue
        except Exception as error:  # noqa: BLE001
            harness.violation(f"writer-{writer_id}: {error!r}")
            return
        with harness.lock:
            harness.batches_written += 1
        round_ += 1


def _reader(harness, server, reader_id):
    session = server.open_session(f"reader-{reader_id}")
    while not harness.stop.is_set():
        try:
            rows = server.query("SELECT Id, V FROM INV",
                                session=session.id).rows
        except ServerOverloaded:
            harness.sheds += 1
            time.sleep(0.01)
            continue
        except WorkerCrashed:
            # the storm can kill every retry of one read; surfacing a
            # typed error is the contract, corrupting state is not
            harness.crash_surfaced += 1
            continue
        except Exception as error:  # noqa: BLE001
            harness.violation(f"reader-{reader_id}: {error!r}")
            return
        harness.reads += 1
        # statement-boundary consistency: whole batches, invariant V
        if len(rows) % _BATCH:
            harness.violation(
                f"reader-{reader_id}: torn batch ({len(rows)} rows)")
        for row_id, value in rows:
            if value != row_id * _SCALE:
                harness.violation(
                    f"reader-{reader_id}: Id {row_id} has V {value}")
                break


def test_kill9_storm_never_corrupts_state(tmp_path):
    path = str(tmp_path / "chaos.db")
    db = Database(path=path, resilient=True)
    db.execute("TABLE INV (Id : NUMERIC, V : NUMERIC, PRIMARY KEY (Id))")
    server = Server(db)
    pool = server.enable_pool(2, config=PoolConfig(
        workers=2, monitor_interval_s=0.02,
        restart_backoff_base_s=0.01, restart_backoff_max_s=0.1,
        crash_loop_threshold=1000,  # the storm must not break the pool
    ))
    assert pool.wait_ready(timeout_s=60.0, workers=2)
    chaos = WorkerChaos(pool, interval_s=0.15, seed=1234)
    harness = _Harness()

    writers = max(1, CHAOS_THREADS // 3)
    readers = max(1, CHAOS_THREADS - writers)
    threads = (
        [threading.Thread(target=_writer, args=(harness, server, i))
         for i in range(writers)]
        + [threading.Thread(target=_reader, args=(harness, server, i))
           for i in range(readers)]
    )
    try:
        chaos.start()
        for thread in threads:
            thread.start()
        time.sleep(CHAOS_SECONDS)
    finally:
        harness.stop.set()
        for thread in threads:
            thread.join(timeout=60.0)
        chaos.stop()
    assert not any(thread.is_alive() for thread in threads)

    # the storm actually fired, and the workload actually ran
    assert chaos.kills >= 1
    assert harness.batches_written > 0
    assert harness.reads > 0
    assert harness.violations == []

    # the server is still serving, through the (respawned) pool
    final = server.query("SELECT Id, V FROM INV").rows
    assert len(final) == harness.batches_written * _BATCH
    assert all(value == row_id * _SCALE for row_id, value in final)

    # worker corpses never became durability events
    assert db.fsck().violations == []
    scan = scan_wal(db.durability.wal.path)
    lsns = [record["lsn"] for record in scan.records]
    assert lsns == list(range(1, len(lsns) + 1))

    server.close()

    # cold recovery replays to exactly the committed batches
    recovered = Database(path=path)
    rows = recovered.query("SELECT Id, V FROM INV").rows
    assert sorted(rows) == sorted(final)
    assert recovered.fsck().violations == []
