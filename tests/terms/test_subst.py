"""Substitution tests."""

import pytest

from repro.errors import RuleError
from repro.terms.parser import parse_term
from repro.terms.subst import (collvar_key, instantiate,
                               instantiate_spliceable, merge_bindings)
from repro.terms.term import Seq, mk_fun, num, sym


class TestInstantiate:
    def test_variable_replacement(self):
        t = parse_term("P(x, y)")
        out = instantiate(t, {"x": num(1), "y": sym("A")})
        assert out == parse_term("P(1, A)")

    def test_collvar_splices(self):
        t = parse_term("LIST(x*, z)")
        out = instantiate(t, {"*x": Seq([num(1), num(2)]), "z": num(3)})
        assert out == parse_term("LIST(1, 2, 3)")

    def test_collvar_empty_splice(self):
        t = parse_term("P(x*, z)")
        out = instantiate(t, {"*x": Seq([]), "z": num(3)})
        assert out == parse_term("P(3)")

    def test_strict_unbound_raises(self):
        with pytest.raises(RuleError):
            instantiate(parse_term("P(x)"), {})

    def test_non_strict_keeps_variables(self):
        out = instantiate(parse_term("P(x)"), {}, strict=False)
        assert out == parse_term("P(x)")

    def test_top_level_collvar_rejected(self):
        from repro.terms.term import CollVar
        with pytest.raises(RuleError):
            instantiate(CollVar("x"), {"*x": Seq([num(1)])})

    def test_funvar_instantiation(self):
        t = parse_term("F(x)")
        out = instantiate(t, {"§F": "MEMBER", "x": num(1)})
        assert out == parse_term("MEMBER(1)")

    def test_funvar_unbound_strict(self):
        with pytest.raises(RuleError):
            instantiate(parse_term("F(x)"), {"x": num(1)})

    def test_constants_unchanged(self):
        t = parse_term("P(1, 'a', #1.2)")
        assert instantiate(t, {}) == t

    def test_result_renormalises(self):
        # instantiating an AND re-runs the constructor: duplicates merge
        t = parse_term("x AND y")
        out = instantiate(t, {"x": num(1) , "y": num(1)})
        assert out == num(1)


class TestSpliceable:
    def test_bare_collvar_yields_seq(self):
        out = instantiate_spliceable(
            parse_term("LIST(x*)").args[0], {"*x": Seq([num(1)])}
        )
        assert out == Seq([num(1)])


class TestMergeBindings:
    def test_merge_disjoint(self):
        merged = merge_bindings({"a": num(1)}, {"b": num(2)})
        assert merged == {"a": num(1), "b": num(2)}

    def test_merge_conflict(self):
        with pytest.raises(RuleError):
            merge_bindings({"a": num(1)}, {"a": num(2)})

    def test_merge_agreeing(self):
        merged = merge_bindings({"a": num(1)}, {"a": num(1)})
        assert merged == {"a": num(1)}

    def test_collvar_key(self):
        assert collvar_key("x") == "*x"
