"""Unit tests for structural matching with collection variables."""

import pytest

from repro.errors import RuleError
from repro.terms.match import match, match_first, matches
from repro.terms.parser import parse_term
from repro.terms.term import (CollVar, Seq, Var, mk_fun, num, sym)


def bindings(pattern, subject):
    return list(match(parse_term(pattern), parse_term(subject)))


class TestFirstOrderMatching:
    def test_var_matches_anything(self):
        b = match_first(parse_term("x"), parse_term("F(1, 2)"))
        assert b == {"x": parse_term("F(1, 2)")}

    def test_const_exact(self):
        assert matches(parse_term("1"), parse_term("1"))
        assert not matches(parse_term("1"), parse_term("2"))
        assert not matches(parse_term("1"), parse_term("1.0"))

    def test_attref_exact(self):
        assert matches(parse_term("#1.2"), parse_term("#1.2"))
        assert not matches(parse_term("#1.2"), parse_term("#2.1"))

    def test_fun_name_and_arity(self):
        assert matches(parse_term("P(x)"), parse_term("P(1)"))
        assert not matches(parse_term("P(x)"), parse_term("Q(1)"))
        assert not matches(parse_term("P(x, y)"), parse_term("P(1)"))

    def test_nonlinear_pattern_consistency(self):
        assert matches(parse_term("P(x, x)"), parse_term("P(1, 1)"))
        assert not matches(parse_term("P(x, x)"), parse_term("P(1, 2)"))

    def test_nested_binding(self):
        b = match_first(parse_term("P(Q(x), y)"),
                        parse_term("P(Q(7), 'a')"))
        assert b["x"] == num(7)

    def test_prebinding_respected(self):
        pattern = parse_term("P(x)")
        subject = parse_term("P(1)")
        assert match_first(pattern, subject, {"x": num(1)}) is not None
        assert match_first(pattern, subject, {"x": num(2)}) is None

    def test_collvar_at_top_level_rejected(self):
        with pytest.raises(RuleError):
            match_first(CollVar("x"), num(1))


class TestSequenceMatching:
    def test_collvar_in_list(self):
        b = match_first(parse_term("LIST(x*, A, v*)"),
                        parse_term("LIST(B, A, C, D)"))
        assert b["*x"] == Seq([sym("B")])
        assert b["*v"] == Seq([sym("C"), sym("D")])

    def test_collvar_all_splits_enumerated(self):
        results = bindings("LIST(x*, v*)", "LIST(A, B)")
        splits = {(len(b["*x"]), len(b["*v"])) for b in results}
        assert splits == {(0, 2), (1, 1), (2, 0)}

    def test_empty_collvar_match(self):
        b = match_first(parse_term("LIST(x*)"), parse_term("LIST()"))
        assert b["*x"] == Seq([])

    def test_collvar_in_ordinary_fun(self):
        b = match_first(parse_term("P(x*, Q(y))"),
                        parse_term("P(1, 2, Q(3))"))
        assert b["*x"] == Seq([num(1), num(2)])
        assert b["y"] == num(3)

    def test_bound_collvar_must_prefix(self):
        pattern = parse_term("LIST(x*, z)")
        subject = parse_term("LIST(A, B, C)")
        pre = {"*x": Seq([sym("A"), sym("B")])}
        b = match_first(pattern, subject, pre)
        assert b["z"] == sym("C")
        wrong = {"*x": Seq([sym("B")])}
        assert match_first(pattern, subject, wrong) is None

    def test_arity_pruning(self):
        assert not matches(parse_term("LIST(a, b, c)"),
                           parse_term("LIST(A)"))


class TestUnorderedMatching:
    def test_set_modulo_permutation(self):
        assert matches(parse_term("SET(A, x)"), parse_term("SET(B, A)"))

    def test_and_modulo_permutation(self):
        b = match_first(parse_term("f AND false"),
                        parse_term("(1 = 2) AND false"))
        assert b is not None

    def test_set_collvar_takes_rest(self):
        b = match_first(parse_term("SET(A, v*)"),
                        parse_term("SET(A, B, C)"))
        assert set(b["*v"].items) == {sym("B"), sym("C")}

    def test_two_collvars_largest_first(self):
        pattern = parse_term("AND(p*, q*)")
        subject = parse_term("a1 AND a2 AND a3")
        first = match_first(pattern, subject)
        assert len(first["*p"]) == 3 and len(first["*q"]) == 0

    def test_two_collvars_all_distributions(self):
        pattern = parse_term("SET(p*, q*)")
        subject = parse_term("SET(A, B)")
        results = list(match(pattern, subject))
        assert len(results) == 4  # 2^2 assignments

    def test_plain_patterns_injective(self):
        # two distinct pattern elements cannot match the same subject
        # element twice
        pattern = parse_term("SET(F(x), F(y))")
        subject = parse_term("SET(F(1))")
        assert not matches(pattern, subject)

    def test_exact_multiset_without_collvars(self):
        assert not matches(parse_term("SET(x)"), parse_term("SET(A, B)"))

    def test_bound_collvar_removed_from_subject(self):
        pattern = parse_term("SET(x*, z)")
        subject = parse_term("SET(A, B)")
        pre = {"*x": Seq([sym("A")])}
        b = match_first(pattern, subject, pre)
        assert b["z"] == sym("B")

    def test_backtracking_across_choices(self):
        # the first choice for p must be revised for q to match
        pattern = parse_term("AND(x > y, y > z)")
        subject = parse_term("(b > c) AND (a > b)")
        b = match_first(pattern, subject)
        assert b is not None
        assert b["x"] == Var("a") or b["x"] == sym("A") or True
        # consistency: the shared middle variable is the same term
        assert b["y"] is not None


class TestSecondOrderMatching:
    def test_funvar_binds_name(self):
        b = match_first(parse_term("F(x)"), parse_term("MEMBER(1)"))
        assert b["§F"] == "MEMBER"
        assert b["x"] == num(1)

    def test_funvar_arity_respected(self):
        assert not matches(parse_term("F(x)"), parse_term("P(1, 2)"))

    def test_funvar_consistent(self):
        pattern = parse_term("P(F(x), F(y))")
        assert matches(pattern, parse_term("P(Q(1), Q(2))"))
        assert not matches(pattern, parse_term("P(Q(1), R(2))"))

    def test_funvar_never_matches_structural(self):
        assert not matches(parse_term("F(x)"), parse_term("LIST(1)"))
        assert not matches(parse_term("F(x, y)"),
                           parse_term("a AND b"))

    def test_funvar_inside_and(self):
        pattern = parse_term("x = y AND F(x)")
        subject = parse_term("(x0 = 1) AND P(1)")
        b = match_first(pattern, subject)
        # '=' is canonically sorted: 1 = x0, so x binds 1 and F(x)=P(1)
        assert b is not None
        assert b["§F"] == "P"


class TestMatchGenerator:
    def test_multiple_bindings_enumerated(self):
        pattern = parse_term("SET(x, v*)")
        subject = parse_term("SET(A, B, C)")
        names = {b["x"] for b in match(pattern, subject)}
        assert names == {sym("A"), sym("B"), sym("C")}

    def test_matches_helper(self):
        # a generic function symbol matches any ordinary application
        assert matches(parse_term("F(x)"), parse_term("P(1)"))
        assert not matches(parse_term("SEARCH(a, b, c)"),
                           parse_term("P(1)"))
