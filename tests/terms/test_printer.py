"""Printer tests: rendering and parse/print round-trips."""

import pytest

from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import AttrRef, Seq, mk_fun, num, string, sym


ROUND_TRIP_CASES = [
    "x",
    "x*",
    "42",
    "4.5",
    "'abc'",
    "true",
    "false",
    "#1.2",
    "DOMINATE",
    "MEMBER('Adventure', #2.3)",
    "SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)",
    "x = y AND y = z",
    "NOT(f)",
    "(a OR b) AND c",
    "#1.1 + 2 * #1.2",
    "F(SET(x*, G(y, f)))",
]


@pytest.mark.parametrize("source", ROUND_TRIP_CASES)
def test_round_trip(source):
    term = parse_term(source)
    printed = term_to_str(term)
    assert parse_term(printed) == term


class TestRendering:
    def test_string_escaping(self):
        assert term_to_str(string("it's")) == "'it''s'"
        assert parse_term(term_to_str(string("it's"))) == string("it's")

    def test_attref_format(self):
        assert term_to_str(AttrRef(2, 7)) == "#2.7"

    def test_infix_operators(self):
        assert term_to_str(parse_term("x > 1")) == "x > 1"

    def test_connectives_parenthesised(self):
        out = term_to_str(parse_term("(a OR b) AND c"))
        assert "OR" in out and "(" in out

    def test_booleans(self):
        assert term_to_str(parse_term("true")) == "true"

    def test_seq_rendering(self):
        assert term_to_str(Seq([num(1), sym("A")])) == "<1, A>"

    def test_nested_call(self):
        out = term_to_str(parse_term("P(Q(1), 'a')"))
        assert out == "P(Q(1), 'a')"

    def test_comparison_operands_parenthesised_when_compound(self):
        term = mk_fun("=", [mk_fun("AND", [parse_term("a"),
                                           parse_term("b")]), num(1)])
        out = term_to_str(term)
        assert parse_term(out) == term
