"""Unit tests for terms and the normalising constructors."""

import pytest

from repro.errors import TermError
from repro.terms.term import (FALSE, TRUE, AttrRef, CollVar, Const, Fun,
                              Seq, Var, boolean, collvars_of, conj,
                              conjuncts, disj, disjuncts, is_fun,
                              is_ground, mk_fun, num, replace_at, string,
                              subterms, sym, term_size, term_sort_key,
                              variables_of, walk)


class TestTermBasics:
    def test_var_equality(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_collvar_strips_star(self):
        cv = CollVar("x*")
        assert cv.name == "x"
        assert cv.display == "x*"
        assert CollVar("x") == CollVar("x*")

    def test_const_kinds(self):
        assert num(3).kind == "int"
        assert num(3.5).kind == "real"
        assert num(True).kind == "bool"  # bools are not ints here
        assert string("a").kind == "string"
        assert sym("REL").kind == "symbol"

    def test_const_bad_kind(self):
        with pytest.raises(TermError):
            Const(1, "complex")

    def test_const_distinguishes_kinds(self):
        assert string("R") != sym("R")
        assert num(1) != boolean(True)

    def test_attref_one_based(self):
        with pytest.raises(TermError):
            AttrRef(0, 1)
        with pytest.raises(TermError):
            AttrRef(1, 0)

    def test_fun_equality_structural(self):
        a = mk_fun("F", [num(1), Var("x")])
        b = mk_fun("F", [num(1), Var("x")])
        assert a == b
        assert hash(a) == hash(b)

    def test_fun_name_uppercased(self):
        assert mk_fun("member", []).name == "MEMBER"


class TestAndOrNormalisation:
    def test_flattening(self):
        inner = mk_fun("AND", [Var("a"), Var("b")])
        outer = mk_fun("AND", [inner, Var("c")])
        assert len(outer.args) == 3

    def test_deduplication(self):
        t = mk_fun("AND", [Var("a"), Var("a"), Var("b")])
        assert len(t.args) == 2

    def test_canonical_order(self):
        ab = mk_fun("AND", [Var("a"), Var("b")])
        ba = mk_fun("AND", [Var("b"), Var("a")])
        assert ab == ba

    def test_true_dropped_from_and(self):
        t = mk_fun("AND", [Var("a"), TRUE])
        assert t == Var("a")

    def test_false_kept_in_and(self):
        t = mk_fun("AND", [Var("a"), FALSE])
        assert is_fun(t, "AND")
        assert FALSE in t.args

    def test_empty_and_is_true(self):
        assert conj([]) == TRUE

    def test_singleton_and_collapses(self):
        assert conj([Var("a")]) == Var("a")

    def test_singleton_and_collvar_survives(self):
        t = mk_fun("AND", [CollVar("q")])
        assert is_fun(t, "AND")  # patterns keep the wrapper

    def test_false_dropped_from_or(self):
        assert mk_fun("OR", [Var("a"), FALSE]) == Var("a")

    def test_empty_or_is_false(self):
        assert disj([]) == FALSE

    def test_conjuncts_of_non_and(self):
        assert conjuncts(Var("a")) == (Var("a"),)
        assert conjuncts(TRUE) == ()

    def test_disjuncts(self):
        t = disj([Var("a"), Var("b")])
        assert set(disjuncts(t)) == {Var("a"), Var("b")}
        assert disjuncts(FALSE) == ()


class TestSetNormalisation:
    def test_set_dedupes_and_sorts(self):
        a = mk_fun("SET", [sym("B"), sym("A"), sym("B")])
        b = mk_fun("SET", [sym("A"), sym("B")])
        assert a == b

    def test_list_keeps_order_and_duplicates(self):
        a = mk_fun("LIST", [sym("B"), sym("A"), sym("B")])
        assert len(a.args) == 3
        assert a != mk_fun("LIST", [sym("A"), sym("B"), sym("B")])


class TestCommutativeComparisons:
    def test_eq_args_sorted(self):
        assert mk_fun("=", [Var("x"), num(1)]) == \
            mk_fun("=", [num(1), Var("x")])

    def test_neq_args_sorted(self):
        assert mk_fun("<>", [Var("y"), Var("x")]) == \
            mk_fun("<>", [Var("x"), Var("y")])

    def test_lt_not_sorted(self):
        assert mk_fun("<", [Var("y"), Var("x")]) != \
            mk_fun("<", [Var("x"), Var("y")])


class TestSplicers:
    def test_seq_splices_into_fun(self):
        t = mk_fun("F", [Seq([num(1), num(2)]), num(3)])
        assert t.args == (num(1), num(2), num(3))

    def test_append_splices_lists(self):
        t = mk_fun("APPEND", [
            Seq([sym("A")]),
            mk_fun("LIST", [sym("B"), sym("C")]),
        ])
        assert is_fun(t, "LIST")
        assert t.args == (sym("A"), sym("B"), sym("C"))

    def test_append_runtime_form_preserved(self):
        # APPEND over non-structural args stays a function call (the
        # runtime list-append ADT function)
        t = mk_fun("APPEND", [Var("l"), num(1)])
        assert is_fun(t, "APPEND")

    def test_set_union_splices(self):
        t = mk_fun("SET_UNION", [
            Seq([sym("A")]), mk_fun("SET", [sym("B")]),
        ])
        assert is_fun(t, "SET")
        assert set(t.args) == {sym("A"), sym("B")}


class TestTraversal:
    def test_walk_counts_nodes(self):
        t = mk_fun("F", [mk_fun("G", [Var("x")]), num(1)])
        assert term_size(t) == 4

    def test_subterms_paths(self):
        t = mk_fun("F", [Var("x"), mk_fun("G", [num(1)])])
        paths = dict(subterms(t))
        assert paths[()] == t
        assert paths[(0,)] == Var("x")
        assert paths[(1, 0)] == num(1)

    def test_replace_at_root(self):
        assert replace_at(Var("x"), (), num(1)) == num(1)

    def test_replace_at_nested(self):
        t = mk_fun("F", [mk_fun("G", [Var("x")])])
        out = replace_at(t, (0, 0), num(9))
        assert out == mk_fun("F", [mk_fun("G", [num(9)])])

    def test_replace_at_renormalises(self):
        t = Fun("AND", (Var("a"), Var("b")))
        out = replace_at(t, (0,), Var("b"))
        assert out == Var("b")  # AND(b, b) collapses

    def test_replace_at_bad_path(self):
        with pytest.raises(TermError):
            replace_at(Var("x"), (0,), num(1))
        with pytest.raises(TermError):
            replace_at(mk_fun("F", [Var("x")]), (5,), num(1))

    def test_variable_collection(self):
        t = mk_fun("F", [Var("x"), CollVar("y"), mk_fun("G", [Var("z")])])
        assert variables_of(t) == {"x", "z"}
        assert collvars_of(t) == {"y"}

    def test_is_ground(self):
        assert is_ground(mk_fun("F", [num(1), string("a")]))
        assert not is_ground(mk_fun("F", [Var("x")]))
        assert not is_ground(mk_fun("F", [CollVar("x")]))


class TestSortKey:
    def test_total_order_is_deterministic(self):
        terms = [num(2), Var("a"), sym("R"), string("z"), TRUE,
                 AttrRef(1, 2), mk_fun("F", [num(1)]), CollVar("c")]
        once = sorted(terms, key=term_sort_key)
        twice = sorted(list(reversed(terms)), key=term_sort_key)
        assert once == twice

    def test_constants_before_funs(self):
        assert term_sort_key(num(1)) < term_sort_key(mk_fun("F", []))
