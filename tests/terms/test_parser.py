"""Unit tests for the rule-language tokenizer and parser."""

import pytest

from repro.errors import ParseError
from repro.terms.parser import (parse_rule_text, parse_rules_text,
                                parse_term, tokenize)
from repro.terms.term import (AttrRef, CollVar, Const, Fun, Var, boolean,
                              is_fun, mk_fun, num, string, sym)


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("F(x, 1) --> y")]
        assert kinds == ["IDENT", "LPAREN", "IDENT", "COMMA", "NUMBER",
                         "RPAREN", "ARROW", "IDENT", "EOF"]

    def test_collvar_requires_adjacency(self):
        tokens = tokenize("x* x *")
        assert tokens[0].kind == "COLLVAR"
        assert tokens[1].kind == "IDENT"
        assert tokens[2].kind == "STAR"

    def test_attref(self):
        tok = tokenize("#12.3")[0]
        assert tok.kind == "ATTR" and tok.text == "#12.3"

    def test_malformed_attref(self):
        with pytest.raises(ParseError):
            tokenize("#1")
        with pytest.raises(ParseError):
            tokenize("#.2")

    def test_string_escape(self):
        tok = tokenize("'it''s'")[0]
        assert tok.text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_comment_skipped(self):
        kinds = [t.kind for t in tokenize("x % a comment\n y")]
        assert kinds == ["IDENT", "IDENT", "EOF"]

    def test_line_tracking(self):
        tok = tokenize("x\n  y")[1]
        assert tok.line == 2

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("@")


class TestTermParsing:
    def test_lowercase_is_variable(self):
        assert parse_term("foo") == Var("foo")

    def test_uppercase_is_symbol(self):
        assert parse_term("DOMINATE") == sym("DOMINATE")
        assert parse_term("Point") == sym("POINT")

    def test_literals(self):
        assert parse_term("42") == num(42)
        assert parse_term("4.5") == num(4.5)
        assert parse_term("-3") == num(-3)
        assert parse_term("'abc'") == string("abc")
        assert parse_term("true") == boolean(True)
        assert parse_term("false") == boolean(False)

    def test_attref(self):
        assert parse_term("#2.3") == AttrRef(2, 3)

    def test_collvar(self):
        t = parse_term("LIST(x*)")
        assert t.args[0] == CollVar("x")

    def test_call(self):
        t = parse_term("MEMBER('a', x)")
        assert is_fun(t, "MEMBER")
        assert t.args == (string("a"), Var("x"))

    def test_empty_call(self):
        assert parse_term("LIST()") == mk_fun("LIST", [])

    def test_infix_comparison(self):
        t = parse_term("x > 3")
        assert is_fun(t, ">")

    def test_precedence_and_over_or(self):
        t = parse_term("a OR b AND c")
        assert is_fun(t, "OR")

    def test_parentheses(self):
        t = parse_term("(a OR b) AND c")
        assert is_fun(t, "AND")

    def test_not_forms(self):
        assert is_fun(parse_term("NOT(x)"), "NOT")
        assert is_fun(parse_term("NOT x > 1"), "NOT")

    def test_arithmetic_precedence(self):
        t = parse_term("1 + 2 * 3")
        assert is_fun(t, "+")
        assert is_fun(t.args[1], "*")

    def test_prefix_connective_form(self):
        t = parse_term("AND(q*)")
        assert is_fun(t, "AND")
        assert t.args == (CollVar("q"),)

    def test_unary_minus_on_expression(self):
        t = parse_term("-x")
        assert is_fun(t, "-")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_term("x y")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_term("F(x")


class TestRuleParsing:
    def test_full_rule(self):
        rule = parse_rule_text(
            "r1: P(x) / ISA(x, Point) --> Q(x) / EVALUATE(P(x), a)"
        )
        assert rule.name == "r1"
        assert is_fun(rule.lhs, "P")
        assert len(rule.constraints) == 1
        assert is_fun(rule.rhs, "Q")
        assert len(rule.methods) == 1

    def test_anonymous_rule(self):
        rule = parse_rule_text("P(x) / --> Q(x) /")
        assert rule.name is None

    def test_empty_sections(self):
        rule = parse_rule_text("P(x) --> Q(x)")
        assert rule.constraints == ()
        assert rule.methods == ()

    def test_multiple_constraints_and_methods(self):
        rule = parse_rule_text(
            "P(x, y) / ISA(x, T), x > 0 --> Q(z) / M(x, z), N(y, w)"
        )
        assert len(rule.constraints) == 2
        assert len(rule.methods) == 2

    def test_multiple_rules(self):
        rules = parse_rules_text("a: P(x) --> Q(x); b: R(y) --> S(y);")
        assert [r.name for r in rules] == ["a", "b"]

    def test_paper_search_merging_rule_parses(self):
        """F6: the Figure 7 search-merging rule round-trips."""
        rule = parse_rule_text(
            "SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a) / "
            "--> SEARCH(APPEND(x*, v*, z), f2 AND g2, a2) / "
            "SUBSTITUTE(f, z, f2), SUBSTITUTE(a, z, a2), SHIFT(g, z, g2)"
        )
        assert is_fun(rule.lhs, "SEARCH")
        assert len(rule.methods) == 3

    def test_paper_union_merging_rule_parses(self):
        rule = parse_rule_text(
            "UNION(SET(x*, UNION(z))) / --> UNION(SET_UNION(x*, z)) /"
        )
        assert is_fun(rule.lhs, "UNION")

    def test_paper_integrity_constraint_parses(self):
        rule = parse_rule_text(
            "F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0 /"
        )
        assert is_fun(rule.rhs, "AND")

    def test_paper_transitivity_rule_parses(self):
        rule = parse_rule_text(
            "x = y AND y = z / --> x = y AND y = z AND x = z /"
        )
        assert is_fun(rule.lhs, "AND")
        assert len(rule.rhs.args) == 3

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_rule_text("P(x) / Q(x)")
