"""The fuzz loop: deterministic, observable, and it finds planted bugs."""

from repro.obs.bus import EventBus
from repro.obs.events import EquivalenceViolation, FuzzCompleted
from repro.obs.metrics import MetricsRegistry
from repro.qa.harness import case_seed, fuzz
from repro.qa.oracle import DifferentialOracle

from tests.qa.test_oracle_shrink import UnsoundOracle

N = 25
SEED = 7


class TestDeterminism:
    def test_identical_runs(self):
        a = fuzz(N, seed=SEED)
        b = fuzz(N, seed=SEED)
        assert (a.executed, a.skipped, a.violations) == \
            (b.executed, b.skipped, b.violations)

    def test_case_seeds_are_stable(self):
        assert case_seed(SEED, 0) == SEED * 1_000_003
        assert case_seed(SEED, 3) == SEED * 1_000_003 + 3

    def test_findings_replay_from_their_seed(self):
        oracle = UnsoundOracle(check_subsets=False)
        a = fuzz(N, seed=SEED, oracle=oracle, shrink=False)
        b = fuzz(N, seed=SEED, oracle=oracle, shrink=False)
        assert [f.case.query for f in a.findings] == \
            [f.case.query for f in b.findings]


class TestFindings:
    def test_clean_run_reports_ok(self):
        report = fuzz(N, seed=SEED)
        assert report.ok
        assert report.violations == 0
        assert report.executed + report.skipped == N

    def test_planted_bug_is_found_and_shrunk(self):
        oracle = UnsoundOracle(check_subsets=False)
        report = fuzz(60, seed=SEED, oracle=oracle)
        assert not report.ok
        finding = report.findings[0]
        assert finding.divergence.mode in ("rewrite", "rewrite-error")
        # the shrunk case must still reproduce, and not have grown
        assert oracle.reproduces(finding.shrunk,
                                 finding.divergence.mode)
        assert len(finding.shrunk.query) <= len(finding.case.query)

    def test_on_finding_streams(self):
        seen = []
        fuzz(60, seed=SEED, oracle=UnsoundOracle(check_subsets=False),
             shrink=False, on_finding=seen.append)
        assert seen, "the planted bug never streamed"


class TestObservability:
    def test_events_and_metrics(self):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        metrics = MetricsRegistry()
        report = fuzz(40, seed=SEED,
                      oracle=UnsoundOracle(check_subsets=False),
                      shrink=False, obs=bus, metrics=metrics)
        completed = [e for e in events if isinstance(e, FuzzCompleted)]
        assert len(completed) == 1
        assert completed[0].violations == report.violations
        violations = [e for e in events
                      if isinstance(e, EquivalenceViolation)]
        assert len(violations) == report.violations
        assert all(v.source == "fuzz" for v in violations)
        assert metrics.value("qa.cases") == report.executed
        assert metrics.value("qa.violations") == report.violations

    def test_summary_mentions_the_seed(self):
        report = fuzz(5, seed=123,
                      oracle=DifferentialOracle(check_subsets=False))
        assert "seed=123" in report.summary()
