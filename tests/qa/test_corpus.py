"""The regression corpus: persistence plus the tier-1 replay gate."""

from pathlib import Path

import pytest

from repro.qa.corpus import case_filename, load_case, load_corpus, save_case
from repro.qa.oracle import DifferentialOracle
from repro.qa.schema_gen import Case, TableSpec

CORPUS_DIR = Path(__file__).resolve().parent.parent / "qa_corpus"

_CASE = Case(
    tables=(TableSpec(name="T", columns=(("A", "INT"),), key=(),
                      rows=((1,), (1,))),),
    query="SELECT A FROM T",
    name="demo case",
    note="round-trip fixture",
)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = save_case(_CASE, tmp_path)
        assert load_case(path) == _CASE

    def test_filenames_are_content_addressed(self, tmp_path):
        assert case_filename(_CASE).startswith("demo-case-")
        # saving twice is idempotent -- same content, same file
        assert save_case(_CASE, tmp_path) == save_case(_CASE, tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_load_corpus_sorted_and_missing_dir(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []
        save_case(_CASE, tmp_path)
        names = [name for name, __ in load_corpus(tmp_path)]
        assert names == sorted(names) and len(names) == 1


class TestCommittedCorpus:
    """Every minimized divergence ever committed must stay fixed."""

    def test_corpus_is_not_empty(self):
        assert load_corpus(CORPUS_DIR), \
            "tests/qa_corpus/ should hold at least the union_singleton repro"

    @pytest.mark.parametrize(
        "name,case",
        load_corpus(CORPUS_DIR) or [("missing", None)],
        ids=lambda v: v if isinstance(v, str) else "",
    )
    def test_replay_stays_equivalent(self, name, case):
        if case is None:
            pytest.skip("corpus directory missing")
        # tier checks too: the corpus holds cross-tier repros (the
        # UNION-read-as-DML pool bug), not just rewrite bugs
        divergence = DifferentialOracle(
            antipattern=True, check_tier=True
        ).check(case)
        assert divergence is None, (
            f"corpus case {name} regressed: {divergence.mode}: "
            f"{divergence.detail}"
        )
