"""The analyze oracle leg: instrumentation is a pure observer.

A fixed-seed fuzz run re-executes every generated case in EXPLAIN
ANALYZE mode and demands bag-identical results -- the CI pin that the
per-operator wrappers can never change what a query returns.
"""

from repro.qa.harness import fuzz
from repro.qa.oracle import DifferentialOracle
from repro.qa.schema_gen import Case, TableSpec

# the fixed CI seed for this leg (any regression reproduces from it)
SEED = 20260808


def _case(query: str) -> Case:
    table = TableSpec(
        name="T",
        columns=(("A", "INT"), ("B", "INT")),
        key=(),
        rows=((1, 10), (2, 20), (3, 30)),
    )
    return Case(tables=(table,), query=query)


class TestAnalyzeOracle:
    def test_fixed_seed_run_is_clean(self):
        oracle = DifferentialOracle(check_subsets=False,
                                    check_analyze=True)
        report = fuzz(20, seed=SEED, oracle=oracle, shrink=False)
        assert report.ok, "\n".join(
            str(f.divergence) for f in report.findings
        )
        assert report.executed > 0

    def test_clean_case_passes(self):
        oracle = DifferentialOracle(check_subsets=False,
                                    check_analyze=True)
        assert oracle.check(_case("SELECT A FROM T WHERE B > 5")) \
            is None

    def test_leg_observes_operators(self):
        # the leg flags a run whose collector saw nothing -- proof the
        # analyze path actually engaged rather than silently no-opping
        oracle = DifferentialOracle(check_subsets=False,
                                    check_analyze=True)
        divergence = oracle.check(_case("SELECT A FROM T"))
        assert divergence is None  # observed > 0, bags equal
