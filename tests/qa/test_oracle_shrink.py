"""The differential oracle and the delta-debugging shrinker.

An *unsound oracle* -- a subclass whose databases carry a deliberately
broken rule -- gives the tests a deterministic source of real
divergences to detect, localize and shrink.
"""

from random import Random

import pytest

from repro.qa.oracle import DifferentialOracle, Divergence, result_bag
from repro.qa.query_gen import QuerySpec
from repro.qa.schema_gen import Case, TableSpec
from repro.qa.shrink import shrink_case
from repro.rules.rule import rule_from_text

BAD_RULE = "bad_gt_widen: x > y / --> x >= y /"


class UnsoundOracle(DifferentialOracle):
    """An oracle whose databases include a rule that widens ``>``."""

    def build_db(self, case):
        db = super().build_db(case)
        db.optimizer.rewriter.add_rule(
            rule_from_text(BAD_RULE), block="simplify"
        )
        db.regenerate_optimizer = lambda: None  # keep the planted rule
        return db


def _case(rows=((1, 5), (2, 6), (3, 7)),
          query="SELECT A FROM T WHERE A > 1") -> Case:
    return Case(
        tables=(TableSpec(name="T",
                          columns=(("A", "INT"), ("B", "INT")),
                          key=(), rows=tuple(rows)),),
        query=query,
    )


class TestResultBag:
    def test_bags_catch_multiplicity(self):
        assert result_bag([(1,), (1,)]) != result_bag([(1,)])
        assert set([(1,), (1,)]) == set([(1,)])  # what sets would miss

    def test_unhashable_falls_back_to_repr(self):
        rows = [([1, 2],), ([1, 2],)]
        assert result_bag(rows) == result_bag(list(rows))


class TestOracle:
    def test_sound_case_has_no_divergence(self):
        assert DifferentialOracle().check(_case()) is None

    def test_unsound_rule_is_detected(self):
        divergence = UnsoundOracle(check_subsets=False).check(_case())
        assert divergence is not None
        assert divergence.mode == "rewrite"
        assert "row(s)" in divergence.detail

    def test_reproduces_pins_the_mode_family(self):
        oracle = UnsoundOracle(check_subsets=False)
        assert oracle.reproduces(_case(), "rewrite")
        assert oracle.reproduces(_case(), None)
        assert not oracle.reproduces(_case(), "tier")

    def test_broken_setup_is_not_a_repro(self):
        broken = Case(tables=(), query="SELECT X FROM NOWHERE")
        assert not UnsoundOracle(check_subsets=False).reproduces(broken)


class TestShrink:
    def test_rows_shrink_to_the_witness(self):
        oracle = UnsoundOracle(check_subsets=False)
        shrunk = shrink_case(_case(), oracle, mode="rewrite")
        # only a row with A exactly at the boundary (A = 1, excluded
        # by > but included by >=) witnesses the widening
        assert len(shrunk.tables[0].rows) < 3
        assert oracle.reproduces(shrunk, "rewrite")

    def test_query_reductions_drop_noise(self):
        oracle = UnsoundOracle(check_subsets=False)
        spec = QuerySpec(
            select=("A",), tables=("T",),
            where=("A > 1", "B <> 0"), distinct=False,
            union=QuerySpec(select=("A",), tables=("T",),
                            where=("A = 2",)),
        )
        case = _case(query=spec.sql())
        assert oracle.reproduces(case, "rewrite")
        shrunk = shrink_case(case, oracle, spec=spec, mode="rewrite")
        assert "UNION" not in shrunk.query
        assert "B <> 0" not in shrunk.query
        assert oracle.reproduces(shrunk, "rewrite")

    def test_sound_case_returns_unchanged(self):
        case = _case()
        assert shrink_case(case, DifferentialOracle()) == case
