"""Quarantine-on-divergence: a rule that changes an answer is benched,
persisted, surfaced in ``sys.quarantine``, and the statement that
caught it still answers correctly."""

import pytest

from repro.engine.database import Database
from repro.obs.bus import EventBus
from repro.obs.events import EquivalenceViolation, RuleQuarantined
from repro.resilience import QuarantineEntry, QuarantineRegistry
from repro.rules.rule import rule_from_text

BAD_RULE = "bad_flip: x > y / --> x >= y /"

SETUP = """
TABLE T (A : INT, B : INT);
INSERT INTO T VALUES (1, 5);
INSERT INTO T VALUES (2, 6);
INSERT INTO T VALUES (3, 7)
"""

QUERY = "SELECT A FROM T WHERE A > 2"
RIGHT = [(3,)]


@pytest.fixture
def db():
    database = Database(checked=True)
    database.execute(SETUP)
    database.optimizer.rewriter.add_rule(
        rule_from_text(BAD_RULE), block="simplify"
    )
    database.regenerate_optimizer = lambda: None  # keep the planted rule
    yield database
    database.close()


class TestRegistry:
    def test_first_note_wins(self):
        registry = QuarantineRegistry()
        registry.note("simplify", "r1", "first")
        registry.note("other", "r1", "second")
        (entry,) = registry.entries()
        assert (entry.block, entry.detail) == ("simplify", "first")
        assert "r1" in registry and len(registry) == 1

    def test_lift(self):
        registry = QuarantineRegistry()
        registry.note("b", "r1", "d")
        registry.lift("r1")
        assert "r1" not in registry and not registry

    def test_entry_as_dict(self):
        entry = QuarantineEntry(rule="r", block="b", source="checked",
                                detail="d", benched_at=1.0)
        assert entry.as_dict()["rule"] == "r"


class TestAutoQuarantine:
    def test_checked_statement_answers_correctly(self, db):
        assert db.query(QUERY).rows == RIGHT

    def test_bad_rule_lands_in_the_registry(self, db):
        db.query(QUERY)
        (entry,) = db.quarantine.entries()
        assert entry.rule == "bad_flip"
        assert entry.block == "simplify"
        assert entry.source == "checked"

    def test_surfaced_in_sys_quarantine(self, db):
        db.query(QUERY)
        rows = db.query(
            "SELECT Rule, Block, Source FROM sys.quarantine"
        ).rows
        assert rows == [("bad_flip", "simplify", "checked")]

    def test_unchecked_statement_skips_the_benched_rule(self, db):
        db.query(QUERY)  # benches bad_flip
        # without the quarantine, unchecked rewriting would widen > to
        # >= and return the wrong extra row
        assert db.query(QUERY, checked=False).rows == RIGHT

    def test_events_are_emitted(self, db):
        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        db.query(QUERY, obs=bus)
        violations = [e for e in events
                      if isinstance(e, EquivalenceViolation)]
        assert violations and violations[0].source == "checked"
        assert violations[0].rule == "bad_flip"
        benched = [e for e in events if isinstance(e, RuleQuarantined)]
        assert benched and benched[0].rule == "bad_flip"

    def test_lift_rearms_detection(self, db):
        db.query(QUERY)
        db.quarantine.lift("bad_flip")
        assert not db.quarantine.entries()
        # the rule fires again, diverges again, and is re-benched
        assert db.query(QUERY).rows == RIGHT
        (entry,) = db.quarantine.entries()
        assert entry.rule == "bad_flip"

    def test_sys_quarantine_empty_by_default(self):
        plain = Database()
        try:
            assert plain.query(
                "SELECT Rule FROM sys.quarantine"
            ).rows == []
        finally:
            plain.close()
