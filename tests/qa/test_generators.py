"""The qa generators: deterministic, valid, and biased as promised."""

from random import Random

from repro.engine.database import Database
from repro.qa.query_gen import random_case, random_query
from repro.qa.schema_gen import Case, TableSpec, random_rows, random_schema


class TestDeterminism:
    def test_same_seed_same_schema(self):
        a = random_schema(Random(42))
        b = random_schema(Random(42))
        assert a == b

    def test_same_seed_same_case(self):
        case_a, spec_a = random_case(Random(99))
        case_b, spec_b = random_case(Random(99))
        assert case_a == case_b
        assert spec_a == spec_b

    def test_different_seeds_differ(self):
        queries = {random_case(Random(seed))[0].query
                   for seed in range(30)}
        assert len(queries) > 20  # near-total diversity


class TestValidity:
    def test_setup_scripts_execute(self):
        for seed in range(25):
            case, __ = random_case(Random(seed))
            db = Database()
            db.execute(case.setup_script())
            db.close()

    def test_queries_execute_unrewritten(self):
        for seed in range(25):
            case, __ = random_case(Random(seed))
            db = Database()
            db.execute(case.setup_script())
            db.query(case.query, rewrite=False)
            db.close()

    def test_key_rows_are_unique(self):
        rows = random_rows(Random(3), ["INT", "INT"], max_rows=10,
                           unique_on=(0,))
        heads = [r[0] for r in rows]
        assert len(heads) == len(set(heads))


class TestBias:
    def test_rewrite_shapes_appear(self):
        """The generator's whole point: the biased shapes occur often
        enough for a few hundred cases to exercise every rule family."""
        texts = [random_case(Random(seed))[0].query
                 for seed in range(300)]
        joined = "\n".join(texts)
        for marker in ("DISTINCT", " OR ", " IN ", "EXISTS", "NOT",
                       "UNION", "GROUP BY", "+ 0", "* 1"):
            assert marker in joined, f"no case used {marker!r}"


class TestCaseModel:
    def test_roundtrip(self):
        case, __ = random_case(Random(7))
        again = Case.from_dict(case.to_dict())
        assert again == case

    def test_ddl_renders_key(self):
        table = TableSpec(name="T", columns=(("A", "INT"), ("B", "CHAR")),
                          key=("A",), rows=((1, "a"),))
        assert table.ddl() == \
            "TABLE T (A : INT, B : CHAR, PRIMARY KEY (A))"
        assert table.insert() == "INSERT INTO T VALUES (1, 'a')"
