"""The optional anti-pattern block: every rule family fires, answers
stay right, and the firings show up in explain provenance."""

import pytest

from repro.engine.database import Database
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str

SETUP = """
TABLE K (A : INT, B : INT, PRIMARY KEY (A));
INSERT INTO K VALUES (1, 10);
INSERT INTO K VALUES (2, 20);
INSERT INTO K VALUES (3, 30);
TABLE U (F : INT);
INSERT INTO U VALUES (5);
INSERT INTO U VALUES (5);
INSERT INTO U VALUES (7)
"""


@pytest.fixture
def db():
    database = Database(antipattern=True)
    database.execute(SETUP)
    yield database
    database.close()


def fired(db, sql):
    return db.optimize(sql).rewrite_result.rules_fired()


class TestRuleFamiliesFire:
    def test_or_chain_becomes_in(self, db):
        sql = "SELECT A FROM K WHERE A = 1 OR A = 2 OR A = 3"
        rules = fired(db, sql)
        assert "ap_or_to_in" in rules
        assert "ap_in_extend" in rules
        assert sorted(db.query(sql).rows) == [(1,), (2,), (3,)]

    def test_double_negation_folds(self, db):
        sql = "SELECT A FROM K WHERE NOT (NOT (A > 1))"
        assert "ap_not_not" in fired(db, sql)
        assert sorted(db.query(sql).rows) == [(2,), (3,)]

    def test_negated_comparison_folds(self, db):
        sql = "SELECT A FROM K WHERE NOT (A > 1)"
        assert "ap_not_gt" in fired(db, sql)
        assert db.query(sql).rows == [(1,)]

    def test_trivial_arithmetic_folds(self, db):
        sql = "SELECT A FROM K WHERE A * 1 > 1 + 0"
        rules = fired(db, sql)
        assert "ap_times_one_r" in rules
        assert "ap_plus_zero_r" in rules
        assert sorted(db.query(sql).rows) == [(2,), (3,)]

    def test_subsumed_bounds_collapse(self, db):
        sql = "SELECT A FROM K WHERE A > 1 OR A >= 1"
        assert "ap_gt_ge_or" in fired(db, sql)
        assert sorted(db.query(sql).rows) == [(1,), (2,), (3,)]

    def test_distinct_over_key_drops(self, db):
        sql = "SELECT DISTINCT A, B FROM K"
        assert "ap_distinct_key" in fired(db, sql)
        assert sorted(db.query(sql).rows) == [(1, 10), (2, 20), (3, 30)]

    def test_distinct_without_key_survives(self, db):
        sql = "SELECT DISTINCT F FROM U"
        assert "ap_distinct_key" not in fired(db, sql)
        assert sorted(db.query(sql).rows) == [(5,), (7,)]


class TestPlanLevelRules:
    def test_semijoin_sheds_right_distinct(self, db):
        result = db.optimizer.rewriter.rewrite(
            parse_term("SEMIJOIN(K, DISTINCT(U), #1.1 = #2.1)")
        )
        assert "ap_semijoin_distinct" in result.rules_fired()
        assert "DISTINCT" not in term_to_str(result.term)

    def test_singleton_in_list_becomes_equality(self, db):
        result = db.optimizer.rewriter.rewrite(
            parse_term("SEARCH(LIST(K), MEMBER(#1.1, MAKESET(2)), "
                       "LIST(#1.1))")
        )
        assert "ap_member_singleton" in result.rules_fired()


class TestInstallation:
    def test_block_is_optional(self):
        plain = Database()
        try:
            names = [b.name for b in plain.optimizer.rewriter.seq.blocks]
            assert "antipattern" not in names
        finally:
            plain.close()

    def test_block_sits_before_simplify(self, db):
        names = [b.name for b in db.optimizer.rewriter.seq.blocks]
        assert "antipattern" in names
        assert names.index("antipattern") < names.index("simplify")

    def test_explain_provenance_names_the_block(self, db):
        report = db.explain_json(
            "SELECT A FROM K WHERE NOT (NOT (A > 1))"
        )
        trace = report["rewrite"]["trace"]
        blocks = {entry["block"] for entry in trace}
        assert "antipattern" in blocks
        rules = {entry["rule"] for entry in trace
                 if entry["block"] == "antipattern"}
        assert "ap_not_not" in rules
        assert "antipattern" in report["rewrite"]["summary"]
