"""Type checking / generic-function inference tests (section 3.3)."""

import pytest

from repro.adt.types import NUMERIC, CHAR, REAL
from repro.engine.catalog import Catalog
from repro.errors import TypeCheckError
from repro.lera import ops
from repro.lera.typecheck import typecheck
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import AttrRef, TRUE, mk_fun, sym


@pytest.fixture
def cat():
    c = Catalog()
    ts = c.type_system
    ts.define_tuple("Point", [("ABS", REAL), ("ORD", REAL)])
    ts.define_object("Person", [("Name", CHAR)])
    ts.define_object("Actor", [("Salary", NUMERIC)], supertype="Person")
    c.define_table("APPEARS_IN", [
        ("Numf", NUMERIC), ("Refactor", ts.lookup("Actor")),
    ])
    c.define_table("SHAPES", [("P", ts.lookup("Point"))])
    return c


class TestFieldAccessRewriting:
    def test_object_field_becomes_project_value(self, cat):
        """The paper's example: Salary(Refactor) > 1000 becomes
        PROJECT(VALUE(Refactor), Salary) > 1000."""
        t = ops.search([sym("APPEARS_IN")],
                       parse_term("SALARY(#1.2) > 1000"),
                       [AttrRef(1, 1)])
        checked, __ = typecheck(t, cat)
        qual = checked.args[1]
        assert "PROJECT(VALUE(#1.2), 'Salary')" in term_to_str(qual)

    def test_inherited_field(self, cat):
        t = ops.search([sym("APPEARS_IN")],
                       parse_term("NAME(#1.2) = 'Quinn'"),
                       [AttrRef(1, 1)])
        checked, __ = typecheck(t, cat)
        assert "PROJECT(VALUE(#1.2), 'Name')" in term_to_str(checked.args[1])

    def test_tuple_field_no_value_insertion(self, cat):
        t = ops.search([sym("SHAPES")], parse_term("ABS(#1.1) > 0"),
                       [AttrRef(1, 1)])
        checked, __ = typecheck(t, cat)
        rendered = term_to_str(checked.args[1])
        assert "PROJECT(#1.1, 'ABS')" in rendered
        assert "VALUE" not in rendered

    def test_declared_case_used(self, cat):
        t = ops.search([sym("APPEARS_IN")],
                       parse_term("salary(#1.2) > 1"), [AttrRef(1, 1)])
        checked, __ = typecheck(t, cat)
        assert "'Salary'" in term_to_str(checked.args[1])

    def test_projection_items_normalised(self, cat):
        t = ops.search([sym("APPEARS_IN")], TRUE,
                       [parse_term("SALARY(#1.2)")])
        checked, schema = typecheck(t, cat)
        assert schema.attr_type(1) == NUMERIC

    def test_unknown_function_rejected(self, cat):
        t = ops.search([sym("APPEARS_IN")],
                       parse_term("BOGUS(#1.1) = 1"), [AttrRef(1, 1)])
        with pytest.raises(TypeCheckError):
            typecheck(t, cat)

    def test_registered_function_kept(self, cat):
        t = ops.search([sym("APPEARS_IN")],
                       parse_term("MEMBER(#1.1, MAKESET(1, 2))"),
                       [AttrRef(1, 1)])
        checked, __ = typecheck(t, cat)
        assert "MEMBER" in term_to_str(checked.args[1])

    def test_bad_attref_surfaces(self, cat):
        t = ops.search([sym("APPEARS_IN")], parse_term("#1.9 = 1"),
                       [AttrRef(1, 1)])
        with pytest.raises(Exception):
            typecheck(t, cat)


class TestOperatorsWalked:
    def test_filter_qual_normalised(self, cat):
        t = ops.filter_(sym("APPEARS_IN"), parse_term("SALARY(#1.2) > 1"))
        checked, __ = typecheck(t, cat)
        assert "PROJECT" in term_to_str(checked.args[1])

    def test_union_branches_normalised(self, cat):
        branch = ops.search([sym("APPEARS_IN")],
                            parse_term("SALARY(#1.2) > 1"),
                            [AttrRef(1, 1)])
        t = ops.union([branch])
        checked, __ = typecheck(t, cat)
        assert "PROJECT" in term_to_str(checked)

    def test_fix_body_normalised(self, cat):
        body = ops.union([
            sym("APPEARS_IN"),
            ops.search([sym("R"), sym("APPEARS_IN")],
                       parse_term("#1.1 = #2.1 AND SALARY(#2.2) > 0"),
                       [AttrRef(1, 1), AttrRef(2, 2)]),
        ])
        t = ops.fix("R", body)
        checked, schema = typecheck(t, cat)
        assert "PROJECT" in term_to_str(checked)
        assert len(schema) == 2

    def test_nest_input_normalised(self, cat):
        inner = ops.search([sym("APPEARS_IN")], TRUE,
                           [AttrRef(1, 1), parse_term("SALARY(#1.2)")])
        t = ops.nest(inner, [AttrRef(1, 2)], "Salaries", kind="SET")
        checked, schema = typecheck(t, cat)
        assert schema.names[-1] == "Salaries"

    def test_values_passthrough(self, cat):
        from repro.lera.ops import values_rel
        from repro.terms.term import num
        t = values_rel([[num(1)]])
        checked, schema = typecheck(t, cat)
        assert checked == t
        assert len(schema) == 1

    def test_non_lera_term_rejected(self, cat):
        with pytest.raises(TypeCheckError):
            typecheck(parse_term("x"), cat)
