"""Plan pretty-printer coverage: every operator renders."""

import pytest

from repro.lera.printer import plan_to_str
from repro.terms.parser import parse_term


CASES = {
    "base relation": ("EDGE", ["EDGE"]),
    "search": (
        # note: '=' operands are canonically ordered (constant first)
        "SEARCH(LIST(EDGE), #1.1 = 1, LIST(#1.2))",
        ["SEARCH", "1 = #1.1", "EDGE"],
    ),
    "join": (
        "JOIN(LIST(EDGE, NODE), #1.2 = #2.1)",
        ["JOIN", "EDGE", "NODE"],
    ),
    "filter": (
        "FILTER(EDGE, #1.1 > 2)",
        ["FILTER", "#1.1 > 2"],
    ),
    "projection": (
        "PROJECTION(EDGE, LIST(#1.1))",
        ["PROJECTION", "#1.1"],
    ),
    "union": (
        "UNION(SET(EDGE, NODE))",
        ["UNION", "EDGE", "NODE"],
    ),
    "intersection": (
        "INTERSECTION(SET(EDGE, NODE))",
        ["INTERSECTION"],
    ),
    "difference": (
        "DIFFERENCE(EDGE, NODE)",
        ["DIFFERENCE", "EDGE", "NODE"],
    ),
    "fix": (
        "FIX(TC, UNION(SET(EDGE, SEARCH(LIST(TC, EDGE), #1.2 = #2.1, "
        "LIST(#1.1, #2.2)))))",
        ["FIX TC", "UNION", "SEARCH"],
    ),
    "nest": (
        "NEST(EDGE, LIST(#1.2), LIST('Dsts', SET))",
        ["NEST", "Dsts"],
    ),
    "unnest": (
        "UNNEST(EDGE, #1.2)",
        ["UNNEST", "#1.2"],
    ),
    "values": (
        "VALUES(LIST(LIST(1, 2), LIST(3, 4)))",
        ["VALUES (2 rows)"],
    ),
    "empty": ("EMPTY(3)", ["EMPTY (3 columns)"]),
    "semijoin": (
        "SEMIJOIN(EDGE, NODE, #1.1 = #2.1)",
        ["SEMIJOIN", "EDGE", "NODE"],
    ),
    "antijoin": (
        "ANTIJOIN(EDGE, NODE, #1.1 = #2.1)",
        ["ANTIJOIN"],
    ),
}


@pytest.mark.parametrize("label", list(CASES))
def test_renders(label):
    source, fragments = CASES[label]
    rendered = plan_to_str(parse_term(source))
    for fragment in fragments:
        assert fragment in rendered, (label, rendered)


def test_indentation_reflects_nesting():
    rendered = plan_to_str(parse_term(
        "SEARCH(LIST(UNION(SET(EDGE, NODE))), true, LIST(#1.1))"
    ))
    lines = rendered.splitlines()
    assert lines[0].startswith("SEARCH")
    assert lines[1].startswith("  UNION")
    assert lines[2].startswith("    ")


def test_non_lera_term_falls_back_to_term_syntax():
    rendered = plan_to_str(parse_term("MEMBER(1, #1.1)"))
    assert rendered == "MEMBER(1, #1.1)"
