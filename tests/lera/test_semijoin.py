"""SEMIJOIN / ANTIJOIN operator tests (schema + evaluation)."""

import pytest

from repro.adt.types import CHAR, NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import evaluate
from repro.engine.stats import EvalStats
from repro.lera import ops
from repro.lera.schema import schema_of
from repro.lera.typecheck import typecheck
from repro.terms.parser import parse_term
from repro.terms.term import TRUE, sym


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("CUSTOMER", [("Cid", NUMERIC), ("Name", CHAR)])
    c.insert_many("CUSTOMER", [(1, "ann"), (2, "bob"), (3, "cyd")])
    c.define_table("ORDERS", [("Cust", NUMERIC), ("Total", NUMERIC)])
    c.insert_many("ORDERS", [(1, 10), (1, 20), (3, 5)])
    return c


class TestSchema:
    def test_output_is_left_schema(self, cat):
        t = ops.semijoin(sym("CUSTOMER"), sym("ORDERS"),
                         parse_term("#1.1 = #2.1"))
        assert schema_of(t, cat).names == ("Cid", "Name")

    def test_antijoin_same(self, cat):
        t = ops.antijoin(sym("CUSTOMER"), sym("ORDERS"), TRUE)
        assert schema_of(t, cat).names == ("Cid", "Name")

    def test_typecheck_walks_qual(self, cat):
        t = ops.semijoin(sym("CUSTOMER"), sym("ORDERS"),
                         parse_term("#1.1 = #2.1 AND #2.2 > 0"))
        checked, schema = typecheck(t, cat)
        assert schema.names == ("Cid", "Name")


class TestEvaluation:
    def test_semijoin_keeps_matching_left_rows(self, cat):
        t = ops.semijoin(sym("CUSTOMER"), sym("ORDERS"),
                         parse_term("#1.1 = #2.1"))
        rows = evaluate(t, cat).rows
        assert sorted(r[0] for r in rows) == [1, 3]

    def test_semijoin_no_duplication(self, cat):
        # customer 1 has two orders but appears once
        t = ops.semijoin(sym("CUSTOMER"), sym("ORDERS"),
                         parse_term("#1.1 = #2.1"))
        rows = evaluate(t, cat).rows
        assert len([r for r in rows if r[0] == 1]) == 1

    def test_antijoin_keeps_unmatched(self, cat):
        t = ops.antijoin(sym("CUSTOMER"), sym("ORDERS"),
                         parse_term("#1.1 = #2.1"))
        rows = evaluate(t, cat).rows
        assert [r[0] for r in rows] == [2]

    def test_qual_over_both_sides(self, cat):
        t = ops.semijoin(sym("CUSTOMER"), sym("ORDERS"),
                         parse_term("#1.1 = #2.1 AND #2.2 > 15"))
        rows = evaluate(t, cat).rows
        assert [r[0] for r in rows] == [1]

    def test_true_qual_is_nonempty_test(self, cat):
        t = ops.semijoin(sym("CUSTOMER"), sym("ORDERS"), TRUE)
        assert len(evaluate(t, cat)) == 3
        cat.table("ORDERS").clear()
        assert len(evaluate(t, cat)) == 0

    def test_early_exit_counts(self, cat):
        # the probe stops at the first partner: customer 1 must not
        # scan past its first order
        stats = EvalStats()
        t = ops.semijoin(sym("CUSTOMER"), sym("ORDERS"),
                         parse_term("#1.1 = #2.1"))
        from repro.engine.evaluate import Evaluator
        Evaluator(cat, stats=stats).evaluate(t)
        # worst case would be 3*3 = 9 pairs; early exit saves at least
        # the pairs after customer 1's first match
        assert stats.join_pairs < 9
