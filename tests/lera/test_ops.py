"""LERA operator constructor and accessor tests."""

import pytest

from repro.errors import TermError
from repro.lera import ops
from repro.terms.parser import parse_term
from repro.terms.term import AttrRef, TRUE, is_fun, num, sym


class TestConstructors:
    def test_relation(self):
        assert ops.relation("edge") == sym("EDGE")
        assert ops.is_relation_name(ops.relation("EDGE"))

    def test_search_shape(self):
        t = ops.search([sym("A"), sym("B")], TRUE, [AttrRef(1, 1)])
        inputs, qual, items = ops.search_parts(t)
        assert inputs == (sym("A"), sym("B"))
        assert qual == TRUE
        assert items == (AttrRef(1, 1),)

    def test_search_needs_input(self):
        with pytest.raises(TermError):
            ops.search([], TRUE, [])

    def test_join_needs_two(self):
        with pytest.raises(TermError):
            ops.join([sym("A")], TRUE)

    def test_union_dedupes_branches(self):
        t = ops.union([sym("A"), sym("A"), sym("B")])
        assert len(ops.relation_inputs(t)) == 2

    def test_union_needs_input(self):
        with pytest.raises(TermError):
            ops.union([])

    def test_fix(self):
        t = ops.fix("TC", sym("EDGE"))
        assert is_fun(t, "FIX")
        assert t.args[0] == sym("TC")

    def test_nest_spec(self):
        t = ops.nest(sym("A"), [AttrRef(1, 2)], "Actors", kind="SET")
        assert is_fun(t, "NEST")
        spec = t.args[2]
        assert spec.args[0].value == "Actors"
        assert spec.args[1] == sym("SET")

    def test_nest_bad_kind(self):
        with pytest.raises(TermError):
            ops.nest(sym("A"), [AttrRef(1, 1)], "X", kind="HEAP")

    def test_nest_needs_attrs(self):
        with pytest.raises(TermError):
            ops.nest(sym("A"), [], "X")

    def test_values_rel(self):
        t = ops.values_rel([[num(1), num(2)], [num(3), num(4)]])
        assert is_fun(t, "VALUES")

    def test_values_width_check(self):
        with pytest.raises(TermError):
            ops.values_rel([[num(1)], [num(2), num(3)]])

    def test_values_needs_rows(self):
        with pytest.raises(TermError):
            ops.values_rel([])


class TestItems:
    def test_as_item_roundtrip(self):
        item = ops.as_item(AttrRef(1, 2), "Title")
        assert ops.item_expr(item) == AttrRef(1, 2)
        assert ops.item_name(item) == "Title"

    def test_bare_item(self):
        assert ops.item_expr(AttrRef(1, 1)) == AttrRef(1, 1)
        assert ops.item_name(AttrRef(1, 1)) is None
        assert ops.item_name(AttrRef(1, 1), "dflt") == "dflt"


class TestAccessors:
    def test_proj_items_of_projection(self):
        t = ops.projection(sym("A"), [AttrRef(1, 1)])
        assert ops.proj_items(t) == (AttrRef(1, 1),)

    def test_proj_items_wrong_operator(self):
        with pytest.raises(TermError):
            ops.proj_items(sym("A"))

    def test_rel_list_wrong_operator(self):
        with pytest.raises(TermError):
            ops.rel_list(ops.filter_(sym("A"), TRUE))

    def test_relation_inputs_all_operators(self):
        a, b = sym("A"), sym("B")
        assert ops.relation_inputs(ops.filter_(a, TRUE)) == (a,)
        assert ops.relation_inputs(ops.difference(a, b)) == (a, b)
        assert ops.relation_inputs(ops.join([a, b], TRUE)) == (a, b)
        assert set(ops.relation_inputs(ops.union([a, b]))) == {a, b}
        assert ops.relation_inputs(ops.unnest(a, AttrRef(1, 1))) == (a,)
        assert ops.relation_inputs(a) == ()

    def test_is_lera_operator(self):
        assert ops.is_lera_operator(ops.filter_(sym("A"), TRUE))
        assert not ops.is_lera_operator(parse_term("MEMBER(x, y)"))
        assert not ops.is_lera_operator(sym("A"))


class TestNewOperators:
    def test_distinct(self):
        t = ops.distinct(sym("A"))
        assert is_fun(t, "DISTINCT")
        assert ops.relation_inputs(t) == (sym("A"),)

    def test_semijoin_antijoin(self):
        q = parse_term("#1.1 = #2.1")
        s = ops.semijoin(sym("A"), sym("B"), q)
        a = ops.antijoin(sym("A"), sym("B"), q)
        assert is_fun(s, "SEMIJOIN") and is_fun(a, "ANTIJOIN")
        assert ops.relation_inputs(s) == (sym("A"), sym("B"))

    def test_empty_rel(self):
        t = ops.empty_rel(3)
        assert ops.empty_width(t) == 3
        assert ops.relation_inputs(t) == ()

    def test_empty_needs_positive_width(self):
        with pytest.raises(TermError):
            ops.empty_rel(0)

    def test_empty_width_on_other_term(self):
        with pytest.raises(TermError):
            ops.empty_width(sym("A"))
