"""Attribute-reference analysis tests."""

from repro.lera.analysis import (attrefs_of, map_attrefs, max_rel_index,
                                 refers_only_to, rels_referenced,
                                 rename_single_rel, shift_rel_indices)
from repro.terms.parser import parse_term
from repro.terms.term import AttrRef, num


class TestCollection:
    def test_attrefs_of(self):
        t = parse_term("#1.1 = #2.3 AND MEMBER('x', #2.1)")
        refs = set(attrefs_of(t))
        assert refs == {AttrRef(1, 1), AttrRef(2, 3), AttrRef(2, 1)}

    def test_rels_referenced(self):
        t = parse_term("#1.1 = #3.2")
        assert rels_referenced(t) == {1, 3}

    def test_max_rel_index_empty(self):
        assert max_rel_index(parse_term("1 = 2")) == 0

    def test_max_rel_index(self):
        assert max_rel_index(parse_term("#2.1 = #5.9")) == 5


class TestRewriting:
    def test_shift_all(self):
        t = parse_term("#1.1 = #2.2")
        out = shift_rel_indices(t, 3)
        assert set(attrefs_of(out)) == {AttrRef(4, 1), AttrRef(5, 2)}

    def test_shift_threshold(self):
        t = parse_term("#1.1 = #2.2")
        out = shift_rel_indices(t, 10, only_at_or_above=2)
        assert set(attrefs_of(out)) == {AttrRef(1, 1), AttrRef(12, 2)}

    def test_rename_single(self):
        t = parse_term("#1.1 = #2.2")
        out = rename_single_rel(t, 2, 7)
        assert set(attrefs_of(out)) == {AttrRef(1, 1), AttrRef(7, 2)}

    def test_map_attrefs_with_replacement_term(self):
        t = parse_term("#1.1 + 1")
        out = map_attrefs(t, lambda a: num(9) if a.rel == 1 else None)
        assert out == parse_term("9 + 1")

    def test_map_attrefs_none_keeps(self):
        t = parse_term("#1.1")
        assert map_attrefs(t, lambda a: None) == t


class TestRefersOnly:
    def test_single_relation(self):
        t = parse_term("#2.1 = 5 AND #2.3 > 0")
        assert refers_only_to(t, 2)
        assert not refers_only_to(t, 1)

    def test_positions_filter(self):
        t = parse_term("#2.1 = 5")
        assert refers_only_to(t, 2, positions=[1, 2])
        assert not refers_only_to(t, 2, positions=[3])

    def test_no_refs_is_vacuous(self):
        assert refers_only_to(parse_term("1 = 1"), 4)
