"""Schema computation tests."""

import pytest

from repro.adt.types import (BOOLEAN, CHAR, CollectionType, INT, NUMERIC,
                             REAL, TupleType)
from repro.engine.catalog import Catalog
from repro.errors import SchemaError
from repro.lera import ops
from repro.lera.schema import Schema, infer_type, schema_of
from repro.terms.parser import parse_term
from repro.terms.term import AttrRef, TRUE, mk_fun, num, string, sym


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    c.define_table("NODE", [("Id", NUMERIC), ("Label", CHAR)])
    return c


class TestSchemaBasics:
    def test_positional_access(self):
        s = Schema([("A", INT), ("B", CHAR)])
        assert s.attr_name(1) == "A"
        assert s.attr_type(2) == CHAR

    def test_out_of_range(self):
        s = Schema([("A", INT)])
        with pytest.raises(SchemaError):
            s.attr_type(2)

    def test_index_of_case_insensitive(self):
        s = Schema([("Src", INT)])
        assert s.index_of("SRC") == 1
        assert s.has_attr("src")

    def test_index_of_unknown(self):
        with pytest.raises(SchemaError):
            Schema([("A", INT)]).index_of("Z")

    def test_concat_and_project(self):
        s = Schema([("A", INT)]).concat(Schema([("B", CHAR)]))
        assert s.names == ("A", "B")
        assert s.project([2]).names == ("B",)


class TestOperatorSchemas:
    def test_base_relation(self, cat):
        s = schema_of(sym("EDGE"), cat)
        assert s.names == ("Src", "Dst")

    def test_unknown_relation(self, cat):
        with pytest.raises(Exception):
            schema_of(sym("NOPE"), cat)

    def test_search_schema_names_from_as(self, cat):
        t = ops.search([sym("EDGE")], TRUE,
                       [ops.as_item(AttrRef(1, 2), "Target")])
        assert schema_of(t, cat).names == ("Target",)

    def test_search_schema_names_inherited(self, cat):
        t = ops.search([sym("EDGE")], TRUE, [AttrRef(1, 2)])
        assert schema_of(t, cat).names == ("Dst",)

    def test_search_duplicate_names_uniquified(self, cat):
        t = ops.search([sym("EDGE")], TRUE,
                       [AttrRef(1, 1), AttrRef(1, 1)])
        names = schema_of(t, cat).names
        assert len(set(names)) == 2

    def test_join_concatenates(self, cat):
        t = ops.join([sym("EDGE"), sym("NODE")], TRUE)
        assert schema_of(t, cat).names == ("Src", "Dst", "Id", "Label")

    def test_filter_passthrough(self, cat):
        t = ops.filter_(sym("NODE"), TRUE)
        assert schema_of(t, cat).names == ("Id", "Label")

    def test_union_width_check(self, cat):
        bad = ops.union([
            sym("EDGE"),
            ops.search([sym("NODE")], TRUE, [AttrRef(1, 1)]),
        ])
        with pytest.raises(SchemaError):
            schema_of(bad, cat)

    def test_difference_width_check(self, cat):
        bad = ops.difference(
            sym("EDGE"), ops.search([sym("NODE")], TRUE, [AttrRef(1, 1)])
        )
        with pytest.raises(SchemaError):
            schema_of(bad, cat)

    def test_values_schema(self, cat):
        t = ops.values_rel([[num(1), string("a")]])
        s = schema_of(t, cat)
        assert s.names == ("V1", "V2")
        assert s.attr_type(1) == INT
        assert s.attr_type(2) == CHAR

    def test_fix_schema_from_anchor(self, cat):
        body = ops.union([
            sym("EDGE"),
            ops.search([sym("TC"), sym("EDGE")],
                       parse_term("#1.2 = #2.1"),
                       [AttrRef(1, 1), AttrRef(2, 2)]),
        ])
        s = schema_of(ops.fix("TC", body), cat)
        assert len(s) == 2

    def test_fix_without_anchor(self, cat):
        body = ops.search([sym("TC")], TRUE, [AttrRef(1, 1)])
        with pytest.raises(SchemaError):
            schema_of(ops.fix("TC", body), cat)

    def test_nest_schema(self, cat):
        t = ops.nest(sym("EDGE"), [AttrRef(1, 2)], "Targets", kind="SET")
        s = schema_of(t, cat)
        assert s.names == ("Src", "Targets")
        assert isinstance(s.attr_type(2), CollectionType)
        assert s.attr_type(2).kind == "SET"

    def test_nest_multi_attr_schema(self, cat):
        t = ops.nest(sym("NODE"), [AttrRef(1, 1), AttrRef(1, 2)],
                     "Pairs", kind="BAG")
        s = schema_of(t, cat)
        element = s.attr_type(1).element
        assert isinstance(element, TupleType)
        assert element.field_names == ("Id", "Label")

    def test_unnest_schema(self, cat):
        nested = ops.nest(sym("EDGE"), [AttrRef(1, 2)], "Ts", kind="SET")
        t = ops.unnest(nested, AttrRef(1, 2))
        s = schema_of(t, cat)
        assert s.names == ("Src", "Ts")
        assert s.attr_type(2) == NUMERIC


class TestInferType:
    def test_attref(self, cat):
        s = schema_of(sym("NODE"), cat)
        assert infer_type(AttrRef(1, 2), [s], cat) == CHAR

    def test_attref_out_of_inputs(self, cat):
        with pytest.raises(SchemaError):
            infer_type(AttrRef(3, 1), [schema_of(sym("NODE"), cat)], cat)

    def test_constants(self, cat):
        assert infer_type(num(1), [], cat) == INT
        assert infer_type(num(1.5), [], cat) == REAL
        assert infer_type(string("a"), [], cat) == CHAR
        assert infer_type(TRUE, [], cat) == BOOLEAN

    def test_comparison_boolean(self, cat):
        s = schema_of(sym("EDGE"), cat)
        t = parse_term("#1.1 = #1.2")
        assert infer_type(t, [s], cat) == BOOLEAN

    def test_comparison_broadcast_over_collection(self, cat):
        coll = CollectionType("SET", NUMERIC)
        s = Schema([("Salaries", coll)])
        t = parse_term("#1.1 > 10")
        out = infer_type(t, [s], cat)
        assert isinstance(out, CollectionType)
        assert out.element == BOOLEAN

    def test_project_resolves_field(self, cat):
        pt = TupleType("Point", [("ABS", REAL)])
        s = Schema([("P", pt)])
        t = mk_fun("PROJECT", [AttrRef(1, 1), string("ABS")])
        assert infer_type(t, [s], cat) == REAL

    def test_makeset_type(self, cat):
        t = parse_term("MAKESET(1, 2)")
        out = infer_type(t, [], cat)
        assert isinstance(out, CollectionType) and out.kind == "SET"

    def test_unknown_function_types_any(self, cat):
        from repro.adt.types import ANY
        assert infer_type(parse_term("MYSTERY(1)"), [], cat) == ANY
