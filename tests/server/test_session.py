"""Sessions: per-caller settings, idle reaping, registry safety."""

import threading

import pytest

from repro import Database
from repro.errors import SessionExpired
from repro.obs.bus import EventBus
from repro.obs.events import SessionClosed, SessionOpened
from repro.server.session import (Session, SessionManager,
                                  SessionSettings)


def _db():
    db = Database()
    db.execute("TABLE T (A : NUMERIC, B : NUMERIC)")
    db.execute("INSERT INTO T VALUES (1, 10), (2, 20)")
    return db


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSessionSettings:
    def test_defaults_defer_to_database(self):
        settings = SessionSettings()
        assert settings.rewrite is None
        assert settings.checked is None
        assert settings.deadline_ms is None
        assert settings.describe() == "defaults"

    def test_describe_lists_overrides(self):
        text = SessionSettings(
            rewrite=False, checked=True, deadline_ms=5.0, profile=True
        ).describe()
        assert "rewrite=off" in text
        assert "checked=on" in text
        assert "deadline=5ms" in text
        assert "profile=on" in text


class TestSession:
    def test_query_applies_session_settings(self):
        db = _db()
        session = Session("s1", db)
        session.settings.rewrite = False
        result = session.query("SELECT B FROM T WHERE A = 1")
        assert result.rows == [(10,)]

    def test_sessions_do_not_leak_into_each_other(self):
        """The settings-leakage fix: two sessions over one database
        keep independent checked/deadline settings, and the shared
        Database object is never mutated."""
        db = _db()
        strict = Session("strict", db,
                         SessionSettings(checked=True, deadline_ms=50.0))
        lax = Session("lax", db)
        strict.query("SELECT B FROM T WHERE A = 1")
        assert db.checked is False
        assert db.deadline_ms is None
        lax.query("SELECT B FROM T WHERE A = 1")
        assert strict.settings.checked is True
        assert lax.settings.checked is None

    def test_statement_count_and_touch(self):
        clock = FakeClock()
        session = Session("s1", _db(), clock=clock)
        clock.now = 5.0
        session.query("SELECT A FROM T")
        assert session.statements == 1
        assert session.last_used == 5.0
        assert session.idle_for() == 0.0


class TestSessionManager:
    def test_open_assigns_fresh_ids(self):
        manager = SessionManager(_db())
        first, second = manager.open(), manager.open()
        assert first.id != second.id
        assert len(manager) == 2

    def test_open_rejects_duplicate_id(self):
        manager = SessionManager(_db())
        manager.open("mine")
        with pytest.raises(SessionExpired):
            manager.open("mine")

    def test_get_unknown_session_raises_typed_error(self):
        manager = SessionManager(_db())
        with pytest.raises(SessionExpired) as excinfo:
            manager.get("ghost")
        assert excinfo.value.session_id == "ghost"

    def test_close_removes_session(self):
        manager = SessionManager(_db())
        session = manager.open()
        manager.close(session.id)
        assert session.closed
        with pytest.raises(SessionExpired):
            manager.get(session.id)

    def test_idle_sessions_are_reaped(self):
        clock = FakeClock()
        manager = SessionManager(_db(), idle_timeout_s=10.0, clock=clock)
        idle = manager.open("idle")
        clock.now = 11.0
        busy = manager.open("busy")  # open() reaps opportunistically
        assert idle.id not in manager
        assert busy.id in manager
        assert idle.closed

    def test_activity_defers_reaping(self):
        clock = FakeClock()
        manager = SessionManager(_db(), idle_timeout_s=10.0, clock=clock)
        session = manager.open("s")
        clock.now = 8.0
        manager.get("s").touch()
        clock.now = 16.0  # 8s idle since the touch: still alive
        assert manager.reap() == []
        clock.now = 19.0
        assert manager.reap() == ["s"]

    def test_lifecycle_events(self):
        clock = FakeClock()
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(SessionOpened, SessionClosed))
        manager = SessionManager(
            _db(), idle_timeout_s=10.0, clock=clock, obs=bus
        )
        manager.open("a")
        manager.close("a")
        manager.open("b")
        clock.now = 20.0
        manager.reap()
        kinds = [(type(e).__name__, getattr(e, "reason", None))
                 for e in seen]
        assert kinds == [
            ("SessionOpened", None), ("SessionClosed", "closed"),
            ("SessionOpened", None), ("SessionClosed", "reaped"),
        ]

    def test_concurrent_open_close_is_safe(self):
        manager = SessionManager(_db(), idle_timeout_s=1e9)
        errors = []

        def churn(tag):
            try:
                for i in range(50):
                    session = manager.open(f"{tag}-{i}")
                    manager.get(session.id)
                    manager.close(session.id)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=churn, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        assert len(manager) == 0
