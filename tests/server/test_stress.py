"""Multi-threaded stress/chaos: the ISSUE acceptance scenario.

Sixteen threads hammer one durable, served database with a mix of
DML, queries and faulty-rule traffic.  The run must end with zero
fsck violations, every query result consistent at a statement
boundary, every shed request carrying a usable ``retry_after``, and a
gap-free, replayable WAL.

The default duration keeps the tier-1 run fast; CI's server-stress
job raises it via ``SERVER_STRESS_SECONDS``.

The run doubles as the trace-propagation acceptance check: a
:class:`~repro.obs.telemetry.Telemetry` hub with a JSONL sink is
mounted on the stress server, and afterwards every request-scoped
record must carry a ``trace_id``, with no ``trace_id`` ever appearing
in two different sessions.
"""

import json
import os
import threading
import time

import pytest

from repro import Database
from repro.durability import CrashPoint, SimulatedCrash
from repro.durability.wal import scan_wal
from repro.errors import RetryBudgetExceeded, ServerOverloaded
from repro.obs.telemetry import Telemetry
from repro.server import AdmissionLimits, RetryPolicy, Server
from tests.resilience.chaos import AlwaysRaisingRule, FlakyRule

STRESS_SECONDS = float(os.environ.get("SERVER_STRESS_SECONDS", "2"))

_BATCH = 3          # rows per INSERT statement (the atomicity probe)
_SCALE = 7          # the V = Id * _SCALE invariant
_WRITERS = 4
_READERS = 6
_CHAOS = 4          # readers that route through the faulty-rule view
_SYS = 2            # readers that query the sys.* introspection catalog


def _build(path):
    db = Database(path=path, resilient=True)
    db.execute("""
    TABLE INV (Id : NUMERIC, V : NUMERIC, PRIMARY KEY (Id));
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW BIG (Shop, Amount) AS
      SELECT Shop, Amount FROM SALE WHERE Amount > 10
    """)
    db.execute("INSERT INTO SALE VALUES (1, 5), (1, 15), (2, 25), (2, 40)")
    return db


def _batch_insert(writer: int, round_: int) -> str:
    base = 1_000_000 * writer + _BATCH * round_
    values = ", ".join(
        f"({i}, {i * _SCALE})" for i in range(base, base + _BATCH)
    )
    return f"INSERT INTO INV VALUES {values}"


class Harness:
    """Shared scorekeeping for the worker threads."""

    def __init__(self, server):
        self.server = server
        self.stop = threading.Event()
        self.lock = threading.Lock()
        self.violations = []       # consistency breaches (must stay [])
        self.failures = []         # errors no thread should ever see
        self.sheds = []            # ServerOverloaded instances observed
        self.batches_written = 0

    def shed(self, error):
        with self.lock:
            self.sheds.append(error)

    def violation(self, text):
        with self.lock:
            self.violations.append(text)

    def failure(self, error):
        with self.lock:
            self.failures.append(repr(error))

    def wrote(self):
        with self.lock:
            self.batches_written += 1


def _writer(harness, tag):
    session = harness.server.open_session(f"writer-{tag}")
    round_ = 0
    while not harness.stop.is_set():
        try:
            harness.server.execute(
                _batch_insert(tag, round_), session=session.id
            )
            harness.wrote()
            round_ += 1
        except ServerOverloaded as error:
            harness.shed(error)
            time.sleep(min(error.retry_after, 0.05))
        except Exception as error:  # pragma: no cover
            harness.failure(error)
            return


def _reader(harness, tag):
    session = harness.server.open_session(f"reader-{tag}")
    while not harness.stop.is_set():
        try:
            rows = harness.server.query(
                "SELECT Id, V FROM INV", session=session.id
            ).rows
        except ServerOverloaded as error:
            harness.shed(error)
            time.sleep(min(error.retry_after, 0.05))
            continue
        except Exception as error:  # pragma: no cover
            harness.failure(error)
            return
        if len(rows) % _BATCH != 0:
            harness.violation(
                f"torn read: {len(rows)} rows is not a multiple "
                f"of the {_BATCH}-row batch"
            )
        for row_id, value in rows:
            if value != row_id * _SCALE:
                harness.violation(
                    f"corrupt row ({row_id}, {value})"
                )
                break


def _chaos_reader(harness, tag):
    """Queries whose rewrite passes through injected faulty rules."""
    session = harness.server.open_session(f"chaos-{tag}")
    expected = [(15,), (25,), (40,)]
    while not harness.stop.is_set():
        try:
            rows = harness.server.query(
                "SELECT Amount FROM BIG", session=session.id
            ).rows
        except ServerOverloaded as error:
            harness.shed(error)
            time.sleep(min(error.retry_after, 0.05))
            continue
        except Exception as error:  # pragma: no cover
            harness.failure(error)
            return
        if sorted(rows) != expected:
            harness.violation(f"chaos view returned {sorted(rows)}")


def _sys_reader(harness, tag):
    """Queries the introspection catalog while the storm rages.

    A ``sys.*`` read is an ordinary read: it runs under the shared
    lock (never the writer side, which would deadlock against the
    writer threads under writer preference) and sees only
    statement-boundary state -- so the live row count sys.relations
    reports for INV must always be a whole number of batches.
    """
    session = harness.server.open_session(f"sys-{tag}")
    while not harness.stop.is_set():
        try:
            rows = harness.server.query(
                "SELECT Name, Rows FROM sys.relations "
                "WHERE Kind = 'table'", session=session.id,
            ).rows
            heat = harness.server.query(
                "SELECT Rule, Fired FROM sys.rule_heat",
                session=session.id,
            ).rows
        except ServerOverloaded as error:
            harness.shed(error)
            time.sleep(min(error.retry_after, 0.05))
            continue
        except Exception as error:  # pragma: no cover
            harness.failure(error)
            return
        inventory = dict(rows)
        if "INV" not in inventory or "SALE" not in inventory:
            harness.violation(f"sys.relations lost a table: {rows}")
            continue
        if inventory["INV"] % _BATCH != 0:
            harness.violation(
                f"sys.relations saw a torn INV count "
                f"{inventory['INV']} (not a multiple of {_BATCH})"
            )
        for __, fired in heat:
            if fired < 1:
                harness.violation(f"sys.rule_heat row with fired=0")


def test_stress_mixed_workload(tmp_path):
    path = str(tmp_path / "stress.db")
    db = _build(path)
    # hostile extensions in the rewrite path, per the chaos suite
    db.optimizer.rewriter.add_rule(AlwaysRaisingRule(), "simplify")
    db.optimizer.rewriter.add_rule(FlakyRule(failures=3), "simplify")
    # full trace-stamped event log for the whole run; the chatty
    # per-rule kinds are sampled so the sink never dominates the run,
    # but the request-lifecycle kinds the assertions need are kept 1:1
    log_path = tmp_path / "events.jsonl"
    telemetry = Telemetry(
        log_path=str(log_path), log_max_bytes=1 << 30,
        sample={"RuleAttempt": 25, "ConstraintCheck": 25},
        collect=False,
    )
    server = Server(db, limits=AdmissionLimits(
        max_readers=6, max_writers=1, max_queue=8,
        queue_timeout_ms=50.0,
    ), telemetry=telemetry)
    harness = Harness(server)

    threads = (
        [threading.Thread(target=_writer, args=(harness, t))
         for t in range(_WRITERS)]
        + [threading.Thread(target=_reader, args=(harness, t))
           for t in range(_READERS)]
        + [threading.Thread(target=_chaos_reader, args=(harness, t))
           for t in range(_CHAOS)]
        + [threading.Thread(target=_sys_reader, args=(harness, t))
           for t in range(_SYS)]
    )
    assert len(threads) == 16
    for t in threads:
        t.start()
    time.sleep(STRESS_SECONDS)
    harness.stop.set()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads)

    # the workload really ran, on both sides
    assert harness.batches_written > 0
    assert harness.failures == []
    assert harness.violations == []

    # every shed was a well-formed, retryable rejection
    for error in harness.sheds:
        assert error.retry_after > 0
        assert error.request_class in ("read", "write")

    # on-disk invariants held under concurrency
    report = db.fsck()
    assert report.violations == []

    # final state is exactly the committed batches
    final = db.query("SELECT Id, V FROM INV").rows
    assert len(final) == harness.batches_written * _BATCH
    assert all(value == row_id * _SCALE for row_id, value in final)

    # the WAL replays to the same state: gap-free LSNs under concurrency
    scan = scan_wal(db.durability.wal.path)
    lsns = [record["lsn"] for record in scan.records]
    assert lsns == list(range(1, len(lsns) + 1))

    # trace propagation held under 16 threads: every request-scoped
    # record is stamped (the sink flushes per write, so no close needed)
    with open(log_path, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    request_kinds = {
        "RequestAdmitted", "RequestShed", "RequestCompleted",
        "RequestFailed", "WalAppend", "PhaseEnd", "EvalOp", "RuleFired",
    }
    spanned = [r for r in records if r["event"] in request_kinds]
    assert spanned, "the stress run emitted no request-scoped events"
    unstamped = [r["event"] for r in spanned if "trace_id" not in r]
    assert unstamped == []

    # ...and never bled across sessions: one trace_id, one session
    sessions_by_trace = {}
    for record in records:
        if record["event"] in ("RequestCompleted", "RequestFailed"):
            sessions_by_trace.setdefault(
                record["trace_id"], set()
            ).add(record["session"])
    assert sessions_by_trace
    shared = {trace: owners for trace, owners
              in sessions_by_trace.items() if len(owners) > 1}
    assert shared == {}

    # mid-statement crash point: the "process" dies partway through
    # logging one more batch, leaving a torn frame on disk
    db.durability.crashpoint = CrashPoint(
        "wal", at_byte=db.durability.wal.position + 20
    )
    with pytest.raises(SimulatedCrash):
        server.execute(_batch_insert(999, 0))
    # the dead process's memory is gone; recovery truncates the torn
    # tail and replays to exactly the pre-crash committed state
    recovered = Database(path=path)
    rows = recovered.query("SELECT Id, V FROM INV").rows
    assert sorted(rows) == sorted(final)
    assert recovered.fsck().violations == []
    recovered.close()


def test_retry_attempts_share_one_trace(tmp_path):
    """Every retry attempt of one logical request carries the same
    ``trace_id`` but a fresh ``span_id`` -- the shed records in the
    event log must line up attempt by attempt."""
    log_path = tmp_path / "retry.jsonl"
    telemetry = Telemetry(log_path=str(log_path), collect=False)
    db = Database()
    db.execute("TABLE T (A : NUMERIC)")
    server = Server(db, limits=AdmissionLimits(
        max_readers=4, max_writers=1, max_queue=0,
        queue_timeout_ms=10.0,
    ), telemetry=telemetry)

    # park a hog in the single write slot so every client attempt is
    # shed at arrival (max_queue=0: no waiting room)
    seated = threading.Event()
    release = threading.Event()

    def hog():
        with server.admission.admit("write"):
            seated.set()
            release.wait(timeout=30.0)

    thread = threading.Thread(target=hog)
    thread.start()
    try:
        assert seated.wait(timeout=30.0)
        client = server.client(retry=RetryPolicy(
            max_attempts=3, sleep=lambda _s: None,
        ))
        with pytest.raises(RetryBudgetExceeded) as info:
            client.execute("INSERT INTO T VALUES (1)")
        assert info.value.attempts == 3
    finally:
        release.set()
        thread.join(timeout=30.0)
    server.close()

    with open(log_path, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    sheds = [r for r in records if r["event"] == "RequestShed"]
    assert len(sheds) == 3
    assert len({r["trace_id"] for r in sheds}) == 1
    assert len({r["span_id"] for r in sheds}) == len(sheds)
