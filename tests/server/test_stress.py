"""Multi-threaded stress/chaos: the ISSUE acceptance scenario.

Sixteen threads hammer one durable, served database with a mix of
DML, queries and faulty-rule traffic.  The run must end with zero
fsck violations, every query result consistent at a statement
boundary, every shed request carrying a usable ``retry_after``, and a
gap-free, replayable WAL.

The default duration keeps the tier-1 run fast; CI's server-stress
job raises it via ``SERVER_STRESS_SECONDS``.
"""

import os
import threading
import time

import pytest

from repro import Database
from repro.durability import CrashPoint, SimulatedCrash
from repro.durability.wal import scan_wal
from repro.errors import ServerOverloaded
from repro.server import AdmissionLimits, Server
from tests.resilience.chaos import AlwaysRaisingRule, FlakyRule

STRESS_SECONDS = float(os.environ.get("SERVER_STRESS_SECONDS", "2"))

_BATCH = 3          # rows per INSERT statement (the atomicity probe)
_SCALE = 7          # the V = Id * _SCALE invariant
_WRITERS = 4
_READERS = 8
_CHAOS = 4          # readers that route through the faulty-rule view


def _build(path):
    db = Database(path=path, resilient=True)
    db.execute("""
    TABLE INV (Id : NUMERIC, V : NUMERIC, PRIMARY KEY (Id));
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW BIG (Shop, Amount) AS
      SELECT Shop, Amount FROM SALE WHERE Amount > 10
    """)
    db.execute("INSERT INTO SALE VALUES (1, 5), (1, 15), (2, 25), (2, 40)")
    return db


def _batch_insert(writer: int, round_: int) -> str:
    base = 1_000_000 * writer + _BATCH * round_
    values = ", ".join(
        f"({i}, {i * _SCALE})" for i in range(base, base + _BATCH)
    )
    return f"INSERT INTO INV VALUES {values}"


class Harness:
    """Shared scorekeeping for the worker threads."""

    def __init__(self, server):
        self.server = server
        self.stop = threading.Event()
        self.lock = threading.Lock()
        self.violations = []       # consistency breaches (must stay [])
        self.failures = []         # errors no thread should ever see
        self.sheds = []            # ServerOverloaded instances observed
        self.batches_written = 0

    def shed(self, error):
        with self.lock:
            self.sheds.append(error)

    def violation(self, text):
        with self.lock:
            self.violations.append(text)

    def failure(self, error):
        with self.lock:
            self.failures.append(repr(error))

    def wrote(self):
        with self.lock:
            self.batches_written += 1


def _writer(harness, tag):
    session = harness.server.open_session(f"writer-{tag}")
    round_ = 0
    while not harness.stop.is_set():
        try:
            harness.server.execute(
                _batch_insert(tag, round_), session=session.id
            )
            harness.wrote()
            round_ += 1
        except ServerOverloaded as error:
            harness.shed(error)
            time.sleep(min(error.retry_after, 0.05))
        except Exception as error:  # pragma: no cover
            harness.failure(error)
            return


def _reader(harness, tag):
    session = harness.server.open_session(f"reader-{tag}")
    while not harness.stop.is_set():
        try:
            rows = harness.server.query(
                "SELECT Id, V FROM INV", session=session.id
            ).rows
        except ServerOverloaded as error:
            harness.shed(error)
            time.sleep(min(error.retry_after, 0.05))
            continue
        except Exception as error:  # pragma: no cover
            harness.failure(error)
            return
        if len(rows) % _BATCH != 0:
            harness.violation(
                f"torn read: {len(rows)} rows is not a multiple "
                f"of the {_BATCH}-row batch"
            )
        for row_id, value in rows:
            if value != row_id * _SCALE:
                harness.violation(
                    f"corrupt row ({row_id}, {value})"
                )
                break


def _chaos_reader(harness, tag):
    """Queries whose rewrite passes through injected faulty rules."""
    session = harness.server.open_session(f"chaos-{tag}")
    expected = [(15,), (25,), (40,)]
    while not harness.stop.is_set():
        try:
            rows = harness.server.query(
                "SELECT Amount FROM BIG", session=session.id
            ).rows
        except ServerOverloaded as error:
            harness.shed(error)
            time.sleep(min(error.retry_after, 0.05))
            continue
        except Exception as error:  # pragma: no cover
            harness.failure(error)
            return
        if sorted(rows) != expected:
            harness.violation(f"chaos view returned {sorted(rows)}")


def test_stress_mixed_workload(tmp_path):
    path = str(tmp_path / "stress.db")
    db = _build(path)
    # hostile extensions in the rewrite path, per the chaos suite
    db.optimizer.rewriter.add_rule(AlwaysRaisingRule(), "simplify")
    db.optimizer.rewriter.add_rule(FlakyRule(failures=3), "simplify")
    server = Server(db, limits=AdmissionLimits(
        max_readers=6, max_writers=1, max_queue=8,
        queue_timeout_ms=50.0,
    ))
    harness = Harness(server)

    threads = (
        [threading.Thread(target=_writer, args=(harness, t))
         for t in range(_WRITERS)]
        + [threading.Thread(target=_reader, args=(harness, t))
           for t in range(_READERS)]
        + [threading.Thread(target=_chaos_reader, args=(harness, t))
           for t in range(_CHAOS)]
    )
    assert len(threads) == 16
    for t in threads:
        t.start()
    time.sleep(STRESS_SECONDS)
    harness.stop.set()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads)

    # the workload really ran, on both sides
    assert harness.batches_written > 0
    assert harness.failures == []
    assert harness.violations == []

    # every shed was a well-formed, retryable rejection
    for error in harness.sheds:
        assert error.retry_after > 0
        assert error.request_class in ("read", "write")

    # on-disk invariants held under concurrency
    report = db.fsck()
    assert report.violations == []

    # final state is exactly the committed batches
    final = db.query("SELECT Id, V FROM INV").rows
    assert len(final) == harness.batches_written * _BATCH
    assert all(value == row_id * _SCALE for row_id, value in final)

    # the WAL replays to the same state: gap-free LSNs under concurrency
    scan = scan_wal(db.durability.wal.path)
    lsns = [record["lsn"] for record in scan.records]
    assert lsns == list(range(1, len(lsns) + 1))

    # mid-statement crash point: the "process" dies partway through
    # logging one more batch, leaving a torn frame on disk
    db.durability.crashpoint = CrashPoint(
        "wal", at_byte=db.durability.wal.position + 20
    )
    with pytest.raises(SimulatedCrash):
        server.execute(_batch_insert(999, 0))
    # the dead process's memory is gone; recovery truncates the torn
    # tail and replays to exactly the pre-crash committed state
    recovered = Database(path=path)
    rows = recovered.query("SELECT Id, V FROM INV").rows
    assert sorted(rows) == sorted(final)
    assert recovered.fsck().violations == []
    recovered.close()
