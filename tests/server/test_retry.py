"""Client-side retry/backoff and the per-failure-class breaker."""

import random

import pytest

from repro.errors import (CircuitOpen, EvaluationError,
                          RetryBudgetExceeded, ServerOverloaded)
from repro.obs.bus import EventBus
from repro.obs.events import (BreakerStateChanged, RequestCompleted,
                              RequestFailed)
from repro.server.retry import CircuitBreaker, RetryPolicy


def _overloaded(retry_after=0.01):
    return ServerOverloaded(
        "busy", retry_after=retry_after, request_class="read",
        queue_depth=3,
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRetryPolicy:
    def _policy(self, **kwargs):
        sleeps = []
        kwargs.setdefault("rng", random.Random(7))
        policy = RetryPolicy(sleep=sleeps.append, **kwargs)
        return policy, sleeps

    def test_success_first_try_never_sleeps(self):
        policy, sleeps = self._policy()
        assert policy.call(lambda: 42) == 42
        assert sleeps == []
        assert policy.last_attempts == 1

    def test_retries_until_success(self):
        policy, sleeps = self._policy(max_attempts=5)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise _overloaded()
            return "ok"

        assert policy.call(flaky) == "ok"
        assert attempts["n"] == 3
        assert len(sleeps) == 2

    def test_attempt_cap_raises_budget_error(self):
        policy, __ = self._policy(max_attempts=3)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(_overloaded()))
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, ServerOverloaded)

    def test_sleep_budget_is_a_hard_cap(self):
        policy, sleeps = self._policy(
            max_attempts=100, base_delay_s=0.2, max_delay_s=10.0,
            budget_s=0.5,
        )

        def always():
            raise _overloaded(retry_after=0.4)

        with pytest.raises(RetryBudgetExceeded):
            policy.call(always)
        assert sum(sleeps) <= 0.5

    def test_retry_after_hint_is_the_floor(self):
        policy, sleeps = self._policy(
            max_attempts=2, base_delay_s=0.001, max_delay_s=0.001,
            budget_s=10.0,
        )
        with pytest.raises(RetryBudgetExceeded):
            policy.call(
                lambda: (_ for _ in ()).throw(_overloaded(0.25))
            )
        assert sleeps and sleeps[0] >= 0.25

    def test_non_retryable_errors_propagate(self):
        policy, sleeps = self._policy()

        def broken():
            raise EvaluationError("not an overload")

        with pytest.raises(EvaluationError):
            policy.call(broken)
        assert sleeps == []

    def test_backoff_is_bounded_and_jittered(self):
        policy, __ = self._policy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05
        )
        for attempt in range(1, 20):
            delay = policy.backoff(attempt)
            assert 0.0 <= delay <= 0.05


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure("EvaluationError")
        assert breaker.state("EvaluationError") == "closed"
        breaker.record_failure("EvaluationError")
        assert breaker.state("EvaluationError") == "open"

    def test_open_circuit_refuses_with_retry_after(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        breaker.record_failure("EvaluationError")
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.check("EvaluationError")
        assert excinfo.value.failure_class == "EvaluationError"
        assert 0 < excinfo.value.retry_after <= 1.0

    def test_failure_classes_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure("EvaluationError")
        breaker.check("ParseError")  # unaffected class passes
        with pytest.raises(CircuitOpen):
            breaker.check()  # but the any-class probe refuses

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        breaker.record_failure("EvaluationError")
        clock.now = 1.5
        breaker.check("EvaluationError")  # cooldown over: probe allowed
        assert breaker.state("EvaluationError") == "half-open"
        breaker.record_success("EvaluationError")
        assert breaker.state("EvaluationError") == "closed"
        breaker.check("EvaluationError")

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_s=1.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure("EvaluationError")
        clock.now = 1.5
        breaker.check("EvaluationError")
        breaker.record_failure("EvaluationError")  # the probe failed
        assert breaker.state("EvaluationError") == "open"
        with pytest.raises(CircuitOpen):
            breaker.check("EvaluationError")

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure("EvaluationError")
        breaker.record_failure("EvaluationError")
        breaker.record_success()
        breaker.record_failure("EvaluationError")
        assert breaker.state("EvaluationError") == "closed"

    def test_consumes_the_event_stream(self):
        """attach() drives the breaker from server events alone."""
        bus = EventBus()
        changes = []
        bus.subscribe(changes.append, kinds=(BreakerStateChanged,))
        breaker = CircuitBreaker(
            failure_threshold=2, clock=FakeClock(), obs=bus
        )
        breaker.attach(bus)
        for _ in range(2):
            bus.emit(RequestFailed(
                request_class="read", session="s1",
                failure_class="EvaluationError", duration=0.001,
            ))
        assert breaker.state("EvaluationError") == "open"
        assert changes and changes[-1].state == "open"

    def test_shed_events_do_not_trip_the_breaker(self):
        bus = EventBus()
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.attach(bus)
        bus.emit(RequestFailed(
            request_class="read", session="s1",
            failure_class="ServerOverloaded", duration=0.001,
        ))
        assert breaker.state("ServerOverloaded") == "closed"

    def test_completed_events_close_half_open(self):
        clock = FakeClock()
        bus = EventBus()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        breaker.attach(bus)
        bus.emit(RequestFailed(
            request_class="read", session="s1",
            failure_class="EvaluationError", duration=0.001,
        ))
        clock.now = 2.0
        breaker.check("EvaluationError")
        bus.emit(RequestCompleted(
            request_class="read", session="s1", duration=0.001
        ))
        assert breaker.state("EvaluationError") == "closed"


class TestHalfOpenSingleProbe:
    """Two callers racing past the cooldown must not both probe a
    service the breaker only has evidence is down."""

    def _tripped(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, clock=clock
        )
        breaker.record_failure("EvaluationError")
        clock.now = 1.5  # cooldown elapsed
        return breaker

    def test_second_caller_is_refused_while_probe_in_flight(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        breaker.check("EvaluationError")  # this caller wins the probe
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.check("EvaluationError")
        assert "probe" in str(excinfo.value)
        assert excinfo.value.retry_after == breaker.cooldown_s

    def test_probe_success_unblocks_everyone(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        breaker.check("EvaluationError")
        breaker.record_success("EvaluationError")
        assert breaker.state("EvaluationError") == "closed"
        breaker.check("EvaluationError")  # no longer refused
        breaker.check("EvaluationError")

    def test_probe_failure_reopens_for_everyone(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        breaker.check("EvaluationError")
        breaker.record_failure("EvaluationError")
        assert breaker.state("EvaluationError") == "open"
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.check("EvaluationError")
        # the clock did not advance past the *new* opened_at
        assert excinfo.value.retry_after > 0

    def test_exactly_one_of_n_racing_threads_probes(self):
        import threading

        clock = FakeClock()
        breaker = self._tripped(clock)
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            try:
                breaker.check("EvaluationError")
                with lock:
                    outcomes.append("probe")
            except CircuitOpen:
                with lock:
                    outcomes.append("refused")

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert outcomes.count("probe") == 1
        assert outcomes.count("refused") == 7
        # the winner's verdict resolves the probe for everyone
        breaker.record_success("EvaluationError")
        assert breaker.state("EvaluationError") == "closed"

    def test_any_class_check_respects_the_probe(self):
        clock = FakeClock()
        breaker = self._tripped(clock)
        breaker.check()  # the class-less check wins the probe
        with pytest.raises(CircuitOpen):
            breaker.check()
        with pytest.raises(CircuitOpen):
            breaker.check("EvaluationError")
