"""The workload dashboard surfaces: fingerprinted slow queries,
``top(limit)``, ``top_statements`` and the CLI's ``.top`` variants."""

from repro import Database
from repro.esql.fingerprint import fingerprint_source
from repro.server import AdmissionLimits, Server


def _server(**kwargs):
    db = Database()
    db.execute("TABLE T (A : NUMERIC, B : NUMERIC, PRIMARY KEY (A))")
    db.execute("INSERT INTO T VALUES (1, 10), (2, 20)")
    return Server(db, **kwargs)


class TestSlowQueryFingerprints:
    def test_entries_group_by_fingerprint(self):
        server = _server(slow_query_ms=0.0)
        server.query("SELECT A FROM T WHERE B = 10")
        server.query("select a from t where b = 99")
        first, second = server.slow_queries()
        assert first["fingerprint"] == second["fingerprint"]
        assert len(first["fingerprint"]) == 12
        assert first["fingerprint"] == \
            fingerprint_source(first["source"]).fingerprint

    def test_sys_slow_queries_exposes_the_column(self):
        server = _server(slow_query_ms=0.0)
        server.query("SELECT A FROM T")
        rows = server.db.query(
            "SELECT Fingerprint, Source FROM sys.slow_queries"
        ).rows
        assert rows
        assert all(len(fp) == 12 for fp, __ in rows)


class TestTopLimits:
    def test_limit_caps_rule_heat(self):
        server = _server()
        server.query("SELECT T.A FROM T WHERE EXISTS "
                     "(SELECT A FROM T WHERE B = 10)")
        full = server.top()["rule_heat"]
        capped = server.top(1)["rule_heat"]
        assert len(capped) == min(1, len(full))

    def test_top_statements_leaderboard(self):
        server = _server()
        for i in range(3):
            server.query(f"SELECT A FROM T WHERE B = {i}")
        server.query("SELECT B FROM T")
        rows = server.top_statements(10)
        assert rows[0]["template"] == \
            "SELECT A FROM T WHERE (B = $1)"
        assert rows[0]["calls"] == 3
        assert len(server.top_statements(1)) == 1

    def test_shed_requests_note_the_fingerprint(self):
        server = _server(limits=AdmissionLimits(
            max_readers=1, max_queue=0, queue_timeout_ms=1.0,
        ))
        import threading
        release = threading.Event()
        started = threading.Event()

        def hold():
            # occupy the only read slot so the next read sheds
            with server.admission.admit("read"):
                started.set()
                release.wait(5.0)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert started.wait(5.0)
            source = "SELECT A FROM T WHERE B = 123"
            try:
                server.query(source)
            except Exception:
                pass
            fp = fingerprint_source(source)
            rows = {r[0]: r for r in server.db.workload.rows()}
            assert rows[fp.fingerprint][11] == 1  # shed column
        finally:
            release.set()
            holder.join()


class TestCLIVariants:
    def _shell(self):
        from repro.cli import Shell
        shell = Shell()
        list(shell.run([
            "TABLE T (A : NUMERIC, B : NUMERIC);",
            "INSERT INTO T VALUES (1, 10), (2, 20);",
            ".serve on",
            "SELECT A FROM T WHERE B = 10;",
        ]))
        return shell

    def test_top_by_statement(self):
        shell = self._shell()
        out = "\n".join(shell._dot_command(".top by-statement"))
        assert "hottest statements" in out
        assert "SELECT A FROM T WHERE (B = $1)" in out

    def test_top_with_limit(self):
        shell = self._shell()
        out = shell._dot_command(".top 3")
        assert any("req/s" in line for line in out)

    def test_top_rejects_garbage(self):
        shell = self._shell()
        assert shell._dot_command(".top nonsense") == \
            ["usage: .top [N] [by-statement]"]

    def test_analyze_prints_operator_tree(self):
        shell = self._shell()
        out = shell._dot_command(".analyze SELECT A FROM T WHERE B = 10")
        joined = "\n".join(out)
        assert "statement fingerprint" in joined
        assert "rows=" in joined and "loops=" in joined
        assert "self-time total" in joined

    def test_analyze_requires_a_query(self):
        shell = self._shell()
        assert shell._dot_command(".analyze") == \
            ["usage: .analyze SELECT ..."]

    def test_analyze_works_unserved(self):
        from repro.cli import Shell
        shell = Shell()
        list(shell.run([
            "TABLE T (A : NUMERIC, B : NUMERIC);",
            "INSERT INTO T VALUES (1, 10);",
        ]))
        out = shell._dot_command(".analyze SELECT A FROM T")
        assert any("operator(s)" in line for line in out)
