"""Admission control: limits, queueing, shedding, retry hints."""

import threading
import time

import pytest

from repro.errors import ServerOverloaded
from repro.obs.bus import EventBus
from repro.obs.events import RequestAdmitted, RequestShed
from repro.obs.metrics import MetricsRegistry
from repro.server.admission import AdmissionController, AdmissionLimits


class TestLimits:
    def test_limit_for_classes(self):
        limits = AdmissionLimits(max_readers=8, max_writers=2)
        assert limits.limit_for("read") == 8
        assert limits.limit_for("write") == 2


class TestAdmission:
    def test_admit_and_release(self):
        controller = AdmissionController()
        with controller.admit("read") as ticket:
            assert ticket.request_class == "read"
            assert controller.snapshot()["active"]["read"] == 1
        assert controller.snapshot()["active"]["read"] == 0
        assert controller.admitted_total == 1

    def test_slot_released_on_error(self):
        controller = AdmissionController(AdmissionLimits(max_readers=1))
        with pytest.raises(RuntimeError):
            with controller.admit("read"):
                raise RuntimeError("query failed")
        with controller.admit("read"):
            pass  # the slot came back

    def test_classes_do_not_contend(self):
        controller = AdmissionController(
            AdmissionLimits(max_readers=1, max_writers=1,
                            queue_timeout_ms=30.0)
        )
        with controller.admit("read"):
            with controller.admit("write"):
                pass  # a writer is not blocked by the reader slot

    def test_queue_wait_deadline_sheds(self):
        controller = AdmissionController(
            AdmissionLimits(max_readers=1, queue_timeout_ms=20.0)
        )
        release = threading.Event()
        started = threading.Event()

        def hold():
            with controller.admit("read"):
                started.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=hold)
        t.start()
        started.wait(timeout=2.0)
        with pytest.raises(ServerOverloaded) as excinfo:
            with controller.admit("read"):
                pass  # pragma: no cover
        release.set()
        t.join(timeout=2.0)
        error = excinfo.value
        assert error.retry_after > 0
        assert error.request_class == "read"
        assert controller.shed_total == 1

    def test_full_queue_sheds_at_arrival(self):
        controller = AdmissionController(
            AdmissionLimits(max_readers=1, max_queue=1,
                            queue_timeout_ms=500.0)
        )
        release = threading.Event()
        holding = threading.Event()
        queued = threading.Event()
        shed_errors = []

        def hold():
            with controller.admit("read"):
                holding.set()
                release.wait(timeout=5.0)

        def wait_in_queue():
            queued.set()
            try:
                with controller.admit("read"):
                    pass
            except ServerOverloaded as error:  # pragma: no cover
                shed_errors.append(error)

        holder = threading.Thread(target=hold)
        holder.start()
        holding.wait(timeout=2.0)
        waiter = threading.Thread(target=wait_in_queue)
        waiter.start()
        queued.wait(timeout=2.0)
        time.sleep(0.05)  # the waiter is now parked in the queue
        with pytest.raises(ServerOverloaded) as excinfo:
            with controller.admit("read"):
                pass  # pragma: no cover
        assert "queue full" in str(excinfo.value)
        assert excinfo.value.retry_after > 0
        release.set()
        holder.join(timeout=2.0)
        waiter.join(timeout=2.0)
        assert shed_errors == []  # the queued one was admitted

    def test_retry_after_grows_with_queue_depth(self):
        controller = AdmissionController(AdmissionLimits(max_readers=1))
        shallow = controller._retry_after("read", 1)
        deep = controller._retry_after("read", 10)
        assert deep > shallow

    def test_concurrent_readers_within_limit(self):
        controller = AdmissionController(
            AdmissionLimits(max_readers=4, queue_timeout_ms=2000.0)
        )
        peak = {"value": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def reader():
            with controller.admit("read"):
                with lock:
                    peak["value"] = max(
                        peak["value"],
                        controller.snapshot()["active"]["read"],
                    )
                barrier.wait(timeout=5.0)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert peak["value"] == 4

    def test_single_writer_limit_serializes(self):
        controller = AdmissionController(
            AdmissionLimits(max_writers=1, queue_timeout_ms=5000.0)
        )
        active = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def writer():
            with controller.admit("write"):
                with lock:
                    active["now"] += 1
                    active["peak"] = max(active["peak"], active["now"])
                time.sleep(0.002)
                with lock:
                    active["now"] -= 1

        threads = [threading.Thread(target=writer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert active["peak"] == 1


class TestTelemetry:
    def test_metrics_and_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(RequestAdmitted, RequestShed))
        metrics = MetricsRegistry()
        controller = AdmissionController(
            AdmissionLimits(max_readers=1, queue_timeout_ms=10.0),
            obs=bus, metrics=metrics,
        )
        with controller.admit("read"):
            with pytest.raises(ServerOverloaded):
                # same thread, slot taken, zero-ish timeout: shed
                with controller.admit("read"):
                    pass  # pragma: no cover
        assert metrics.value("server.admitted.read") == 1
        assert metrics.value("server.shed") == 1
        assert metrics.value("server.shed.read") == 1
        kinds = [type(e).__name__ for e in seen]
        assert kinds == ["RequestAdmitted", "RequestShed"]
        shed = seen[1]
        assert shed.retry_after > 0
        assert shed.reason == "queue-wait deadline"
