"""Server end-to-end: serving, explain v3, clients, CLI commands."""

import pytest

from repro import Database
from repro.core.explain import (EXPLAIN_SCHEMA_VERSION,
                                validate_explain)
from repro.errors import (CircuitOpen, ReproError,
                          RetryBudgetExceeded, ServerOverloaded)
from repro.server import (AdmissionLimits, CircuitBreaker, RetryPolicy,
                          Server, SessionSettings, classify_statement)
from repro.esql.parser import parse_script


def _server(**kwargs):
    db = Database()
    db.execute("TABLE T (A : NUMERIC, B : NUMERIC, PRIMARY KEY (A))")
    db.execute("INSERT INTO T VALUES (1, 10), (2, 20)")
    return Server(db, **kwargs)


class TestClassify:
    def test_select_is_read(self):
        (stmt,) = parse_script("SELECT A FROM T")
        assert classify_statement(stmt) == "read"

    def test_everything_else_is_write(self):
        for source in ("INSERT INTO T VALUES (3, 30)",
                       "DELETE FROM T WHERE A = 1",
                       "TABLE U (X : NUMERIC)"):
            (stmt,) = parse_script(source)
            assert classify_statement(stmt) == "write"


class TestServing:
    def test_query_through_server(self):
        server = _server()
        result = server.query("SELECT B FROM T WHERE A = 2")
        assert result.rows == [(20,)]
        assert server.stats()["requests"]["server.requests.read"] == 1

    def test_mixed_script_admits_per_statement(self):
        server = _server()
        results = server.execute("""
            INSERT INTO T VALUES (3, 30);
            SELECT B FROM T WHERE A = 3;
            DELETE FROM T WHERE A = 3;
        """)
        assert [r.rows for r in results] == [[(30,)]]
        counters = server.stats()["requests"]
        assert counters["server.requests.read"] == 1
        assert counters["server.requests.write"] == 2

    def test_writes_advance_snapshot_version(self):
        server = _server()
        before = server.stats()["snapshot_version"]
        server.execute("INSERT INTO T VALUES (4, 40)")
        server.query("SELECT A FROM T")  # reads do not bump it
        assert server.stats()["snapshot_version"] == before + 1

    def test_serving_off_has_no_guard(self):
        db = Database()
        assert db.guard is None
        db.execute("TABLE T (A : NUMERIC)")  # plain path still works

    def test_failed_write_rolls_back_and_version_holds(self):
        server = _server()
        before = server.guard.version
        with pytest.raises(ReproError):
            server.execute("INSERT INTO T VALUES (1, 10)")  # dup key
        assert server.guard.version == before
        assert server.query("SELECT A FROM T WHERE A = 1").rows == [(1,)]

    def test_session_isolation_via_server(self):
        server = _server()
        strict = server.open_session(
            "strict", SessionSettings(checked=True, deadline_ms=100.0))
        lax = server.open_session("lax")
        server.query("SELECT A FROM T", session=strict.id)
        server.query("SELECT A FROM T", session=lax.id)
        assert server.db.checked is False
        assert server.db.deadline_ms is None

    def test_error_history_records_typed_payloads(self):
        server = _server()
        session = server.open_session("s")
        with pytest.raises(ReproError):
            server.query("SELECT Nope FROM T", session=session.id)
        report = server.explain_json("SELECT A FROM T",
                                     session=session.id)
        errors = report["server"]["errors"]
        assert errors and errors[0]["error"]
        assert "message" in errors[0]


class TestExplainV3:
    def test_server_section_validates(self):
        server = _server()
        report = server.explain_json("SELECT B FROM T WHERE A = 1",
                                     execute=True)
        assert validate_explain(report) == []
        section = report["server"]
        assert section["request_class"] == "read"
        assert section["queue_wait_ms"] >= 0.0
        assert section["snapshot_version"] == server.guard.version
        assert section["shed_total"] == 0

    def test_unserved_explain_has_null_server_section(self):
        db = Database()
        db.execute("TABLE T (A : NUMERIC)")
        report = db.explain_json("SELECT A FROM T")
        assert report["server"] is None
        assert validate_explain(report) == []

    def test_shed_counter_lands_in_report(self):
        server = _server(limits=AdmissionLimits(
            max_readers=1, max_queue=0, queue_timeout_ms=5.0))
        with server.admission.admit("read"):
            with pytest.raises(ServerOverloaded):
                server.query("SELECT A FROM T")
        report = server.explain_json("SELECT A FROM T")
        assert report["server"]["shed_total"] >= 1
        assert validate_explain(report) == []

    def test_shed_error_payload_validates(self):
        server = _server(limits=AdmissionLimits(
            max_readers=1, max_queue=0, queue_timeout_ms=5.0))
        session = server.open_session("s")
        with server.admission.admit("read"):
            with pytest.raises(ServerOverloaded) as excinfo:
                server.query("SELECT A FROM T", session=session.id)
        assert excinfo.value.retry_after > 0
        report = server.explain_json("SELECT A FROM T",
                                     session=session.id)
        (payload,) = [e for e in report["server"]["errors"]
                      if e["error"] == "ServerOverloaded"]
        assert payload["retry_after"] > 0
        assert validate_explain(report) == []


class TestServingClient:
    def test_client_round_trip(self):
        server = _server()
        client = server.client()
        assert client.query("SELECT B FROM T WHERE A = 1").rows == [(10,)]
        client.execute("INSERT INTO T VALUES (5, 50)")
        assert client.query("SELECT B FROM T WHERE A = 5").rows == [(50,)]
        client.close()
        assert len(server.sessions) == 0

    def test_client_retries_past_transient_shed(self):
        server = _server(limits=AdmissionLimits(
            max_readers=1, max_queue=0, queue_timeout_ms=5.0))
        client = server.client(retry=RetryPolicy(
            max_attempts=5, base_delay_s=0.001, sleep=lambda _s: None))
        ticket_cm = server.admission.admit("read")
        ticket_cm.__enter__()

        calls = {"n": 0}
        original = server.query

        def query_then_free(source, session=None):
            calls["n"] += 1
            if calls["n"] == 2:
                ticket_cm.__exit__(None, None, None)  # slot frees up
            return original(source, session=session)

        server.query = query_then_free
        assert client.query("SELECT A FROM T WHERE A = 1").rows == [(1,)]
        assert client.retry.last_attempts >= 2

    def test_retry_budget_exhaustion_is_typed(self):
        server = _server(limits=AdmissionLimits(
            max_readers=1, max_queue=0, queue_timeout_ms=5.0))
        client = server.client(retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.001, sleep=lambda _s: None))
        with server.admission.admit("read"):
            with pytest.raises(RetryBudgetExceeded) as excinfo:
                client.query("SELECT A FROM T")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, ServerOverloaded)

    def test_breaker_opens_on_server_failures(self):
        """The breaker watches the *server's* stream: failures from any
        session open the circuit for this client's next call."""
        server = _server()
        client = server.client(
            retry=RetryPolicy(retry_on=(ServerOverloaded,)),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=60.0),
        )
        for _ in range(2):
            with pytest.raises(ReproError):
                server.query("SELECT 1 / 0 FROM T")
        with pytest.raises(CircuitOpen) as excinfo:
            client.query("SELECT A FROM T")
        assert excinfo.value.retry_after > 0

    def test_shedding_does_not_open_the_breaker(self):
        server = _server(limits=AdmissionLimits(
            max_readers=1, max_queue=0, queue_timeout_ms=5.0))
        client = server.client(retry=RetryPolicy(
            max_attempts=2, base_delay_s=0.001, sleep=lambda _s: None))
        with server.admission.admit("read"):
            with pytest.raises(RetryBudgetExceeded):
                client.query("SELECT A FROM T")
        assert client.breaker.state("ServerOverloaded") == "closed"


class TestCLI:
    def _shell(self):
        from repro.cli import Shell
        shell = Shell()
        list(shell.run([
            "TABLE T (A : NUMERIC, B : NUMERIC);",
            "INSERT INTO T VALUES (1, 10), (2, 20);",
        ]))
        return shell

    def _run(self, shell, text):
        return list(shell.run(text.strip().splitlines()))

    def test_serve_on_off(self):
        shell = self._shell()
        out = self._run(shell, ".serve on")
        assert shell.serving
        assert any("serving" in line for line in out)
        (row,) = self._run(shell, "SELECT B FROM T WHERE A = 1;")
        assert "(1 row)" in row
        self._run(shell, ".serve off")
        assert not shell.serving

    def test_serve_status_reports_admission(self):
        shell = self._shell()
        self._run(shell, ".serve on")
        self._run(shell, "SELECT A FROM T;")
        out = self._run(shell, ".serve")
        joined = "\n".join(out)
        assert "session" in joined
        assert "admitted" in joined

    def test_sessions_new_use_close(self):
        shell = self._shell()
        self._run(shell, ".serve on")
        self._run(shell, ".sessions new other")
        assert shell.session.id == "other"
        self._run(shell, ".checked on")
        assert shell.settings.checked is True
        self._run(shell, ".sessions use s1")
        assert shell.session.id == "s1"
        # settings follow the session, so the toggle stayed behind
        assert shell.settings.checked is not True
        self._run(shell, ".sessions close other")
        out = self._run(shell, ".sessions")
        assert not any("other" in line for line in out)

    def test_shed_shows_and_tunes_limits(self):
        shell = self._shell()
        self._run(shell, ".serve on")
        self._run(shell, ".shed readers 2")
        self._run(shell, ".shed queue 4")
        out = self._run(shell, ".shed")
        joined = "\n".join(out)
        assert "2 reader(s)" in joined
        assert shell.server.admission.limits.max_readers == 2
        assert shell.server.admission.limits.max_queue == 4

    def test_server_commands_require_serving(self):
        shell = self._shell()
        for command in (".sessions", ".shed"):
            (out,) = self._run(shell, command)
            assert out.startswith("error:")

    def test_open_restarts_serving(self, tmp_path):
        shell = self._shell()
        self._run(shell, ".serve on")
        out = self._run(shell, f".open {tmp_path / 'other.db'}")
        assert shell.serving
        (row,) = self._run(shell,
                           "TABLE U (X : NUMERIC); "
                           "INSERT INTO U VALUES (7, 7);")
        self._run(shell, "SELECT X FROM U;")


class TestSlowQueryLog:
    def test_threshold_zero_captures_everything(self):
        server = _server(slow_query_ms=0.0)
        server.query("SELECT A FROM T")
        server.execute("INSERT INTO T VALUES (3, 30)")
        read, write = server.slow_queries()
        assert read["request_class"] == "read"
        assert read["source"] == "SELECT A FROM T"
        assert read["duration_ms"] >= 0.0
        assert len(read["trace_id"]) == 32
        # reads carry the full, schema-valid EXPLAIN report
        assert read["explain"]["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert validate_explain(read["explain"]) == []
        # writes are recorded source-only (no re-execution to explain)
        assert write["request_class"] == "write"
        assert write["explain"] is None
        assert server.metrics.value("server.slow_queries") == 2

    def test_no_threshold_means_no_capture(self):
        server = _server()
        server.query("SELECT A FROM T")
        assert server.slow_queries() == []
        assert server.metrics.value("server.slow_queries") == 0

    def test_ring_is_bounded(self):
        server = _server(slow_query_ms=0.0, slow_query_capacity=2)
        for __ in range(5):
            server.query("SELECT A FROM T")
        entries = server.slow_queries()
        assert len(entries) == 2               # oldest entries evicted
        assert all(e["request_class"] == "read" for e in entries)


class TestMetricsTextAndTop:
    def test_metrics_text_exposes_request_families(self):
        server = _server()
        server.query("SELECT A FROM T")
        text = server.metrics_text()
        assert "# TYPE server_requests_read counter" in text
        assert "server_requests_read 1" in text
        assert "# TYPE server_request_read_seconds histogram" in text
        assert 'server_request_read_seconds_bucket{le="+Inf"} 1' in text

    def test_top_frame_shape(self):
        server = _server(slow_query_ms=0.0)
        server.query("SELECT A FROM T")
        server.execute("INSERT INTO T VALUES (4, 40)")
        frame = server.top()
        assert frame["qps"] > 0.0
        assert frame["requests"]["read"]["count"] == 1
        assert frame["requests"]["write"]["count"] == 1
        assert frame["requests"]["read"]["p99_ms"] >= 0.0
        assert frame["shed_total"] == 0
        assert frame["queue_depth"] == 0
        assert frame["sessions"] >= 1
        # the dashboard tail omits the bulky EXPLAIN payloads
        assert frame["slow_queries"]
        assert all("explain" not in entry
                   for entry in frame["slow_queries"])

    def test_top_rule_heat_reads_the_ledger(self):
        # heat comes from the database's rewrite-provenance ledger via
        # sys.rule_heat -- no telemetry collector required, but a rule
        # must actually have *fired* (an already-canonical query
        # contributes nothing)
        server = _server()
        server.query("SELECT A FROM T WHERE B = 10")
        assert server.top()["rule_heat"] == []
        server.query(
            "SELECT T.A FROM T WHERE EXISTS "
            "(SELECT A FROM T WHERE B = 10)"
        )
        heat = server.top()["rule_heat"]
        assert heat
        for row in heat:
            assert row["fired"] >= 1
            assert set(row) == {"block", "rule", "fired",
                                "complexity_delta"}


class TestCLITop:
    def _shell(self):
        from repro.cli import Shell
        shell = Shell()
        list(shell.run([
            "TABLE T (A : NUMERIC, B : NUMERIC);",
            "INSERT INTO T VALUES (1, 10), (2, 20);",
        ]))
        return shell

    def test_top_renders_one_dashboard_frame(self):
        shell = self._shell()
        list(shell.run([".serve on"]))
        list(shell.run(["SELECT A FROM T;",
                        "INSERT INTO T VALUES (3, 30);"]))
        out = list(shell.run([".top"]))
        joined = "\n".join(out)
        assert "req/s" in joined
        assert "read" in joined
        assert "write" in joined
        assert "p95" in joined

    def test_top_requires_serving(self):
        (out,) = list(self._shell().run([".top"]))
        assert out.startswith("error:")
