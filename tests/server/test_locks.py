"""ReadWriteLock and ConcurrencyGuard semantics."""

import threading
import time

import pytest

from repro.server.locks import ConcurrencyGuard, ReadWriteLock


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        assert lock.acquire_read()
        assert lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_writer(self):
        lock = ReadWriteLock()
        assert lock.acquire_write()
        assert lock.acquire_write(timeout=0.01) is False
        lock.release_write()
        assert lock.acquire_write(timeout=0.01)
        lock.release_write()

    def test_writer_excludes_reader(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        assert lock.acquire_read(timeout=0.01) is False
        lock.release_write()

    def test_reader_excludes_writer(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        assert lock.acquire_write(timeout=0.01) is False
        lock.release_read()
        assert lock.acquire_write(timeout=0.01)
        lock.release_write()

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a queued writer bars later readers, so a
        steady query stream cannot starve DML."""
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_done = threading.Event()

        def writer():
            lock.acquire_write()
            lock.release_write()
            writer_done.set()

        t = threading.Thread(target=writer)
        t.start()
        # let the writer reach its wait; a new reader must now block
        time.sleep(0.02)
        assert lock.acquire_read(timeout=0.02) is False
        lock.release_read()
        t.join(timeout=2.0)
        assert writer_done.is_set()
        # after the writer drains, readers flow again
        assert lock.acquire_read(timeout=0.5)
        lock.release_read()

    def test_write_context_manager_releases_on_error(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.write():
                raise RuntimeError("boom")
        assert lock.acquire_write(timeout=0.01)
        lock.release_write()


class TestConcurrencyGuard:
    def test_version_advances_per_committed_write(self):
        guard = ConcurrencyGuard()
        assert guard.version == 0
        with guard.write():
            pass
        with guard.write():
            pass
        assert guard.version == 2

    def test_failed_write_does_not_advance_version(self):
        guard = ConcurrencyGuard()
        with pytest.raises(ValueError):
            with guard.write():
                raise ValueError("rolled back")
        assert guard.version == 0

    def test_exclusive_does_not_advance_version(self):
        guard = ConcurrencyGuard()
        with guard.exclusive():
            pass
        assert guard.version == 0

    def test_read_yields_snapshot_handle(self):
        guard = ConcurrencyGuard()
        with guard.write():
            pass
        with guard.read() as handle:
            assert handle.version == 1

    def test_nested_reads_do_not_deadlock(self):
        """Re-entrancy: a query issued while the thread already holds
        the shared side must not deadlock on writer preference."""
        guard = ConcurrencyGuard()
        done = threading.Event()

        def writer():
            with guard.write():
                pass
            done.set()

        with guard.read():
            t = threading.Thread(target=writer)
            t.start()
            time.sleep(0.02)  # the writer is now waiting
            with guard.read() as handle:  # would deadlock if acquired
                assert handle.version == 0
        t = done.wait(timeout=2.0)
        assert t

    def test_read_inside_write_is_reentrant(self):
        guard = ConcurrencyGuard()
        with guard.write():
            with guard.read() as handle:
                assert handle.version == 0

    def test_write_inside_read_refused(self):
        guard = ConcurrencyGuard()
        with guard.read():
            with pytest.raises(RuntimeError):
                with guard.write():
                    pass

    def test_concurrent_writers_serialize(self):
        guard = ConcurrencyGuard()
        counter = {"value": 0, "max_inside": 0}
        inside = threading.Semaphore(0)

        def bump():
            for _ in range(50):
                with guard.write():
                    current = counter["value"]
                    counter["value"] = current + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert counter["value"] == 200
        assert guard.version == 200
