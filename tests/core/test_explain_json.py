"""The machine-readable EXPLAIN report: structure, schema validation,
and the benchmark-harness ingestion path."""

import json

import pytest

from repro import Database
from repro.core.explain import (EXPLAIN_SCHEMA_VERSION, explain_json,
                                validate_explain)


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW BIG (Shop, Amount) AS
      SELECT Shop, Amount FROM SALE WHERE Amount > 10;
    CREATE VIEW HUGE (Shop, Amount) AS
      SELECT Shop, Amount FROM BIG WHERE Amount > 20
    """)
    d.execute("INSERT INTO SALE VALUES (1, 5), (1, 15), (2, 25), (2, 40)")
    return d


QUERY = "SELECT Amount FROM HUGE WHERE Shop = 1"


class TestStructure:
    def test_validates_against_schema(self, db):
        report = db.explain_json(QUERY)
        assert validate_explain(report) == []
        assert report["schema_version"] == EXPLAIN_SCHEMA_VERSION

    def test_json_serialisable(self, db):
        json.dumps(db.explain_json(QUERY, execute=True))

    def test_plans_shrink_under_merging(self, db):
        report = db.explain_json(QUERY)
        assert report["plans"]["after"]["nodes"] < \
            report["plans"]["before"]["nodes"]
        assert "SEARCH" in report["plans"]["after"]["text"]

    def test_rewrite_section_consistent(self, db):
        report = db.explain_json(QUERY)
        rewrite = report["rewrite"]
        assert rewrite["applications"] == len(rewrite["trace"])
        assert rewrite["checks"] >= rewrite["applications"]
        assert rewrite["summary"]["merge"]["search_merge"] == 2

    def test_saturating_rewrite_telemetry(self, db):
        """The acceptance shape: per-rule attempts >= hits, block
        budget consumption reported, span durations non-negative."""
        report = db.explain_json(QUERY)
        profile = report["profile"]
        assert profile is not None
        for name, row in profile["rules"].items():
            assert row.get("attempts", 0) >= row.get("hits", 0), name
        assert profile["blocks"]["merge"]["budget_consumed"] >= 2
        def spans(nodes):
            for node in nodes:
                yield node
                yield from spans(node["children"])
        all_spans = list(spans(profile["spans"]))
        assert all_spans
        assert all(s["duration"] >= 0.0 for s in all_spans)

    def test_execute_embeds_eval_counters(self, db):
        report = db.explain_json(QUERY, execute=True)
        assert report["eval"]["tuples_scanned"] > 0
        counters = report["profile"]["metrics"]["counters"]
        assert counters["eval.tuples_scanned"] == \
            report["eval"]["tuples_scanned"]
        assert any(k.startswith("eval.op.") for k in counters)

    def test_without_execute_eval_is_null(self, db):
        report = db.explain_json(QUERY)
        assert report["eval"] is None
        assert validate_explain(report) == []

    def test_rewrite_off(self, db):
        report = db.explain_json(QUERY, rewrite=False)
        assert report["rewrite"]["applications"] == 0
        assert report["rewrite"]["trace"] == []
        assert validate_explain(report) == []


class TestValidator:
    def test_flags_missing_sections(self):
        assert validate_explain({}) != []

    def test_flags_negative_duration(self, db):
        report = db.explain_json(QUERY)
        report["profile"]["spans"][0]["duration"] = -1.0
        assert any("duration" in p for p in validate_explain(report))

    def test_flags_attempts_below_hits(self, db):
        report = db.explain_json(QUERY)
        report["profile"]["rules"]["search_merge"]["attempts"] = 0
        assert any("attempts < hits" in p
                   for p in validate_explain(report))

    def test_flags_negative_eval_counter(self, db):
        report = db.explain_json(QUERY, execute=True)
        report["eval"]["tuples_scanned"] = -3
        assert any("eval.tuples_scanned" in p
                   for p in validate_explain(report))


class TestBenchmarkIngestion:
    def test_report_section_runs(self, capsys):
        """benchmarks/report.py consumes the same JSON schema."""
        from benchmarks.report import obs_telemetry
        obs_telemetry()
        out = capsys.readouterr().out
        assert "violations: none" in out
        assert "| search_merge |" in out
        assert "| merge |" in out
        assert "| tuples_scanned |" in out


class TestExplainText:
    def test_no_rules_fired_message(self, db):
        text = db.explain("SELECT Shop FROM SALE")
        assert "(no rules fired)" in text
        assert "0 rule application(s)" not in text
        assert not text.endswith("\n")

    def test_applications_path_unchanged(self, db):
        text = db.explain(QUERY)
        assert "rule application(s)" in text
        assert "(no rules fired)" not in text

    def test_profile_section(self, db):
        text = db.explain(QUERY, profile=True)
        assert "== profile ==" in text
        assert "per-rule" in text
        assert "phase:optimize" in text

    def test_no_profile_section_by_default(self, db):
        assert "== profile ==" not in db.explain(QUERY)


class TestTraceSection:
    def test_v4_reports_carry_a_trace(self, db):
        report = db.explain_json(QUERY)
        trace = report["trace"]
        assert len(trace["trace_id"]) == 32
        assert len(trace["span_id"]) == 16
        assert trace["parent_id"] is None       # minted outside a request
        assert all(value >= 0 for value in trace["stages"].values())

    def test_stage_timings_recovered_from_phase_histograms(self, db):
        stages = db.explain_json(QUERY)["trace"]["stages"]
        assert "rewrite_ms" in stages
        assert stages["rewrite_ms"] >= 0.0
        # executing also surfaces the evaluator stage
        executed = db.explain_json(QUERY, execute=True)
        assert "eval_ops_ms" in executed["trace"]["stages"]

    def test_reuses_the_ambient_request_context(self, db):
        from repro.obs.telemetry import TraceContext, use_trace
        context = TraceContext.new().child()
        with use_trace(context):
            trace = db.explain_json(QUERY)["trace"]
        assert trace["trace_id"] == context.trace_id
        assert trace["span_id"] == context.span_id
        assert trace["parent_id"] == context.parent_id

    def test_server_reports_record_queue_wait(self, db):
        from repro.server import Server
        server = Server(db)
        report = server.explain_json(QUERY)
        assert validate_explain(report) == []
        stages = report["trace"]["stages"]
        assert stages["queue_wait_ms"] == \
            report["server"]["queue_wait_ms"]
        server.close()

    def test_validator_rejects_malformed_traces(self, db):
        report = db.explain_json(QUERY)
        report["trace"]["trace_id"] = "not-hex"
        report["trace"]["span_id"] = "f00"
        report["trace"]["parent_id"] = "zz"
        report["trace"]["stages"] = {"rewrite_ms": -1.0}
        problems = validate_explain(report)
        assert "trace.trace_id: not 32 hex chars" in problems
        assert "trace.span_id: not 16 hex chars" in problems
        assert "trace.parent_id: not null or 16 hex chars" in problems
        assert ("trace.stages.rewrite_ms: not a non-negative number"
                in problems)

    def test_validator_requires_the_section(self, db):
        report = db.explain_json(QUERY)
        del report["trace"]
        assert any("trace" in problem
                   for problem in validate_explain(report))
