"""QueryRewriter facade tests: configuration and extension points."""

import pytest

from repro.adt.types import NUMERIC
from repro.core.rewriter import QueryRewriter
from repro.engine.catalog import Catalog
from repro.errors import RewriteError
from repro.rules.control import Block
from repro.rules.rule import rule_from_text
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("R", [("A", NUMERIC), ("B", NUMERIC)])
    return c


class TestConfiguration:
    def test_default_blocks_present(self, cat):
        rewriter = QueryRewriter(cat)
        inventory = rewriter.rule_inventory()
        for name in ("canonicalize", "merge", "push", "fixpoint",
                     "merge_again", "semantic", "simplify"):
            assert name in inventory

    def test_standard_rules_installed(self, cat):
        inventory = QueryRewriter(cat).rule_inventory()
        assert "search_merge" in inventory["merge"]
        assert "fix_alexander" in inventory["fixpoint"]
        assert "eq_transitivity" in inventory["semantic"]

    def test_block_lookup(self, cat):
        rewriter = QueryRewriter(cat)
        assert rewriter.block("merge").name == "merge"
        with pytest.raises(RewriteError):
            rewriter.block("nope")


class TestExtensionPoints:
    def test_add_rule_to_block(self, cat):
        rewriter = QueryRewriter(cat)
        rewriter.add_rule(
            rule_from_text("collapse: NOISE(x) --> x"), "simplify"
        )
        q = parse_term("SEARCH(LIST(R), NOISE(#1.1) = 1, LIST(#1.1))")
        result = rewriter.rewrite(q)
        assert "collapse" in result.rules_fired()

    def test_add_rule_at_position(self, cat):
        rewriter = QueryRewriter(cat)
        rule = rule_from_text("first: NOISE(x) --> x")
        rewriter.add_rule(rule, "simplify", position=0)
        assert rewriter.block("simplify").rules[0] is rule

    def test_add_rule_unknown_block(self, cat):
        rewriter = QueryRewriter(cat)
        with pytest.raises(RewriteError):
            rewriter.add_rule(rule_from_text("r: P(x) --> x"), "nope")

    def test_add_block(self, cat):
        rewriter = QueryRewriter(cat)
        rewriter.add_block(Block("mine", []), before="simplify")
        names = [b.name for b in rewriter.seq.blocks]
        assert names.index("mine") == names.index("simplify") - 1

    def test_add_block_at_end(self, cat):
        rewriter = QueryRewriter(cat)
        rewriter.add_block(Block("tail", []))
        assert rewriter.seq.blocks[-1].name == "tail"

    def test_add_block_unknown_anchor(self, cat):
        rewriter = QueryRewriter(cat)
        with pytest.raises(RewriteError):
            rewriter.add_block(Block("x", []), before="nope")

    def test_set_block_limit(self, cat):
        rewriter = QueryRewriter(cat)
        rewriter.set_block_limit("semantic", 5)
        assert rewriter.block("semantic").limit == 5

    def test_add_method_and_predicate(self, cat):
        from repro.terms.term import num
        rewriter = QueryRewriter(cat)
        rewriter.add_method(
            "ANSWER", 1,
            lambda inst, raw, b, ctx: {raw[0].name: num(42)},
        )
        rewriter.add_predicate("YES", lambda args, b, ctx: True)
        rewriter.add_rule(
            rule_from_text("deep: THOUGHT(x) / YES(x) --> a / ANSWER(a)"),
            "simplify",
        )
        q = parse_term("SEARCH(LIST(R), #1.1 = THOUGHT(0), LIST(#1.1))")
        result = rewriter.rewrite(q)
        assert "42" in term_to_str(result.term)


class TestRewriting:
    def test_trace_collected_by_default(self, cat):
        rewriter = QueryRewriter(cat)
        q = parse_term(
            "SEARCH(LIST(SEARCH(LIST(R), #1.1 = 1, LIST(#1.1, #1.2))), "
            "true, LIST(#1.2))"
        )
        result = rewriter.rewrite(q)
        assert result.trace

    def test_trace_disabled(self, cat):
        rewriter = QueryRewriter(cat, collect_trace=False)
        q = parse_term(
            "SEARCH(LIST(SEARCH(LIST(R), #1.1 = 1, LIST(#1.1, #1.2))), "
            "true, LIST(#1.2))"
        )
        result = rewriter.rewrite(q)
        assert not result.trace
        assert result.applications > 0
