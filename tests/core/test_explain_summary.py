"""Rewrite-trace summaries and assorted reporting surfaces."""

import pytest

from repro import Database


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW BIG (Shop, Amount) AS
      SELECT Shop, Amount FROM SALE WHERE Amount > 10;
    CREATE VIEW HUGE (Shop, Amount) AS
      SELECT Shop, Amount FROM BIG WHERE Amount > 20
    """)
    d.execute("INSERT INTO SALE VALUES (1, 5), (1, 15), (2, 25), (2, 40)")
    return d


class TestSummary:
    def test_per_block_histogram(self, db):
        optimized = db.optimize("SELECT Amount FROM HUGE WHERE Shop = 1")
        summary = optimized.rewrite_result.summary()
        assert summary["merge"]["search_merge"] == 2

    def test_empty_summary_when_nothing_fires(self, db):
        optimized = db.optimize("SELECT Shop FROM SALE")
        assert optimized.rewrite_result.summary() == {}


class TestStatsSurface:
    def test_unknown_counter_attribute_raises(self):
        from repro.engine.stats import EvalStats
        stats = EvalStats()
        with pytest.raises(AttributeError):
            stats.nonexistent_counter

    def test_repr_lists_counters(self):
        from repro.engine.stats import EvalStats
        stats = EvalStats()
        stats.incr("tuples_scanned", 3)
        assert "tuples_scanned=3" in repr(stats)


class TestOptimizedQuerySurface:
    def test_stage_terms_distinct(self, db):
        optimized = db.optimize("SELECT Amount FROM HUGE WHERE Shop = 1")
        assert optimized.original is not None
        assert optimized.typed is not None
        assert optimized.rewritten != optimized.typed
        assert optimized.applications == len(optimized.trace)

    def test_schema_matches_result(self, db):
        optimized = db.optimize(
            "SELECT Amount AS Big FROM HUGE WHERE Shop = 2"
        )
        assert optimized.schema.names == ("Big",)


class TestExplainRendering:
    def test_summary_section_present(self, db):
        text = db.explain("SELECT Amount FROM HUGE WHERE Shop = 1")
        assert "per-block summary" in text
        assert "search_merge x2" in text

    def test_no_summary_without_applications(self, db):
        text = db.explain("SELECT Shop FROM SALE")
        assert "per-block summary" not in text
