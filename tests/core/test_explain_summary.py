"""Rewrite-trace summaries and assorted reporting surfaces."""

import pytest

from repro import Database


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW BIG (Shop, Amount) AS
      SELECT Shop, Amount FROM SALE WHERE Amount > 10;
    CREATE VIEW HUGE (Shop, Amount) AS
      SELECT Shop, Amount FROM BIG WHERE Amount > 20
    """)
    d.execute("INSERT INTO SALE VALUES (1, 5), (1, 15), (2, 25), (2, 40)")
    return d


class TestSummary:
    def test_per_block_histogram(self, db):
        optimized = db.optimize("SELECT Amount FROM HUGE WHERE Shop = 1")
        summary = optimized.rewrite_result.summary()
        assert summary["merge"]["search_merge"] == 2

    def test_empty_summary_when_nothing_fires(self, db):
        optimized = db.optimize("SELECT Shop FROM SALE")
        assert optimized.rewrite_result.summary() == {}


class TestTraceEntryAndSummary:
    """Direct coverage of the trace surfaces (satellite: summary()
    ordering and TraceEntry.__str__ formatting)."""

    @staticmethod
    def entry(block, rule, path=(0, 1)):
        from repro.rules.control import TraceEntry
        from repro.terms.parser import parse_term
        return TraceEntry(block, rule, tuple(path),
                          parse_term("GE(7, 2)"),
                          parse_term("true"))

    def test_str_contains_block_rule_path_and_terms(self):
        entry = self.entry("simplify", "ge_fold")
        text = str(entry)
        assert text.startswith("[simplify/ge_fold] at [0, 1]: ")
        assert "  ==>  " in text
        before, after = text.split("  ==>  ")
        assert "GE" in before
        assert after == repr(entry.after)

    def test_str_root_path_renders_empty_list(self):
        assert " at []: " in str(self.entry("merge", "search_merge", ()))

    def test_multi_block_summary_groups_and_counts(self):
        from repro.rules.control import RewriteResult
        entries = [
            self.entry("merge", "search_merge"),
            self.entry("simplify", "and_false"),
            self.entry("merge", "search_merge"),
            self.entry("simplify", "and_true"),
            self.entry("merge", "filter_merge"),
        ]
        result = RewriteResult(entries[0].after, trace=entries)
        summary = result.summary()
        assert summary == {
            "merge": {"search_merge": 2, "filter_merge": 1},
            "simplify": {"and_false": 1, "and_true": 1},
        }
        # insertion order follows first appearance in the trace
        assert list(summary) == ["merge", "simplify"]
        assert list(summary["merge"]) == ["search_merge", "filter_merge"]

    def test_rules_fired_preserves_trace_order(self):
        from repro.rules.control import RewriteResult
        entries = [
            self.entry("merge", "b_rule"),
            self.entry("merge", "a_rule"),
            self.entry("prune", "b_rule"),
        ]
        result = RewriteResult(entries[0].after, trace=entries)
        assert result.rules_fired() == ["b_rule", "a_rule", "b_rule"]

    def test_checks_vs_applications_accounting(self, db):
        """checks counts every condition check; applications only the
        term changes -- checks must dominate and match the trace."""
        optimized = db.optimize("SELECT Amount FROM HUGE WHERE Shop = 1")
        result = optimized.rewrite_result
        assert result.applications == len(result.trace)
        assert result.checks >= result.applications
        assert sum(
            count for rules in result.summary().values()
            for count in rules.values()
        ) == result.applications

    def test_checks_budget_stops_before_application(self):
        """A checks-mode block whose budget dies mid-scan must record
        the checks but no application."""
        from repro.rules.control import Block, RewriteEngine, Seq
        from repro.rules.rule import RuleContext, rule_from_text
        from repro.terms.parser import parse_term

        rule = rule_from_text("collapse: DUP(DUP(x)) --> DUP(x)")
        seq = Seq([Block("tight", [rule], limit=1, count="checks")])
        # the root is DUP-rooted (check 1, misses); the nested
        # DUP(DUP(1)) would only be reached at check 2 -- over budget
        term = parse_term("DUP(OTHER(DUP(DUP(1))))")
        result = RewriteEngine(seq).rewrite(term, RuleContext())
        assert result.applications == 0
        assert result.checks == 2
        assert result.term == term


class TestStatsSurface:
    def test_unknown_counter_attribute_raises(self):
        from repro.engine.stats import EvalStats
        stats = EvalStats()
        with pytest.raises(AttributeError):
            stats.nonexistent_counter

    def test_repr_lists_counters(self):
        from repro.engine.stats import EvalStats
        stats = EvalStats()
        stats.incr("tuples_scanned", 3)
        assert "tuples_scanned=3" in repr(stats)


class TestOptimizedQuerySurface:
    def test_stage_terms_distinct(self, db):
        optimized = db.optimize("SELECT Amount FROM HUGE WHERE Shop = 1")
        assert optimized.original is not None
        assert optimized.typed is not None
        assert optimized.rewritten != optimized.typed
        assert optimized.applications == len(optimized.trace)

    def test_schema_matches_result(self, db):
        optimized = db.optimize(
            "SELECT Amount AS Big FROM HUGE WHERE Shop = 2"
        )
        assert optimized.schema.names == ("Big",)


class TestExplainRendering:
    def test_summary_section_present(self, db):
        text = db.explain("SELECT Amount FROM HUGE WHERE Shop = 1")
        assert "per-block summary" in text
        assert "search_merge x2" in text

    def test_no_summary_without_applications(self, db):
        text = db.explain("SELECT Shop FROM SALE")
        assert "per-block summary" not in text
