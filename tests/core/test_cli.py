"""Shell tests (the CLI driver, exercised without a terminal)."""

import pytest

from repro.cli import Shell


def run(shell, text):
    return list(shell.run(text.strip().splitlines()))


@pytest.fixture
def shell():
    s = Shell()
    run(s, """
    TABLE EDGE (Src : NUMERIC, Dst : NUMERIC, PRIMARY KEY (Src, Dst));
    INSERT INTO EDGE VALUES (1, 2), (2, 3);
    """)
    return s


class TestStatements:
    def test_ddl_acknowledged(self):
        shell = Shell()
        out = run(shell, "TABLE T (A : INT);")
        assert out == ["ok"]

    def test_query_renders_table(self, shell):
        (out,) = run(shell, "SELECT Dst FROM EDGE WHERE Src = 1;")
        assert "Dst" in out
        assert "(1 row)" in out

    def test_multiline_statement(self, shell):
        out = run(shell, "SELECT Dst\nFROM EDGE\nWHERE Src = 2;")
        assert "(1 row)" in out[0]

    def test_missing_semicolon_executes_at_eof(self, shell):
        out = run(shell, "SELECT Dst FROM EDGE WHERE Src = 1")
        assert "(1 row)" in out[0]

    def test_error_reported_not_raised(self, shell):
        (out,) = run(shell, "SELECT Nope FROM EDGE;")
        assert out.startswith("error:")

    def test_parse_error_reported(self, shell):
        (out,) = run(shell, "SELEKT;")
        assert out.startswith("error:")


class TestDotCommands:
    def test_schema_lists_tables_and_keys(self, shell):
        out = run(shell, ".schema")
        assert any("table EDGE" in line for line in out)
        assert any("key" in line for line in out)

    def test_schema_lists_views(self, shell):
        run(shell, "CREATE VIEW V (S) AS SELECT Src FROM EDGE;")
        out = run(shell, ".schema")
        assert any(line.startswith("view V") for line in out)

    def test_rules_inventory(self, shell):
        out = run(shell, ".rules")
        assert any("search_merge" in line for line in out)

    def test_explain(self, shell):
        out = run(shell, ".explain SELECT Dst FROM EDGE WHERE Src = 1")
        assert "plan before rewriting" in out[0]

    def test_stats(self, shell):
        out = run(shell, ".stats SELECT Dst FROM EDGE WHERE Src = 1")
        assert any("tuples_scanned" in line for line in out)

    def test_rewrite_toggle(self, shell):
        assert run(shell, ".rewrite off") == ["rewriting off"]
        assert run(shell, ".rewrite") == ["rewriting is off"]
        assert run(shell, ".rewrite on") == ["rewriting on"]

    def test_unknown_command(self, shell):
        (out,) = run(shell, ".warp")
        assert "unknown command" in out

    def test_help(self, shell):
        (out,) = run(shell, ".help")
        assert ".explain" in out

    def test_quit_raises_system_exit(self, shell):
        with pytest.raises(SystemExit):
            run(shell, ".quit")


class TestResultTable:
    def test_to_table_alignment(self, shell):
        result = shell.db.query("SELECT Src, Dst FROM EDGE")
        table = result.to_table()
        lines = table.splitlines()
        assert lines[0].startswith("Src")
        assert set(lines[1]) <= {"-", "+"}
        assert "(2 rows)" in lines[-1]

    def test_to_table_truncation(self, shell):
        for i in range(3, 60):
            shell.db.execute(f"INSERT INTO EDGE VALUES ({i}, {i + 1})")
        table = shell.db.query("SELECT Src FROM EDGE").to_table(
            max_rows=5
        )
        assert "more)" in table


class TestScriptMode:
    def test_main_with_file(self, tmp_path, capsys):
        from repro.cli import main
        script = tmp_path / "s.esql"
        script.write_text(
            "TABLE T (A : INT);\n"
            "INSERT INTO T VALUES (1), (2);\n"
            "SELECT A FROM T WHERE A = 2;\n"
        )
        assert main([str(script)]) == 0
        captured = capsys.readouterr().out
        assert "ok" in captured and "(1 row)" in captured


class TestLoadCommand:
    def test_load_runs_script(self, shell, tmp_path):
        script = tmp_path / "more.esql"
        script.write_text("INSERT INTO EDGE VALUES (9, 10);\n"
                          "SELECT Dst FROM EDGE WHERE Src = 9;\n")
        out = run(shell, f".load {script}")
        assert out[0] == "ok"
        assert "(1 row)" in out[1]

    def test_load_missing_file(self, shell):
        (out,) = run(shell, ".load /nope/missing.esql")
        assert out.startswith("error:")

    def test_load_without_argument(self, shell):
        (out,) = run(shell, ".load")
        assert out.startswith("usage:")


class TestEngineCommand:
    def test_engine_toggle(self, shell):
        assert run(shell, ".engine hash") == ["join strategy: hash"]
        assert shell.db.hash_joins is True
        assert run(shell, ".engine") == ["join strategy: hash"]
        assert run(shell, ".engine nested") == ["join strategy: nested"]

    def test_queries_respect_engine_choice(self, shell):
        run(shell, ".engine hash")
        out = run(shell, "SELECT Dst FROM EDGE WHERE Src = 1;")
        assert "(1 row)" in out[0]


class TestResilienceCommands:
    def test_checked_toggle(self, shell):
        assert run(shell, ".checked") == ["checked mode is off"]
        assert run(shell, ".checked on") == ["checked mode on"]
        assert shell.settings.checked is True
        assert run(shell, ".checked off") == ["checked mode off"]
        assert shell.settings.checked is False

    def test_checked_never_mutates_shared_database(self, shell):
        # the settings-leakage fix: the toggle is session state, so a
        # second caller of the same Database keeps its own defaults
        run(shell, ".checked on")
        run(shell, ".deadline 5")
        assert shell.db.checked is False
        assert shell.db.deadline_ms is None

    def test_checked_queries_still_answer(self, shell):
        run(shell, ".checked on")
        out = run(shell, "SELECT Dst FROM EDGE WHERE Src = 1;")
        assert "(1 row)" in out[0]

    def test_deadline_set_show_clear(self, shell):
        assert run(shell, ".deadline") == ["no deadline"]
        assert run(shell, ".deadline 5") == ["deadline 5 ms"]
        assert shell.settings.deadline_ms == 5.0
        assert run(shell, ".deadline") == ["deadline is 5 ms"]
        assert run(shell, ".deadline off") == ["deadline off"]
        assert shell.settings.deadline_ms is None

    def test_deadline_rejects_garbage(self, shell):
        (out,) = run(shell, ".deadline soon")
        assert out.startswith("usage:")
        (out,) = run(shell, ".deadline -3")
        assert out.startswith("usage:")
        assert shell.settings.deadline_ms is None

    def test_stats_reports_degradation(self, shell):
        run(shell, ".deadline 1e-9")
        out = run(shell, ".stats SELECT Dst FROM EDGE WHERE Src = 1")
        assert any("degraded: best-so-far plan" in line for line in out)
        # degraded, not broken: the result table is still there
        assert "(1 row)" in out[0]


class TestFuzzCommand:
    def test_fuzz_runs_and_summarizes(self, shell):
        out = run(shell, ".fuzz 3 11")
        assert out[-1].startswith("fuzz seed=11: 3/3 case(s)")
        assert "0 violation(s)" in out[-1]

    def test_fuzz_rejects_garbage(self, shell):
        assert run(shell, ".fuzz lots") == ["usage: .fuzz [cases] [seed]"]
        assert run(shell, ".fuzz 0") == ["usage: .fuzz [cases] [seed]"]

    def test_fuzz_never_touches_the_shell_database(self, shell):
        run(shell, ".fuzz 2 1")
        # the scratch schemas (T1, T2, ...) must not leak in
        names = shell.db.catalog.relation_names()
        assert all(not n.startswith("T") or n == "EDGE" for n in names)


class TestShellSurvivesErrors:
    def test_dot_command_repro_error_is_reported(self, shell):
        from repro.errors import ReproError

        def explode():
            raise ReproError("inventory exploded")

        shell.db.optimizer.rewriter.rule_inventory = explode
        (out,) = run(shell, ".rules")
        assert out == "error: inventory exploded"
        # the shell is still usable afterwards
        assert any("table EDGE" in line for line in run(shell, ".schema"))
