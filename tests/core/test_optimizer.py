"""Optimizer pipeline tests."""

import pytest

from repro.adt.types import NUMERIC
from repro.core.explain import explain_text
from repro.core.optimizer import Optimizer
from repro.engine.catalog import Catalog
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("R", [("A", NUMERIC), ("B", NUMERIC)])
    return c


class TestPipeline:
    def test_stages_recorded(self, cat):
        optimizer = Optimizer(cat)
        q = parse_term("SEARCH(LIST(R), #1.1 = 2 + 3, LIST(#1.2))")
        out = optimizer.optimize(q)
        assert out.original == q
        assert "5" in term_to_str(out.final)

    def test_rewrite_disabled_still_typechecks(self, cat):
        optimizer = Optimizer(cat)
        q = parse_term("SEARCH(LIST(R), #1.1 = 2 + 3, LIST(#1.2))")
        out = optimizer.optimize(q, rewrite=False)
        assert out.applications == 0
        assert "2 + 3" in term_to_str(out.final)

    def test_schema_computed(self, cat):
        optimizer = Optimizer(cat)
        q = parse_term("SEARCH(LIST(R), true, LIST(#1.2))")
        out = optimizer.optimize(q)
        assert out.schema.names == ("B",)

    def test_final_pass_normalises_rule_additions(self, cat):
        # a custom rule introduces user-syntax field access; the final
        # typecheck pass must leave a valid, evaluable plan
        from repro.adt.types import REAL
        ts = cat.type_system
        ts.define_tuple("Point", [("ABS", REAL)])
        cat.define_table("M", [("P", ts.lookup("Point"))])
        from repro.rules.semantic import compile_integrity_constraint
        cat.integrity_constraints.append(compile_integrity_constraint(
            "ic: F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0 /"
        ))
        optimizer = Optimizer(cat)
        q = parse_term(
            "SEARCH(LIST(M), PROJECT(#1.1, 'ABS') = 2, LIST(#1.1))"
        )
        out = optimizer.optimize(q)
        # no bare ABS(...) call survives in the final plan
        assert "ABS(#" not in term_to_str(out.final)


class TestExplain:
    def test_explain_sections(self, cat):
        optimizer = Optimizer(cat)
        q = parse_term(
            "SEARCH(LIST(SEARCH(LIST(R), #1.1 = 1, LIST(#1.1, #1.2))), "
            "true, LIST(#1.2))"
        )
        out = optimizer.optimize(q)
        text = explain_text(out)
        assert "plan before rewriting" in text
        assert "plan after rewriting" in text
        assert "search_merge" in text

    def test_explain_verbose(self, cat):
        optimizer = Optimizer(cat)
        q = parse_term(
            "SEARCH(LIST(SEARCH(LIST(R), #1.1 = 1, LIST(#1.1, #1.2))), "
            "true, LIST(#1.2))"
        )
        text = explain_text(optimizer.optimize(q), verbose=True)
        assert "==>" in text
