"""Dynamic limit allocation (section 7 proposal) tests."""

import pytest

from repro import Database
from repro.core.complexity import allocate_limits, assess
from repro.terms.parser import parse_term


class TestAssessment:
    def test_key_lookup_is_trivial(self):
        c = assess(parse_term(
            "SEARCH(LIST(R), #1.1 = 7, LIST(#1.2))"
        ))
        assert c.trivial
        assert c.relations == 1 and c.conjuncts == 1

    def test_join_not_trivial(self):
        c = assess(parse_term(
            "SEARCH(LIST(R, S), #1.1 = #2.1, LIST(#1.2))"
        ))
        assert not c.trivial
        assert c.relations == 2

    def test_fixpoint_counted(self):
        c = assess(parse_term(
            "SEARCH(LIST(FIX(T0, UNION(SET(E0, SEARCH(LIST(T0, E0), "
            "#1.2 = #2.1, LIST(#1.1, #2.2)))))), #1.1 = 1, LIST(#1.2))"
        ))
        assert c.fixpoints == 1
        assert c.unions == 1
        assert not c.trivial

    def test_predicate_and_disjunct_counting(self):
        c = assess(parse_term(
            "SEARCH(LIST(R), (#1.1 = 1 AND #1.2 = 2) OR #1.1 = 3, "
            "LIST(#1.1))"
        ))
        assert c.conjuncts == 3  # three predicate leaves
        assert c.disjuncts == 1

    def test_score_monotone_in_structure(self):
        simple = assess(parse_term(
            "SEARCH(LIST(R), #1.1 = 7, LIST(#1.2))"
        ))
        complex_ = assess(parse_term(
            "SEARCH(LIST(R, S, T0), #1.1 = #2.1 AND #2.2 = #3.1 AND "
            "#1.2 > 5, LIST(#1.1))"
        ))
        assert complex_.score > simple.score


class TestAllocation:
    def test_trivial_disables_rewriting(self):
        c = assess(parse_term("SEARCH(LIST(R), #1.1 = 7, LIST(#1.2))"))
        allocation = allocate_limits(c)
        assert not allocation["enabled"]
        assert allocation["semantic"] == 0

    def test_budget_monotone(self):
        terms = [
            "SEARCH(LIST(R, S), #1.1 = #2.1, LIST(#1.1))",
            "SEARCH(LIST(R, S, T0), #1.1 = #2.1 AND #2.2 = #3.1 AND "
            "#1.1 > 2 AND #3.2 < 9, LIST(#1.1))",
            "SEARCH(LIST(FIX(X0, UNION(SET(E0, SEARCH(LIST(X0, E0), "
            "#1.2 = #2.1, LIST(#1.1, #2.2))))), R, S), "
            "#1.1 = 1 AND #1.2 = #2.1 AND #2.2 = #3.1 AND #3.2 > 4 "
            "AND #2.1 < 8, LIST(#1.1))",
        ]
        budgets = [
            allocate_limits(assess(parse_term(t)))["semantic"]
            for t in terms
        ]
        assert budgets == sorted(budgets)
        assert budgets[0] < budgets[-1]


class TestEndToEnd:
    def make_db(self, dynamic):
        db = Database(dynamic_limits=dynamic)
        db.execute("""
        TYPE Status ENUMERATION OF ('open', 'closed');
        TABLE TICKET (Id : NUMERIC, State : Status, Price : NUMERIC)
        """)
        db.add_integrity_constraint(
            "ic: F(x) / ISA(x, Status) --> "
            "F(x) AND MEMBER(x, MAKESET('open', 'closed')) /"
        )
        db.execute("INSERT INTO TICKET VALUES (1, 'open', 5), "
                   "(2, 'closed', 9)")
        return db

    def test_trivial_query_skips_rewriting(self):
        db = self.make_db(dynamic=True)
        optimized = db.optimize("SELECT Price FROM TICKET WHERE Id = 1")
        assert optimized.applications == 0

    def test_complex_query_still_optimized(self):
        db = self.make_db(dynamic=True)
        # the join makes the query non-trivial; the impossible state is
        # detected despite dynamic limits
        result, stats, optimized = db.query_with_stats(
            "SELECT A.Id FROM TICKET A, TICKET B "
            "WHERE A.Id = B.Id AND A.State = 'lost'"
        )
        assert result.rows == []
        assert stats.tuples_scanned == 0

    def test_same_answers_as_static(self):
        dynamic = self.make_db(dynamic=True)
        static = self.make_db(dynamic=False)
        for q in (
            "SELECT Price FROM TICKET WHERE Id = 1",
            "SELECT Id FROM TICKET WHERE State = 'open'",
            "SELECT A.Id FROM TICKET A, TICKET B WHERE A.Id = B.Id",
        ):
            assert set(dynamic.query(q).rows) == set(static.query(q).rows)

    def test_trivial_query_misses_semantic_win(self):
        """The trade-off is real: a trivial-shaped inconsistent query
        goes unoptimized under dynamic limits (and scans the table)."""
        db = self.make_db(dynamic=True)
        __, stats, ___ = db.query_with_stats(
            "SELECT Id FROM TICKET WHERE State = 'lost'"
        )
        assert stats.tuples_scanned > 0
