"""Extension-bundle tests: the database-implementor API."""

import pytest

from repro import Database, Extension
from repro.adt.registry import FunctionDef
from repro.adt.values import SetValue
from repro.errors import ReproError


@pytest.fixture
def db():
    d = Database()
    d.execute("TABLE GEO (Id : NUMERIC, Lat : NUMERIC, Lon : NUMERIC)")
    d.execute("INSERT INTO GEO VALUES (1, 10, 20), (2, 30, 40)")
    return d


class TestBuilder:
    def test_fluent_chaining(self):
        ext = (Extension("demo")
               .function(FunctionDef("F2", lambda a, c: 0, 1))
               .rule("simplify", "r: NOISE(x) --> x")
               .constraint(
                   "ic: F(x) / ISA(x, NUMERIC) --> F(x) AND x >= 0 /"
               )
               .method("M", 1, lambda *a: None)
               .predicate("P", lambda *a: True))
        assert len(ext.functions) == 1
        assert len(ext.rule_texts) == 1
        assert len(ext.integrity_constraints) == 1

    def test_rule_validated_eagerly(self):
        with pytest.raises(ReproError):
            Extension("bad").rule("simplify", "P(x) --> Q(y)")


class TestInstallation:
    def test_function_usable_in_queries(self, db):
        def manhattan(args, ctx):
            return abs(args[0]) + abs(args[1])
        db.install(Extension("geo").function(
            FunctionDef("MANHATTAN", manhattan, 2)
        ))
        rows = db.query("SELECT MANHATTAN(Lat, Lon) FROM GEO "
                        "WHERE Id = 1").rows
        assert rows == [(30,)]

    def test_pure_function_constant_folded(self, db):
        db.install(Extension("geo").function(
            FunctionDef("HALF", lambda a, c: a[0] / 2, 1)
        ))
        opt = db.optimize("SELECT Id FROM GEO WHERE Lat = HALF(40)")
        from repro.terms.printer import term_to_str
        assert "20" in term_to_str(opt.final)
        assert "HALF" not in term_to_str(opt.final)

    def test_impure_function_not_folded(self, db):
        db.install(Extension("geo").function(
            FunctionDef("TICKET", lambda a, c: 7, 1, pure=False)
        ))
        opt = db.optimize("SELECT Id FROM GEO WHERE Lat = TICKET(1)")
        from repro.terms.printer import term_to_str
        assert "TICKET" in term_to_str(opt.final)

    def test_rule_installed_into_named_block(self, db):
        db.install(Extension("alg").rule(
            "simplify", "abs_idem: MYABS(MYABS(x)) --> MYABS(x)"
        ).function(FunctionDef("MYABS", lambda a, c: abs(a[0]), 1)))
        opt = db.optimize("SELECT Id FROM GEO WHERE MYABS(MYABS(Lat)) = 10")
        assert "abs_idem" in opt.rewrite_result.rules_fired()

    def test_constraint_installed(self, db):
        db.execute("TYPE Kind ENUMERATION OF ('a', 'b')")
        db.execute("TABLE K (Id : NUMERIC, Kk : Kind)")
        db.install(Extension("k").constraint(
            "ic: F(x) / ISA(x, Kind) --> "
            "F(x) AND MEMBER(x, MAKESET('a', 'b')) /"
        ))
        result, stats, __ = db.query_with_stats(
            "SELECT Id FROM K WHERE Kk = 'z'"
        )
        assert result.rows == [] and stats.tuples_scanned == 0

    def test_method_and_predicate_installed(self, db):
        from repro.terms.term import num
        ext = (Extension("m")
               .function(FunctionDef(
                   "ULTIMATE", lambda a, c: 0, 1, pure=False,
               ))
               .rule("simplify",
                     "ult: ULTIMATE(x) / SURE(x) --> a / FETCH(x, a)")
               .method("FETCH", 2,
                       lambda inst, raw, b, ctx: {raw[1].name: num(42)})
               .predicate("SURE", lambda args, b, ctx: True))
        db.install(ext)
        opt = db.optimize("SELECT Id FROM GEO WHERE Lat = ULTIMATE(0)")
        from repro.terms.printer import term_to_str
        assert "42" in term_to_str(opt.final)

    def test_custom_collection_function(self, db):
        db.execute("TABLE BAGS (Id : NUMERIC, Vals : SET OF NUMERIC)")
        db.execute("INSERT INTO BAGS VALUES (1, SET(3, 9)), (2, SET(1))")

        def spread(args, ctx):
            coll = args[0]
            return max(coll.elements) - min(coll.elements)
        db.install(Extension("stats").function(
            FunctionDef("SPREAD", spread, 1)
        ))
        rows = db.query("SELECT Id FROM BAGS WHERE SPREAD(Vals) = 6").rows
        assert rows == [(1,)]
