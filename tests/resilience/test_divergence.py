"""Divergence detection: oscillation cycles and unbounded growth."""

import pytest

from repro.errors import RewriteError
from repro.resilience import ResiliencePolicy, TermHistory
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.terms.parser import parse_term

from tests.resilience.chaos import growing_rule, looping_pair, swap_rule


def engine(rules, policy, limit=None, **kwargs):
    return RewriteEngine(Seq([Block("b", rules, limit=limit)]),
                         resilience=policy, **kwargs)


class TestOscillation:
    def test_rule_pair_cycle_detected(self):
        e = engine(looping_pair(), ResiliencePolicy(), limit=1000)
        result = e.rewrite(parse_term("AAA(1)"), RuleContext())
        [report] = result.resilience.divergence
        assert report.kind == "oscillation"
        assert report.block == "b"
        assert report.cycle_length == 2
        assert set(report.rules) == {"to_bbb", "to_aaa"}
        # detected after two applications instead of burning the
        # 1000-application block budget
        assert result.applications == 2

    def test_self_inverse_rule_detected(self):
        e = engine([swap_rule()], ResiliencePolicy(), limit=500)
        result = e.rewrite(parse_term("PAIR(1, 2)"), RuleContext())
        [report] = result.resilience.divergence
        assert report.kind == "oscillation"
        assert report.rules == ("swap",)
        assert result.applications == 2

    def test_without_policy_the_safety_limit_catches_it(self):
        e = RewriteEngine(Seq([Block("b", looping_pair())]),
                          safety_limit=50)
        with pytest.raises(RewriteError):
            e.rewrite(parse_term("AAA(1)"), RuleContext())

    def test_detection_can_be_disabled(self):
        e = engine(looping_pair(),
                   ResiliencePolicy(detect_divergence=False), limit=40)
        result = e.rewrite(parse_term("AAA(1)"), RuleContext())
        assert result.resilience.divergence == []
        assert result.applications == 40  # burned the whole budget

    def test_other_blocks_still_run_after_a_halted_block(self):
        from repro.rules.rule import rule_from_text
        seq = Seq([
            Block("loops", looping_pair(), limit=1000),
            Block("works", [rule_from_text("fin: CCC(x) --> DDD(x)")]),
        ])
        e = RewriteEngine(seq, resilience=ResiliencePolicy())
        result = e.rewrite(parse_term("PAIR(AAA(1), CCC(2))"),
                           RuleContext())
        assert result.resilience.divergence[0].block == "loops"
        assert result.term == parse_term("PAIR(AAA(1), DDD(2))")


class TestGrowth:
    def test_unbounded_growth_halted(self):
        policy = ResiliencePolicy(growth_factor=2.0, growth_slack=4)
        e = engine([growing_rule()], policy)
        result = e.rewrite(parse_term("Q(Z)"), RuleContext())
        [report] = result.resilience.divergence
        assert report.kind == "growth"
        assert report.rules == ("grow",)
        assert "grew" in report.detail
        # Q(Z) is 2 nodes -> bound is 2*2+4 = 8 nodes
        assert result.applications < 10

    def test_legitimate_shrinking_is_untouched(self):
        from tests.resilience.chaos import shrink_rule
        e = engine([shrink_rule()], ResiliencePolicy())
        result = e.rewrite(parse_term("P(P(P(Z)))"), RuleContext())
        assert result.resilience.divergence == []
        assert result.term == parse_term("P(Z)")


class TestTermHistory:
    def test_no_false_positive_on_distinct_terms(self):
        history = TermHistory(parse_term("A(1)"))
        assert history.record(parse_term("A(2)"), "r") is None
        assert history.record(parse_term("A(3)"), "r") is None

    def test_repeat_is_reported_with_cycle_rules(self):
        history = TermHistory(parse_term("A(1)"))
        assert history.record(parse_term("A(2)"), "r1") is None
        assert history.record(parse_term("A(3)"), "r2") is None
        verdict = history.record(parse_term("A(2)"), "r3")
        kind, rules, length, detail = verdict
        assert kind == "oscillation"
        assert rules == ("r2", "r3")
        assert length == 2
        assert "A(2)" in detail

    def test_growth_bound(self):
        history = TermHistory(parse_term("Z"), growth_factor=1.0,
                              growth_slack=2)
        big = parse_term("Q(Q(Q(Z)))")
        kind, __, ___, detail = history.record(big, "grow")
        assert kind == "growth"
        assert "limit" in detail
