"""Deadlines and work budgets: graceful degradation, never an error."""

from repro.resilience import ResiliencePolicy
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.terms.parser import parse_term

from tests.resilience.chaos import (SlowRule, sale_db, shrink_rule,
                                    SALE_QUERY)


def engine(rules, policy):
    return RewriteEngine(Seq([Block("b", rules)]), resilience=policy)


class TestWorkBudget:
    def test_max_applications_returns_best_so_far(self):
        e = engine([shrink_rule()],
                   ResiliencePolicy(max_applications=2))
        result = e.rewrite(parse_term("P(P(P(P(P(Z)))))"), RuleContext())
        assert result.degraded is True
        assert result.degraded_reason == "max_applications"
        assert result.applications == 2
        # two of the four possible shrinks happened: genuinely partial
        assert result.term == parse_term("P(P(P(Z)))")

    def test_budget_spans_blocks_and_passes(self):
        seq = Seq([Block("one", [shrink_rule()]),
                   Block("two", [shrink_rule()])], passes=3)
        e = RewriteEngine(seq,
                          resilience=ResiliencePolicy(max_applications=3))
        result = e.rewrite(parse_term("P(P(P(P(P(Z)))))"), RuleContext())
        assert result.applications == 3
        assert result.degraded is True

    def test_untouched_budget_not_degraded(self):
        e = engine([shrink_rule()],
                   ResiliencePolicy(max_applications=100))
        result = e.rewrite(parse_term("P(P(Z))"), RuleContext())
        assert result.degraded is False
        assert result.degraded_reason is None
        assert result.term == parse_term("P(Z)")


class TestDeadline:
    def test_expired_deadline_keeps_the_input_term(self):
        e = engine([shrink_rule()], ResiliencePolicy(deadline_ms=0.0))
        deep = parse_term("P(P(P(Z)))")
        result = e.rewrite(deep, RuleContext())
        assert result.degraded is True
        assert result.degraded_reason == "deadline"
        assert result.term == deep
        assert result.applications == 0

    def test_deadline_interrupts_mid_block(self):
        # each application sleeps well past the deadline, so the
        # cooperative check stops the block after the first one
        e = engine([SlowRule(shrink_rule(), delay_s=0.02)],
                   ResiliencePolicy(deadline_ms=5.0))
        result = e.rewrite(parse_term("P(P(P(P(Z))))"), RuleContext())
        assert result.degraded is True
        assert result.degraded_reason == "deadline"
        assert 1 <= result.applications < 3
        # best-so-far: strictly between the input and the fixpoint
        assert result.term != parse_term("P(P(P(P(Z))))")
        assert result.term != parse_term("P(Z)")

    def test_degradation_flows_into_explain_json(self):
        db = sale_db(deadline_ms=0.0)
        report = db.explain_json(SALE_QUERY)
        assert report["rewrite"]["degraded"] is True
        assert report["resilience"]["degraded_reason"] == "deadline"
        # degraded, not broken: the un-rewritten plan still answers
        rows = sorted(db.query(SALE_QUERY).rows)
        assert rows == [(15,), (25,), (40,)]

    def test_optimize_deadline_argument(self):
        db = sale_db()
        optimized = db.optimize(SALE_QUERY, deadline_ms=0.0)
        assert optimized.degraded is True
        assert optimized.resilience.degraded_reason == "deadline"
        unconstrained = db.optimize(SALE_QUERY)
        assert unconstrained.degraded is False
        assert unconstrained.resilience is None
