"""Rule sandboxing: bad rules are quarantined, not fatal."""

import pytest

from repro.errors import RuleError
from repro.resilience import ResiliencePolicy
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.terms.parser import parse_term

from tests.resilience.chaos import (AlwaysRaisingRule, FlakyRule, sale_db,
                                    shrink_rule, SALE_QUERY)


def engine(rules, policy, **kwargs):
    return RewriteEngine(Seq([Block("b", rules)]), resilience=policy,
                         **kwargs)


class TestSandbox:
    def test_raising_rule_does_not_abort_the_rewrite(self):
        e = engine([AlwaysRaisingRule(), shrink_rule()],
                   ResiliencePolicy())
        result = e.rewrite(parse_term("P(P(P(Z)))"), RuleContext())
        assert result.term == parse_term("P(Z)")
        assert result.applications == 2

    def test_failures_recorded_structurally(self):
        e = engine([AlwaysRaisingRule(message="kaput"), shrink_rule()],
                   ResiliencePolicy(failure_threshold=100))
        result = e.rewrite(parse_term("P(P(Z))"), RuleContext())
        failures = result.resilience.rule_failures
        assert failures
        first = failures[0]
        assert first.rule == "bomb"
        assert first.block == "b"
        assert first.error == "RuleError"
        assert "kaput" in first.message
        assert first.as_dict()["path"] == []

    def test_quarantine_at_threshold(self):
        bomb = AlwaysRaisingRule()
        e = engine([bomb, shrink_rule()],
                   ResiliencePolicy(failure_threshold=1))
        result = e.rewrite(parse_term("P(P(P(Z)))"), RuleContext())
        assert result.resilience.quarantined == ["bomb"]
        # quarantined after its first failure: never attempted again
        assert bomb.attempts == 1
        assert result.term == parse_term("P(Z)")

    def test_below_threshold_not_quarantined(self):
        flaky = FlakyRule(failures=2)
        e = engine([flaky, shrink_rule()],
                   ResiliencePolicy(failure_threshold=3))
        result = e.rewrite(parse_term("P(P(Z))"), RuleContext())
        assert len(result.resilience.rule_failures) == 2
        assert result.resilience.quarantined == []
        assert result.term == parse_term("P(Z)")

    def test_non_repro_exceptions_are_sandboxed_too(self):
        e = engine([AlwaysRaisingRule(error_type=ValueError),
                    shrink_rule()], ResiliencePolicy())
        result = e.rewrite(parse_term("P(P(Z))"), RuleContext())
        assert result.term == parse_term("P(Z)")
        assert result.resilience.rule_failures[0].error == "ValueError"

    def test_without_policy_the_exception_propagates(self):
        e = engine([AlwaysRaisingRule(), shrink_rule()], None)
        with pytest.raises(RuleError):
            e.rewrite(parse_term("P(P(Z))"), RuleContext())

    def test_sandbox_can_be_disabled_by_policy(self):
        e = engine([AlwaysRaisingRule(), shrink_rule()],
                   ResiliencePolicy(sandbox=False))
        with pytest.raises(RuleError):
            e.rewrite(parse_term("P(P(Z))"), RuleContext())


class TestEndToEnd:
    """The acceptance shape: an injected always-raising rule inside the
    standard pipeline completes, quarantines, and surfaces in
    explain_json()['resilience']."""

    def test_explain_json_lists_the_failure(self):
        db = sale_db(resilient=True)
        bomb = AlwaysRaisingRule()
        db.optimizer.rewriter.add_rule(bomb, "simplify")
        report = db.explain_json(SALE_QUERY)
        resilience = report["resilience"]
        assert resilience is not None
        assert any(f["rule"] == "bomb"
                   for f in resilience["rule_failures"])
        assert "bomb" in resilience["quarantined"]
        # the rewrite itself still did its job
        assert report["plans"]["after"]["nodes"] < \
            report["plans"]["before"]["nodes"]

    def test_query_results_survive_the_bad_rule(self):
        db = sale_db(resilient=True)
        db.optimizer.rewriter.add_rule(AlwaysRaisingRule(), "simplify")
        rows = sorted(db.query(SALE_QUERY).rows)
        assert rows == [(15,), (25,), (40,)]

    def test_profiler_counts_failures(self):
        from repro.obs.profile import Profiler
        db = sale_db(resilient=True)
        db.optimizer.rewriter.add_rule(AlwaysRaisingRule(), "simplify")
        profiler = Profiler()
        db.optimize(SALE_QUERY, obs=profiler.bus)
        counters = profiler.metrics.snapshot()["counters"]
        assert counters["resilience.rule_failures"] >= 1
        assert counters["resilience.quarantined"] == 1
