"""Checked mode: differential validation against a sampled database."""

from repro.resilience import ResiliencePolicy, make_checked_validator
from repro.resilience.checked import CheckedValidator, sampled_catalog

from tests.resilience.chaos import (bad_comparison_rule, sale_db,
                                    SALE_QUERY)


class TestSampledCatalog:
    def test_rows_bounded_and_shared_schema(self):
        db = sale_db()
        sample = sampled_catalog(db.catalog, sample_rows=2)
        assert len(sample.rows("SALE")) == 2
        assert sample.relation_schema("SALE").names == \
            db.catalog.relation_schema("SALE").names
        # the live catalog is untouched
        assert len(db.catalog.rows("SALE")) == 4

    def test_views_carried_over(self):
        db = sale_db()
        sample = sampled_catalog(db.catalog)
        assert sample.is_view("BIG")


class TestValidator:
    def test_equivalent_terms_pass(self):
        db = sale_db()
        validator = CheckedValidator(db.catalog)
        term = db.optimize(SALE_QUERY, rewrite=False).typed
        rewritten = db.optimize(SALE_QUERY).final
        assert validator(term, rewritten) is None

    def test_divergent_terms_refuted(self):
        db = sale_db()
        validator = CheckedValidator(db.catalog)
        before = db.optimize(SALE_QUERY, rewrite=False).typed
        after = db.optimize(
            "SELECT Amount FROM SALE", rewrite=False).typed
        problem = validator(before, after)
        assert problem is not None
        assert "diverge" in problem

    def test_factory(self):
        db = sale_db()
        validator = make_checked_validator(db.catalog, sample_rows=3)
        assert len(validator.catalog.rows("SALE")) == 3


class TestCheckedMode:
    def test_result_changing_rule_rolled_back(self):
        """The acceptance shape: a deliberately non-preserving rule is
        refuted and its block rolled back."""
        db = sale_db(checked=True)
        db.optimizer.rewriter.add_rule(bad_comparison_rule(), "simplify")
        optimized = db.optimize(SALE_QUERY)
        report = optimized.resilience
        assert report.rollbacks
        rollback = report.rollbacks[0]
        assert rollback.block == "simplify"
        assert "diverge" in rollback.detail
        assert rollback.applications_discarded >= 1
        # the poisoned block left no trace entries behind
        assert all(e.block != "simplify" or e.rule != "bad_cmp"
                   for e in optimized.trace)
        # and the query still answers correctly
        rows = sorted(db.query(SALE_QUERY).rows)
        assert rows == [(15,), (25,), (40,)]

    def test_without_checked_mode_the_bad_rule_wins(self):
        db = sale_db()
        db.optimizer.rewriter.add_rule(bad_comparison_rule(), "simplify")
        rows = sorted(db.query(SALE_QUERY).rows)
        assert rows == [(5,), (15,), (25,), (40,)]  # wrong: filter lost

    def test_preserving_rewrites_kept(self):
        db = sale_db(checked=True)
        optimized = db.optimize(SALE_QUERY)
        assert optimized.resilience.rollbacks == []
        assert optimized.resilience.checked_validations >= 1
        # the view-merging win is intact under validation
        from repro.terms.term import term_size
        assert term_size(optimized.final) < term_size(optimized.typed)

    def test_explain_json_reports_checked_section(self):
        db = sale_db(checked=True)
        db.optimizer.rewriter.add_rule(bad_comparison_rule(), "simplify")
        report = db.explain_json(SALE_QUERY)
        checked = report["resilience"]["checked"]
        assert checked["validations"] >= 1
        assert checked["rollbacks"]
        assert checked["rollbacks"][0]["block"] == "simplify"

    def test_broken_validator_fails_open(self):
        def exploding_validator(before, after):
            raise RuntimeError("validator bug")

        db = sale_db()
        policy = ResiliencePolicy(validator=exploding_validator)
        optimized = db.optimizer.optimize(
            db.optimize(SALE_QUERY, rewrite=False).original,
            resilience=policy,
        )
        assert optimized.resilience.checked_errors >= 1
        assert optimized.resilience.rollbacks == []
        # the rewrite itself was kept (fail open, not fail closed)
        assert optimized.applications > 0
