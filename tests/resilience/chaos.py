"""Fault-injection harness for the resilience suite.

Every fixture here is a *hostile extension*: something a database
administrator could install through the section 4 extensibility
surface that today's engine would have to survive.  The rule objects
are duck-typed against :class:`~repro.rules.rule.RewriteRule` (the
engine only touches ``name``, ``quick_applicable`` and ``apply``), so
a fixture can fail in ways the rule compiler would never produce.

Used by ``tests/resilience/*`` and ``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import time

from repro.engine.database import Database
from repro.errors import RuleError
from repro.rules.rule import rule_from_text

__all__ = [
    "AlwaysRaisingRule", "FlakyRule", "SlowRule", "looping_pair",
    "swap_rule", "growing_rule", "shrink_rule", "bad_comparison_rule",
    "sale_db", "SALE_QUERY",
]


class AlwaysRaisingRule:
    """A rule whose application always raises (a buggy extension)."""

    def __init__(self, name: str = "bomb",
                 error_type: type = RuleError,
                 message: str = "injected failure"):
        self.name = name
        self.error_type = error_type
        self.message = message
        self.attempts = 0

    def quick_applicable(self, subject) -> bool:
        return True

    def apply(self, subject, ctx):
        self.attempts += 1
        raise self.error_type(self.message)


class FlakyRule:
    """Raises on its first ``failures`` attempts, then stops matching.

    Models a rule with a data-dependent bug: below the quarantine
    threshold it must merely be stepped over, at the threshold it must
    be quarantined.
    """

    def __init__(self, name: str = "flaky", failures: int = 2):
        self.name = name
        self.failures = failures
        self.attempts = 0

    def quick_applicable(self, subject) -> bool:
        return True

    def apply(self, subject, ctx):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise RuleError(f"flaky failure #{self.attempts}")
        return None


class SlowRule:
    """Wraps a compiled rule with a per-application sleep, to exercise
    the cooperative deadline without depending on workload size."""

    def __init__(self, inner, delay_s: float = 0.005):
        self.inner = inner
        self.name = inner.name
        self.delay_s = delay_s

    def quick_applicable(self, subject) -> bool:
        return self.inner.quick_applicable(subject)

    def apply(self, subject, ctx):
        time.sleep(self.delay_s)
        return self.inner.apply(subject, ctx)


def shrink_rule():
    return rule_from_text("shrink: P(P(x)) --> P(x)")


def looping_pair():
    """Two rules that undo each other: A -> B -> A forever."""
    return [
        rule_from_text("to_bbb: AAA(x) --> BBB(x)"),
        rule_from_text("to_aaa: BBB(x) --> AAA(x)"),
    ]


def swap_rule():
    """A single self-inverse rule: PAIR(a, b) -> PAIR(b, a) -> ..."""
    return rule_from_text("swap: PAIR(x, y) --> PAIR(y, x)")


def growing_rule():
    """Strictly growing, never repeating: defeats cycle detection and
    must be caught by the growth bound instead."""
    return rule_from_text("grow: Q(x) --> Q(P(x))")


def bad_comparison_rule():
    """A result-changing rewrite: weakens any ``x > y`` conjunct to
    ``true``.  Syntactically a perfectly plausible 'simplification';
    only checked mode can refute it."""
    return rule_from_text("bad_cmp: x > y / --> true /")


# Goes through the BIG view on purpose: the translator inlines the view
# definition, so the typed term is a nested SEARCH that the rewrite
# rules genuinely have work to do on (merge, then simplify).  A direct
# base-table query would already be in canonical form and no rule would
# ever fire, which defeats every end-to-end resilience scenario.
SALE_QUERY = "SELECT Amount FROM BIG"


def sale_db(**kwargs) -> Database:
    """The small workload shared by the chaos tests."""
    db = Database(**kwargs)
    db.execute("""
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW BIG (Shop, Amount) AS
      SELECT Shop, Amount FROM SALE WHERE Amount > 10
    """)
    db.execute("INSERT INTO SALE VALUES (1, 5), (1, 15), (2, 25), (2, 40)")
    return db
