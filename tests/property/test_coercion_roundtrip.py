"""Property tests: value coercion is idempotent and the snapshot
encoding is its lossless inverse.

Two laws, over every declarable type shape:

* ``coerce_value`` is *idempotent* -- re-coercing an already-coerced
  value returns an equal value (the engine may coerce at insert and
  again at replay/restore without drift);
* snapshot ``encode_value``/``decode_value`` round-trips any coerced
  value through JSON exactly (what the durability layer relies on).
"""

import json

import hypothesis.strategies as st
from hypothesis import given

from repro.adt.types import (BOOLEAN, CHAR, CollectionType, INT, NUMERIC,
                             REAL, TupleType, TypeSystem)
from repro.adt.values import ObjectStore
from repro.durability import decode_value, encode_value
from repro.engine.storage import coerce_value

_STORE = ObjectStore()
_ENUM = TypeSystem().define_enumeration(
    "Mood", ["Comedy", "Adventure", "Western"]
)

_ATOMS = [
    (INT, st.integers(-10**6, 10**6)),
    (REAL, st.floats(allow_nan=False, allow_infinity=False,
                     width=32).map(float)),
    (NUMERIC, st.integers(-10**6, 10**6)),
    (CHAR, st.text(max_size=12)),
    (BOOLEAN, st.booleans()),
    (_ENUM, st.sampled_from(list(_ENUM.literals))),
]


def _typed_values():
    """(dtype, raw value) pairs for every type shape, nested two deep."""
    base = st.one_of(*(
        st.tuples(st.just(t), s) for t, s in _ATOMS
    ))

    def collect(children):
        kinds = st.sampled_from(["SET", "BAG", "LIST", "ARRAY"])

        def build(kind_and_elems):
            kind, (dtype, values) = kind_and_elems
            return (CollectionType(kind, dtype), list(values))

        elems = children.flatmap(
            lambda tv: st.tuples(
                st.just(tv[0]),
                st.lists(st.just(tv[1]), max_size=5),
            )
        )
        return st.tuples(kinds, elems).map(build)

    def tup(children):
        def build(fields):
            names = [f"F{i}" for i in range(len(fields))]
            dtype = TupleType(
                "T", list(zip(names, (t for t, _ in fields)))
            )
            return (dtype, {n: v for n, (_, v) in zip(names, fields)})
        return st.lists(children, min_size=1, max_size=4).map(build)

    return st.recursive(
        base, lambda c: st.one_of(collect(c), tup(c)), max_leaves=10
    )


@given(_typed_values())
def test_coercion_is_idempotent(typed):
    dtype, raw = typed
    once = coerce_value(raw, dtype, _STORE)
    assert coerce_value(once, dtype, _STORE) == once


@given(_typed_values())
def test_snapshot_encoding_roundtrips_coerced_values(typed):
    dtype, raw = typed
    value = coerce_value(raw, dtype, _STORE)
    wire = json.loads(json.dumps(encode_value(value)))
    decoded = decode_value(wire)
    assert decoded == value
    # the restored value is already fully coerced for its type
    assert coerce_value(decoded, dtype, _STORE) == value


@given(st.lists(st.integers(-50, 50), max_size=8))
def test_set_coercion_reaches_fixpoint_after_one_pass(elems):
    dtype = CollectionType("SET", INT)
    once = coerce_value(elems, dtype, _STORE)
    twice = coerce_value(once, dtype, _STORE)
    assert once == twice
    assert len(twice.elements) == len(set(elems))
