"""Property-based tests on the term substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.terms.match import match, match_first
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.subst import instantiate
from repro.terms.term import (AttrRef, Const, Fun, Term, Var, conj,
                              conjuncts, mk_fun, num, replace_at, string,
                              subterms, sym, term_size, term_sort_key,
                              walk)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_atoms = st.one_of(
    st.integers(-50, 50).map(num),
    st.sampled_from("abcdef").map(string),
    st.sampled_from(["REL1", "REL2", "POINT"]).map(sym),
    st.tuples(st.integers(1, 3), st.integers(1, 4)).map(
        lambda p: AttrRef(*p)
    ),
    st.sampled_from(["x", "y", "z"]).map(Var),
)

_fun_names = st.sampled_from(["P", "Q", "MEMBER", "AND", "OR", "LIST",
                              "SET"])


def _terms(max_depth=3):
    return st.recursive(
        _atoms,
        lambda children: st.one_of(
            st.builds(
                lambda name, args: mk_fun(name, args),
                _fun_names,
                st.lists(children, min_size=1, max_size=3),
            ),
            st.builds(
                lambda left, right: mk_fun("=", [left, right]),
                children, children,
            ),
        ),
        max_leaves=12,
    )


_ground_terms = st.recursive(
    st.one_of(
        st.integers(-50, 50).map(num),
        st.sampled_from("abc").map(string),
    ),
    lambda children: st.builds(
        lambda name, args: mk_fun(name, args),
        st.sampled_from(["P", "Q", "LIST", "SET", "AND", "OR"]),
        st.lists(children, min_size=1, max_size=3),
    ),
    max_leaves=10,
)


# ---------------------------------------------------------------------------
# constructor invariants
# ---------------------------------------------------------------------------

class TestConstructorInvariants:
    @given(_terms())
    @settings(max_examples=200)
    def test_printer_parser_roundtrip(self, term):
        assert parse_term(term_to_str(term)) == term

    @given(_terms())
    def test_hash_consistent_with_equality(self, term):
        clone = parse_term(term_to_str(term))
        assert hash(clone) == hash(term)

    @given(st.lists(_terms(), min_size=0, max_size=5))
    def test_conj_idempotent(self, parts):
        once = conj(parts)
        twice = conj(conjuncts(once))
        assert once == twice

    @given(st.lists(_terms(), min_size=2, max_size=5))
    def test_conj_order_insensitive(self, parts):
        assert conj(parts) == conj(list(reversed(parts)))

    @given(st.lists(_terms(), min_size=1, max_size=4))
    def test_and_never_nested(self, parts):
        built = conj(parts + [conj(parts)])
        for sub in walk(built):
            if isinstance(sub, Fun) and sub.name == "AND":
                assert all(
                    not (isinstance(a, Fun) and a.name == "AND")
                    for a in sub.args
                )

    @given(_terms(), _terms())
    def test_sort_key_total(self, a, b):
        ka, kb = term_sort_key(a), term_sort_key(b)
        assert (ka < kb) or (kb < ka) or (ka == kb)
        if a == b:
            assert ka == kb


class TestTraversalInvariants:
    @given(_terms())
    def test_subterm_paths_resolve(self, term):
        for path, sub in subterms(term):
            probe = term
            for index in path:
                probe = probe.args[index]
            assert probe == sub

    @given(_terms())
    def test_replace_with_self_at_any_path_is_stable(self, term):
        for path, sub in subterms(term):
            assert replace_at(term, path, sub) == term

    @given(_terms())
    def test_term_size_positive(self, term):
        assert term_size(term) >= 1


# ---------------------------------------------------------------------------
# match / instantiate laws
# ---------------------------------------------------------------------------

class TestMatchingLaws:
    @given(_ground_terms)
    def test_everything_matches_itself(self, term):
        assert match_first(term, term) == {}

    @given(_ground_terms)
    def test_variable_matches_and_instantiates_back(self, term):
        binding = match_first(Var("x"), term)
        assert binding is not None
        assert instantiate(Var("x"), binding) == term

    @given(_ground_terms)
    @settings(max_examples=100)
    def test_match_then_instantiate_reproduces_subject(self, term):
        # P(x, term) against P(term, term): instantiation of the
        # pattern under any returned binding rebuilds the subject
        pattern = mk_fun("P", [Var("x"), term])
        subject = mk_fun("P", [term, term])
        for binding in match(pattern, subject):
            assert instantiate(pattern, binding) == subject

    @given(_ground_terms, _ground_terms)
    @settings(max_examples=100)
    def test_match_is_syntactic_on_ground_terms(self, a, b):
        if a == b:
            assert match_first(a, b) is not None
        else:
            assert match_first(a, b) is None


class TestCollVarLaws:
    @given(st.lists(_ground_terms, min_size=0, max_size=4))
    @settings(max_examples=100)
    def test_seq_splits_cover_the_list(self, items):
        from repro.terms.term import CollVar
        pattern = mk_fun("LIST", [CollVar("a"), CollVar("b")])
        subject = mk_fun("LIST", items)
        splits = list(match(pattern, subject))
        assert len(splits) == len(items) + 1
        for binding in splits:
            rebuilt = instantiate(pattern, binding)
            assert rebuilt == subject
