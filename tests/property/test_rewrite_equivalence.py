"""Property-based equivalence: rewriting never changes query answers.

The schema/data/query generation lives in :mod:`repro.qa` (shared with
the fuzz harness and the CLI ``.fuzz`` command); hypothesis drives it
through seeds, so shrinking works over the seed space while the
generators stay in one place.  The differential comparison is the
:class:`repro.qa.DifferentialOracle` -- *bag* equality, strictly
stronger than the set comparison this file historically used.

The view / recursion / grouping classes keep their hand-written DDL
(the qa query generator deliberately stays inside plain SELECT
grammar) but draw their random data from the qa row generator.
"""

from random import Random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Database
from repro.qa import DifferentialOracle, random_case
from repro.qa.schema_gen import random_rows

_seeds = st.integers(min_value=0, max_value=2**48)
_small_int = st.integers(1, 6)

# subset sweep off here: the fuzz harness owns the (much slower)
# leave-one-out metamorphic leg; this property is the core one
_ORACLE = DifferentialOracle(antipattern=True, check_subsets=False)


def _edge_db(seed: int) -> Database:
    db = Database()
    db.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
    db.execute("TABLE NODE (Id : NUMERIC, W : NUMERIC)")
    rng = Random(seed)
    for a, b in random_rows(rng, ["INT", "INT"], max_rows=12):
        db.execute(f"INSERT INTO EDGE VALUES ({a}, {b})")
    for a, b in random_rows(rng, ["INT", "INT"], max_rows=8):
        db.execute(f"INSERT INTO NODE VALUES ({a}, {b})")
    return db


class TestGeneratedCaseEquivalence:
    @given(_seeds)
    @settings(max_examples=60, deadline=None)
    def test_rewritten_matches_unrewritten(self, seed):
        case, __spec = random_case(Random(seed))
        divergence = _ORACLE.check(case)
        assert divergence is None, str(divergence)


class TestViewEquivalence:
    @given(_seeds, _small_int)
    @settings(max_examples=40, deadline=None)
    def test_view_stacking(self, seed, k):
        db = _edge_db(seed)
        db.execute("""
        CREATE VIEW V1 (Src, Dst) AS
          SELECT Src, Dst FROM EDGE WHERE Src > 1;
        CREATE VIEW V2 (Src, Dst) AS
          SELECT Src, Dst FROM V1 WHERE Dst < 6
        """)
        query = f"SELECT Src FROM V2 WHERE Dst = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)

    @given(_seeds, _small_int)
    @settings(max_examples=40, deadline=None)
    def test_union_views(self, seed, k):
        db = _edge_db(seed)
        db.execute("""
        CREATE VIEW BOTH_WAYS (A, B) AS
          SELECT Src, Dst FROM EDGE
          UNION
          SELECT Dst, Src FROM EDGE
        """)
        query = f"SELECT B FROM BOTH_WAYS WHERE A = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)


class TestRecursiveEquivalence:
    @given(_seeds, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_reachability_bound_first(self, seed, k):
        db = _edge_db(seed)
        db.execute("""
        CREATE VIEW REACH (Src, Dst) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
        """)
        query = f"SELECT Dst FROM REACH WHERE Src = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)

    @given(_seeds, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_nonlinear_better_than_style(self, seed, k):
        db = _edge_db(seed)
        db.execute("""
        CREATE VIEW BT (A, B) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT B1.A, B2.B FROM BT B1, BT B2 WHERE B1.B = B2.A )
        """)
        query = f"SELECT A FROM BT WHERE B = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)


class TestGroupingEquivalence:
    @given(_seeds, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_nest_under_selection(self, seed, k):
        db = _edge_db(seed)
        db.execute("""
        CREATE VIEW FANOUT (Src, Dsts) AS
        SELECT Src, MakeSet(Dst) FROM EDGE GROUP BY Src
        """)
        query = f"SELECT Dsts FROM FANOUT WHERE Src = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)

    @given(_seeds, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_count_under_selection(self, seed, k):
        db = _edge_db(seed)
        db.execute("""
        CREATE VIEW FAN (Src, N) AS
        SELECT Src, COUNT(Dst) FROM EDGE GROUP BY Src
        """)
        query = f"SELECT N FROM FAN WHERE Src > {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)
