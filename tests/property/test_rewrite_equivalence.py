"""Property-based equivalence: rewriting never changes query answers.

Random schemas, data and qualifications are generated; the optimized
plan must produce the same row set as the unoptimized one.  This is the
library's central soundness property.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Database


def _build_db(edge_rows, node_rows):
    db = Database()
    db.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
    db.execute("TABLE NODE (Id : NUMERIC, W : NUMERIC)")
    for a, b in edge_rows:
        db.execute(f"INSERT INTO EDGE VALUES ({a}, {b})")
    for a, b in node_rows:
        db.execute(f"INSERT INTO NODE VALUES ({a}, {b})")
    return db


_small_int = st.integers(1, 6)
_edges = st.lists(st.tuples(_small_int, _small_int), min_size=0,
                  max_size=12)
_nodes = st.lists(st.tuples(_small_int, st.integers(0, 30)), min_size=0,
                  max_size=8)

# random qualification fragments over EDGE (1) and NODE (2)
_conjuncts = st.lists(
    st.sampled_from([
        "Src = {k}", "Dst = {k}", "Src > {k}", "Dst < {k}",
        "Src = Dst", "W > {k}", "Id = {k}", "Src = Id",
        "Src + 1 = Dst", "W = {k} * 2",
    ]),
    min_size=1, max_size=3,
)


class TestSelectEquivalence:
    @given(_edges, _nodes, _conjuncts, _small_int)
    @settings(max_examples=60, deadline=None)
    def test_join_queries(self, edge_rows, node_rows, templates, k):
        db = _build_db(edge_rows, node_rows)
        qual = " AND ".join(t.format(k=k) for t in templates)
        query = (f"SELECT Src, Dst, W FROM EDGE, NODE "
                 f"WHERE {qual}")
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)

    @given(_edges, _small_int)
    @settings(max_examples=40, deadline=None)
    def test_view_stacking(self, edge_rows, k):
        db = _build_db(edge_rows, [])
        db.execute(f"""
        CREATE VIEW V1 (Src, Dst) AS
          SELECT Src, Dst FROM EDGE WHERE Src > 1;
        CREATE VIEW V2 (Src, Dst) AS
          SELECT Src, Dst FROM V1 WHERE Dst < 6
        """)
        query = f"SELECT Src FROM V2 WHERE Dst = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)

    @given(_edges, _small_int)
    @settings(max_examples=40, deadline=None)
    def test_union_views(self, edge_rows, k):
        db = _build_db(edge_rows, [])
        db.execute("""
        CREATE VIEW BOTH_WAYS (A, B) AS
          SELECT Src, Dst FROM EDGE
          UNION
          SELECT Dst, Src FROM EDGE
        """)
        query = f"SELECT B FROM BOTH_WAYS WHERE A = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)


class TestRecursiveEquivalence:
    @given(_edges, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_reachability_bound_first(self, edge_rows, k):
        db = _build_db(edge_rows, [])
        db.execute("""
        CREATE VIEW REACH (Src, Dst) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
        """)
        query = f"SELECT Dst FROM REACH WHERE Src = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)

    @given(_edges, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_nonlinear_better_than_style(self, edge_rows, k):
        db = _build_db(edge_rows, [])
        db.execute("""
        CREATE VIEW BT (A, B) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT B1.A, B2.B FROM BT B1, BT B2 WHERE B1.B = B2.A )
        """)
        query = f"SELECT A FROM BT WHERE B = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)


class TestGroupingEquivalence:
    @given(_edges, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_nest_under_selection(self, edge_rows, k):
        db = _build_db(edge_rows, [])
        db.execute("""
        CREATE VIEW FANOUT (Src, Dsts) AS
        SELECT Src, MakeSet(Dst) FROM EDGE GROUP BY Src
        """)
        query = f"SELECT Dsts FROM FANOUT WHERE Src = {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)

    @given(_edges, _small_int)
    @settings(max_examples=30, deadline=None)
    def test_count_under_selection(self, edge_rows, k):
        db = _build_db(edge_rows, [])
        db.execute("""
        CREATE VIEW FAN (Src, N) AS
        SELECT Src, COUNT(Dst) FROM EDGE GROUP BY Src
        """)
        query = f"SELECT N FROM FAN WHERE Src > {k}"
        assert set(db.query(query, rewrite=True).rows) == \
            set(db.query(query, rewrite=False).rows)
