"""Parser robustness: arbitrary input never crashes with anything but
a library error (ParseError et al.)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import ReproError
from repro.esql.parser import parse_script
from repro.terms.parser import parse_rule_text, parse_term

_junk = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=80,
)

_fragments = st.lists(
    st.sampled_from([
        "SELECT", "FROM", "WHERE", "(", ")", ",", ";", "=", "*",
        "T", "A", "1", "'x'", "AND", "OR", "NOT", "GROUP", "BY",
        "UNION", "IN", "EXISTS", "INSERT", "INTO", "VALUES",
        "CREATE", "VIEW", "TABLE", "TYPE", "SET", "OF",
    ]),
    max_size=15,
).map(" ".join)


class TestEsqlParserFuzz:
    @given(_junk)
    @settings(max_examples=200, deadline=None)
    def test_random_text(self, text):
        try:
            parse_script(text)
        except ReproError:
            pass  # the only acceptable failure mode

    @given(_fragments)
    @settings(max_examples=200, deadline=None)
    def test_keyword_soup(self, text):
        try:
            parse_script(text)
        except ReproError:
            pass


class TestRuleParserFuzz:
    @given(_junk)
    @settings(max_examples=200, deadline=None)
    def test_random_term_text(self, text):
        try:
            parse_term(text)
        except ReproError:
            pass

    @given(_junk)
    @settings(max_examples=200, deadline=None)
    def test_random_rule_text(self, text):
        try:
            parse_rule_text(text)
        except ReproError:
            pass

    @given(st.lists(st.sampled_from(
        ["P(x)", "-->", "/", "ISA(x, T)", ",", "x*", "AND", "F(x)",
         "SEARCH", "(", ")", "1", "'s'"]
    ), max_size=12).map(" ".join))
    @settings(max_examples=200, deadline=None)
    def test_rule_fragment_soup(self, text):
        try:
            parse_rule_text(text)
        except ReproError:
            pass
