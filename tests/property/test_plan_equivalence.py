"""Plan-level soundness net: random LERA plans survive the rewriter.

The plan generator lives in :mod:`repro.qa.plan_gen` (shared with the
fuzz subsystem); hypothesis drives it through seeds so shrinking works
over the seed space.  Random width-2 plans (searches, unions,
differences, intersections, semi/antijoins, nests under unnests) over
two base tables must keep their evaluated *row set* through the full
standard rewriter -- the widest net against unsound rules.

Set comparison is deliberate here: plan-level identities such as
``unnest_nest`` (UNNEST over a freshly built SET collection) are
set-semantics identities by design, so bag equality does not hold for
arbitrary plans.  Bag-strict checking of the end-to-end ESQL pipeline
is the qa oracle's job.
"""

from random import Random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.rewriter import QueryRewriter
from repro.engine.evaluate import evaluate
from repro.qa.plan_gen import plan_catalog, random_plan

_CATALOG = plan_catalog()
_REWRITER = QueryRewriter(_CATALOG)

_plans = st.integers(min_value=0, max_value=2**48).map(
    lambda seed: random_plan(Random(seed))
)


class TestRandomPlanEquivalence:
    @given(_plans)
    @settings(max_examples=120, deadline=None)
    def test_rewriter_preserves_row_sets(self, plan):
        rewritten = _REWRITER.rewrite(plan).term
        assert set(evaluate(plan, _CATALOG).rows) == \
            set(evaluate(rewritten, _CATALOG).rows)

    @given(_plans)
    @settings(max_examples=60, deadline=None)
    def test_rewriting_is_stable(self, plan):
        """Rewriting a rewritten plan changes nothing further."""
        once = _REWRITER.rewrite(plan).term
        again = _REWRITER.rewrite(once)
        assert again.term == once
