"""Plan-level soundness net: random LERA plans survive the rewriter.

A recursive strategy builds random width-2 LERA plans (searches,
unions, differences, intersections, semijoins, nests under unnests)
over two base tables; the full standard rewriter must preserve the
evaluated row set of every one of them.  This is the widest net against
unsound rules: any rule firing somewhere it should not shows up here.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.adt.types import NUMERIC
from repro.core.rewriter import QueryRewriter
from repro.engine.catalog import Catalog
from repro.engine.evaluate import evaluate
from repro.lera import ops
from repro.terms.parser import parse_term
from repro.terms.term import AttrRef, TRUE, sym


def _catalog() -> Catalog:
    cat = Catalog()
    cat.define_table("P", [("A", NUMERIC), ("B", NUMERIC)])
    cat.define_table("Q", [("A", NUMERIC), ("B", NUMERIC)])
    cat.insert_many("P", [(i % 4, (i * 3) % 5) for i in range(8)])
    cat.insert_many("Q", [(i % 5, (i * 2) % 4) for i in range(7)])
    return cat


_CATALOG = _catalog()
_REWRITER = QueryRewriter(_CATALOG)

_quals = st.sampled_from([
    "true", "#1.1 = 1", "#1.1 > 1", "#1.2 <> 2", "#1.1 = #1.2",
    "#1.1 > 1 AND #1.2 < 4", "#1.1 = 1 OR #1.2 = 3",
    "NOT(#1.1 = 2)", "#1.1 > 1 AND #1.1 < 1",
]).map(parse_term)

_join_quals = st.sampled_from([
    "#1.1 = #2.1", "#1.2 = #2.2 AND #1.1 > 0", "#1.1 = #2.2",
]).map(parse_term)

_bases = st.sampled_from([sym("P"), sym("Q")])


def _search(child, qual):
    return ops.search([child], qual, [AttrRef(1, 1), AttrRef(1, 2)])


def _nest_unnest(child):
    nested = ops.nest(child, [AttrRef(1, 2)], "Bs", kind="SET")
    return ops.unnest(nested, AttrRef(1, 2))


# width-2 plans all the way down
_plans = st.recursive(
    _bases,
    lambda children: st.one_of(
        st.builds(_search, children, _quals),
        st.builds(lambda a, b: ops.union([a, b]), children, children),
        st.builds(ops.difference, children, children),
        st.builds(lambda a, b: ops.intersection([a, b]),
                  children, children),
        st.builds(lambda a, b, q: ops.semijoin(a, b, q),
                  children, children, _join_quals),
        st.builds(lambda a, b, q: ops.antijoin(a, b, q),
                  children, children, _join_quals),
        st.builds(_nest_unnest, children),
        st.builds(
            lambda a, b, q: ops.search(
                [a, b], q, [AttrRef(1, 1), AttrRef(2, 2)]
            ),
            children, children, _join_quals,
        ),
    ),
    max_leaves=6,
)


class TestRandomPlanEquivalence:
    @given(_plans)
    @settings(max_examples=120, deadline=None)
    def test_rewriter_preserves_row_sets(self, plan):
        rewritten = _REWRITER.rewrite(plan).term
        assert set(evaluate(plan, _CATALOG).rows) == \
            set(evaluate(rewritten, _CATALOG).rows)

    @given(_plans)
    @settings(max_examples=60, deadline=None)
    def test_rewriting_is_stable(self, plan):
        """Rewriting a rewritten plan changes nothing further."""
        once = _REWRITER.rewrite(plan).term
        again = _REWRITER.rewrite(once)
        assert again.term == once
