"""Property tests: the lifecycle memory accountant is trustworthy.

Three laws, over random reserve/release interleavings:

* ``current`` never goes negative and always equals the running sum
  of reservations minus releases;
* ``peak`` is monotone non-decreasing and is exactly the running
  maximum of ``current``;
* a governed statement is *zero-balanced*: however evaluation ends --
  completion, budget trip, cancellation -- every reserved byte is
  released by the time the context retires.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Database
from repro.errors import BudgetExceeded
from repro.lifecycle import MemoryAccountant, QueryContext

# an op is (kind, amount): reserve always; release takes what it can
_OPS = st.lists(
    st.tuples(st.sampled_from(["reserve", "release"]),
              st.integers(0, 1 << 20)),
    max_size=200,
)


class TestAccountantLaws:
    @given(ops=_OPS)
    def test_current_is_the_running_sum(self, ops):
        accountant = MemoryAccountant()
        expected = 0
        for kind, amount in ops:
            if kind == "reserve":
                accountant.reserve(amount)
                expected += amount
            else:
                take = min(amount, expected)
                accountant.release(take)
                expected -= take
            assert accountant.current == expected
            assert accountant.current >= 0

    @given(ops=_OPS)
    def test_peak_is_the_running_maximum(self, ops):
        accountant = MemoryAccountant()
        current = peak_seen = last_peak = 0
        for kind, amount in ops:
            if kind == "reserve":
                accountant.reserve(amount)
                current += amount
            else:
                take = min(amount, current)
                accountant.release(take)
                current -= take
            peak_seen = max(peak_seen, current)
            assert accountant.peak == peak_seen
            assert accountant.peak >= last_peak  # monotone
            last_peak = accountant.peak

    @given(ops=_OPS)
    def test_release_all_zero_balances(self, ops):
        accountant = MemoryAccountant()
        held = 0
        for kind, amount in ops:
            if kind == "reserve":
                accountant.reserve(amount)
                held += amount
            else:
                take = min(amount, held)
                accountant.release(take)
                held -= take
        assert accountant.release_all() == held
        assert accountant.current == 0

    @given(reservations=st.lists(st.integers(0, 1 << 16), max_size=50),
           budget=st.integers(1, 1 << 12))
    def test_budgeted_context_stays_balanced_past_the_trip(
            self, reservations, budget):
        # the tripping reservation still counts, so a symmetric
        # release in a finally block always balances
        ctx = QueryContext(memory_budget=budget)
        reserved = 0
        for nbytes in reservations:
            try:
                ctx.reserve(nbytes)
            except BudgetExceeded:
                reserved += nbytes
                break
            reserved += nbytes
        assert ctx.memory.current == reserved
        ctx.release(reserved)
        assert ctx.memory.current == 0


class TestGovernedStatementsZeroBalance:
    @settings(max_examples=20, deadline=None)
    @given(rows=st.integers(1, 40),
           row_budget=st.integers(1, 200) | st.none(),
           degrade=st.booleans())
    def test_every_outcome_releases_everything(self, rows, row_budget,
                                               degrade):
        db = Database()
        db.execute("TABLE T (A : NUMERIC, B : NUMERIC)")
        values = ", ".join(f"({i}, {i})" for i in range(rows))
        db.execute(f"INSERT INTO T VALUES {values}")
        try:
            db.query("SELECT A, B FROM T WHERE A >= 0",
                     row_budget=row_budget, degrade=degrade,
                     memory_budget=1 << 30)
        except BudgetExceeded:
            pass
        retired = db.lifecycle.recent()[-1]
        assert retired.memory.current == 0
        assert retired.memory.peak >= 0
