"""Integrity-constraint soundness: adding constraints that the stored
data satisfies never changes any query's answers.

Random data is generated *within* the declared domains, random
selections run with the semantic block enabled and disabled, and the
row sets must match.  (An inconsistent database would void the
guarantee -- constraint addition assumes constraints hold, which insert
validation enforces for enumerations.)
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Database


def build_db(rows):
    db = Database()
    db.execute("""
    TYPE Grade ENUMERATION OF ('a', 'b', 'c');
    TABLE ITEM (Id : NUMERIC, G : Grade, V : NUMERIC)
    """)
    db.add_integrity_constraint(
        "ic_grade: F(x) / ISA(x, Grade) --> "
        "F(x) AND MEMBER(x, MAKESET('a', 'b', 'c')) /"
    )
    db.add_integrity_constraint(
        "ic_value: F(x) / ISA(x, NUMERIC) --> F(x) AND x >= 0 /"
    )
    for i, (grade, value) in enumerate(rows):
        db.execute(f"INSERT INTO ITEM VALUES ({i}, '{grade}', {value})")
    return db


_rows = st.lists(
    st.tuples(st.sampled_from("abc"), st.integers(0, 30)),
    min_size=0, max_size=10,
)

_filters = st.sampled_from([
    "G = 'a'", "G = 'b' AND V > 5", "G <> 'c'", "V > 10 OR G = 'a'",
    "V = 7", "NOT(G = 'b')", "V > 2 AND V < 20",
    "G = 'z'",          # impossible: pruned by the constraint
    "V < 0",            # impossible: contradicts ic_value
])


class TestConstraintSoundness:
    @given(_rows, _filters)
    @settings(max_examples=60, deadline=None)
    def test_semantic_block_preserves_answers(self, rows, filter_text):
        db = build_db(rows)
        query = f"SELECT Id FROM ITEM WHERE {filter_text}"
        with_semantics = set(db.query(query, rewrite=True).rows)
        without = set(db.query(query, rewrite=False).rows)
        assert with_semantics == without

    @given(_rows)
    @settings(max_examples=30, deadline=None)
    def test_impossible_filters_never_scan(self, rows):
        db = build_db(rows)
        for impossible in ("G = 'z'", "V < 0"):
            __, stats, ___ = db.query_with_stats(
                f"SELECT Id FROM ITEM WHERE {impossible}"
            )
            assert stats.tuples_scanned == 0
