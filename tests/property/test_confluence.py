"""Confluence-flavoured properties of the rule library.

Design choice 1 in DESIGN.md: the engine applies the first matching
rule at the outermost position, so rule *order* inside a block and
enumeration order of collection-variable splits could in principle
steer the result.  For the simplification library the result must not
depend on either: random qualifications simplified under shuffled rule
orders reach the same normal form, and simplification is idempotent.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import evaluate
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.rule import RuleContext
from repro.rules.semantic import simplification_rules
from repro.terms.parser import parse_term
from repro.terms.printer import term_to_str
from repro.terms.term import mk_fun


_CATALOG = Catalog()
_CATALOG.define_table("R", [("A", NUMERIC), ("B", NUMERIC)])
_CATALOG.insert_many("R", [(i, (i * 7) % 5) for i in range(9)])


# random qualification fragments over R
_atoms = st.sampled_from([
    "#1.1 = 1", "#1.1 > 2", "#1.2 >= #1.1", "#1.1 <> 3",
    "#1.2 = #1.1", "#1.1 > #1.2", "2 > 1", "1 > 2", "true", "false",
    "#1.1 = 2 + 1",
]).map(parse_term)

_quals = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.builds(lambda parts: mk_fun("AND", parts),
                  st.lists(children, min_size=2, max_size=3)),
        st.builds(lambda parts: mk_fun("OR", parts),
                  st.lists(children, min_size=2, max_size=3)),
        st.builds(lambda inner: mk_fun("NOT", [inner]), children),
    ),
    max_leaves=8,
)


def _simplify(qual, rules):
    term = mk_fun("SEARCH", [
        parse_term("LIST(R)"), qual, parse_term("LIST(#1.1)"),
    ])
    engine = RewriteEngine(Seq([Block("simplify", rules)]))
    return engine.rewrite(term, RuleContext(catalog=_CATALOG)).term


class TestSimplificationConfluence:
    @given(_quals, st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_rule_order_does_not_matter(self, qual, seed):
        base = simplification_rules()
        shuffled = list(base)
        random.Random(seed).shuffle(shuffled)
        assert _simplify(qual, base) == _simplify(qual, shuffled)

    @given(_quals)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, qual):
        """Simplifying an already-simplified plan changes nothing."""
        rules = simplification_rules()
        result = _simplify(qual, rules)
        engine = RewriteEngine(Seq([Block("simplify", rules)]))
        again = engine.rewrite(result, RuleContext(catalog=_CATALOG))
        assert again.term == result
        assert again.applications == 0

    @given(_quals)
    @settings(max_examples=60, deadline=None)
    def test_simplification_preserves_answers(self, qual):
        term = mk_fun("SEARCH", [
            parse_term("LIST(R)"), qual, parse_term("LIST(#1.1)"),
        ])
        simplified = _simplify(qual, simplification_rules())
        assert set(evaluate(term, _CATALOG).rows) == \
            set(evaluate(simplified, _CATALOG).rows)

    @given(_quals)
    @settings(max_examples=60, deadline=None)
    def test_never_grows(self, qual):
        from repro.terms.term import term_size
        term = mk_fun("SEARCH", [
            parse_term("LIST(R)"), qual, parse_term("LIST(#1.1)"),
        ])
        simplified = _simplify(qual, simplification_rules())
        assert term_size(simplified) <= term_size(term)
