"""Model-based testing: the engine against a plain-Python reference.

Random sequences of INSERT / DELETE / UPDATE / SELECT run both against
the Database and against a naive list-of-tuples model; results must
agree at every step.  This guards the whole stack (parser, translator,
optimizer, evaluator) against state-dependent regressions.
"""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro import Database


class EngineModelMachine(RuleBasedStateMachine):
    """INSERT/DELETE/UPDATE against Database vs a Python list."""

    def __init__(self):
        super().__init__()
        self.db = Database()
        self.db.execute(
            "TABLE T (A : NUMERIC, B : NUMERIC, C : NUMERIC)"
        )
        self.model: list[tuple] = []

    @rule(a=st.integers(0, 9), b=st.integers(0, 9), c=st.integers(0, 9))
    def insert(self, a, b, c):
        self.db.execute(f"INSERT INTO T VALUES ({a}, {b}, {c})")
        self.model.append((a, b, c))

    @rule(k=st.integers(0, 9))
    def delete_where_a(self, k):
        self.db.execute(f"DELETE FROM T WHERE A = {k}")
        self.model = [r for r in self.model if r[0] != k]

    @rule(k=st.integers(0, 9))
    def delete_where_b_greater(self, k):
        self.db.execute(f"DELETE FROM T WHERE B > {k}")
        self.model = [r for r in self.model if not r[1] > k]

    @rule(k=st.integers(0, 9), v=st.integers(0, 9))
    def update_c(self, k, v):
        self.db.execute(f"UPDATE T SET C = {v} WHERE A = {k}")
        self.model = [
            (r[0], r[1], v) if r[0] == k else r for r in self.model
        ]

    @rule(k=st.integers(0, 9))
    def update_b_arith(self, k):
        self.db.execute(f"UPDATE T SET B = B + 1 WHERE C = {k}")
        self.model = [
            (r[0], r[1] + 1, r[2]) if r[2] == k else r
            for r in self.model
        ]

    @invariant()
    def full_scan_agrees(self):
        rows = self.db.query("SELECT A, B, C FROM T").rows
        assert sorted(rows) == sorted(self.model)

    @invariant()
    def filtered_queries_agree(self):
        rows = self.db.query("SELECT A FROM T WHERE B > 4 AND C < 8").rows
        expected = [(r[0],) for r in self.model if r[1] > 4 and r[2] < 8]
        assert sorted(rows) == sorted(expected)

    @invariant()
    def join_agrees(self):
        rows = self.db.query(
            "SELECT X.A, Y.C FROM T X, T Y WHERE X.B = Y.B"
        ).rows
        expected = [
            (x[0], y[2])
            for x in self.model for y in self.model if x[1] == y[1]
        ]
        assert sorted(rows) == sorted(expected)

    @invariant()
    def aggregation_agrees(self):
        rows = self.db.query(
            "SELECT A, COUNT(B) FROM T GROUP BY A"
        ).rows
        counts: dict = {}
        for r in self.model:
            counts[r[0]] = counts.get(r[0], 0) + 1
        assert dict(rows) == counts


EngineModelTest = EngineModelMachine.TestCase
EngineModelTest.settings = settings(
    max_examples=20, stateful_step_count=12, deadline=None,
)
