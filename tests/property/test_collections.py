"""Property-based tests on collection ADT algebraic laws (Figure 1)."""

import hypothesis.strategies as st
from hypothesis import given

from repro.adt.functions import default_registry
from repro.adt.types import TypeSystem
from repro.adt.values import (BagValue, ListValue, ObjectStore, SetValue)


class _Ctx:
    objects = ObjectStore()
    type_system = TypeSystem()


_REG = default_registry()


def call(name, *args):
    return _REG.call(name, list(args), _Ctx())


_elems = st.lists(st.integers(-20, 20), max_size=10)


class TestSetLaws:
    @given(_elems, _elems)
    def test_union_commutative(self, a, b):
        x, y = SetValue(a), SetValue(b)
        assert call("UNION", x, y) == call("UNION", y, x)

    @given(_elems, _elems, _elems)
    def test_union_associative(self, a, b, c):
        x, y, z = SetValue(a), SetValue(b), SetValue(c)
        assert call("UNION", call("UNION", x, y), z) == \
            call("UNION", x, call("UNION", y, z))

    @given(_elems)
    def test_union_idempotent(self, a):
        x = SetValue(a)
        assert call("UNION", x, x) == x

    @given(_elems, _elems)
    def test_intersection_commutative(self, a, b):
        x, y = SetValue(a), SetValue(b)
        assert call("INTERSECTION", x, y) == call("INTERSECTION", y, x)

    @given(_elems, _elems)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        x, y = SetValue(a), SetValue(b)
        diff = call("DIFFERENCE", x, y)
        assert all(e not in y for e in diff)

    @given(_elems, _elems)
    def test_inclusion_of_intersection(self, a, b):
        x, y = SetValue(a), SetValue(b)
        inter = call("INTERSECTION", x, y)
        assert call("INCLUDE", x, inter)
        assert call("INCLUDE", y, inter)

    @given(_elems, st.integers(-20, 20))
    def test_insert_then_member(self, a, e):
        x = SetValue(a)
        assert call("MEMBER", e, call("INSERT", e, x))

    @given(_elems, st.integers(-20, 20))
    def test_remove_then_not_member(self, a, e):
        x = SetValue(a)
        assert not call("MEMBER", e, call("REMOVE", e, x))


class TestConversionLaws:
    @given(_elems)
    def test_bag_to_set_loses_only_multiplicity(self, a):
        bag = BagValue(a)
        as_set = call("CONVERT", bag, "SET")
        assert set(as_set.elements) == set(bag.elements)

    @given(_elems)
    def test_list_to_bag_preserves_count(self, a):
        lst = ListValue(a)
        assert call("COUNT", call("CONVERT", lst, "BAG")) == len(a)

    @given(_elems)
    def test_set_roundtrip_through_list(self, a):
        s = SetValue(a)
        back = call("CONVERT", call("CONVERT", s, "LIST"), "SET")
        assert back == s


class TestListLaws:
    @given(_elems, _elems)
    def test_concat_length(self, a, b):
        out = call("CONCAT", ListValue(a), ListValue(b))
        assert len(out) == len(a) + len(b)

    @given(_elems, st.integers(-20, 20))
    def test_append_last(self, a, e):
        out = call("APPEND", ListValue(a), e)
        assert call("LAST", out) == e

    @given(st.lists(st.integers(), min_size=1, max_size=10))
    def test_first_last_consistent_with_at(self, a):
        lst = ListValue(a)
        assert call("FIRST", lst) == call("AT", lst, 0)
        assert call("LAST", lst) == call("AT", lst, len(a) - 1)


class TestAggregateLaws:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=10))
    def test_min_le_avg_le_max(self, a):
        bag = BagValue(a)
        assert call("MIN", bag) <= call("AVG", bag) <= call("MAX", bag)

    @given(_elems)
    def test_sum_of_empty_parts(self, a):
        bag = BagValue(a)
        assert call("SUM", bag) == sum(a)
