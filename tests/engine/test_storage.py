"""Storage and value-coercion tests."""

import pytest

from repro.adt.types import (BOOLEAN, CHAR, CollectionType, INT, NUMERIC,
                             REAL, TupleType, TypeSystem)
from repro.adt.values import (BagValue, ListValue, ObjectStore, SetValue,
                              TupleValue)
from repro.engine.storage import BaseRelation, coerce_row, coerce_value
from repro.errors import ValueError_
from repro.lera.schema import Schema


@pytest.fixture
def store():
    return ObjectStore()


class TestAtomCoercion:
    def test_int(self, store):
        assert coerce_value(3, INT, store) == 3

    def test_int_rejects_bool(self, store):
        with pytest.raises(ValueError_):
            coerce_value(True, INT, store)

    def test_int_rejects_float(self, store):
        with pytest.raises(ValueError_):
            coerce_value(1.5, INT, store)

    def test_real_widens_int(self, store):
        out = coerce_value(3, REAL, store)
        assert out == 3.0 and isinstance(out, float)

    def test_numeric_keeps_kind(self, store):
        assert coerce_value(3, NUMERIC, store) == 3
        assert coerce_value(3.5, NUMERIC, store) == 3.5

    def test_char(self, store):
        assert coerce_value("abc", CHAR, store) == "abc"
        with pytest.raises(ValueError_):
            coerce_value(5, CHAR, store)

    def test_boolean(self, store):
        assert coerce_value(True, BOOLEAN, store) is True
        with pytest.raises(ValueError_):
            coerce_value(1, BOOLEAN, store)


class TestStructuredCoercion:
    def test_list_from_python_list(self, store):
        t = CollectionType("LIST", INT)
        out = coerce_value([1, 2], t, store)
        assert out == ListValue([1, 2])

    def test_set_from_python_list(self, store):
        t = CollectionType("SET", INT)
        assert coerce_value([1, 1, 2], t, store) == SetValue([1, 2])

    def test_elements_coerced_recursively(self, store):
        t = CollectionType("LIST", REAL)
        out = coerce_value([1, 2], t, store)
        assert all(isinstance(e, float) for e in out)

    def test_element_type_enforced(self, store):
        t = CollectionType("SET", INT)
        with pytest.raises(ValueError_):
            coerce_value(["a"], t, store)

    def test_collection_value_rekinds(self, store):
        t = CollectionType("BAG", INT)
        assert coerce_value(SetValue([1]), t, store) == BagValue([1])

    def test_non_collection_rejected(self, store):
        with pytest.raises(ValueError_):
            coerce_value(5, CollectionType("SET", INT), store)

    def test_tuple_from_dict(self, store):
        t = TupleType("P", [("X", INT), ("Y", INT)])
        out = coerce_value({"X": 1, "Y": 2}, t, store)
        assert out == TupleValue([("X", 1), ("Y", 2)])

    def test_tuple_positional(self, store):
        t = TupleType("P", [("X", INT), ("Y", INT)])
        out = coerce_value((5, 6), t, store)
        assert out["X"] == 5 and out["Y"] == 6

    def test_tuple_wrong_arity(self, store):
        t = TupleType("P", [("X", INT), ("Y", INT)])
        with pytest.raises(ValueError_):
            coerce_value((1,), t, store)

    def test_enumeration_checked(self, store):
        ts = TypeSystem()
        cat = ts.define_enumeration("Category", ["Comedy", "Western"])
        assert coerce_value("Comedy", cat, store) == "Comedy"
        with pytest.raises(ValueError_):
            coerce_value("Cartoon", cat, store)

    def test_object_ref_validated(self, store):
        ts = TypeSystem()
        actor = ts.define_object("Actor", [("S", INT)])
        ref = store.create("Actor", TupleValue({"S": 1}))
        assert coerce_value(ref, actor, store) == ref

    def test_dangling_ref_rejected(self, store):
        from repro.adt.values import ObjectRef
        ts = TypeSystem()
        actor = ts.define_object("Actor", [("S", INT)])
        with pytest.raises(ValueError_):
            coerce_value(ObjectRef(99, "Actor"), actor, store)

    def test_non_ref_for_object_rejected(self, store):
        ts = TypeSystem()
        actor = ts.define_object("Actor", [("S", INT)])
        with pytest.raises(ValueError_):
            coerce_value(5, actor, store)


class TestBaseRelation:
    def test_insert_and_count(self, store):
        rel = BaseRelation("R", Schema([("A", INT), ("B", CHAR)]))
        rel.insert((1, "x"), store)
        rel.insert_many([(2, "y"), (3, "z")], store)
        assert rel.cardinality == 3
        assert len(rel) == 3

    def test_row_width_checked(self, store):
        rel = BaseRelation("R", Schema([("A", INT)]))
        with pytest.raises(ValueError_):
            rel.insert((1, 2), store)

    def test_coerce_row(self, store):
        schema = Schema([("A", INT), ("B", CollectionType("SET", INT))])
        row = coerce_row((1, [2, 2, 3]), schema, store)
        assert row == (1, SetValue([2, 3]))

    def test_clear(self, store):
        rel = BaseRelation("R", Schema([("A", INT)]))
        rel.insert((1,), store)
        rel.clear()
        assert rel.cardinality == 0


class TestKeyedAtomicity:
    """Regression tests: batch DML must stage-then-swap, never leave a
    partially applied batch or a corrupted key index behind."""

    @pytest.fixture
    def rel(self, store):
        r = BaseRelation(
            "R", Schema([("A", INT), ("B", CHAR)]), key=(1,)
        )
        r.insert_many([(1, "x"), (2, "y")], store)
        return r

    def test_insert_many_bad_row_applies_nothing(self, rel, store):
        with pytest.raises(ValueError_):
            rel.insert_many([(3, "ok"), (4, 7)], store)
        assert rel.rows == [(1, "x"), (2, "y")]
        assert rel._key_index == {(1,), (2,)}

    def test_insert_many_existing_key_applies_nothing(self, rel, store):
        with pytest.raises(ValueError_):
            rel.insert_many([(3, "a"), (1, "dup")], store)
        assert rel.rows == [(1, "x"), (2, "y")]
        assert rel._key_index == {(1,), (2,)}

    def test_insert_many_intra_batch_duplicate(self, rel, store):
        with pytest.raises(ValueError_):
            rel.insert_many([(3, "a"), (3, "b")], store)
        assert rel.rows == [(1, "x"), (2, "y")]
        assert (3,) not in rel._key_index

    def test_rebuild_key_index_violation_preserves_index(self, rel):
        rel.rows.append(rel.rows[0])  # simulate a buggy caller
        before = set(rel._key_index)
        with pytest.raises(ValueError_):
            rel.rebuild_key_index()
        assert rel._key_index == before

    def test_rebuild_key_index_recomputes(self, rel):
        rel.rows.pop()  # caller dropped a row behind the index's back
        rel.rebuild_key_index()
        assert rel._key_index == {(1,)}

    def test_replace_rows_swaps_atomically(self, rel):
        rel.replace_rows([(5, "a"), (6, "b")])
        assert rel.rows == [(5, "a"), (6, "b")]
        assert rel._key_index == {(5,), (6,)}

    def test_replace_rows_violation_changes_nothing(self, rel):
        with pytest.raises(ValueError_):
            rel.replace_rows([(5, "a"), (5, "b")])
        assert rel.rows == [(1, "x"), (2, "y")]
        assert rel._key_index == {(1,), (2,)}

    def test_replace_rows_on_unkeyed_relation(self, store):
        rel = BaseRelation("R", Schema([("A", INT)]))
        rel.insert((1,), store)
        rel.replace_rows([(2,), (2,)])  # duplicates fine without a key
        assert rel.rows == [(2,), (2,)]
