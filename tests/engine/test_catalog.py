"""Catalog tests."""

import pytest

from repro.adt.types import CHAR, INT, NUMERIC
from repro.engine.catalog import Catalog, ViewDef
from repro.errors import CatalogError
from repro.lera.schema import Schema
from repro.terms.term import sym


@pytest.fixture
def cat():
    return Catalog()


class TestTables:
    def test_define_and_lookup(self, cat):
        cat.define_table("R", [("A", INT)])
        assert cat.is_table("r")
        assert cat.relation_schema("R").names == ("A",)

    def test_duplicate_rejected(self, cat):
        cat.define_table("R", [("A", INT)])
        with pytest.raises(CatalogError):
            cat.define_table("r", [("B", INT)])

    def test_unknown_table(self, cat):
        with pytest.raises(CatalogError):
            cat.table("NOPE")
        with pytest.raises(CatalogError):
            cat.relation_schema("NOPE")

    def test_insert_and_rows(self, cat):
        cat.define_table("R", [("A", INT)])
        cat.insert("R", (1,))
        cat.insert_many("R", [(2,), (3,)])
        assert [r[0] for r in cat.rows("R")] == [1, 2, 3]

    def test_drop_table(self, cat):
        cat.define_table("R", [("A", INT)])
        cat.drop_table("R")
        assert not cat.is_table("R")
        with pytest.raises(CatalogError):
            cat.drop_table("R")

    def test_relation_names_sorted(self, cat):
        cat.define_table("Z", [("A", INT)])
        cat.define_table("A", [("A", INT)])
        assert cat.relation_names() == ("A", "Z")


class TestViews:
    def test_define_view(self, cat):
        cat.define_table("R", [("A", INT)])
        view = ViewDef("V", sym("R"), Schema([("A", INT)]))
        cat.define_view(view)
        assert cat.is_view("v")
        assert cat.relation_schema("V").names == ("A",)

    def test_view_name_clash_with_table(self, cat):
        cat.define_table("R", [("A", INT)])
        with pytest.raises(CatalogError):
            cat.define_view(ViewDef("R", sym("R"), Schema([("A", INT)])))

    def test_drop_view(self, cat):
        cat.define_view(ViewDef("V", sym("R"), Schema([("A", INT)])))
        cat.drop_view("V")
        assert cat.view("V") is None
        with pytest.raises(CatalogError):
            cat.drop_view("V")


class TestObjects:
    def test_new_object(self, cat):
        cat.type_system.define_object("Actor", [("Name", CHAR),
                                                ("Salary", NUMERIC)])
        ref = cat.new_object("Actor", ("Quinn", 100))
        value = cat.objects.value_of(ref)
        assert value["Name"] == "Quinn"

    def test_new_object_requires_object_type(self, cat):
        cat.type_system.define_tuple("Point", [("X", NUMERIC)])
        with pytest.raises(CatalogError):
            cat.new_object("Point", (1,))
