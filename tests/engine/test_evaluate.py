"""Evaluator tests, one group per LERA operator."""

import pytest

from repro.adt.types import CHAR, NUMERIC
from repro.adt.values import SetValue, TupleValue
from repro.engine.catalog import Catalog
from repro.engine.evaluate import Evaluator, evaluate
from repro.engine.stats import EvalStats
from repro.errors import EvaluationError
from repro.lera import ops
from repro.terms.parser import parse_term
from repro.terms.term import AttrRef, FALSE, TRUE, num, string, sym


@pytest.fixture
def cat():
    c = Catalog()
    c.define_table("EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    c.insert_many("EDGE", [(1, 2), (2, 3), (3, 4), (2, 4)])
    c.define_table("NODE", [("Id", NUMERIC), ("Label", CHAR)])
    c.insert_many("NODE", [(1, "a"), (2, "b"), (3, "c"), (4, "d")])
    return c


class TestScan:
    def test_base_relation(self, cat):
        result = evaluate(sym("EDGE"), cat)
        assert len(result) == 4
        assert result.schema.names == ("Src", "Dst")

    def test_unknown_relation(self, cat):
        with pytest.raises(EvaluationError):
            evaluate(sym("NOPE"), cat)

    def test_as_dicts(self, cat):
        result = evaluate(sym("NODE"), cat)
        assert {"Id": 1, "Label": "a"} in result.as_dicts()


class TestSearch:
    def test_selection(self, cat):
        t = ops.search([sym("EDGE")], parse_term("#1.1 = 2"),
                       [AttrRef(1, 2)])
        assert sorted(evaluate(t, cat).rows) == [(3,), (4,)]

    def test_join(self, cat):
        t = ops.search([sym("EDGE"), sym("NODE")],
                       parse_term("#1.2 = #2.1"),
                       [AttrRef(1, 1), AttrRef(2, 2)])
        rows = set(evaluate(t, cat).rows)
        assert (1, "b") in rows and (3, "d") in rows

    def test_constant_false_short_circuits(self, cat):
        stats = EvalStats()
        t = ops.search([sym("EDGE")], FALSE, [AttrRef(1, 1)])
        result = Evaluator(cat, stats=stats).evaluate(t)
        assert len(result) == 0
        assert stats.tuples_scanned == 0  # never touched the data

    def test_eager_conjunct_application(self, cat):
        """A conjunct on the first input prunes before the join loop."""
        stats = EvalStats()
        t = ops.search([sym("EDGE"), sym("NODE")],
                       parse_term("#1.1 = 99 AND #1.2 = #2.1"),
                       [AttrRef(1, 1)])
        Evaluator(cat, stats=stats).evaluate(t)
        assert stats.join_pairs == 0  # nothing survived level 1

    def test_function_call_in_qual(self, cat):
        t = ops.search([sym("NODE")],
                       parse_term("MEMBER(#1.2, MAKESET('a', 'c'))"),
                       [AttrRef(1, 1)])
        assert sorted(evaluate(t, cat).rows) == [(1,), (3,)]

    def test_expression_in_projection(self, cat):
        t = ops.search([sym("EDGE")], TRUE,
                       [parse_term("#1.1 + #1.2")])
        assert (3,) in evaluate(t, cat).rows

    def test_qual_referencing_missing_input(self, cat):
        t = ops.search([sym("EDGE")], parse_term("#3.1 = 1"),
                       [AttrRef(1, 1)])
        with pytest.raises(EvaluationError):
            evaluate(t, cat)


class TestSimpleOperators:
    def test_filter(self, cat):
        t = ops.filter_(sym("EDGE"), parse_term("#1.2 > 3"))
        assert sorted(evaluate(t, cat).rows) == [(2, 4), (3, 4)]

    def test_projection(self, cat):
        t = ops.projection(sym("EDGE"), [AttrRef(1, 1)])
        assert len(evaluate(t, cat)) == 4  # bag semantics keep dupes

    def test_join_operator_concatenates(self, cat):
        t = ops.join([sym("EDGE"), sym("NODE")],
                     parse_term("#1.2 = #2.1"))
        rows = evaluate(t, cat).rows
        assert all(len(r) == 4 for r in rows)

    def test_union_set_semantics(self, cat):
        t = ops.union([sym("EDGE"), sym("EDGE")])
        assert len(evaluate(t, cat)) == 4

    def test_intersection(self, cat):
        some = ops.filter_(sym("EDGE"), parse_term("#1.1 = 2"))
        t = ops.intersection([sym("EDGE"), some])
        assert sorted(evaluate(t, cat).rows) == [(2, 3), (2, 4)]

    def test_difference(self, cat):
        some = ops.filter_(sym("EDGE"), parse_term("#1.1 = 2"))
        t = ops.difference(sym("EDGE"), some)
        assert sorted(evaluate(t, cat).rows) == [(1, 2), (3, 4)]

    def test_values(self, cat):
        t = ops.values_rel([[num(1), string("x")], [num(2), string("y")]])
        assert evaluate(t, cat).rows == [(1, "x"), (2, "y")]


class TestNestUnnest:
    def test_nest_single_attr(self, cat):
        t = ops.nest(sym("EDGE"), [AttrRef(1, 2)], "Dsts", kind="SET")
        rows = dict(evaluate(t, cat).rows)
        assert rows[2] == SetValue([3, 4])

    def test_nest_bag_keeps_duplicates(self, cat):
        cat.insert("EDGE", (2, 3))
        t = ops.nest(sym("EDGE"), [AttrRef(1, 2)], "Dsts", kind="BAG")
        rows = dict(evaluate(t, cat).rows)
        assert len(rows[2]) == 3

    def test_nest_multi_attr_builds_tuples(self, cat):
        t = ops.nest(sym("NODE"), [AttrRef(1, 1), AttrRef(1, 2)],
                     "All", kind="BAG")
        result = evaluate(t, cat)
        (only_row,) = result.rows
        assert TupleValue({"Id": 1, "Label": "a"}) in only_row[0]

    def test_unnest_inverts_nest(self, cat):
        nested = ops.nest(sym("EDGE"), [AttrRef(1, 2)], "D", kind="SET")
        t = ops.unnest(nested, AttrRef(1, 2))
        assert sorted(evaluate(t, cat).rows) == sorted(
            set(cat.rows("EDGE"))
        )

    def test_unnest_non_collection(self, cat):
        t = ops.unnest(sym("EDGE"), AttrRef(1, 1))
        with pytest.raises(EvaluationError):
            evaluate(t, cat)


class TestExpressions:
    def test_arithmetic_and_comparison(self, cat):
        t = ops.search([sym("EDGE")],
                       parse_term("#1.1 * 2 = #1.2 + 0"), [AttrRef(1, 1)])
        assert sorted(evaluate(t, cat).rows) == [(1,), (2,)]

    def test_boolean_connectives_shortcircuit(self, cat):
        t = ops.search([sym("EDGE")],
                       parse_term("#1.1 = 1 OR #1.2 = 4"),
                       [AttrRef(1, 1), AttrRef(1, 2)])
        assert len(evaluate(t, cat)) == 3

    def test_not(self, cat):
        t = ops.search([sym("EDGE")], parse_term("NOT(#1.1 = 2)"),
                       [AttrRef(1, 1)])
        assert sorted(evaluate(t, cat).rows) == [(1,), (3,)]

    def test_bad_attref_in_row(self, cat):
        t = ops.search([sym("EDGE")], parse_term("#1.7 = 1"),
                       [AttrRef(1, 1)])
        with pytest.raises(EvaluationError):
            evaluate(t, cat)


class TestStats:
    def test_scan_counts(self, cat):
        stats = EvalStats()
        Evaluator(cat, stats=stats).evaluate(sym("EDGE"))
        assert stats.tuples_scanned == 4

    def test_join_pairs_counted(self, cat):
        stats = EvalStats()
        t = ops.search([sym("EDGE"), sym("NODE")], TRUE,
                       [AttrRef(1, 1)])
        Evaluator(cat, stats=stats).evaluate(t)
        assert stats.join_pairs == 16

    def test_snapshot_and_merge(self, cat):
        a, b = EvalStats(), EvalStats()
        Evaluator(cat, stats=a).evaluate(sym("EDGE"))
        Evaluator(cat, stats=b).evaluate(sym("EDGE"))
        a.merge(b)
        assert a.snapshot()["tuples_scanned"] == 8
        assert a.total_work == 8
        a.reset()
        assert a.tuples_scanned == 0


class TestCaching:
    def test_identical_subtrees_computed_once(self, cat):
        stats = EvalStats()
        sub = ops.search([sym("EDGE"), sym("NODE")],
                         parse_term("#1.2 = #2.1"),
                         [AttrRef(1, 1), AttrRef(2, 2)])
        t = ops.union([
            ops.search([sub], parse_term("#1.1 = 1"), [AttrRef(1, 1)]),
            ops.search([sub], parse_term("#1.1 = 2"), [AttrRef(1, 1)]),
        ])
        Evaluator(cat, stats=stats).evaluate(t)
        # the inner join scans EDGE exactly once thanks to the cache
        assert stats.join_pairs == 16


class TestHashJoins:
    def test_same_answers(self, cat):
        t = ops.search([sym("EDGE"), sym("NODE")],
                       parse_term("#1.2 = #2.1"),
                       [AttrRef(1, 1), AttrRef(2, 2)])
        nl = evaluate(t, cat)
        hj = Evaluator(cat, hash_joins=True).evaluate(t)
        assert sorted(nl.rows) == sorted(hj.rows)

    def test_fewer_probe_pairs(self, cat):
        stats_nl, stats_hj = EvalStats(), EvalStats()
        t = ops.search([sym("EDGE"), sym("NODE")],
                       parse_term("#1.2 = #2.1"),
                       [AttrRef(1, 1)])
        Evaluator(cat, stats=stats_nl).evaluate(t)
        Evaluator(cat, stats=stats_hj, hash_joins=True).evaluate(t)
        assert stats_hj.join_pairs < stats_nl.join_pairs

    def test_non_equi_join_falls_back(self, cat):
        t = ops.search([sym("EDGE"), sym("NODE")],
                       parse_term("#1.2 > #2.1"),
                       [AttrRef(1, 1), AttrRef(2, 1)])
        nl = evaluate(t, cat)
        hj = Evaluator(cat, hash_joins=True).evaluate(t)
        assert sorted(nl.rows) == sorted(hj.rows)

    def test_three_way_hash_chain(self, cat):
        t = ops.search(
            [sym("EDGE"), sym("NODE"), sym("NODE")],
            parse_term("#1.1 = #2.1 AND #1.2 = #3.1"),
            [AttrRef(2, 2), AttrRef(3, 2)],
        )
        nl = evaluate(t, cat)
        hj = Evaluator(cat, hash_joins=True).evaluate(t)
        assert sorted(nl.rows) == sorted(hj.rows)


class TestDistinct:
    def test_removes_duplicates(self, cat):
        t = ops.distinct(ops.projection(sym("EDGE"), [AttrRef(1, 1)]))
        rows = evaluate(t, cat).rows
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_schema_passthrough(self, cat):
        t = ops.distinct(sym("EDGE"))
        assert evaluate(t, cat).schema.names == ("Src", "Dst")
