"""Database facade tests (execute / query / explain / extensions)."""

import pytest

from repro import Database, EvalStats
from repro.errors import ReproError, TranslationError


@pytest.fixture
def db():
    database = Database()
    database.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
    database.execute("INSERT INTO EDGE VALUES (1, 2), (2, 3), (3, 4)")
    return database


class TestExecute:
    def test_script_returns_query_results(self, db):
        results = db.execute(
            "SELECT Dst FROM EDGE WHERE Src = 1; "
            "SELECT Src FROM EDGE WHERE Dst = 4"
        )
        assert [r.rows for r in results] == [[(2,)], [(3,)]]

    def test_ddl_returns_nothing(self, db):
        assert db.execute("TABLE T2 (A : INT)") == []

    def test_trailing_semicolon_ok(self, db):
        db.execute("TABLE T3 (A : INT);")
        assert db.catalog.is_table("T3")


class TestQuery:
    def test_simple(self, db):
        assert db.query("SELECT Dst FROM EDGE WHERE Src = 2").rows == [(3,)]

    def test_rewrite_toggle_same_answers(self, db):
        q = "SELECT Dst FROM EDGE WHERE Src = 2"
        assert db.query(q, rewrite=True).rows == \
            db.query(q, rewrite=False).rows

    def test_non_query_rejected(self, db):
        with pytest.raises(TranslationError):
            db.query("TABLE X (A : INT)")

    def test_multi_statement_rejected(self, db):
        with pytest.raises(TranslationError):
            db.query("SELECT Src FROM EDGE; SELECT Dst FROM EDGE")

    def test_query_with_stats(self, db):
        result, stats, optimized = db.query_with_stats(
            "SELECT Dst FROM EDGE WHERE Src = 1"
        )
        assert result.rows == [(2,)]
        assert stats.tuples_scanned > 0
        assert optimized.final is not None

    def test_schema_exposed(self, db):
        result = db.query("SELECT Dst AS Target FROM EDGE WHERE Src = 1")
        assert result.schema.names == ("Target",)


class TestExplain:
    def test_explain_contains_plans(self, db):
        text = db.explain("SELECT Dst FROM EDGE WHERE Src = 1")
        assert "plan before rewriting" in text
        assert "plan after rewriting" in text

    def test_explain_verbose_shows_terms(self, db):
        db.execute("""
        CREATE VIEW E2 (Src, Dst) AS
        SELECT E1.Src, E2.Dst FROM EDGE E1, EDGE E2 WHERE E1.Dst = E2.Src
        """)
        text = db.explain("SELECT Dst FROM E2 WHERE Src = 1", verbose=True)
        assert "search_merge" in text


class TestRecursion:
    def test_recursive_view_query(self, db):
        db.execute("""
        CREATE VIEW REACH (Src, Dst) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
        """)
        rows = db.query("SELECT Dst FROM REACH WHERE Src = 1").rows
        assert sorted(rows) == [(2,), (3,), (4,)]

    def test_recursive_view_magic_matches_plain(self, db):
        db.execute("""
        CREATE VIEW REACH (Src, Dst) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
        """)
        q = "SELECT Dst FROM REACH WHERE Src = 2"
        assert sorted(db.query(q, rewrite=True).rows) == \
            sorted(db.query(q, rewrite=False).rows)


class TestExtensionHooks:
    def test_add_integrity_constraint_regenerates(self, db):
        db.execute("TYPE Category ENUMERATION OF ('A', 'B')")
        db.execute("TABLE ITEM (Id : NUMERIC, Cat : Category)")
        db.add_integrity_constraint(
            "ic: F(x) / ISA(x, Category) "
            "--> F(x) AND MEMBER(x, MAKESET('A', 'B')) /"
        )
        opt = db.optimize("SELECT Id FROM ITEM WHERE Cat = 'Z'")
        from repro.terms.printer import term_to_str
        assert "EMPTY" in term_to_str(opt.final)

    def test_install_extension_with_function(self, db):
        from repro import Extension
        from repro.adt.registry import FunctionDef
        ext = Extension("geo").function(
            FunctionDef("DOUBLE", lambda a, c: a[0] * 2, 1)
        )
        db.install(ext)
        rows = db.query("SELECT DOUBLE(Dst) FROM EDGE WHERE Src = 1").rows
        assert rows == [(4,)]

    def test_install_extension_with_rule(self, db):
        from repro import Extension
        ext = Extension("noop").rule(
            "simplify", "plus_zero: x + 0 / --> x /"
        )
        db.install(ext)
        opt = db.optimize("SELECT Dst FROM EDGE WHERE Src + 0 = 1")
        from repro.terms.printer import term_to_str
        assert "+" not in term_to_str(opt.final)

    def test_semantic_limit_zero_disables_semantics(self):
        db = Database(semantic_limit=0)
        db.execute("TYPE Category ENUMERATION OF ('A', 'B')")
        db.execute("TABLE ITEM (Id : NUMERIC, Cat : Category)")
        db.add_integrity_constraint(
            "ic: F(x) / ISA(x, Category) "
            "--> F(x) AND MEMBER(x, MAKESET('A', 'B')) /"
        )
        opt = db.optimize("SELECT Id FROM ITEM WHERE Cat = 'Z'")
        from repro.terms.printer import term_to_str
        assert "false" not in term_to_str(opt.final)


class TestEngineOptions:
    def test_hash_join_database_same_answers(self):
        import random
        rng = random.Random(4)
        rows = [(rng.randint(1, 6), rng.randint(1, 6))
                for __ in range(25)]
        plain = Database()
        hashed = Database(hash_joins=True)
        for d in (plain, hashed):
            d.execute("TABLE E (A : NUMERIC, B : NUMERIC)")
            d.execute("INSERT INTO E VALUES " + ", ".join(
                f"({a}, {b})" for a, b in rows
            ))
        q = "SELECT X.A, Y.B FROM E X, E Y WHERE X.B = Y.A AND X.A > 2"
        assert sorted(plain.query(q).rows) == sorted(hashed.query(q).rows)

    def test_naive_database_same_answers(self):
        for semi in (True, False):
            d = Database(semi_naive=semi)
            d.execute("TABLE E (A : NUMERIC, B : NUMERIC)")
            d.execute("INSERT INTO E VALUES (1, 2), (2, 3)")
            d.execute("""
            CREATE VIEW R (A, B) AS
            ( SELECT A, B FROM E
              UNION
              SELECT R.A, E.B FROM R, E WHERE R.B = E.A )
            """)
            rows = sorted(d.query("SELECT A, B FROM R").rows)
            assert rows == [(1, 2), (1, 3), (2, 3)]
