"""Fixpoint evaluation tests: naive vs semi-naive, linear vs non-linear."""

import pytest

from repro.adt.types import NUMERIC
from repro.engine.catalog import Catalog
from repro.engine.evaluate import Evaluator, evaluate
from repro.engine.stats import EvalStats
from repro.errors import EvaluationError
from repro.lera import ops
from repro.terms.parser import parse_term
from repro.terms.term import AttrRef, sym


def edge_catalog(edges):
    cat = Catalog()
    cat.define_table("EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    cat.insert_many("EDGE", edges)
    return cat


def right_linear_tc():
    return ops.fix("TC", ops.union([
        sym("EDGE"),
        ops.search([sym("EDGE"), sym("TC")], parse_term("#1.2 = #2.1"),
                   [AttrRef(1, 1), AttrRef(2, 2)]),
    ]))


def left_linear_tc():
    return ops.fix("TC", ops.union([
        sym("EDGE"),
        ops.search([sym("TC"), sym("EDGE")], parse_term("#1.2 = #2.1"),
                   [AttrRef(1, 1), AttrRef(2, 2)]),
    ]))


def non_linear_tc():
    return ops.fix("TC", ops.union([
        sym("EDGE"),
        ops.search([sym("TC"), sym("TC")], parse_term("#1.2 = #2.1"),
                   [AttrRef(1, 1), AttrRef(2, 2)]),
    ]))


def expected_closure(edges):
    """All (a, b) with a non-empty path a -> b (cycles give (a, a))."""
    out = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(out):
            for (c, d) in list(out):
                if b == c and (a, d) not in out:
                    out.add((a, d))
                    changed = True
    return out


CHAIN = [(i, i + 1) for i in range(1, 8)]
DIAMOND = [(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)]
CYCLE = [(1, 2), (2, 3), (3, 1)]


class TestCorrectness:
    @pytest.mark.parametrize("edges", [CHAIN, DIAMOND, CYCLE],
                             ids=["chain", "diamond", "cycle"])
    @pytest.mark.parametrize("builder", [
        right_linear_tc, left_linear_tc, non_linear_tc,
    ], ids=["right", "left", "nonlinear"])
    @pytest.mark.parametrize("semi", [True, False],
                             ids=["seminaive", "naive"])
    def test_transitive_closure(self, edges, builder, semi):
        cat = edge_catalog(edges)
        result = Evaluator(cat, semi_naive=semi).evaluate(builder())
        assert set(result.rows) == expected_closure(edges)

    def test_empty_base(self):
        cat = edge_catalog([])
        result = evaluate(right_linear_tc(), cat)
        assert result.rows == []

    def test_cycle_terminates(self):
        cat = edge_catalog(CYCLE)
        result = evaluate(non_linear_tc(), cat)
        assert (1, 1) in set(result.rows)  # back to itself through the cycle


class TestSemiNaiveAdvantage:
    def test_less_work_on_chains(self):
        cat = edge_catalog([(i, i + 1) for i in range(1, 20)])
        naive, semi = EvalStats(), EvalStats()
        Evaluator(cat, stats=naive, semi_naive=False).evaluate(
            left_linear_tc()
        )
        Evaluator(cat, stats=semi, semi_naive=True).evaluate(
            left_linear_tc()
        )
        assert semi.total_work < naive.total_work

    def test_same_rows_both_modes(self):
        cat = edge_catalog(DIAMOND)
        a = Evaluator(cat, semi_naive=False).evaluate(non_linear_tc())
        b = Evaluator(cat, semi_naive=True).evaluate(non_linear_tc())
        assert set(a.rows) == set(b.rows)

    def test_nonlinear_converges_in_fewer_rounds(self):
        """Non-linear TC doubles path length per round."""
        cat = edge_catalog([(i, i + 1) for i in range(1, 33)])
        lin, nonlin = EvalStats(), EvalStats()
        Evaluator(cat, stats=lin).evaluate(right_linear_tc())
        Evaluator(cat, stats=nonlin).evaluate(non_linear_tc())
        assert nonlin.fix_iterations < lin.fix_iterations


class TestGuards:
    def test_iteration_guard(self):
        cat = edge_catalog(CHAIN)
        ev = Evaluator(cat, max_fix_iterations=2)
        with pytest.raises(EvaluationError):
            ev.evaluate(right_linear_tc())

    def test_nested_fixpoints(self):
        """A fixpoint over a relation produced by another fixpoint."""
        cat = edge_catalog([(1, 2), (2, 3)])
        inner = right_linear_tc()
        outer = ops.fix("UP", ops.union([
            inner,
            ops.search([sym("UP"), inner], parse_term("#1.2 = #2.1"),
                       [AttrRef(1, 1), AttrRef(2, 2)]),
        ]))
        result = evaluate(outer, cat)
        assert set(result.rows) == expected_closure([(1, 2), (2, 3)])
