"""EXPLAIN ANALYZE: the collector, the analyze-mode query path, the
schema-v8 report section and the sys.plan_nodes ring."""

import json

import pytest

from repro import Database
from repro.core.explain import (EXPLAIN_SCHEMA_VERSION,
                                validate_explain)
from repro.engine.analyze import AnalyzeCollector


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TABLE EDGE (Src : NUMERIC, Dst : NUMERIC);
    CREATE VIEW PATH (Src, Dst) AS
    ( SELECT Src, Dst FROM EDGE
      UNION
      SELECT E.Src, P.Dst FROM EDGE E, PATH P WHERE E.Dst = P.Src )
    """)
    d.execute("INSERT INTO EDGE VALUES (1, 2), (2, 3), (3, 4), (4, 5)")
    return d


JOIN_FIXPOINT = "SELECT Dst FROM PATH WHERE Src = 1"


class TestCollector:
    def test_self_time_subtracts_children(self):
        collector = AnalyzeCollector()
        parent, child = object(), object()
        collector.enter(parent)
        collector.enter(child)
        collector.exit(child, rows=3, elapsed=0.2, nbytes=24)
        collector.exit(parent, rows=1, elapsed=0.5, nbytes=8)
        total = collector.total_self_ms()
        assert abs(total - 500.0) < 1e-6  # 0.3 self + 0.2 child
        assert collector.observed == 2

    def test_self_time_clamped_non_negative(self):
        collector = AnalyzeCollector()
        term = object()
        collector.enter(term)
        # float rounding can make elapsed < accumulated child time;
        # the clamp keeps self_s at zero rather than negative
        collector._stack[-1] = 0.5
        collector.exit(term, rows=0, elapsed=0.5 - 1e-12, nbytes=0)
        node = next(iter(collector._nodes.values()))
        assert node.self_s >= 0.0

    def test_clear_resets(self):
        collector = AnalyzeCollector()
        collector.enter("x")
        collector.exit("x", 1, 0.1, 8)
        collector.clear()
        assert collector.observed == 0
        assert collector.snapshot() == []


class TestAnalyzeMode:
    def test_results_identical_with_and_without(self, db):
        plain = db.query(JOIN_FIXPOINT).rows
        collector = AnalyzeCollector()
        analyzed = db.query(JOIN_FIXPOINT, analyze=collector).rows
        assert sorted(analyzed) == sorted(plain)
        assert collector.observed > 0

    def test_fixpoint_iterations_merge_into_loops(self, db):
        collector = AnalyzeCollector()
        db.query(JOIN_FIXPOINT, analyze=collector)
        nodes = collector.snapshot()
        # semi-naive rebuilds the delta body each iteration; equal
        # printed forms merge into one node with loops > 1
        assert any(n["loops"] > 1 for n in nodes)
        by_hash = {}
        for node in nodes:
            assert node["hash"] not in by_hash  # merged means unique
            by_hash[node["hash"]] = node

    def test_plan_log_ring_records(self, db):
        assert db.plan_log.recorded == 0
        db.query(JOIN_FIXPOINT, analyze=True)
        assert db.plan_log.recorded == 1
        rows = db.plan_log.rows()
        assert rows
        # (plan, fingerprint, trace_id, node, operator, hash, depth,
        #  rows, loops, self_ms, total_ms, bytes)
        for row in rows:
            assert row[0] == 1
            assert len(row[1]) == 12
            assert row[7] >= 0 and row[8] >= 1

    def test_analyze_off_is_null_object(self, db):
        db.query(JOIN_FIXPOINT)
        assert db.plan_log.recorded == 0


class TestExplainReport:
    def test_v8_round_trip_analyzed(self, db):
        report = db.explain_json(JOIN_FIXPOINT, analyze=True)
        assert report["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert validate_explain(report) == []
        assert report["analyze"]["enabled"] is True
        nodes = report["analyze"]["nodes"]
        assert nodes
        operators = {n["operator"] for n in nodes}
        assert "SCAN" in operators or "FIX" in operators
        json.dumps(report)

    def test_v8_round_trip_not_analyzed(self, db):
        report = db.explain_json(JOIN_FIXPOINT, execute=True)
        assert validate_explain(report) == []
        assert report["analyze"] == {"enabled": False, "nodes": []}

    def test_trace_carries_fingerprint(self, db):
        report = db.explain_json(JOIN_FIXPOINT)
        assert len(report["trace"]["fingerprint"]) == 12

    def test_self_times_sum_to_eval_stage(self, db):
        report = db.explain_json(JOIN_FIXPOINT, analyze=True)
        total_self = sum(
            n["self_ms"] for n in report["analyze"]["nodes"]
        )
        stage = report["trace"]["stages"].get("eval_ms")
        if stage:  # profile-derived; tolerance covers clock overhead
            assert total_self <= stage * 1.5 + 5.0

    def test_validator_rejects_bad_analyze_section(self, db):
        report = db.explain_json(JOIN_FIXPOINT, analyze=True)
        report["analyze"]["nodes"][0]["rows"] = -1
        assert any("rows" in p for p in validate_explain(report))
        report = db.explain_json(JOIN_FIXPOINT)
        report["analyze"]["nodes"] = [{"operator": "X"}]
        assert any("analyze" in p for p in validate_explain(report))
