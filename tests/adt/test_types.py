"""Unit tests for the type system and the ISA relation."""

import pytest

from repro.adt.types import (ANY, BOOLEAN, CHAR, INT, NUMERIC, REAL,
                             CollectionType, EnumerationType, ObjectType,
                             TupleType, TypeSystem)
from repro.errors import TypeSystemError


@pytest.fixture
def ts() -> TypeSystem:
    return TypeSystem()


class TestDefinitions:
    def test_builtins_present(self, ts):
        for name in ("NUMERIC", "INT", "REAL", "CHAR", "BOOLEAN", "ANY"):
            assert ts.is_defined(name)

    def test_enumeration(self, ts):
        cat = ts.define_enumeration("Category", ["Comedy", "Western"])
        assert cat.contains("Comedy")
        assert not cat.contains("Cartoon")

    def test_enumeration_needs_literals(self, ts):
        with pytest.raises(TypeSystemError):
            ts.define_enumeration("Empty", [])

    def test_enumeration_duplicate_literals(self, ts):
        with pytest.raises(TypeSystemError):
            ts.define_enumeration("Dup", ["a", "a"])

    def test_tuple_type(self, ts):
        pt = ts.define_tuple("Point", [("ABS", REAL), ("ORD", REAL)])
        assert pt.field_type("abs") == REAL  # case-insensitive
        assert pt.field_names == ("ABS", "ORD")

    def test_tuple_unknown_field(self, ts):
        pt = ts.define_tuple("Point", [("ABS", REAL)])
        with pytest.raises(TypeSystemError):
            pt.field_type("Z")

    def test_tuple_duplicate_field(self, ts):
        with pytest.raises(TypeSystemError):
            TupleType("T", [("A", INT), ("a", INT)])

    def test_collection_type(self, ts):
        sc = ts.define_collection("Text", "LIST", CHAR)
        assert sc.kind == "LIST"
        assert sc.element == CHAR

    def test_bad_collection_kind(self):
        with pytest.raises(TypeSystemError):
            CollectionType("HEAP", INT)

    def test_duplicate_definition(self, ts):
        ts.define_enumeration("E", ["x"])
        with pytest.raises(TypeSystemError):
            ts.define_enumeration("e", ["y"])  # case-insensitive clash

    def test_unknown_lookup(self, ts):
        with pytest.raises(TypeSystemError):
            ts.lookup("Nope")
        assert ts.lookup_or_none("Nope") is None


class TestObjectTypes:
    def test_subtype_inherits_fields(self, ts):
        ts.define_object("Person", [("Name", CHAR)])
        actor = ts.define_object("Actor", [("Salary", NUMERIC)],
                                 supertype="Person")
        assert actor.value_type.has_field("Name")
        assert actor.value_type.has_field("Salary")

    def test_field_override_keeps_one_slot(self, ts):
        ts.define_object("Person", [("Name", CHAR)])
        actor = ts.define_object("Actor", [("Name", CHAR), ("S", INT)],
                                 supertype="Person")
        assert actor.value_type.field_names.count("Name") == 1

    def test_subtype_of_non_object_rejected(self, ts):
        ts.define_tuple("Point", [("X", REAL)])
        with pytest.raises(TypeSystemError):
            ts.define_object("Sub", [("Y", REAL)], supertype="Point")

    def test_methods_recorded(self, ts):
        actor = ts.define_object("Actor", [("S", INT)],
                                 methods=["IncreaseSalary"])
        assert "IncreaseSalary" in actor.methods

    def test_ancestors(self, ts):
        ts.define_object("A", [("X", INT)])
        ts.define_object("B", [("Y", INT)], supertype="A")
        c = ts.define_object("C", [("Z", INT)], supertype="B")
        assert [t.name for t in c.ancestors()] == ["C", "B", "A"]


class TestIsa:
    def test_reflexive(self, ts):
        assert ts.isa(INT, INT)

    def test_everything_isa_any(self, ts):
        assert ts.isa(INT, ANY)
        assert ts.isa(CollectionType("SET", CHAR), ANY)

    def test_any_is_top_only(self, ts):
        assert not ts.isa(ANY, INT)

    def test_numeric_tower(self, ts):
        assert ts.isa(INT, NUMERIC)
        assert ts.isa(REAL, NUMERIC)
        assert not ts.isa(NUMERIC, INT)
        assert not ts.isa(INT, REAL)

    def test_object_chain(self, ts):
        ts.define_object("Person", [("Name", CHAR)])
        ts.define_object("Actor", [("S", INT)], supertype="Person")
        ts.define_object("Star", [("F", INT)], supertype="Actor")
        assert ts.isa_name("Star", "Person")
        assert ts.isa_name("Actor", "Person")
        assert not ts.isa_name("Person", "Actor")

    def test_collection_hierarchy_figure1(self, ts):
        """Figure 1: set/bag/list/array are subtypes of collection."""
        for kind in ("SET", "BAG", "LIST", "ARRAY"):
            sub = CollectionType(kind, INT)
            sup = CollectionType("COLLECTION", INT)
            assert ts.isa(sub, sup)
            assert not ts.isa(sup, sub)

    def test_collections_covariant_in_element(self, ts):
        assert ts.isa(CollectionType("SET", INT),
                      CollectionType("SET", NUMERIC))
        assert not ts.isa(CollectionType("SET", NUMERIC),
                          CollectionType("SET", INT))

    def test_different_kinds_unrelated(self, ts):
        assert not ts.isa(CollectionType("SET", INT),
                          CollectionType("LIST", INT))

    def test_enumeration_isa_char(self, ts):
        cat = ts.define_enumeration("Category", ["a"])
        assert ts.isa(cat, CHAR)
        assert not ts.isa(CHAR, cat)

    def test_unrelated_types(self, ts):
        pt = ts.define_tuple("Point", [("X", REAL)])
        assert not ts.isa(pt, INT)
        assert not ts.isa(INT, pt)

    def test_collection_equality_structural(self):
        assert CollectionType("SET", INT) == CollectionType("SET", INT)
        assert CollectionType("SET", INT) != CollectionType("BAG", INT)
