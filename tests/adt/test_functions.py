"""Unit tests for the built-in ADT function library."""

import pytest

from repro.adt.functions import default_registry
from repro.adt.types import TypeSystem
from repro.adt.values import (ArrayValue, BagValue, ListValue, ObjectStore,
                              SetValue, TupleValue)
from repro.errors import FunctionError, UnknownFunctionError


class Ctx:
    def __init__(self):
        self.objects = ObjectStore()
        self.type_system = TypeSystem()


@pytest.fixture
def reg():
    return default_registry()


@pytest.fixture
def ctx():
    return Ctx()


def call(reg, ctx, name, *args):
    return reg.call(name, list(args), ctx)


class TestCollectionRoot:
    def test_convert_bag_to_set(self, reg, ctx):
        out = call(reg, ctx, "CONVERT", BagValue([1, 1, 2]), "SET")
        assert out == SetValue([1, 2])

    def test_convert_bad_target(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "CONVERT", BagValue([1]), "HEAP")

    def test_isempty(self, reg, ctx):
        assert call(reg, ctx, "ISEMPTY", SetValue([])) is True
        assert call(reg, ctx, "ISEMPTY", SetValue([1])) is False

    def test_equal(self, reg, ctx):
        assert call(reg, ctx, "EQUAL", SetValue([1, 2]), SetValue([2, 1]))
        assert not call(reg, ctx, "EQUAL", SetValue([1]), SetValue([2]))

    def test_insert_remove(self, reg, ctx):
        s = call(reg, ctx, "INSERT", 3, SetValue([1, 2]))
        assert s == SetValue([1, 2, 3])
        s2 = call(reg, ctx, "REMOVE", 1, s)
        assert s2 == SetValue([2, 3])

    def test_remove_absent_is_noop(self, reg, ctx):
        assert call(reg, ctx, "REMOVE", 9, SetValue([1])) == SetValue([1])

    def test_count(self, reg, ctx):
        assert call(reg, ctx, "COUNT", BagValue([1, 1, 2])) == 3

    def test_collection_expected(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "ISEMPTY", 42)


class TestSetFunctions:
    def test_makeset(self, reg, ctx):
        assert call(reg, ctx, "MAKESET", 1, 2, 2) == SetValue([1, 2])

    def test_member(self, reg, ctx):
        assert call(reg, ctx, "MEMBER", "Adventure",
                    SetValue(["Comedy", "Adventure"]))
        assert not call(reg, ctx, "MEMBER", "Cartoon",
                        SetValue(["Comedy"]))

    def test_choice_deterministic(self, reg, ctx):
        assert call(reg, ctx, "CHOICE", ListValue([7, 8])) == 7

    def test_choice_empty(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "CHOICE", SetValue([]))

    def test_union(self, reg, ctx):
        out = call(reg, ctx, "UNION", SetValue([1]), SetValue([2]))
        assert out == SetValue([1, 2])

    def test_union_kind_mismatch(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "UNION", SetValue([1]), BagValue([2]))

    def test_intersection_set(self, reg, ctx):
        out = call(reg, ctx, "INTERSECTION", SetValue([1, 2, 3]),
                   SetValue([2, 3, 4]))
        assert out == SetValue([2, 3])

    def test_intersection_bag_multiplicity(self, reg, ctx):
        out = call(reg, ctx, "INTERSECTION", BagValue([1, 1, 2]),
                   BagValue([1, 2, 2]))
        assert out == BagValue([1, 2])

    def test_difference_set(self, reg, ctx):
        out = call(reg, ctx, "DIFFERENCE", SetValue([1, 2, 3]),
                   SetValue([2]))
        assert out == SetValue([1, 3])

    def test_difference_bag_multiplicity(self, reg, ctx):
        out = call(reg, ctx, "DIFFERENCE", BagValue([1, 1, 2]),
                   BagValue([1]))
        assert out == BagValue([1, 2])

    def test_include(self, reg, ctx):
        outer = SetValue(["a", "b", "c"])
        assert call(reg, ctx, "INCLUDE", outer, SetValue(["a", "c"]))
        assert not call(reg, ctx, "INCLUDE", outer, SetValue(["z"]))

    def test_all_exist(self, reg, ctx):
        assert call(reg, ctx, "ALL", SetValue([True, True]))
        assert not call(reg, ctx, "ALL", SetValue([True, False]))
        assert call(reg, ctx, "EXIST", SetValue([False, True]))
        assert not call(reg, ctx, "EXIST", SetValue([False]))

    def test_all_on_empty_is_true(self, reg, ctx):
        assert call(reg, ctx, "ALL", SetValue([]))
        assert not call(reg, ctx, "EXIST", SetValue([]))


class TestListArrayFunctions:
    def test_makelist_order(self, reg, ctx):
        assert list(call(reg, ctx, "MAKELIST", 3, 1, 2)) == [3, 1, 2]

    def test_append(self, reg, ctx):
        out = call(reg, ctx, "APPEND", ListValue([1]), 2)
        assert list(out) == [1, 2]

    def test_append_non_list(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "APPEND", SetValue([1]), 2)

    def test_concat(self, reg, ctx):
        out = call(reg, ctx, "CONCAT", ListValue([1]), ListValue([2]))
        assert list(out) == [1, 2]

    def test_first_last(self, reg, ctx):
        assert call(reg, ctx, "FIRST", ListValue([5, 6])) == 5
        assert call(reg, ctx, "LAST", ListValue([5, 6])) == 6

    def test_first_empty(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "FIRST", ListValue([]))

    def test_sublist(self, reg, ctx):
        out = call(reg, ctx, "SUBLIST", ListValue([1, 2, 3, 4]), 1, 3)
        assert list(out) == [2, 3]

    def test_at(self, reg, ctx):
        assert call(reg, ctx, "AT", ArrayValue([9, 8]), 1) == 8

    def test_setat(self, reg, ctx):
        out = call(reg, ctx, "SETAT", ArrayValue([1, 2]), 0, 7)
        assert list(out) == [7, 2]


class TestTupleAndObject:
    def test_maketuple(self, reg, ctx):
        out = call(reg, ctx, "MAKETUPLE", "A", 1, "B", 2)
        assert out == TupleValue({"A": 1, "B": 2})

    def test_maketuple_odd_args(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "MAKETUPLE", "A")

    def test_project(self, reg, ctx):
        tv = TupleValue({"Name": "Quinn"})
        assert call(reg, ctx, "PROJECT", tv, "Name") == "Quinn"

    def test_project_broadcasts_over_set(self, reg, ctx):
        """Paper: projection over a set of tuples = set of projections."""
        s = SetValue([TupleValue({"S": 1}), TupleValue({"S": 2})])
        assert call(reg, ctx, "PROJECT", s, "S") == SetValue([1, 2])

    def test_project_non_tuple(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "PROJECT", 42, "X")

    def test_value_dereferences(self, reg, ctx):
        ref = ctx.objects.create("T", TupleValue({"A": 1}))
        assert call(reg, ctx, "VALUE", ref) == TupleValue({"A": 1})

    def test_value_on_value_is_identity(self, reg, ctx):
        assert call(reg, ctx, "VALUE", 42) == 42

    def test_value_broadcasts(self, reg, ctx):
        r1 = ctx.objects.create("T", 1)
        r2 = ctx.objects.create("T", 2)
        assert call(reg, ctx, "VALUE", SetValue([r1, r2])) == SetValue([1, 2])


class TestScalarOperators:
    def test_comparisons(self, reg, ctx):
        assert call(reg, ctx, "=", 1, 1)
        assert call(reg, ctx, "<>", 1, 2)
        assert call(reg, ctx, "<", 1, 2)
        assert call(reg, ctx, ">=", 2, 2)

    def test_comparison_broadcasts(self, reg, ctx):
        """Figure 4: Salary(Actors) > 10000 over a set yields a set of
        booleans for the ALL quantifier."""
        out = call(reg, ctx, ">", SetValue([5, 20]), 10)
        assert out == SetValue([False, True])

    def test_arithmetic(self, reg, ctx):
        assert call(reg, ctx, "+", 2, 3) == 5
        assert call(reg, ctx, "-", 2, 3) == -1
        assert call(reg, ctx, "*", 2, 3) == 6
        assert call(reg, ctx, "/", 6, 3) == 2

    def test_division_stays_exact_for_ints(self, reg, ctx):
        assert call(reg, ctx, "/", 7, 2) == 3.5

    def test_division_by_zero(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "/", 1, 0)

    def test_incompatible_operands(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "+", 1, "a")

    def test_boolean_connectives(self, reg, ctx):
        assert call(reg, ctx, "NOT", False)
        assert call(reg, ctx, "AND", True, True, True)
        assert not call(reg, ctx, "AND", True, False)
        assert call(reg, ctx, "OR", False, True)


class TestAggregates:
    def test_sum_min_max_avg(self, reg, ctx):
        bag = BagValue([1, 2, 3])
        assert call(reg, ctx, "SUM", bag) == 6
        assert call(reg, ctx, "MIN", bag) == 1
        assert call(reg, ctx, "MAX", bag) == 3
        assert call(reg, ctx, "AVG", bag) == 2

    def test_aggregate_empty(self, reg, ctx):
        for fn in ("MIN", "MAX", "AVG"):
            with pytest.raises(FunctionError):
                call(reg, ctx, fn, SetValue([]))


class TestRegistryDispatch:
    def test_unknown_function(self, reg, ctx):
        with pytest.raises(UnknownFunctionError):
            call(reg, ctx, "NOPE", 1)

    def test_wrong_arity(self, reg, ctx):
        with pytest.raises(FunctionError):
            call(reg, ctx, "MEMBER", 1)

    def test_figure1_inventory(self, reg, ctx):
        """F1: the Figure 1 function inventory is registered, grouped by
        its ADT in the hierarchy."""
        expectations = {
            "collection": ["CONVERT", "ISEMPTY", "EQUAL", "INSERT",
                           "REMOVE"],
            "set": ["MAKESET", "MEMBER", "CHOICE", "UNION",
                    "INTERSECTION", "DIFFERENCE", "ALL", "EXIST"],
            "bag": ["MAKEBAG"],
            "list": ["MAKELIST", "APPEND", "FIRST", "LAST", "SUBLIST"],
            "array": ["MAKEARRAY", "AT", "SETAT"],
        }
        for adt, names in expectations.items():
            for name in names:
                assert reg.knows(name), f"{name} missing"
                defs = list(reg._defs[name.upper()].values())
                assert any(d.adt == adt for d in defs), \
                    f"{name} should belong to {adt}"
