"""Unit tests for the extensible function registry."""

import pytest

from repro.adt.registry import FunctionDef, FunctionRegistry
from repro.errors import FunctionError, UnknownFunctionError


def _fdef(name, arity=None, result=0):
    return FunctionDef(name, lambda args, ctx: result, arity)


class TestRegistration:
    def test_register_and_lookup(self):
        reg = FunctionRegistry()
        reg.register(_fdef("F", 2))
        assert reg.lookup("f", 2).name == "F"

    def test_case_insensitive(self):
        reg = FunctionRegistry()
        reg.register(_fdef("MyFunc", 1))
        assert reg.knows("MYFUNC")
        assert reg.knows("myfunc")

    def test_duplicate_rejected(self):
        reg = FunctionRegistry()
        reg.register(_fdef("F", 1))
        with pytest.raises(FunctionError):
            reg.register(_fdef("F", 1))

    def test_replace_allowed(self):
        reg = FunctionRegistry()
        reg.register(_fdef("F", 1))
        reg.register(FunctionDef("F", lambda a, c: 99, 1), replace=True)
        assert reg.call("F", [0], None) == 99

    def test_define_convenience(self):
        reg = FunctionRegistry()
        reg.define("G", lambda a, c: 7, 0)
        assert reg.call("G", [], None) == 7


class TestArityOverloading:
    def test_same_name_different_arities(self):
        reg = FunctionRegistry()
        reg.register(FunctionDef("F", lambda a, c: "two", 2))
        reg.register(FunctionDef("F", lambda a, c: "three", 3))
        assert reg.call("F", [1, 2], None) == "two"
        assert reg.call("F", [1, 2, 3], None) == "three"

    def test_variadic_fallback(self):
        reg = FunctionRegistry()
        reg.register(FunctionDef("F", lambda a, c: len(a), None))
        reg.register(FunctionDef("F", lambda a, c: "exact", 2))
        assert reg.call("F", [1, 2], None) == "exact"
        assert reg.call("F", [1, 2, 3, 4], None) == 4

    def test_missing_arity(self):
        reg = FunctionRegistry()
        reg.register(_fdef("F", 2))
        with pytest.raises(FunctionError):
            reg.lookup("F", 5)

    def test_unknown_name(self):
        reg = FunctionRegistry()
        with pytest.raises(UnknownFunctionError):
            reg.lookup("NOPE")
        assert reg.lookup_or_none("NOPE") is None


class TestCopyMerge:
    def test_copy_is_independent(self):
        reg = FunctionRegistry()
        reg.register(_fdef("F", 1))
        clone = reg.copy()
        clone.register(_fdef("G", 1))
        assert clone.knows("G")
        assert not reg.knows("G")

    def test_merge_later_wins(self):
        a = FunctionRegistry()
        a.register(FunctionDef("F", lambda x, c: "a", 1))
        b = FunctionRegistry()
        b.register(FunctionDef("F", lambda x, c: "b", 1))
        a.merge(b)
        assert a.call("F", [0], None) == "b"

    def test_names_sorted(self):
        reg = FunctionRegistry()
        reg.register(_fdef("Z", 1))
        reg.register(_fdef("A", 1))
        assert reg.names() == ("A", "Z")


class TestProperties:
    def test_flags_stored(self):
        fdef = FunctionDef("F", lambda a, c: 0, 2, commutative=True,
                           associative=True, pure=False, adt="set")
        assert fdef.commutative and fdef.associative
        assert not fdef.pure
        assert fdef.adt == "set"
