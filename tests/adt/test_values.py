"""Unit tests for runtime values (collections, tuples, objects)."""

import pytest

from repro.adt.values import (ArrayValue, BagValue, ListValue, ObjectRef,
                              ObjectStore, SetValue, TupleValue, value_repr)
from repro.errors import ValueError_


class TestSetValue:
    def test_deduplicates(self):
        s = SetValue([1, 2, 2, 3, 1])
        assert len(s) == 3

    def test_order_insensitive_equality(self):
        assert SetValue([1, 2, 3]) == SetValue([3, 1, 2])

    def test_hash_consistent_with_equality(self):
        assert hash(SetValue([1, 2])) == hash(SetValue([2, 1]))

    def test_membership(self):
        assert 2 in SetValue([1, 2, 3])
        assert 9 not in SetValue([1, 2, 3])

    def test_membership_large_set_uses_hash_probe(self):
        s = SetValue(range(100))
        assert 99 in s
        assert 100 not in s

    def test_not_equal_to_bag(self):
        assert SetValue([1]) != BagValue([1])

    def test_is_empty(self):
        assert SetValue([]).is_empty()
        assert not SetValue([1]).is_empty()

    def test_nested_sets(self):
        inner = SetValue([1, 2])
        outer = SetValue([inner, SetValue([2, 1])])
        assert len(outer) == 1  # equal inner sets deduplicate


class TestBagValue:
    def test_keeps_duplicates(self):
        assert len(BagValue([1, 1, 2])) == 3

    def test_multiset_equality(self):
        assert BagValue([1, 1, 2]) == BagValue([2, 1, 1])
        assert BagValue([1, 2]) != BagValue([1, 1, 2])

    def test_hash_multiset(self):
        assert hash(BagValue([1, 2, 1])) == hash(BagValue([1, 1, 2]))


class TestListValue:
    def test_order_sensitive(self):
        assert ListValue([1, 2]) != ListValue([2, 1])

    def test_indexing_and_ends(self):
        lst = ListValue(["a", "b", "c"])
        assert lst[0] == "a"
        assert lst.first() == "a"
        assert lst.last() == "c"

    def test_first_on_empty_raises(self):
        with pytest.raises(ValueError_):
            ListValue([]).first()

    def test_last_on_empty_raises(self):
        with pytest.raises(ValueError_):
            ListValue([]).last()

    def test_append_is_persistent(self):
        a = ListValue([1])
        b = a.append_element(2)
        assert len(a) == 1
        assert list(b) == [1, 2]

    def test_concat(self):
        assert list(ListValue([1]).concat(ListValue([2, 3]))) == [1, 2, 3]

    def test_sublist(self):
        assert list(ListValue([1, 2, 3, 4]).sublist(1, 3)) == [2, 3]


class TestArrayValue:
    def test_positional_access(self):
        arr = ArrayValue([10, 20, 30])
        assert arr[1] == 20

    def test_out_of_range(self):
        with pytest.raises(ValueError_):
            ArrayValue([1])[5]

    def test_set_at_is_persistent(self):
        a = ArrayValue([1, 2, 3])
        b = a.set_at(1, 99)
        assert list(a) == [1, 2, 3]
        assert list(b) == [1, 99, 3]

    def test_set_at_out_of_range(self):
        with pytest.raises(ValueError_):
            ArrayValue([1]).set_at(3, 0)


class TestConversions:
    def test_bag_to_set_removes_duplicates(self):
        assert BagValue([1, 1, 2]).to_set() == SetValue([1, 2])

    def test_list_to_array_keeps_order(self):
        assert list(ListValue([3, 1]).to_array()) == [3, 1]

    def test_set_to_list(self):
        assert sorted(SetValue([2, 1]).to_list()) == [1, 2]

    def test_to_bag_roundtrip(self):
        lst = ListValue([1, 1, 2])
        assert lst.to_bag() == BagValue([1, 1, 2])


class TestTupleValue:
    def test_field_access(self):
        tv = TupleValue({"Name": "Quinn", "Salary": 5})
        assert tv["Name"] == "Quinn"
        assert tv.project("Salary") == 5

    def test_project_unknown_field(self):
        with pytest.raises(ValueError_):
            TupleValue({"A": 1}).project("B")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError_):
            TupleValue([("A", 1), ("A", 2)])

    def test_equality_is_ordered(self):
        a = TupleValue([("X", 1), ("Y", 2)])
        b = TupleValue([("Y", 2), ("X", 1)])
        assert a != b

    def test_replace(self):
        tv = TupleValue({"A": 1, "B": 2})
        tv2 = tv.replace("A", 9)
        assert tv2["A"] == 9 and tv["A"] == 1

    def test_replace_unknown_field(self):
        with pytest.raises(ValueError_):
            TupleValue({"A": 1}).replace("Z", 0)

    def test_mapping_protocol(self):
        tv = TupleValue({"A": 1, "B": 2})
        assert list(tv) == ["A", "B"]
        assert len(tv) == 2
        assert tv.field_values == (1, 2)

    def test_hashable(self):
        assert TupleValue({"A": 1}) in {TupleValue({"A": 1})}


class TestObjectStore:
    def test_create_and_deref(self):
        store = ObjectStore()
        ref = store.create("Actor", TupleValue({"Name": "Quinn"}))
        assert store.value_of(ref)["Name"] == "Quinn"
        assert store.type_of(ref) == "Actor"

    def test_identity_not_value_equality(self):
        store = ObjectStore()
        a = store.create("T", 1)
        b = store.create("T", 1)
        assert a != b  # distinct OIDs, same value

    def test_shared_reference_sees_update(self):
        store = ObjectStore()
        ref = store.create("T", 1)
        alias = ObjectRef(ref.oid, "T")
        store.update(ref, 42)
        assert store.value_of(alias) == 42

    def test_dangling_reference(self):
        store = ObjectStore()
        with pytest.raises(ValueError_):
            store.value_of(ObjectRef(999, "T"))

    def test_update_dangling(self):
        store = ObjectStore()
        with pytest.raises(ValueError_):
            store.update(ObjectRef(999, "T"), 0)

    def test_contains_and_len(self):
        store = ObjectStore()
        ref = store.create("T", 1)
        assert ref in store
        assert len(store) == 1


class TestValueRepr:
    def test_strings_quoted(self):
        assert value_repr("abc") == "'abc'"

    def test_booleans_lowercase(self):
        assert value_repr(True) == "true"
        assert value_repr(False) == "false"

    def test_null(self):
        assert value_repr(None) == "null"

    def test_collection_repr(self):
        assert repr(SetValue([1])) == "set(1)"
