"""IN/EXISTS subquery flattening (the intro's "select migration")."""

import pytest

from repro import Database
from repro.errors import TranslationError
from repro.terms.printer import term_to_str


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TABLE CUSTOMER (Cid : NUMERIC, Region : NUMERIC);
    TABLE ORDERS (Oid : NUMERIC, Cust : NUMERIC, Total : NUMERIC)
    """)
    d.execute("INSERT INTO CUSTOMER VALUES (1, 10), (2, 10), (3, 20), "
              "(4, 20)")
    d.execute("INSERT INTO ORDERS VALUES (100, 1, 50), (101, 1, 9), "
              "(102, 3, 70), (103, 4, 5)")
    return d


def both(db, query):
    on = set(db.query(query, rewrite=True).rows)
    off = set(db.query(query, rewrite=False).rows)
    assert on == off, query
    return on


class TestInSubquery:
    def test_uncorrelated_in(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE Cid IN "
                        "(SELECT Cust FROM ORDERS WHERE Total > 20)")
        assert rows == {(1,), (3,)}

    def test_not_in(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE Cid NOT IN "
                        "(SELECT Cust FROM ORDERS)")
        assert rows == {(2,)}

    def test_in_with_expression_left(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE Cid + 0 IN "
                        "(SELECT Cust FROM ORDERS WHERE Total > 60)")
        assert rows == {(3,)}

    def test_in_over_union_subquery(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE Cid IN "
                        "(SELECT Cust FROM ORDERS WHERE Total > 60 "
                        "UNION SELECT Cust FROM ORDERS WHERE Total < 8)")
        assert rows == {(3,), (4,)}

    def test_plan_shape_is_semijoin(self, db):
        optimized = db.optimize(
            "SELECT Cid FROM CUSTOMER WHERE Cid IN "
            "(SELECT Cust FROM ORDERS)"
        )
        assert "SEMIJOIN" in term_to_str(optimized.final)

    def test_not_in_plan_is_antijoin(self, db):
        optimized = db.optimize(
            "SELECT Cid FROM CUSTOMER WHERE Cid NOT IN "
            "(SELECT Cust FROM ORDERS)"
        )
        assert "ANTIJOIN" in term_to_str(optimized.final)


class TestExists:
    def test_correlated_exists(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER C WHERE EXISTS "
                        "(SELECT Oid FROM ORDERS O "
                        "WHERE O.Cust = C.Cid AND O.Total > 20)")
        assert rows == {(1,), (3,)}

    def test_correlated_not_exists(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER C WHERE NOT EXISTS "
                        "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")
        assert rows == {(2,)}

    def test_uncorrelated_exists_all_or_nothing(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE EXISTS "
                        "(SELECT Oid FROM ORDERS WHERE Total > 1000)")
        assert rows == set()
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE EXISTS "
                        "(SELECT Oid FROM ORDERS WHERE Total > 60)")
        assert len(rows) == 4

    def test_correlation_with_expression(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER C WHERE EXISTS "
                        "(SELECT Oid FROM ORDERS O "
                        "WHERE O.Cust + 0 = C.Cid AND O.Total < 10)")
        assert rows == {(1,), (4,)}

    def test_exists_combined_with_plain_conjunct(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER C WHERE Region = 20 "
                        "AND EXISTS (SELECT Oid FROM ORDERS O "
                        "WHERE O.Cust = C.Cid)")
        assert rows == {(3,), (4,)}

    def test_two_subqueries(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER C "
                        "WHERE EXISTS (SELECT Oid FROM ORDERS O "
                        "WHERE O.Cust = C.Cid) "
                        "AND Cid NOT IN (SELECT Cust FROM ORDERS "
                        "WHERE Total > 60)")
        assert rows == {(1,), (4,)}


class TestInList:
    def test_in_literal_list(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE Region IN "
                        "(10, 30)")
        assert rows == {(1,), (2,)}

    def test_not_in_literal_list(self, db):
        rows = both(db, "SELECT Cid FROM CUSTOMER WHERE Region NOT IN "
                        "(10, 30)")
        assert rows == {(3,), (4,)}

    def test_in_list_becomes_member(self, db):
        optimized = db.optimize(
            "SELECT Cid FROM CUSTOMER WHERE Region IN (10, 30)"
        )
        assert "MEMBER" in term_to_str(optimized.final)

    def test_impossible_in_list_folds(self, db):
        optimized = db.optimize(
            "SELECT Cid FROM CUSTOMER WHERE 5 IN (1, 2, 3)"
        )
        assert term_to_str(optimized.final) == "EMPTY(1)"


class TestRestrictions:
    def test_subquery_under_or_rejected(self, db):
        with pytest.raises(TranslationError):
            db.query("SELECT Cid FROM CUSTOMER WHERE Region = 10 OR "
                     "Cid IN (SELECT Cust FROM ORDERS)")

    def test_subquery_in_select_items_rejected(self, db):
        with pytest.raises(TranslationError):
            db.query("SELECT EXISTS (SELECT Oid FROM ORDERS) "
                     "FROM CUSTOMER")

    def test_group_by_with_subquery_rejected(self, db):
        with pytest.raises(TranslationError):
            db.query("SELECT Region, COUNT(Cid) FROM CUSTOMER "
                     "WHERE Cid IN (SELECT Cust FROM ORDERS) "
                     "GROUP BY Region")

    def test_unknown_column_still_reported(self, db):
        with pytest.raises(TranslationError):
            db.query("SELECT Cid FROM CUSTOMER C WHERE EXISTS "
                     "(SELECT Oid FROM ORDERS O WHERE O.Nope = C.Cid)")


class TestRewriterInterplay:
    def test_selection_pushed_below_semijoin(self, db):
        optimized = db.optimize(
            "SELECT Cid FROM CUSTOMER C WHERE Region = 10 AND Cid IN "
            "(SELECT Cust FROM ORDERS)"
        )
        rendered = term_to_str(optimized.final)
        # the region filter sits in the core search, below the semijoin
        semijoin_pos = rendered.find("SEMIJOIN")
        filter_pos = rendered.find("10")
        assert semijoin_pos != -1 and filter_pos > semijoin_pos

    def test_contradiction_inside_subquery_prunes(self, db):
        result, stats, optimized = db.query_with_stats(
            "SELECT Cid FROM CUSTOMER WHERE Cid IN "
            "(SELECT Cust FROM ORDERS WHERE Total > 5 AND Total < 2)"
        )
        assert result.rows == []
        assert "EMPTY" in term_to_str(optimized.final)
        assert stats.tuples_scanned == 0

    def test_not_in_with_empty_subquery_keeps_everything(self, db):
        result, __, optimized = db.query_with_stats(
            "SELECT Cid FROM CUSTOMER WHERE Cid NOT IN "
            "(SELECT Cust FROM ORDERS WHERE Total > 5 AND Total < 2)"
        )
        assert len(result.rows) == 4
        assert "ANTIJOIN" not in term_to_str(optimized.final)
