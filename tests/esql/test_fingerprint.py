"""Query fingerprinting: normalization, identity, propagation."""

import threading

from repro.esql import fingerprint as fp_mod
from repro.esql.fingerprint import (Fingerprint, current_fingerprint,
                                    fingerprint_source, use_fingerprint)


def fp(source: str) -> Fingerprint:
    return fingerprint_source(source)


class TestTemplates:
    def test_literals_become_numbered_parameters(self):
        out = fp("SELECT A FROM T WHERE B = 10")
        assert out.template == "SELECT A FROM T WHERE (B = $1)"
        assert len(out.fingerprint) == 12
        int(out.fingerprint, 16)  # hex

    def test_different_constants_same_fingerprint(self):
        assert fp("SELECT A FROM T WHERE B = 10") == \
            fp("SELECT A FROM T WHERE B = 99")
        assert fp("SELECT A FROM T WHERE B = 'x'") == \
            fp("SELECT A FROM T WHERE B = 'another string'")

    def test_casing_is_normalized(self):
        assert fp("select a from t where b = 1") == \
            fp("SELECT A FROM T WHERE B = 2")
        assert fp("select t.a from t where t.b = 1") == \
            fp("SELECT T.A FROM T WHERE T.B = 2")

    def test_whitespace_is_normalized(self):
        assert fp("SELECT  A\nFROM   T\tWHERE B = 1") == \
            fp("SELECT A FROM T WHERE B = 2")

    def test_commutative_conjuncts_reorder(self):
        # AND operands sort on their literal-free form, so the same
        # predicate written in either order is one statement
        assert fp("SELECT A FROM T WHERE A = 1 AND B = 2") == \
            fp("SELECT A FROM T WHERE B = 9 AND A = 8")
        assert fp("SELECT A FROM T WHERE A = 1 OR B = 2") == \
            fp("SELECT A FROM T WHERE B = 9 OR A = 8")

    def test_distinct_shapes_stay_distinct(self):
        shapes = [
            "SELECT A FROM T WHERE B = 1",
            "SELECT A FROM T WHERE B > 1",
            "SELECT A FROM T",
            "SELECT DISTINCT A FROM T WHERE B = 1",
            "SELECT A, B FROM T WHERE B = 1",
            "DELETE FROM T WHERE B = 1",
        ]
        prints = {fp(s).fingerprint for s in shapes}
        assert len(prints) == len(shapes)

    def test_dml_parameterizes(self):
        assert fp("INSERT INTO T VALUES (1, 2)") == \
            fp("insert into t values (8, 9)")
        assert fp("UPDATE T SET B = 5 WHERE A = 1") == \
            fp("update t set b = 0 where a = 3")

    def test_ddl_falls_back_to_class_name(self):
        out = fp("CREATE TABLE Q (A : INT)")
        assert out.template == "TableDef"

    def test_unparseable_text_gets_raw_template(self):
        out = fp("THIS IS NOT ESQL ;;;")
        assert out.template.startswith("!")
        assert out.fingerprint  # still a stable grouping key

    def test_raw_fallback_cannot_collide_with_templates(self):
        # the "!" marker keeps a raw statement whose text *looks* like
        # a rendered template in its own bucket
        rendered = fp("SELECT A FROM T WHERE B = 1").template
        assert fp(rendered).template == "!" + rendered


class TestMemo:
    def test_repeat_lookups_hit_the_memo(self):
        source = "SELECT A FROM T WHERE B = 123456"
        first = fingerprint_source(source)
        assert fingerprint_source(source) is first

    def test_memo_is_bounded(self):
        fp_mod._memo.clear()
        for i in range(fp_mod._MEMO_CAPACITY + 10):
            fingerprint_source(f"SELECT A FROM T WHERE B = {i}")
        assert len(fp_mod._memo) <= fp_mod._MEMO_CAPACITY


class TestPropagation:
    def test_contextvar_roundtrip(self):
        assert current_fingerprint() is None
        stamp = fp("SELECT A FROM T")
        with use_fingerprint(stamp):
            assert current_fingerprint() is stamp
        assert current_fingerprint() is None

    def test_threads_do_not_leak(self):
        stamp = fp("SELECT A FROM T")
        seen = []
        with use_fingerprint(stamp):
            thread = threading.Thread(
                target=lambda: seen.append(current_fingerprint())
            )
            thread.start()
            thread.join()
        assert seen == [None]

    def test_falsy_when_empty(self):
        assert not Fingerprint("", "")
        assert fp("SELECT A FROM T")
