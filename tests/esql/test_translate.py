"""Translator tests: ESQL AST to LERA terms and catalog actions."""

import pytest

from repro import Database
from repro.errors import TranslationError
from repro.terms.printer import term_to_str
from repro.terms.term import is_fun


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TABLE EDGE (Src : NUMERIC, Dst : NUMERIC);
    TABLE NODE (Id : NUMERIC, Label : CHAR)
    """)
    return d


def lera(db, query):
    return db.translator.execute(
        __import__("repro.esql.parser", fromlist=["parse_statement"])
        .parse_statement(query)
    )


class TestSelectTranslation:
    def test_simple_select_is_search(self, db):
        t = lera(db, "SELECT Dst FROM EDGE WHERE Src = 1")
        assert is_fun(t, "SEARCH")
        rendered = term_to_str(t)
        assert "EDGE" in rendered and "#1.1" in rendered

    def test_column_resolution_case_insensitive(self, db):
        t = lera(db, "SELECT dst FROM EDGE WHERE src = 1")
        assert is_fun(t, "SEARCH")

    def test_unknown_column(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT Nope FROM EDGE")

    def test_ambiguous_column(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT Src FROM EDGE E1, EDGE E2")

    def test_alias_qualification(self, db):
        t = lera(db, "SELECT E2.Dst FROM EDGE E1, EDGE E2 "
                     "WHERE E1.Dst = E2.Src")
        assert "#2.2" in term_to_str(t)

    def test_unknown_alias(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT Z.Dst FROM EDGE E1")

    def test_unknown_relation(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT A FROM NOPE")

    def test_output_names_from_aliases(self, db):
        t = lera(db, "SELECT Dst AS Target FROM EDGE")
        assert "'Target'" in term_to_str(t)

    def test_missing_where_is_true(self, db):
        t = lera(db, "SELECT Dst FROM EDGE")
        assert t.args[1] == __import__(
            "repro.terms.term", fromlist=["TRUE"]
        ).TRUE

    def test_expression_items(self, db):
        t = lera(db, "SELECT Src + Dst FROM EDGE")
        assert "#1.1 + #1.2" in term_to_str(t)

    def test_union_query(self, db):
        t = lera(db, "SELECT Src FROM EDGE UNION SELECT Id FROM NODE")
        assert is_fun(t, "UNION")

    def test_union_width_mismatch(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT Src, Dst FROM EDGE UNION "
                     "SELECT Id FROM NODE")


class TestViewExpansion:
    def test_view_inlined(self, db):
        db.execute("CREATE VIEW BIG (Src, Dst) AS "
                   "SELECT Src, Dst FROM EDGE WHERE Src > 5")
        t = lera(db, "SELECT Dst FROM BIG WHERE Src = 9")
        rendered = term_to_str(t)
        # the view body appears inside the query (query modification)
        assert rendered.count("SEARCH") == 2
        assert "BIG" not in rendered

    def test_view_column_renaming(self, db):
        db.execute("CREATE VIEW R2 (X, Y) AS SELECT Src, Dst FROM EDGE")
        t = lera(db, "SELECT Y FROM R2 WHERE X = 1")
        assert is_fun(t, "SEARCH")

    def test_view_width_mismatch(self, db):
        with pytest.raises(TranslationError):
            db.execute("CREATE VIEW BAD (A) AS SELECT Src, Dst FROM EDGE")

    def test_recursive_view_becomes_fix(self, db):
        db.execute("""
        CREATE VIEW REACH (Src, Dst) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
        """)
        view = db.catalog.view("REACH")
        assert view.recursive
        assert is_fun(view.term, "FIX")

    def test_fully_recursive_view_rejected(self, db):
        with pytest.raises(TranslationError):
            db.execute("""
            CREATE VIEW LOOP (A, B) AS
            SELECT L.A, L.B FROM LOOP L
            """)


class TestGroupByTranslation:
    def test_single_collection_aggregate_is_nest(self, db):
        t = lera(db, "SELECT Src, MakeSet(Dst) FROM EDGE GROUP BY Src")
        assert is_fun(t, "NEST")
        assert "'SET'" in term_to_str(t) or "SET" in term_to_str(t)

    def test_makelist_nest_kind(self, db):
        t = lera(db, "SELECT Src, MakeList(Dst) FROM EDGE GROUP BY Src")
        assert "LIST" in term_to_str(t.args[2])

    def test_scalar_aggregate_projection(self, db):
        t = lera(db, "SELECT Src, COUNT(Dst) FROM EDGE GROUP BY Src")
        assert is_fun(t, "PROJECTION")
        assert "COUNT" in term_to_str(t)

    def test_multiple_aggregates(self, db):
        t = lera(db, "SELECT Src, SUM(Dst), MAX(Dst) FROM EDGE "
                     "GROUP BY Src")
        rendered = term_to_str(t)
        assert "SUM" in rendered and "MAX" in rendered

    def test_selected_nongrouped_column_rejected(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT Src, Dst, MakeSet(Dst) FROM EDGE "
                     "GROUP BY Src")

    def test_group_by_without_aggregate_rejected(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT Src FROM EDGE GROUP BY Src")

    def test_unselected_group_column_rejected(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT MakeSet(Dst) FROM EDGE GROUP BY Src")

    def test_non_aggregate_expression_rejected(self, db):
        with pytest.raises(TranslationError):
            lera(db, "SELECT Src + 1, MakeSet(Dst) FROM EDGE "
                     "GROUP BY Src")


class TestGroupByExecution:
    def test_makeset_groups(self, db):
        db.execute("INSERT INTO EDGE VALUES (1, 2), (1, 3), (2, 4)")
        rows = db.query(
            "SELECT Src, MakeSet(Dst) FROM EDGE GROUP BY Src"
        ).rows
        from repro.adt.values import SetValue
        as_dict = dict(rows)
        assert as_dict[1] == SetValue([2, 3])
        assert as_dict[2] == SetValue([4])

    def test_count_groups(self, db):
        db.execute("INSERT INTO EDGE VALUES (1, 2), (1, 3), (2, 4)")
        rows = db.query(
            "SELECT Src, COUNT(Dst) FROM EDGE GROUP BY Src"
        ).rows
        assert dict(rows) == {1: 2, 2: 1}

    def test_sum_and_max_together(self, db):
        db.execute("INSERT INTO EDGE VALUES (1, 2), (1, 3), (2, 4)")
        rows = db.query(
            "SELECT Src, SUM(Dst), MAX(Dst) FROM EDGE GROUP BY Src"
        ).rows
        assert sorted(rows) == [(1, 5, 3), (2, 4, 4)]

    def test_makeset_with_scalar_aggregate(self, db):
        db.execute("INSERT INTO EDGE VALUES (1, 2), (1, 2), (1, 3)")
        rows = db.query(
            "SELECT Src, MakeSet(Dst), COUNT(Dst) FROM EDGE GROUP BY Src"
        ).rows
        from repro.adt.values import SetValue
        assert rows == [(1, SetValue([2, 3]), 3)]


class TestInsertTranslation:
    def test_coerced_values(self, db):
        db.execute("INSERT INTO NODE VALUES (1, 'a')")
        assert db.catalog.rows("NODE") == [(1, "a")]

    def test_bad_literal(self, db):
        with pytest.raises(Exception):
            db.execute("INSERT INTO NODE VALUES (Src, 'a')")


class TestArrayLiterals:
    def test_array_literal_round_trip(self, db):
        db.execute("TABLE GRID (Id : NUMERIC, Cells : ARRAY OF NUMERIC)")
        db.execute("INSERT INTO GRID VALUES (1, ARRAY(9, 8, 7))")
        from repro.adt.values import ArrayValue
        (row,) = db.catalog.rows("GRID")
        assert row[1] == ArrayValue([9, 8, 7])

    def test_array_indexing_in_query(self, db):
        db.execute("TABLE GRID2 (Id : NUMERIC, Cells : ARRAY OF NUMERIC)")
        db.execute("INSERT INTO GRID2 VALUES (1, ARRAY(9, 8)), "
                   "(2, ARRAY(5, 6))")
        rows = db.query(
            "SELECT Id FROM GRID2 WHERE AT(Cells, 0) = 9"
        ).rows
        assert rows == [(1,)]

    def test_bag_literal(self, db):
        db.execute("TABLE BG (Id : NUMERIC, Vals : BAG OF NUMERIC)")
        db.execute("INSERT INTO BG VALUES (1, BAG(3, 3, 4))")
        from repro.adt.values import BagValue
        (row,) = db.catalog.rows("BG")
        assert row[1] == BagValue([3, 3, 4])
