"""DELETE / UPDATE / SELECT * tests."""

import pytest

from repro import Database
from repro.errors import TranslationError


@pytest.fixture
def db():
    d = Database()
    d.execute("""
    TYPE Category ENUMERATION OF ('a', 'b');
    TABLE T (Id : NUMERIC, Tag : CHAR, Cat : Category)
    """)
    d.execute("INSERT INTO T VALUES (1, 'x', 'a'), (2, 'y', 'b'), "
              "(3, 'z', 'a')")
    return d


class TestDelete:
    def test_delete_with_predicate(self, db):
        db.execute("DELETE FROM T WHERE Cat = 'a'")
        assert [r[0] for r in db.catalog.rows("T")] == [2]

    def test_delete_all(self, db):
        db.execute("DELETE FROM T")
        assert db.catalog.rows("T") == []

    def test_delete_nothing(self, db):
        db.execute("DELETE FROM T WHERE Id > 100")
        assert len(db.catalog.rows("T")) == 3

    def test_delete_with_function_predicate(self, db):
        db.execute("DELETE FROM T WHERE MEMBER(Tag, MAKESET('x', 'z'))")
        assert [r[0] for r in db.catalog.rows("T")] == [2]

    def test_delete_from_view_rejected(self, db):
        db.execute("CREATE VIEW V (Id) AS SELECT Id FROM T")
        with pytest.raises(TranslationError):
            db.execute("DELETE FROM V")

    def test_delete_unknown_column(self, db):
        with pytest.raises(TranslationError):
            db.execute("DELETE FROM T WHERE Nope = 1")


class TestUpdate:
    def test_update_single_column(self, db):
        db.execute("UPDATE T SET Id = Id + 10 WHERE Tag = 'y'")
        assert sorted(r[0] for r in db.catalog.rows("T")) == [1, 3, 12]

    def test_update_multiple_columns(self, db):
        db.execute("UPDATE T SET Id = 0, Tag = 'w' WHERE Id = 1")
        row = [r for r in db.catalog.rows("T") if r[1] == "w"]
        assert row == [(0, "w", "a")]

    def test_update_all_rows(self, db):
        db.execute("UPDATE T SET Id = Id * 2")
        assert sorted(r[0] for r in db.catalog.rows("T")) == [2, 4, 6]

    def test_update_enforces_types(self, db):
        with pytest.raises(Exception):
            db.execute("UPDATE T SET Cat = 'zz' WHERE Id = 1")

    def test_update_view_rejected(self, db):
        db.execute("CREATE VIEW V (Id) AS SELECT Id FROM T")
        with pytest.raises(TranslationError):
            db.execute("UPDATE V SET Id = 1")

    def test_update_field_access_expression(self, db):
        db.execute("UPDATE T SET Tag = Cat WHERE Id = 1")
        assert [r for r in db.catalog.rows("T") if r[0] == 1][0][1] == "a"


class TestSelectStar:
    def test_star_single_table(self, db):
        rows = db.query("SELECT * FROM T WHERE Id = 2").rows
        assert rows == [(2, "y", "b")]

    def test_star_schema_names(self, db):
        result = db.query("SELECT * FROM T WHERE Id = 2")
        assert result.schema.names == ("Id", "Tag", "Cat")

    def test_star_over_join(self, db):
        db.execute("TABLE U (Ref : NUMERIC)")
        db.execute("INSERT INTO U VALUES (1), (3)")
        rows = db.query("SELECT * FROM T, U WHERE Id = Ref").rows
        assert sorted(rows) == [(1, "x", "a", 1), (3, "z", "a", 3)]

    def test_star_mixed_with_expressions(self, db):
        rows = db.query("SELECT Id + 100, * FROM T WHERE Id = 1").rows
        assert rows == [(101, 1, "x", "a")]

    def test_star_respects_rewriting(self, db):
        q = "SELECT * FROM T WHERE Id = 1 AND Id = 1"
        assert db.query(q, rewrite=True).rows == \
            db.query(q, rewrite=False).rows


class TestHaving:
    @pytest.fixture
    def gdb(self):
        d = Database()
        d.execute("TABLE E (Src : NUMERIC, Dst : NUMERIC)")
        d.execute("INSERT INTO E VALUES (1,2),(1,3),(1,4),(2,5),(3,6),"
                  "(3,7)")
        return d

    def test_having_on_aliased_aggregate(self, gdb):
        rows = gdb.query("SELECT Src, COUNT(Dst) AS N FROM E "
                         "GROUP BY Src HAVING N > 1").rows
        assert sorted(rows) == [(1, 3), (3, 2)]

    def test_having_on_derived_name(self, gdb):
        rows = gdb.query("SELECT Src, COUNT(Dst) FROM E GROUP BY Src "
                         "HAVING Count > 2").rows
        assert rows == [(1, 3)]

    def test_having_on_group_column(self, gdb):
        rows = gdb.query("SELECT Src, SUM(Dst) FROM E GROUP BY Src "
                         "HAVING Src > 1").rows
        assert sorted(rows) == [(2, 5), (3, 13)]

    def test_having_with_collection_predicate(self, gdb):
        rows = gdb.query("SELECT Src, MakeSet(Dst) AS Ds FROM E "
                         "GROUP BY Src HAVING MEMBER(5, Ds)").rows
        assert [r[0] for r in rows] == [2]

    def test_having_requires_group_by(self, gdb):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            gdb.query("SELECT Src FROM E HAVING Src > 1")

    def test_having_rewrite_equivalence(self, gdb):
        q = ("SELECT Src, COUNT(Dst) AS N FROM E GROUP BY Src "
             "HAVING N > 1 AND Src < 3")
        assert set(gdb.query(q, rewrite=True).rows) == \
            set(gdb.query(q, rewrite=False).rows)

    def test_having_on_group_column_pushes_below_nest(self, gdb):
        """Rule interplay: HAVING over a grouping column becomes a
        filter that the permutation rules push below the NEST."""
        optimized = gdb.optimize(
            "SELECT Src, MakeSet(Dst) AS Ds FROM E GROUP BY Src "
            "HAVING Src > 2"
        )
        fired = optimized.rewrite_result.rules_fired()
        assert any(n.startswith("search_nest_push") for n in fired)
        from repro.terms.printer import term_to_str
        rendered = term_to_str(optimized.final).replace(" ", "")
        assert "NEST(SEARCH" in rendered


class TestDrop:
    def test_drop_table(self, db):
        db.execute("DROP TABLE T")
        assert not db.catalog.is_table("T")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW V (Id) AS SELECT Id FROM T")
        db.execute("DROP VIEW V")
        assert not db.catalog.is_view("V")

    def test_drop_unknown(self, db):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE NOPE")

    def test_drop_requires_kind(self, db):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            db.execute("DROP INDEX I")

    def test_name_reusable_after_drop(self, db):
        db.execute("DROP TABLE T")
        db.execute("TABLE T (X : INT)")
        assert db.catalog.relation_schema("T").names == ("X",)


class TestCountStar:
    @pytest.fixture
    def cdb(self):
        d = Database()
        d.execute("TABLE E (Src : NUMERIC, Dst : NUMERIC)")
        d.execute("INSERT INTO E VALUES (1,2),(1,3),(2,5)")
        return d

    def test_count_star_groups(self, cdb):
        rows = cdb.query("SELECT Src, COUNT(*) FROM E GROUP BY Src").rows
        assert sorted(rows) == [(1, 2), (2, 1)]

    def test_count_star_with_having(self, cdb):
        rows = cdb.query("SELECT Src, COUNT(*) AS N FROM E "
                         "GROUP BY Src HAVING N > 1").rows
        assert rows == [(1, 2)]

    def test_star_only_for_count(self, cdb):
        from repro.errors import TranslationError
        with pytest.raises(TranslationError):
            cdb.query("SELECT Src, SUM(*) FROM E GROUP BY Src")
