"""ESQL lexer tests."""

import pytest

from repro.errors import ParseError
from repro.esql.lexer import tokenize_sql


def kinds(source):
    return [t.kind for t in tokenize_sql(source)]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select From WHERE")[:3] == \
            ["SELECT", "FROM", "WHERE"]

    def test_identifier_keeps_case(self):
        tok = tokenize_sql("FilmActors")[0]
        assert tok.kind == "IDENT" and tok.text == "FilmActors"

    def test_numbers(self):
        toks = tokenize_sql("42 3.5")
        assert [t.text for t in toks[:2]] == ["42", "3.5"]

    def test_string_with_escape(self):
        tok = tokenize_sql("'o''brien'")[0]
        assert tok.text == "o'brien"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize_sql("'oops")

    def test_comment(self):
        assert kinds("a -- comment\n b") == ["IDENT", "IDENT", "EOF"]

    def test_operators(self):
        toks = tokenize_sql("<= >= <> = < > + - * /")
        assert [t.kind for t in toks[:-1]] == \
            ["OP"] * 8 + ["STAR", "OP"]

    def test_punctuation(self):
        assert kinds("( ) , ; . :") == \
            ["LPAREN", "RPAREN", "COMMA", "SEMI", "DOT", "COLON", "EOF"]

    def test_collection_keywords(self):
        assert kinds("SET BAG LIST ARRAY")[:4] == \
            ["SET", "BAG", "LIST", "ARRAY"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize_sql("@")

    def test_position_tracking(self):
        toks = tokenize_sql("a\n  bb")
        assert toks[1].line == 2
        assert toks[1].column == 3
