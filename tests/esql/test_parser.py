"""ESQL parser tests."""

import pytest

from repro.errors import ParseError
from repro.esql import ast
from repro.esql.parser import (parse_expression, parse_query, parse_script,
                               parse_statement)


class TestTypeDefs:
    def test_enumeration(self):
        stmt = parse_statement(
            "TYPE Category ENUMERATION OF ('Comedy', 'Western')"
        )
        assert isinstance(stmt, ast.EnumTypeDef)
        assert stmt.literals == ("Comedy", "Western")

    def test_tuple_type(self):
        stmt = parse_statement("TYPE Point TUPLE (ABS : REAL, ORD : REAL)")
        assert isinstance(stmt, ast.TupleTypeDef)
        assert not stmt.is_object
        assert stmt.fields[0][0] == "ABS"

    def test_object_tuple(self):
        stmt = parse_statement(
            "TYPE Person OBJECT TUPLE (Name : CHAR, "
            "Firstname : SET OF CHAR)"
        )
        assert stmt.is_object
        assert isinstance(stmt.fields[1][1], ast.CollectionOf)

    def test_subtype_with_function(self):
        stmt = parse_statement(
            "TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)"
            " FUNCTION IncreaseSalary(This Actor, Val NUMERIC)"
        )
        assert stmt.supertype == "Person"
        assert stmt.functions == ("IncreaseSalary",)
        assert stmt.is_object

    def test_collection_type(self):
        stmt = parse_statement("TYPE Text LIST OF CHAR")
        assert isinstance(stmt, ast.CollTypeDef)
        assert stmt.kind == "LIST"

    def test_nested_collection_of_tuple(self):
        stmt = parse_statement(
            "TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT)"
        )
        assert isinstance(stmt.element, ast.TupleOf)

    def test_subtype_requires_tuple_body(self):
        with pytest.raises(ParseError):
            parse_statement("TYPE T SUBTYPE OF U LIST OF CHAR")


class TestTableAndView:
    def test_table(self):
        stmt = parse_statement(
            "TABLE FILM (Numf : NUMERIC, Title : Text)"
        )
        assert isinstance(stmt, ast.TableDef)
        assert len(stmt.columns) == 2

    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE T (A : INT)")
        assert isinstance(stmt, ast.TableDef)

    def test_view_with_columns(self):
        stmt = parse_statement(
            "CREATE VIEW V (A, B) AS SELECT X, Y FROM T"
        )
        assert isinstance(stmt, ast.ViewDef)
        assert stmt.columns == ("A", "B")

    def test_recursive_view_in_parens(self):
        stmt = parse_statement("""
        CREATE VIEW BT (R1, R2) AS
        ( SELECT R1, R2 FROM D
          UNION
          SELECT B1.R1, B2.R2 FROM BT B1, BT B2 WHERE B1.R2 = B2.R1 )
        """)
        assert isinstance(stmt.query, ast.UnionSelect)
        assert len(stmt.query.selects) == 2


class TestInsert:
    def test_plain_rows(self):
        stmt = parse_statement("INSERT INTO T VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.InsertStmt)
        assert len(stmt.rows) == 2

    def test_collection_literals(self):
        stmt = parse_statement(
            "INSERT INTO T VALUES (LIST('Z','o'), SET('Adventure'))"
        )
        lst, st = stmt.rows[0]
        assert isinstance(lst, ast.CollectionLit) and lst.kind == "LIST"
        assert isinstance(st, ast.CollectionLit) and st.kind == "SET"

    def test_new_object(self):
        stmt = parse_statement(
            "INSERT INTO T VALUES (NEW Actor('Quinn', 50000))"
        )
        (obj,) = stmt.rows[0]
        assert isinstance(obj, ast.NewObject)
        assert obj.type_name == "Actor"

    def test_tuple_literal(self):
        stmt = parse_statement("INSERT INTO T VALUES (TUPLE(1, 2))")
        (tup,) = stmt.rows[0]
        assert isinstance(tup, ast.TupleLit)


class TestSelect:
    def test_basic(self):
        q = parse_query("SELECT A, B FROM T WHERE A = 1")
        assert len(q.items) == 2
        assert isinstance(q.where, ast.BinOp)

    def test_aliases(self):
        q = parse_query("SELECT A AS X FROM T U")
        assert q.items[0].alias == "X"
        assert q.from_items[0].alias == "U"

    def test_qualified_columns(self):
        q = parse_query("SELECT T.A FROM T WHERE T.A = 1")
        assert q.items[0].expr.qualifier == "T"

    def test_function_calls(self):
        q = parse_query(
            "SELECT Title FROM FILM "
            "WHERE MEMBER('Adventure', Categories) "
            "AND ALL(Salary(Actors) > 10000)"
        )
        conj = q.where
        assert isinstance(conj, ast.AndExpr)
        member, quant = conj.operands
        assert isinstance(member, ast.FnCall)
        assert quant.name == "ALL"

    def test_group_by(self):
        q = parse_query(
            "SELECT Title, MakeSet(Refactor) FROM FILM, APPEARS_IN "
            "WHERE FILM.Numf = APPEARS_IN.Numf GROUP BY Title"
        )
        assert len(q.group_by) == 1
        assert q.group_by[0].name == "Title"

    def test_union(self):
        q = parse_query("SELECT A FROM T UNION SELECT B FROM U")
        assert isinstance(q, ast.UnionSelect)

    def test_distinct_accepted(self):
        q = parse_query("SELECT DISTINCT A FROM T")
        assert len(q.items) == 1

    def test_operator_precedence(self):
        e = parse_expression("a + b * c = d OR NOT e > f")
        assert isinstance(e, ast.OrExpr)

    def test_negative_number(self):
        e = parse_expression("-5")
        assert isinstance(e, ast.NumberLit) and e.value == -5

    def test_unary_minus_expression(self):
        e = parse_expression("-x")
        assert isinstance(e, ast.BinOp) and e.op == "-"

    def test_parenthesised_condition(self):
        e = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(e, ast.AndExpr)


class TestScripts:
    def test_multiple_statements(self):
        stmts = parse_script(
            "TABLE T (A : INT); INSERT INTO T VALUES (1); "
            "SELECT A FROM T"
        )
        assert len(stmts) == 3

    def test_trailing_semicolon(self):
        assert len(parse_script("TABLE T (A : INT);")) == 1

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_script("SELECT A FROM T garbage !")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("DANCE NOW")

    def test_create_requires_table_or_view(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE INDEX I ON T")
