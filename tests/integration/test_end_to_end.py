"""End-to-end scenarios: rewrite-on vs rewrite-off equivalence.

The formal model of the rewriter is set semantics (the paper's
deductive setting), so equivalence assertions compare row sets.
"""

import random

import pytest

from repro import Database, EvalStats


def graph_db(edges):
    db = Database()
    db.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
    for a, b in edges:
        db.execute(f"INSERT INTO EDGE VALUES ({a}, {b})")
    return db


def rows_set(db, query, rewrite):
    return set(db.query(query, rewrite=rewrite).rows)


def assert_equivalent(db, query):
    assert rows_set(db, query, True) == rows_set(db, query, False)


class TestViewStacks:
    def make_db(self):
        db = Database()
        db.execute("""
        TABLE SALE (Shop : NUMERIC, Item : NUMERIC, Amount : NUMERIC);
        CREATE VIEW BIG_SALE (Shop, Item, Amount) AS
          SELECT Shop, Item, Amount FROM SALE WHERE Amount > 10;
        CREATE VIEW BIG_SHOP1 (Item, Amount) AS
          SELECT Item, Amount FROM BIG_SALE WHERE Shop = 1
        """)
        rng = random.Random(3)
        for __ in range(60):
            db.execute(
                f"INSERT INTO SALE VALUES ({rng.randint(1, 4)}, "
                f"{rng.randint(1, 20)}, {rng.randint(1, 40)})"
            )
        return db

    def test_stacked_views_equivalent(self):
        db = self.make_db()
        assert_equivalent(db, "SELECT Item FROM BIG_SHOP1 WHERE Amount > 30")

    def test_stacked_views_merge_to_one_search(self):
        db = self.make_db()
        opt = db.optimize("SELECT Item FROM BIG_SHOP1 WHERE Amount > 30")
        from repro.terms.printer import term_to_str
        assert term_to_str(opt.final).count("SEARCH") == 1

    def test_merging_reduces_intermediate_results(self):
        db = self.make_db()
        q = "SELECT Item FROM BIG_SHOP1 WHERE Amount > 30"
        __, stats_opt, ___ = db.query_with_stats(q, rewrite=True)
        __, stats_plain, ___ = db.query_with_stats(q, rewrite=False)
        assert stats_opt.tuples_output <= stats_plain.tuples_output


class TestUnionScenarios:
    def make_db(self):
        db = Database()
        db.execute("""
        TABLE OLD_SALE (Shop : NUMERIC, Amount : NUMERIC);
        TABLE NEW_SALE (Shop : NUMERIC, Amount : NUMERIC);
        CREATE VIEW ALL_SALE (Shop, Amount) AS
          SELECT Shop, Amount FROM OLD_SALE
          UNION
          SELECT Shop, Amount FROM NEW_SALE
        """)
        rng = random.Random(5)
        for table in ("OLD_SALE", "NEW_SALE"):
            for __ in range(40):
                db.execute(
                    f"INSERT INTO {table} VALUES "
                    f"({rng.randint(1, 5)}, {rng.randint(1, 100)})"
                )
        return db

    def test_selection_over_union_equivalent(self):
        db = self.make_db()
        assert_equivalent(db, "SELECT Amount FROM ALL_SALE WHERE Shop = 2")

    def test_join_with_union_view_equivalent(self):
        db = self.make_db()
        assert_equivalent(
            db,
            "SELECT A.Amount, B.Amount FROM ALL_SALE A, OLD_SALE B "
            "WHERE A.Shop = B.Shop AND A.Amount > 90",
        )


class TestRecursionScenarios:
    def reach_db(self, edges):
        db = graph_db(edges)
        db.execute("""
        CREATE VIEW REACH (Src, Dst) AS
        ( SELECT Src, Dst FROM EDGE
          UNION
          SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
        """)
        return db

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_graph_bound_query(self, seed):
        rng = random.Random(seed)
        edges = list({(rng.randint(1, 15), rng.randint(1, 15))
                      for __ in range(30)})
        db = self.reach_db(edges)
        assert_equivalent(db, "SELECT Dst FROM REACH WHERE Src = 3")

    def test_bound_second_column(self):
        db = self.reach_db([(i, i + 1) for i in range(1, 12)])
        assert_equivalent(db, "SELECT Src FROM REACH WHERE Dst = 9")

    def test_magic_does_less_work_on_chains(self):
        db = self.reach_db([(i, i + 1) for i in range(1, 30)])
        q = "SELECT Dst FROM REACH WHERE Src = 25"
        __, opt_stats, optimized = db.query_with_stats(q, rewrite=True)
        __, plain_stats, ___ = db.query_with_stats(q, rewrite=False)
        assert "fix_alexander" in optimized.rewrite_result.rules_fired()
        assert opt_stats.total_work < plain_stats.total_work

    def test_unbound_query_unchanged(self):
        db = self.reach_db([(1, 2), (2, 3)])
        assert_equivalent(db, "SELECT Src, Dst FROM REACH")

    def test_cyclic_graph(self):
        db = self.reach_db([(1, 2), (2, 3), (3, 1), (3, 4)])
        assert_equivalent(db, "SELECT Dst FROM REACH WHERE Src = 1")


class TestSemanticScenarios:
    def make_db(self):
        db = Database()
        db.execute("""
        TYPE Status ENUMERATION OF ('open', 'closed', 'void');
        TABLE TICKET (Id : NUMERIC, State : Status, Price : NUMERIC)
        """)
        db.add_integrity_constraint(
            "ic_status: F(x) / ISA(x, Status) --> "
            "F(x) AND MEMBER(x, MAKESET('open', 'closed', 'void')) /"
        )
        db.add_integrity_constraint(
            "ic_price: F(x) / ISA(x, Numeric) --> F(x) AND x >= 0 /"
            .replace("Numeric", "NUMERIC")
        )
        for i in range(20):
            state = ["open", "closed", "void"][i % 3]
            db.execute(
                f"INSERT INTO TICKET VALUES ({i}, '{state}', {i * 3})"
            )
        return db

    def test_impossible_state_answers_empty_without_scanning(self):
        db = self.make_db()
        result, stats, optimized = db.query_with_stats(
            "SELECT Id FROM TICKET WHERE State = 'lost'"
        )
        assert result.rows == []
        assert stats.tuples_scanned == 0

    def test_possible_state_unaffected(self):
        db = self.make_db()
        assert_equivalent(db, "SELECT Id FROM TICKET WHERE State = 'open'")

    def test_negative_price_contradicts_constraint(self):
        db = self.make_db()
        result, stats, __ = db.query_with_stats(
            "SELECT Id FROM TICKET WHERE Price < 0"
        )
        assert result.rows == []


class TestComplexObjects:
    def test_quantifiers_after_rewrite(self):
        db = Database()
        db.execute("""
        TABLE TEAM (Tid : NUMERIC, Scores : SET OF NUMERIC)
        """)
        db.execute("INSERT INTO TEAM VALUES (1, SET(10, 20)), "
                   "(2, SET(1, 50)), (3, SET(30))")
        q = "SELECT Tid FROM TEAM WHERE ALL(Scores > 5)"
        assert rows_set(db, q, True) == {(1,), (3,)}
        assert_equivalent(db, q)

    def test_exist_quantifier(self):
        db = Database()
        db.execute("TABLE TEAM (Tid : NUMERIC, Scores : SET OF NUMERIC)")
        db.execute("INSERT INTO TEAM VALUES (1, SET(10, 20)), (2, SET(1))")
        q = "SELECT Tid FROM TEAM WHERE EXIST(Scores > 15)"
        assert rows_set(db, q, True) == {(1,)}

    def test_nested_group_query_equivalence(self):
        db = Database()
        db.execute("TABLE SALE (Shop : NUMERIC, Amount : NUMERIC)")
        for i in range(30):
            db.execute(f"INSERT INTO SALE VALUES ({i % 5}, {i})")
        db.execute("""
        CREATE VIEW PER_SHOP (Shop, Amounts) AS
        SELECT Shop, MakeSet(Amount) FROM SALE GROUP BY Shop
        """)
        assert_equivalent(
            db, "SELECT Shop FROM PER_SHOP WHERE Shop > 2"
        )
