"""Error-message quality: common mistakes produce actionable text."""

import pytest

from repro import Database
from repro.errors import ReproError


@pytest.fixture
def db():
    d = Database()
    d.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
    return d


def message_of(db, statement):
    with pytest.raises(ReproError) as err:
        db.execute(statement)
    return str(err.value)


class TestMessages:
    def test_unknown_column_lists_candidates(self, db):
        msg = message_of(db, "SELECT Nope FROM EDGE")
        assert "Nope" in msg

    def test_unknown_qualified_column_lists_schema(self, db):
        msg = message_of(db, "SELECT E.Nope FROM EDGE E")
        assert "Src" in msg and "Dst" in msg

    def test_unknown_relation_named(self, db):
        msg = message_of(db, "SELECT A FROM GHOST")
        assert "GHOST" in msg

    def test_ambiguous_column_suggests_qualifying(self, db):
        msg = message_of(db, "SELECT Src FROM EDGE A, EDGE B")
        assert "qualify" in msg.lower()

    def test_unknown_function_explains(self, db):
        msg = message_of(db, "SELECT WARP(Src) FROM EDGE")
        assert "WARP" in msg
        assert "attribute" in msg or "function" in msg

    def test_parse_error_reports_position(self, db):
        msg = message_of(db, "SELECT FROM EDGE")
        assert "line 1" in msg

    def test_duplicate_table(self, db):
        msg = message_of(db, "TABLE EDGE (X : INT)")
        assert "EDGE" in msg and "exists" in msg

    def test_enumeration_value_rejected_on_insert(self, db):
        db.execute("TYPE G ENUMERATION OF ('a', 'b')")
        db.execute("TABLE K (V : G)")
        msg = message_of(db, "INSERT INTO K VALUES ('z')")
        assert "'z'" in msg and "G" in msg

    def test_union_width_mismatch_states_widths(self, db):
        msg = message_of(
            db, "SELECT Src, Dst FROM EDGE UNION SELECT Src FROM EDGE"
        )
        assert "width" in msg.lower()

    def test_subquery_position_restriction_explained(self, db):
        msg = message_of(
            db,
            "SELECT Src FROM EDGE WHERE Src = 1 OR "
            "Src IN (SELECT Dst FROM EDGE)",
        )
        assert "top-level" in msg
