"""Smoke tests: every example script runs to completion."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(script), run_name="__main__")
    output = buffer.getvalue()
    assert output.strip(), f"{script.name} printed nothing"


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart", "film_catalog", "recursive_reachability",
        "extensibility", "semantic_optimization", "custom_optimizer",
    } <= names


def test_reachability_example_reports_speedup():
    buffer = io.StringIO()
    script = [p for p in EXAMPLES if p.stem == "recursive_reachability"]
    with redirect_stdout(buffer):
        runpy.run_path(str(script[0]), run_name="__main__")
    assert "less work" in buffer.getvalue()
