"""Integration tests reproducing the paper's figures executably.

F2 -- the Figure 2 schema; F3 -- the Figure 3 query and its section 3.1
compound-search form; F4 -- the Figure 4 nested view with the ALL
quantifier; F5 -- the Figure 5 recursive view and its section 3.2
fixpoint form.
"""

import pytest

from repro.adt.types import CollectionType, ObjectType
from repro.adt.values import ListValue, SetValue
from repro.terms.printer import term_to_str
from repro.terms.term import is_fun

from tests.conftest import make_film_db, load_dominate_chain


@pytest.fixture
def db():
    return make_film_db()


class TestFigure2Schema:
    def test_types_defined(self, db):
        ts = db.catalog.type_system
        for name in ("Category", "Point", "Person", "Actor", "Text",
                     "SetCategory", "Pairs"):
            assert ts.is_defined(name)

    def test_actor_subtype_of_person(self, db):
        ts = db.catalog.type_system
        assert ts.isa_name("Actor", "Person")

    def test_actor_value_includes_inherited_fields(self, db):
        actor = db.catalog.type_system.lookup("Actor")
        assert isinstance(actor, ObjectType)
        names = set(actor.value_type.field_names)
        assert {"Name", "Firstname", "Caricature", "Salary"} <= names

    def test_actor_method_recorded(self, db):
        actor = db.catalog.type_system.lookup("Actor")
        assert "IncreaseSalary" in actor.methods

    def test_tables_defined(self, db):
        for name in ("FILM", "APPEARS_IN", "DOMINATE"):
            assert db.catalog.is_table(name)

    def test_film_attribute_types(self, db):
        schema = db.catalog.relation_schema("FILM")
        title = schema.attr_type(schema.index_of("Title"))
        cats = schema.attr_type(schema.index_of("Categories"))
        assert isinstance(title, CollectionType) and title.kind == "LIST"
        assert isinstance(cats, CollectionType) and cats.kind == "SET"

    def test_values_stored_as_adts(self, db):
        row = db.catalog.rows("FILM")[0]
        assert isinstance(row[1], ListValue)
        assert isinstance(row[2], SetValue)


FIGURE3_QUERY = """
SELECT Title, Categories, Salary(Refactor)
FROM FILM, APPEARS_IN
WHERE FILM.Numf = APPEARS_IN.Numf
AND Name(Refactor) = 'Quinn'
AND MEMBER('Adventure', Categories)
"""


class TestFigure3:
    def test_translates_to_single_search(self, db):
        """Section 3.1: the query maps to one compound search over
        (FILM, APPEARS_IN)."""
        optimized = db.optimize(FIGURE3_QUERY)
        final = optimized.final
        assert is_fun(final, "SEARCH")
        rendered = term_to_str(final)
        assert rendered.count("SEARCH") == 1
        assert "FILM" in rendered and "APPEARS_IN" in rendered

    def test_section31_search_components(self, db):
        """The compound search of section 3.1, piece by piece:
        search((APPEARS_IN, FILM), [join ^ name = 'Quinn' ^ member],
               (Title, Categories, salary))."""
        from repro.lera import ops
        from repro.terms.term import conjuncts
        optimized = db.optimize(FIGURE3_QUERY)
        inputs, qual, items = ops.search_parts(optimized.final)
        # two base relations, no intermediate operators
        assert {term_to_str(r) for r in inputs} == \
            {"FILM", "APPEARS_IN"}
        # the three conjunct families of the paper's qualification
        rendered = [term_to_str(c) for c in conjuncts(qual)]
        assert any("MEMBER('Adventure'" in c for c in rendered)
        assert any("'Quinn'" in c and "'Name'" in c for c in rendered)
        assert any("#1.1" in c and "#2.1" in c for c in rendered)
        # three projections: Title, Categories, salary(Refactor)
        assert len(items) == 3
        item_strs = [term_to_str(i) for i in items]
        assert any("'Salary'" in s for s in item_strs)

    def test_conversion_functions_inserted(self, db):
        """Section 3.3: Salary(Refactor) becomes
        PROJECT(VALUE(Refactor), Salary)."""
        optimized = db.optimize(FIGURE3_QUERY)
        rendered = term_to_str(optimized.final)
        assert "PROJECT(VALUE(" in rendered
        assert "'Salary'" in rendered
        assert "'Name'" in rendered

    def test_query_answers(self, db):
        rows = db.query(FIGURE3_QUERY).rows
        # Quinn appears in films 1 (Adventure) and 2 (Comedy+Adventure)
        assert len(rows) == 2
        for title, cats, salary in rows:
            assert salary == 50000
            assert "Adventure" in cats

    def test_rewrite_preserves_answers(self, db):
        plain = db.query(FIGURE3_QUERY, rewrite=False).rows
        opt = db.query(FIGURE3_QUERY, rewrite=True).rows
        assert sorted(map(repr, plain)) == sorted(map(repr, opt))


FIGURE4_VIEW = """
CREATE VIEW FilmActors (Title, Categories, Actors) AS
SELECT Title, Categories, MakeSet(Refactor)
FROM FILM, APPEARS_IN
WHERE FILM.Numf = APPEARS_IN.Numf
GROUP BY Title, Categories
"""

FIGURE4_QUERY = """
SELECT Title FROM FilmActors
WHERE MEMBER('Adventure', Categories)
AND ALL(Salary(Actors) > 10000)
"""


class TestFigure4:
    def test_view_is_nest_shaped(self, db):
        db.execute(FIGURE4_VIEW)
        view = db.catalog.view("FILMACTORS")
        assert is_fun(view.term, "NEST")
        assert view.schema.names == ("Title", "Categories", "Actors")

    def test_actors_attribute_is_a_set(self, db):
        db.execute(FIGURE4_VIEW)
        view = db.catalog.view("FILMACTORS")
        actors = view.schema.attr_type(3)
        assert isinstance(actors, CollectionType)
        assert actors.kind == "SET"

    def test_query_result(self, db):
        """Only Zorro qualifies: Up has Bo at 5000."""
        db.execute(FIGURE4_VIEW)
        rows = db.query(FIGURE4_QUERY).rows
        assert rows == [(ListValue("Zorro"),)]

    def test_rewrite_preserves_answers(self, db):
        db.execute(FIGURE4_VIEW)
        plain = db.query(FIGURE4_QUERY, rewrite=False).rows
        opt = db.query(FIGURE4_QUERY, rewrite=True).rows
        assert plain == opt


FIGURE5_VIEW = """
CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS
( SELECT Refactor1, Refactor2 FROM DOMINATE
  UNION
  SELECT B1.Refactor1, B2.Refactor2
  FROM BETTER_THAN B1, BETTER_THAN B2
  WHERE B1.Refactor2 = B2.Refactor1 )
"""


class TestFigure5:
    def setup_chain(self, db):
        load_dominate_chain(db, ["Alma", "Bela", "Cleo", "Dana", "Quinn"])
        db.execute(FIGURE5_VIEW)

    def test_view_is_fix_shaped(self, db):
        """Section 3.2: the recursive view maps to
        fix(BETTER_THAN, union({DOMINATE-part, search(...)}))."""
        self.setup_chain(db)
        view = db.catalog.view("BETTER_THAN")
        assert view.recursive
        assert is_fun(view.term, "FIX")
        body = view.term.args[1]
        assert is_fun(body, "UNION")

    def test_query_dominators_of_quinn(self, db):
        self.setup_chain(db)
        rows = db.query(
            "SELECT Name(Refactor1) FROM BETTER_THAN "
            "WHERE Name(Refactor2) = 'Quinn'"
        ).rows
        names = {r[0] for r in rows}
        assert names == {"Alma", "Bela", "Cleo", "Dana"}

    def test_rewrite_preserves_answers(self, db):
        self.setup_chain(db)
        q = ("SELECT Name(Refactor1) FROM BETTER_THAN "
             "WHERE Name(Refactor2) = 'Quinn'")
        assert sorted(db.query(q, rewrite=False).rows) == \
            sorted(db.query(q, rewrite=True).rows)

    def test_nonlinear_view_linearized_by_rewriter(self, db):
        self.setup_chain(db)
        opt = db.optimize(
            "SELECT Name(Refactor1) FROM BETTER_THAN "
            "WHERE Name(Refactor2) = 'Quinn'"
        )
        assert "fix_linearize" in opt.rewrite_result.rules_fired()
