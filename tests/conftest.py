"""Shared fixtures: the paper's film database (Figure 2) and graph data."""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine.catalog import Catalog
from repro.adt.types import NUMERIC


FIGURE2_SCHEMA = """
TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction',
                              'Western');
TYPE Point TUPLE (ABS : REAL, ORD : REAL);
TYPE Person OBJECT TUPLE (Name : CHAR, Firstname : SET OF CHAR,
                          Caricature : LIST OF Point);
TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
    FUNCTION IncreaseSalary(This Actor, Val NUMERIC);
TYPE Text LIST OF CHAR;
TYPE SetCategory SET OF Category;
TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT);
TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory);
TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor);
TABLE DOMINATE (Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor,
                Score : Pairs)
"""


def make_film_db() -> Database:
    """The Figure 2 schema with a small, deterministic data set."""
    db = Database()
    db.execute(FIGURE2_SCHEMA)
    db.execute("""
    INSERT INTO FILM VALUES
      (1, LIST('Z','o','r','r','o'), SET('Adventure')),
      (2, LIST('U','p'), SET('Comedy', 'Adventure')),
      (3, LIST('N','o','v','a'), SET('Science Fiction'))
    """)
    # actors: Quinn(50k), Rich(20k), Bo(5k), Ann(30k)
    db.execute("""
    INSERT INTO APPEARS_IN VALUES
      (1, NEW Actor('Quinn', SET('A'), LIST(), 50000)),
      (1, NEW Actor('Rich', SET('R'), LIST(), 20000)),
      (2, NEW Actor('Bo', SET('B'), LIST(), 5000)),
      (2, NEW Actor('Quinn', SET('A'), LIST(), 50000)),
      (3, NEW Actor('Ann', SET('A'), LIST(), 30000))
    """)
    return db


def load_dominate_chain(db: Database, names: list[str]) -> None:
    """DOMINATE rows forming a chain name[0] > name[1] > ... (one film).

    Each actor is ONE shared object: object identity is what the
    recursive BETTER_THAN join compares.
    """
    refs = {
        name: db.catalog.new_object(
            "Actor", (name, [name[0]], [], 1)
        )
        for name in names
    }
    for left, right in zip(names, names[1:]):
        db.catalog.insert("DOMINATE", (1, refs[left], refs[right], []))


@pytest.fixture
def film_db() -> Database:
    return make_film_db()


def make_graph_db(edges: list[tuple[int, int]]) -> Database:
    """A plain EDGE(Src, Dst) database with a recursive REACH view."""
    db = Database()
    db.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
    if edges:
        rows = ", ".join(f"({a}, {b})" for a, b in edges)
        db.execute(f"INSERT INTO EDGE VALUES {rows}")
    db.execute("""
    CREATE VIEW REACH (Src, Dst) AS
    ( SELECT Src, Dst FROM EDGE
      UNION
      SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
    """)
    return db


@pytest.fixture
def chain_db() -> Database:
    return make_graph_db([(i, i + 1) for i in range(1, 10)])


@pytest.fixture
def empty_catalog() -> Catalog:
    return Catalog()


@pytest.fixture
def edge_catalog() -> Catalog:
    cat = Catalog()
    cat.define_table("EDGE", [("Src", NUMERIC), ("Dst", NUMERIC)])
    cat.insert_many("EDGE", [(1, 2), (2, 3), (3, 4)])
    return cat
