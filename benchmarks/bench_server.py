"""A11 -- serving overhead and read scaling under the guard.

Three questions, per the concurrency layer's contract:

* what does an *unserved* database pay for the layer existing at all?
  (the null-object fast path: ``db.guard is None`` must cost nothing
  measurable);
* what does a single-threaded caller pay for serving on? (one shared
  lock + admission ticket per statement);
* do concurrent readers actually share? throughput from 1 -> 8
  threads must not collapse (the shared side of the lock admits them
  together; a mutex here would serialize and halve aggregate rates).

Absolute scaling is GIL-bound for this pure-Python evaluator, so the
asserted shape is "readers overlap and aggregate throughput holds",
not a linear speedup; the measured ratios land in EXPERIMENTS.md.
"""

import threading
import time

from repro import Database
from repro.server import AdmissionLimits, Server

QUERY = "SELECT Shop, Amount FROM SALE WHERE Amount > 10"


def _sale_db():
    db = Database()
    db.execute("TABLE SALE (Shop : NUMERIC, Amount : NUMERIC)")
    values = ", ".join(f"({i % 7}, {(i * 13) % 60})" for i in range(120))
    db.execute(f"INSERT INTO SALE VALUES {values}")
    return db


# -- single-thread costs -------------------------------------------------------

def test_unserved_baseline(benchmark):
    db = _sale_db()
    assert db.guard is None  # the fast path really is the null object
    benchmark(lambda: db.query(QUERY))


def test_serving_on_single_thread(benchmark):
    server = Server(_sale_db())
    benchmark(lambda: server.query(QUERY))


def test_serving_off_overhead_is_negligible():
    """An unserved database after this PR vs. the same loop through a
    guard: the None branch must stay within noise (the <5% budget is
    checked over a large sample; the assertion uses a lenient bound so
    CI machines do not flap)."""
    db = _sale_db()
    rounds = 60

    def loop():
        started = time.perf_counter()
        for __ in range(rounds):
            db.query(QUERY)
        return time.perf_counter() - started

    loop()  # warm caches
    unserved = min(loop() for __ in range(3))
    db.enable_serving()
    served = min(loop() for __ in range(3))
    # served pays the lock; unserved must not regress toward it
    assert unserved <= served * 1.25


# -- read scaling --------------------------------------------------------------

def _throughput(server, threads, seconds=0.6):
    """Aggregate queries/second completed by ``threads`` readers."""
    stop = threading.Event()
    counts = [0] * threads

    def reader(slot):
        session = server.open_session(f"bench-{threads}-{slot}")
        while not stop.is_set():
            server.query(QUERY, session=session.id)
            counts[slot] += 1

    workers = [threading.Thread(target=reader, args=(i,))
               for i in range(threads)]
    for w in workers:
        w.start()
    time.sleep(seconds)
    stop.set()
    for w in workers:
        w.join(timeout=30.0)
    return sum(counts) / seconds


def test_readers_scale_without_collapse(capsys):
    server = Server(_sale_db(), limits=AdmissionLimits(
        max_readers=8, max_queue=64, queue_timeout_ms=30000.0,
    ))
    sweep = {n: _throughput(server, n) for n in (1, 2, 4, 8, 32)}
    ratio = sweep[8] / sweep[1]
    with capsys.disabled():
        shape = ", ".join(f"{n}t={rate:.0f}/s"
                          for n, rate in sweep.items())
        print(f"\n[bench_server] read throughput sweep: {shape} "
              f"(1->8 x{ratio:.2f})")
    # shared readers: aggregate throughput must hold, not halve the
    # way an exclusive lock would under 8-way contention
    assert ratio > 0.5
    assert server.stats()["admission"]["shed_total"] == 0


def test_pooled_readers_scale_across_worker_counts(capsys):
    """The execution tier's read-scaling sweep: the same 4-thread read
    workload at 1, 2 and 4 pool workers.  On a multi-core host the
    pool runs eligible reads past the GIL; the asserted shape here is
    functional -- every read really was dispatched to the pool, no
    worker crashed, and throughput does not collapse as workers are
    added -- because CI cores (often just one) cannot prove a speedup,
    only EXPERIMENTS.md records the measured ratios."""
    from repro.pool import PoolConfig

    sweep = {}
    for workers in (1, 2, 4):
        server = Server(_sale_db(), limits=AdmissionLimits(
            max_readers=8, max_queue=64, queue_timeout_ms=30000.0,
        ))
        pool = server.enable_pool(workers, config=PoolConfig(
            workers=workers, monitor_interval_s=0.02,
        ))
        assert pool.wait_ready(timeout_s=120.0, workers=workers)
        sweep[workers] = _throughput(server, threads=4, seconds=0.6)
        summary = pool.summary()
        assert summary["dispatched"] > 0
        assert summary["crashes"] == 0
        counters = server.metrics.snapshot()["counters"]
        # every read was either dispatched to a worker or served by
        # the in-process fallback (a saturated pool degrades, it never
        # drops): the two paths account for the whole workload
        assert (counters.get("pool.dispatched", 0)
                + counters.get("pool.fallbacks", 0)
                >= counters.get("server.requests.read", 0))
        server.close()
    with capsys.disabled():
        shape = ", ".join(f"{n}w={rate:.0f}/s"
                          for n, rate in sweep.items())
        print(f"\n[bench_server] pooled read sweep (4 threads): {shape}")
    # adding seats must never collapse aggregate throughput
    assert sweep[4] > sweep[1] * 0.3


def test_readers_overlap_inside_the_guard():
    """Direct proof of sharing: the peak number of threads inside the
    read side at once must exceed one."""
    server = Server(_sale_db(), limits=AdmissionLimits(
        max_readers=8, max_queue=64, queue_timeout_ms=5000.0,
    ))
    guard = server.guard
    peak = {"now": 0, "max": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def reader(slot):
        session = server.open_session(f"overlap-{slot}")
        barrier.wait(timeout=10.0)
        for __ in range(10):
            with guard.read():
                with lock:
                    peak["now"] += 1
                    peak["max"] = max(peak["max"], peak["now"])
                time.sleep(0.002)
                with lock:
                    peak["now"] -= 1

    workers = [threading.Thread(target=reader, args=(i,))
               for i in range(4)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=30.0)
    assert peak["max"] > 1
