"""Regenerate the measured tables of EXPERIMENTS.md.

Run:  python -m benchmarks.report > EXPERIMENTS_MEASURED.md
      python -m benchmarks.report --out BENCH_ci.json
      python -m benchmarks.report --only engine --out BENCH_engine.json

Every experiment row of DESIGN.md is executed and its work counters
(and, where relevant, plan shapes) are printed as markdown tables.
Counters are deterministic; timings vary by machine and live in the
pytest-benchmark output instead.

``--out FILE`` additionally writes the machine-readable benchmark
artifact: ``{"schema": 1, "suites": {suite: {metric: value}}}``, with
the ``obs_telemetry`` suite embedding the full (schema-validated)
EXPLAIN report.  CI writes one per run (``BENCH_ci.json``); see
``benchmarks/README.md`` for the trajectory convention.

``--only GROUP`` restricts the run to one section group (``engine``,
``fixpoint`` or ``server``) -- the unit the committed baselines and
``benchmarks.check_regression`` work in.
"""

from __future__ import annotations

import json
import sys

from benchmarks.conftest import (chain_graph, film_db, random_graph,
                                 reach_db, sales_db)
from repro import Database
from repro.engine.evaluate import Evaluator
from repro.engine.stats import EvalStats
from repro.terms.printer import term_to_str
from repro.terms.term import term_size

# the machine-readable side of the report: every section records the
# counters it prints, and --out dumps the accumulated artifact
ARTIFACT: dict = {"schema": 1, "suites": {}}


def record(suite: str, metric: str, value) -> None:
    ARTIFACT["suites"].setdefault(suite, {})[metric] = value


# -- artifact determinism ------------------------------------------------------
#
# BENCH_<group>.json is a committed file: two runs on the same tree
# must produce byte-identical output, or every baseline refresh drowns
# the review in timing/trace-id churn.  _scrub() canonicalises the
# artifact before it is written (and check_regression applies it to
# the fresh run, so both sides of the gate see the same shape): ids
# are zeroed, wall-clock measurements are zeroed (counters are the
# trend signal; latency lives in pytest-benchmark output), and floats
# are rounded so libm jitter cannot flip the last digit.

_ID_KEYS = {"trace_id", "span_id", "parent_id"}
_TIMING_KEYS = {"duration", "duration_reported", "started", "finished",
                "qps"}
_TIMING_SUFFIXES = ("_ms", "_s", "_seconds")


def _scrub(value, key: str = ""):
    if isinstance(value, dict):
        if key == "seconds" or key.endswith(".seconds"):
            # a latency histogram: the count is a counter, the rest is
            # wall clock
            return {k: (v if k == "count" else 0.0)
                    for k, v in sorted(value.items())}
        if key == "stages":
            return {k: 0.0 for k in sorted(value)}
        return {k: _scrub(v, k) for k, v in sorted(value.items())}
    if isinstance(value, list):
        return [_scrub(item, key) for item in value]
    if isinstance(value, str) and key in _ID_KEYS:
        return "0" * len(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    if key in _TIMING_KEYS or key.endswith(_TIMING_SUFFIXES):
        return 0 if isinstance(value, int) else 0.0
    if isinstance(value, float):
        return round(value, 6)
    return value


def scrubbed_artifact() -> dict:
    """The deterministic form of ``ARTIFACT`` (what ``--out`` writes
    and what ``benchmarks.check_regression`` compares)."""
    return _scrub(ARTIFACT)


def work(db: Database, query: str, rewrite: bool):
    optimized = db.optimize(query, rewrite=rewrite)
    stats = EvalStats()
    Evaluator(db.catalog, stats=stats).evaluate(optimized.final)
    return optimized, stats


def table(header: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(header) + " |",
           "|" + "|".join("---" for __ in header) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def f3_translation():
    db = film_db()
    query = """
    SELECT Title, Categories, Salary(Refactor) FROM FILM, APPEARS_IN
    WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn'
    AND MEMBER('Adventure', Categories)
    """
    optimized = db.optimize(query)
    rendered = term_to_str(optimized.final)
    print("### F3 -- Figure 3 query -> one compound search\n")
    print(table(
        ["property", "value"],
        [["SEARCH operators in final plan", rendered.count("SEARCH")],
         ["conversion functions inserted",
          "yes" if "PROJECT(VALUE(" in rendered else "no"],
         ["plan nodes", term_size(optimized.final)]],
    ))
    print()
    record("f3_translation", "search_operators", rendered.count("SEARCH"))
    record("f3_translation", "plan_nodes", term_size(optimized.final))


def f7_merging():
    db = sales_db(rows=150)
    query = ("SELECT Item FROM REGION_SALE WHERE Region = 1 "
             "AND Amount > 80")
    opt, opt_stats = work(db, query, rewrite=True)
    plain, plain_stats = work(db, query, rewrite=False)
    print("### F7 -- merging (stacked views, 150-row SALE)\n")
    print(table(
        ["metric", "unmerged", "merged"],
        [["plan nodes", term_size(plain.final), term_size(opt.final)],
         ["SEARCH operators",
          term_to_str(plain.final).count("SEARCH"),
          term_to_str(opt.final).count("SEARCH")],
         ["tuples output", plain_stats.tuples_output,
          opt_stats.tuples_output],
         ["total work", plain_stats.total_work, opt_stats.total_work]],
    ))
    print()
    record("f7_merging", "plan_nodes_unmerged", term_size(plain.final))
    record("f7_merging", "plan_nodes_merged", term_size(opt.final))
    record("f7_merging", "total_work_unmerged", plain_stats.total_work)
    record("f7_merging", "total_work_merged", opt_stats.total_work)


def f8_pushdown():
    import random
    db = Database()
    db.execute("""
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW PER_SHOP (Shop, Amounts) AS
      SELECT Shop, MakeSet(Amount) FROM SALE GROUP BY Shop
    """)
    rng = random.Random(4)
    values = ", ".join(
        f"({rng.randint(1, 25)}, {rng.randint(1, 100)})"
        for __ in range(200)
    )
    db.execute(f"INSERT INTO SALE VALUES {values}")
    query = "SELECT Amounts FROM PER_SHOP WHERE Shop = 7"
    opt, opt_stats = work(db, query, rewrite=True)
    plain, plain_stats = work(db, query, rewrite=False)
    print("### F8 -- pushdown through NEST (200-row SALE, 25 shops)\n")
    print(table(
        ["metric", "no pushdown", "pushed"],
        [["groups built", plain_stats.tuples_output,
          opt_stats.tuples_output],
         ["total work", plain_stats.total_work, opt_stats.total_work]],
    ))
    print()
    record("f8_pushdown", "total_work_plain", plain_stats.total_work)
    record("f8_pushdown", "total_work_pushed", opt_stats.total_work)


def f9_fixpoint():
    print("### F9 -- Alexander reduction, chains "
          "(query: REACH WHERE Src = n-4)\n")
    rows = []
    for n in (10, 20, 30, 40):
        db = reach_db(chain_graph(n))
        query = f"SELECT Dst FROM REACH WHERE Src = {n - 4}"
        __, opt = work(db, query, rewrite=True)
        ___, plain = work(db, query, rewrite=False)
        rows.append([n, plain.total_work, opt.total_work,
                     f"{plain.total_work / max(1, opt.total_work):.1f}x"])
        record("f9_fixpoint", f"chain{n}_plain_work", plain.total_work)
        record("f9_fixpoint", f"chain{n}_magic_work", opt.total_work)
    print(table(["chain length", "plain work", "magic work", "factor"],
                rows))
    print()

    print("random graph (18 nodes, 40 edges), Src = 3:\n")
    db = reach_db(random_graph(18, 40))
    query = "SELECT Dst FROM REACH WHERE Src = 3"
    __, opt = work(db, query, rewrite=True)
    ___, plain = work(db, query, rewrite=False)
    print(table(["plain work", "magic work", "factor"],
                [[plain.total_work, opt.total_work,
                  f"{plain.total_work / max(1, opt.total_work):.1f}x"]]))
    print()


def f10_f11_semantic():
    db = Database()
    db.execute("""
    TYPE Status ENUMERATION OF ('open', 'closed', 'void');
    TABLE TICKET (Id : NUMERIC, State : Status, Price : NUMERIC)
    """)
    db.add_integrity_constraint(
        "ic_status: F(x) / ISA(x, Status) --> "
        "F(x) AND MEMBER(x, MAKESET('open', 'closed', 'void')) /"
    )
    states = ["open", "closed", "void"]
    values = ", ".join(
        f"({i}, '{states[i % 3]}', {i % 97})" for i in range(400)
    )
    db.execute(f"INSERT INTO TICKET VALUES {values}")
    print("### F10 -- inconsistency detection (400-row TICKET)\n")
    rows = []
    for label, query in [
        ("impossible state", "SELECT Id FROM TICKET WHERE State = 'lost'"),
        ("constant clash",
         "SELECT Id FROM TICKET WHERE Price = 5 AND Price > 50"),
        ("consistent query", "SELECT Id FROM TICKET WHERE State = 'open'"),
    ]:
        __, opt = work(db, query, rewrite=True)
        ___, plain = work(db, query, rewrite=False)
        rows.append([label, plain.tuples_scanned, opt.tuples_scanned])
        key = label.replace(" ", "_")
        record("f10_semantic", f"{key}_scans_plain",
               plain.tuples_scanned)
        record("f10_semantic", f"{key}_scans_rewritten",
               opt.tuples_scanned)
    print(table(["query", "scans (no rewriting)", "scans (rewriting)"],
                rows))
    print()


def f13_subqueries():
    import random
    db = Database()
    db.execute("""
    TABLE CUSTOMER (Cid : NUMERIC, Region : NUMERIC);
    TABLE ORDERS (Oid : NUMERIC, Cust : NUMERIC, Total : NUMERIC)
    """)
    rng = random.Random(8)
    db.execute("INSERT INTO CUSTOMER VALUES " + ", ".join(
        f"({c}, {c % 5})" for c in range(1, 61)
    ))
    db.execute("INSERT INTO ORDERS VALUES " + ", ".join(
        f"({o}, {rng.randint(1, 60)}, {rng.randint(1, 100)})"
        for o in range(1, 241)
    ))
    print("### F13 -- select migration (60 customers, 240 orders)\n")
    exists_q = ("SELECT Cid FROM CUSTOMER C WHERE EXISTS "
                "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")
    filtered_q = ("SELECT Cid FROM CUSTOMER C WHERE Region = 2 AND "
                  "EXISTS (SELECT Oid FROM ORDERS O "
                  "WHERE O.Cust = C.Cid)")
    rows = []
    for label, query in [("correlated EXISTS", exists_q),
                         ("filtered EXISTS", filtered_q)]:
        __, stats = work(db, query, rewrite=True)
        rows.append([label, stats.join_pairs, 60 * 240])
        record("f13_subqueries",
               label.replace(" ", "_") + "_probe_pairs",
               stats.join_pairs)
    print(table(["query", "probe pairs", "full-join bound"], rows))
    print()


def a4_dynamic_limits():
    from benchmarks.bench_dynamic_limits import build_db, run_workload
    print("### A4 -- dynamic limit allocation (mixed workload: "
          "15 lookups + 2 complex queries)\n")
    rows = []
    static_db = build_db(dynamic=False)
    apps, checks, stats = run_workload(static_db)
    rows.append(["static-high", checks, apps, stats.total_work])
    dynamic_db = build_db(dynamic=True)
    apps, checks, stats = run_workload(dynamic_db)
    rows.append(["dynamic", checks, apps, stats.total_work])
    zero_db = build_db(dynamic=False)
    from repro.engine.evaluate import Evaluator
    from benchmarks.bench_dynamic_limits import WORKLOAD
    total = EvalStats()
    for q in WORKLOAD:
        optimized = zero_db.optimize(q, rewrite=False)
        Evaluator(zero_db.catalog, stats=total).evaluate(optimized.final)
    rows.append(["static-zero", 0, 0, total.total_work])
    for policy, checks_, apps_, work_ in rows:
        record("a4_dynamic_limits", f"{policy}_checks", checks_)
        record("a4_dynamic_limits", f"{policy}_work", work_)
    print(table(["policy", "condition checks", "rule applications",
                 "execution work"], rows))
    print()


def a1_limits():
    print("### A1 -- the limit trade-off "
          "(TICKET 200 rows; State = 'lost' AND Price > 3)\n")
    rows = []
    for limit in (0, 2, 4, 8, 16, 64):
        db = Database(semantic_limit=limit)
        db.execute("""
        TYPE Status ENUMERATION OF ('open', 'closed', 'void');
        TABLE TICKET (Id : NUMERIC, State : Status, Price : NUMERIC)
        """)
        db.add_integrity_constraint(
            "ic_status: F(x) / ISA(x, Status) --> "
            "F(x) AND MEMBER(x, MAKESET('open', 'closed', 'void')) /"
        )
        states = ["open", "closed", "void"]
        values = ", ".join(
            f"({i}, '{states[i % 3]}', {i % 97})" for i in range(200)
        )
        db.execute(f"INSERT INTO TICKET VALUES {values}")
        query = ("SELECT Id FROM TICKET WHERE State = 'lost' "
                 "AND Price > 3")
        optimized, stats = work(db, query, rewrite=True)
        rows.append([limit, optimized.applications, stats.total_work])
        record("a1_limits", f"limit{limit}_applications",
               optimized.applications)
        record("a1_limits", f"limit{limit}_work", stats.total_work)
    print(table(["semantic limit", "rule applications",
                 "execution work"], rows))
    print()


def a3_seminaive():
    print("### A3 -- naive vs semi-naive fixpoint (full closure)\n")
    rows = []
    for n in (8, 14, 20):
        db = reach_db(chain_graph(n))
        optimized = db.optimize("SELECT Src, Dst FROM REACH",
                                rewrite=False)
        naive, semi = EvalStats(), EvalStats()
        Evaluator(db.catalog, stats=naive, semi_naive=False).evaluate(
            optimized.final
        )
        Evaluator(db.catalog, stats=semi, semi_naive=True).evaluate(
            optimized.final
        )
        rows.append([n, naive.total_work, semi.total_work,
                     f"{naive.total_work / max(1, semi.total_work):.1f}x"])
        record("a3_seminaive", f"chain{n}_naive_work", naive.total_work)
        record("a3_seminaive", f"chain{n}_semi_work", semi.total_work)
    print(table(["chain length", "naive work", "semi-naive work",
                 "factor"], rows))
    print()


def a6_engine():
    from benchmarks.conftest import chain_graph, reach_db
    print("### A6 -- engine ablation: hash joins do not subsume the "
          "logical reduction (chain 30, Src = 25)\n")
    db = reach_db(chain_graph(30))
    query = "SELECT Dst FROM REACH WHERE Src = 25"
    rows = []
    for label, rewrite, hashed in [
        ("plain + nested loop", False, False),
        ("plain + hash joins", False, True),
        ("magic + nested loop", True, False),
        ("magic + hash joins", True, True),
    ]:
        plan = db.optimize(query, rewrite=rewrite).final
        stats = EvalStats()
        Evaluator(db.catalog, stats=stats, hash_joins=hashed).evaluate(
            plan
        )
        rows.append([label, stats.total_work])
        record("a6_engine", label.replace(" ", "_").replace("+", "and"),
               stats.total_work)
    print(table(["configuration", "execution work"], rows))
    print()


def obs_telemetry():
    """OBS -- ingest the machine-readable EXPLAIN (same schema as the
    CLI's ``.profile`` mode; see docs/observability.md)."""
    from repro.core.explain import validate_explain

    db = sales_db(rows=150)
    query = ("SELECT Item FROM REGION_SALE WHERE Region = 1 "
             "AND Amount > 80")
    report = db.explain_json(query, execute=True)
    problems = validate_explain(report)
    print("### OBS -- unified telemetry (stacked views, 150-row SALE)\n")
    print(f"schema version {report['schema_version']}, "
          f"violations: {problems or 'none'}\n")
    record("obs_telemetry", "schema_version", report["schema_version"])
    record("obs_telemetry", "violations", len(problems))
    record("obs_telemetry", "trace_id", report["trace"]["trace_id"])
    record("obs_telemetry", "explain", report)

    profile = report["profile"]
    ranked = sorted(
        profile["rules"].items(),
        key=lambda kv: (-kv[1].get("fired", 0),
                        -kv[1].get("attempts", 0), kv[0]),
    )
    rows = []
    for rule, row in ranked:
        if not row.get("hits") and not row.get("attempts"):
            continue
        seconds = row.get("seconds", {})
        rows.append([
            rule, row.get("attempts", 0), row.get("hits", 0),
            row.get("fired", 0),
            f"{seconds.get('total', 0.0) * 1e3:.3f}",
        ])
    print(table(["rule", "attempts", "hits", "fired", "total ms"],
                rows[:12]))
    print()
    rows = [
        [block, row.get("applications", 0), row.get("checks", 0),
         row.get("budget_consumed", 0)]
        for block, row in sorted(profile["blocks"].items())
    ]
    print(table(["block", "applications", "checks", "budget consumed"],
                rows))
    print()
    eval_counters = report["eval"] or {}
    print(table(["eval counter", "value"],
                [[k, v] for k, v in eval_counters.items()]))
    print()


def server_introspection():
    """SYS -- a served database queried about itself: deterministic
    request counters and rule-heat rows read back through the ``sys.*``
    catalog (the dogfooding acceptance scenario as a benchmark)."""
    from repro.server import Server

    db = Database()
    db.execute("""
    TABLE T (A : NUMERIC, B : NUMERIC);
    CREATE VIEW SMALL (A) AS SELECT A FROM T WHERE B < 50
    """)
    db.execute("INSERT INTO T VALUES " + ", ".join(
        f"({i}, {(i * 13) % 100})" for i in range(60)
    ))
    server = Server(db)
    for __ in range(5):
        server.query("SELECT A FROM T WHERE B = 10")
    for __ in range(3):
        server.query("SELECT T.A FROM T WHERE EXISTS "
                     "(SELECT A FROM T WHERE B = 10)")
    for __ in range(2):
        server.query("SELECT A FROM SMALL")
    server.execute("INSERT INTO T VALUES (1000, 7)")

    metrics = dict(server.query(
        "SELECT Name, Value FROM sys.metrics"
    ).rows)
    heat = server.query(
        "SELECT Block, Rule, Fired, DeltaTotal FROM sys.rule_heat"
    ).rows
    relations = server.query(
        "SELECT Name, Kind FROM sys.relations"
    ).rows

    print("### SYS -- introspection catalog under serving "
          "(60-row T, 11 requests)\n")
    print(table(
        ["metric", "value"],
        [["catalog relations", len(relations)],
         ["sys.* relations",
          sum(1 for __, kind in relations if kind == "virtual")],
         ["read requests served",
          int(metrics.get("server.requests.read", 0))],
         ["write requests served",
          int(metrics.get("server.requests.write", 0))],
         ["rule firings recorded", db.ledger.recorded]],
    ))
    print()
    print(table(["block", "rule", "fired", "delta total"],
                [list(row) for row in heat]))
    print()
    record("server_introspection", "catalog_relations", len(relations))
    record("server_introspection", "virtual_relations",
           sum(1 for __, kind in relations if kind == "virtual"))
    record("server_introspection", "rule_firings", db.ledger.recorded)
    for block, rule, fired, delta in heat:
        record("server_introspection", f"{block}.{rule}.fired", fired)
        record("server_introspection", f"{block}.{rule}.delta", delta)
    server.close()


def lifecycle_governance():
    """Query lifecycle governance: the deterministic work counters of
    cancellation, budgets and degrade mode (latency lives in
    ``benchmarks/bench_resilience.py``)."""
    from repro.errors import BudgetExceeded, QueryCancelled
    from repro.lifecycle import ChaosInjector, QueryContext, use_context

    db = Database()
    db.execute("TABLE T (A : NUMERIC, B : NUMERIC)")
    db.execute("INSERT INTO T VALUES " + ", ".join(
        f"({i}, {(i * 13) % 100})" for i in range(500)
    ))

    # a governed scan: rows charged and bytes reserved/released
    db.query("SELECT A, B FROM T WHERE B < 50",
             row_budget=100_000, memory_budget=1 << 30)
    governed = db.lifecycle.recent()[-1]

    # degrade mode: the truncated prefix a 100-row budget yields
    truncated = db.query("SELECT A, B FROM T", row_budget=100,
                         degrade=True)

    # a budget trip: rows charged before the hard stop
    tripped_rows = 0
    try:
        db.query("SELECT A, B FROM T", row_budget=100)
    except BudgetExceeded as error:
        tripped_rows = int(error.consumed)

    # a seeded chaos cancel: checks survived before the injection
    db.chaos = ChaosInjector(seed=11, cancel_rate=1.0, min_checks=3)
    chaos_checks = 0
    try:
        db.query("SELECT A, B FROM T")
    except QueryCancelled:
        chaos_checks = db.lifecycle.recent()[-1].chaos._checks
    db.chaos = None

    # cancellation unwind: ticks a pre-cancelled context needs to
    # surface (the latency bound, in cooperative-check units)
    ctx = QueryContext()
    ctx.cancel("kill")
    unwind_ticks = 0
    with use_context(ctx):
        try:
            while True:
                unwind_ticks += 1
                ctx.tick()
        except QueryCancelled:
            pass

    print("### LIFECYCLE -- governance work counters "
          "(500-row T, budgets + chaos)\n")
    print(table(
        ["metric", "value"],
        [["governed scan rows charged", governed.rows_charged],
         ["governed scan peak bytes", governed.memory.peak],
         ["governed scan leaked bytes", governed.memory.current],
         ["degrade-mode truncated rows", len(truncated.rows)],
         ["rows charged before hard trip", tripped_rows],
         ["checks before seeded chaos cancel", chaos_checks],
         ["ticks to observe a cancel", unwind_ticks]],
    ))
    print()
    record("lifecycle_governance", "governed_rows_charged",
           governed.rows_charged)
    record("lifecycle_governance", "governed_peak_bytes",
           governed.memory.peak)
    record("lifecycle_governance", "violations", governed.memory.current)
    record("lifecycle_governance", "degrade_truncated_rows",
           len(truncated.rows))
    record("lifecycle_governance", "tripped_rows", tripped_rows)
    record("lifecycle_governance", "chaos_checks", chaos_checks)
    record("lifecycle_governance", "cancel_unwind_ticks", unwind_ticks)


def pool_scaling():
    """POOL -- the execution tier: one fixed read workload at worker
    counts 0 (in-process), 1, 2 and 4.  The recorded metrics are the
    deterministic ones (statements served, dispatch/crash/fallback
    counters, result cardinality); measured throughput is printed for
    EXPERIMENTS.md but deliberately kept out of the artifact."""
    import time as time_mod

    from repro.pool import PoolConfig
    from repro.server import Server

    statements = 12
    query = "SELECT Shop, Amount FROM SALE WHERE Amount > 10"
    rows = []
    for workers in (0, 1, 2, 4):
        db = Database()
        db.execute("TABLE SALE (Shop : NUMERIC, Amount : NUMERIC)")
        db.execute("INSERT INTO SALE VALUES " + ", ".join(
            f"({i % 7}, {(i * 13) % 60})" for i in range(120)
        ))
        server = Server(db)
        if workers:
            pool = server.enable_pool(workers, config=PoolConfig(
                workers=workers, monitor_interval_s=0.02,
            ))
            pool.wait_ready(timeout_s=120.0, workers=workers)
        started = time_mod.perf_counter()
        cardinality = 0
        for __ in range(statements):
            cardinality = len(server.query(query).rows)
        elapsed = time_mod.perf_counter() - started
        summary = (server.pool.summary() if server.pool is not None
                   else {"dispatched": 0, "crashes": 0, "restarts": 0})
        fallbacks = server.metrics.snapshot()["counters"].get(
            "pool.fallbacks", 0)
        rows.append([
            workers or "in-process", statements, summary["dispatched"],
            cardinality, f"{statements / elapsed:.0f}/s",
        ])
        key = f"w{workers}"
        record("pool_scaling", f"{key}_statements", statements)
        record("pool_scaling", f"{key}_dispatched",
               summary["dispatched"])
        record("pool_scaling", f"{key}_rows", cardinality)
        record("pool_scaling", f"{key}_crashes", summary["crashes"])
        record("pool_scaling", f"{key}_restarts", summary["restarts"])
        record("pool_scaling", f"{key}_fallbacks", int(fallbacks))
        server.close()
    print("### POOL -- execution-tier scaling "
          "(120-row SALE, 12 statements per tier)\n")
    print(table(["workers", "statements", "dispatched", "rows/query",
                 "rate (not gated)"], rows))
    print()


def antipattern():
    """The anti-pattern block (``Database(antipattern=True)``): per
    query shape, the ap_* rules that fire, the term-size change and
    the answer cardinality (identical with the block off -- that *is*
    the product), plus a fixed-seed differential fuzz sweep whose
    violation count is a contract, not a trend."""
    from repro.qa import fuzz

    setup = (
        "TABLE ITEM (Id : NUMERIC, Price : NUMERIC, "
        "PRIMARY KEY (Id));"
        + "INSERT INTO ITEM VALUES " + ", ".join(
            f"({i}, {(i * 37) % 100})" for i in range(300)
        )
    )
    plain, treated = Database(), Database(antipattern=True)
    plain.execute(setup)
    treated.execute(setup)

    shapes = [
        ("or_chain",
         "SELECT Id FROM ITEM WHERE Id = 1 OR Id = 2 OR Id = 3 "
         "OR Id = 4"),
        ("redundant_distinct", "SELECT DISTINCT Id, Price FROM ITEM"),
        ("double_negation",
         "SELECT Id FROM ITEM WHERE NOT (NOT (Price > 90))"),
        ("trivial_arithmetic",
         "SELECT Id FROM ITEM WHERE Price * 1 > 90 + 0"),
        ("subsumed_bounds",
         "SELECT Id FROM ITEM WHERE Price > 90 OR Price >= 90"),
    ]
    rows = []
    for key, query in shapes:
        base = plain.optimize(query)
        opt = treated.optimize(query)
        fired = [r for r in opt.rewrite_result.rules_fired()
                 if r.startswith("ap_")]
        cardinality = len(treated.query(query).rows)
        rows_match = (sorted(plain.query(query).rows)
                      == sorted(treated.query(query).rows))
        rows.append([key, len(fired), term_size(base.final),
                     term_size(opt.final), cardinality, rows_match])
        record("antipattern", f"{key}_ap_rules_fired", len(fired))
        record("antipattern", f"{key}_size_plain",
               term_size(base.final))
        record("antipattern", f"{key}_size_treated",
               term_size(opt.final))
        record("antipattern", f"{key}_rows", cardinality)
        record("antipattern", f"{key}_rows_match", rows_match)
    plain.close()
    treated.close()

    sweep = fuzz(60, seed=20260808)
    record("antipattern", "fuzz_cases", sweep.executed)
    record("antipattern", "fuzz_skipped", sweep.skipped)
    # named "violations" on purpose: check_regression treats it as an
    # exact contract (any nonzero value fails the gate)
    record("antipattern", "violations", sweep.violations)

    print("### ANTIPATTERN -- rule-pack effect per query shape "
          "(300-row keyed ITEM)\n")
    print(table(["shape", "ap rules fired", "plan size (off)",
                 "plan size (on)", "rows", "answers match"], rows))
    print(f"\nfuzz sweep: {sweep.executed} case(s), "
          f"{sweep.violations} violation(s)\n")


def workload_analyze():
    """ANALYZE -- workload intelligence: fingerprint deduplication
    under a mixed workload (``sys.statements`` aggregates), plus the
    per-operator actuals of an EXPLAIN ANALYZE fixpoint run.  The
    contracts: analyzed answers are bag-identical to plain answers and
    the v8 explain report validates clean."""
    from repro.core.explain import validate_explain
    from repro.engine.analyze import AnalyzeCollector
    from repro.esql.fingerprint import fingerprint_source

    db = Database()
    db.execute("""
    TABLE EDGE (Src : NUMERIC, Dst : NUMERIC);
    CREATE VIEW PATH (Src, Dst) AS
    ( SELECT Src, Dst FROM EDGE
      UNION
      SELECT E.Src, P.Dst FROM EDGE E, PATH P WHERE E.Dst = P.Src )
    """)
    db.execute("INSERT INTO EDGE VALUES " + ", ".join(
        f"({i}, {i + 1})" for i in range(1, 12)
    ))

    # a mixed workload: 18 raw statements collapsing onto 2 read
    # templates (constants vary, one batch varies casing too)
    raw_statements = 0
    for i in range(8):
        db.query(f"SELECT Dst FROM EDGE WHERE Src = {i}")
        raw_statements += 1
    for i in range(6):
        db.query(f"select dst  from edge where src = {i + 20}")
        raw_statements += 1
    for i in range(4):
        db.query(f"SELECT Dst FROM PATH WHERE Src = {i + 1}")
        raw_statements += 1

    stats = {row[0]: row for row in db.workload.rows()}
    edge_fp = fingerprint_source(
        "SELECT Dst FROM EDGE WHERE Src = 0"
    ).fingerprint
    path_fp = fingerprint_source(
        "SELECT Dst FROM PATH WHERE Src = 1"
    ).fingerprint

    # the analyze leg: same query, collector on, answers must match
    probe = "SELECT Dst FROM PATH WHERE Src = 1"
    baseline = sorted(db.query(probe).rows)
    collector = AnalyzeCollector()
    analyzed = sorted(db.query(probe, analyze=collector).rows)
    nodes = collector.snapshot()
    explain = db.explain_json(probe, analyze=True)
    problems = validate_explain(explain)
    mismatches = 0 if analyzed == baseline else 1

    print("### ANALYZE -- workload intelligence "
          "(11-edge chain, 18-statement workload)\n")
    print(table(
        ["metric", "value"],
        [["raw statements executed", raw_statements],
         ["templates tracked (sys.statements)", db.workload.tracked],
         ["EDGE-template calls", stats[edge_fp][2]],
         ["PATH-template calls", stats[path_fp][2]],
         ["analyzed operators", len(nodes)],
         ["max operator loops (fixpoint)",
          max(n["loops"] for n in nodes)],
         ["analyzed plans recorded", db.plan_log.recorded],
         ["answer mismatches (contract)", mismatches],
         ["explain schema version", explain["schema_version"]],
         ["explain violations", len(problems)]],
    ))
    print()
    record("workload_analyze", "raw_statements", raw_statements)
    record("workload_analyze", "templates_tracked",
           db.workload.tracked)
    record("workload_analyze", "edge_template_calls",
           stats[edge_fp][2])
    record("workload_analyze", "path_template_calls",
           stats[path_fp][2])
    record("workload_analyze", "analyze_nodes", len(nodes))
    record("workload_analyze", "analyze_max_loops",
           max(n["loops"] for n in nodes))
    record("workload_analyze", "plans_recorded", db.plan_log.recorded)
    record("workload_analyze", "schema_version",
           explain["schema_version"])
    # named "violations" on purpose: check_regression treats it as an
    # exact contract (explain problems or an answer mismatch fail the
    # gate outright)
    record("workload_analyze", "violations",
           len(problems) + mismatches)
    db.close()


# the --only groups: the unit the committed BENCH_<group>.json
# baselines and benchmarks.check_regression work in
GROUPS = {
    "engine": [f3_translation, f7_merging, f8_pushdown,
               f10_f11_semantic, f13_subqueries, a1_limits, a6_engine],
    "fixpoint": [f9_fixpoint, a3_seminaive, a4_dynamic_limits],
    "server": [obs_telemetry, server_introspection, pool_scaling],
    "resilience": [lifecycle_governance],
    "antipattern": [antipattern],
    "analyze": [workload_analyze],
}


def main(argv=None) -> None:
    import argparse
    parser = argparse.ArgumentParser(
        prog="benchmarks.report",
        description="regenerate the measured tables of EXPERIMENTS.md",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the machine-readable benchmark artifact "
             "(BENCH_<name>.json; see benchmarks/README.md)",
    )
    parser.add_argument(
        "--only", choices=sorted(GROUPS), default=None,
        help="run a single section group instead of the full report",
    )
    args = parser.parse_args(argv)
    print("## Measured results (regenerate with "
          "`python -m benchmarks.report`)\n")
    if args.only:
        for section in GROUPS[args.only]:
            section()
    else:
        f3_translation()
        f7_merging()
        f8_pushdown()
        f9_fixpoint()
        f10_f11_semantic()
        f13_subqueries()
        a1_limits()
        a3_seminaive()
        a4_dynamic_limits()
        a6_engine()
        obs_telemetry()
        server_introspection()
        pool_scaling()
        lifecycle_governance()
        antipattern()
        workload_analyze()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(scrubbed_artifact(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out} "
              f"({len(ARTIFACT['suites'])} suite(s))", file=sys.stderr)


if __name__ == "__main__":
    main()
