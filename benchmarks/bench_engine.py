"""A6 -- engine ablation: nested-loop vs hash joins, and whether
logical rewriting still pays under the smarter engine.

Expected shapes: hash joins cut probe pairs by orders of magnitude on
equi-joins; the Alexander reduction *still* wins with hash joins on
(because it bounds the set of derived tuples, which no join algorithm
can."""

import random

import pytest

from benchmarks.conftest import chain_graph, reach_db
from repro import Database
from repro.engine.evaluate import Evaluator
from repro.engine.stats import EvalStats


def join_db(rows: int) -> Database:
    db = Database()
    db.execute("""
    TABLE FACT (K : NUMERIC, V : NUMERIC);
    TABLE DIM (K : NUMERIC, Label : NUMERIC)
    """)
    rng = random.Random(2)
    db.execute("INSERT INTO FACT VALUES " + ", ".join(
        f"({rng.randint(1, 40)}, {i})" for i in range(rows)
    ))
    db.execute("INSERT INTO DIM VALUES " + ", ".join(
        f"({k}, {k * 11})" for k in range(1, 41)
    ))
    return db


JOIN_QUERY = ("SELECT Label, V FROM FACT, DIM "
              "WHERE FACT.K = DIM.K AND V > 100")


@pytest.fixture(scope="module")
def jdb():
    return join_db(250)


def run(db, query, hash_joins):
    optimized = db.optimize(query)
    stats = EvalStats()
    result = Evaluator(
        db.catalog, stats=stats, hash_joins=hash_joins
    ).evaluate(optimized.final)
    return result, stats


def test_nested_loop_join(benchmark, jdb):
    optimized = jdb.optimize(JOIN_QUERY)
    benchmark(
        lambda: Evaluator(jdb.catalog).evaluate(optimized.final)
    )


def test_hash_join(benchmark, jdb):
    optimized = jdb.optimize(JOIN_QUERY)
    benchmark(
        lambda: Evaluator(jdb.catalog, hash_joins=True)
        .evaluate(optimized.final)
    )


def test_hash_join_shape(jdb):
    nl_result, nl = run(jdb, JOIN_QUERY, hash_joins=False)
    hj_result, hj = run(jdb, JOIN_QUERY, hash_joins=True)
    assert sorted(nl_result.rows) == sorted(hj_result.rows)
    assert hj.join_pairs < nl.join_pairs / 5


def test_magic_still_wins_under_hash_joins():
    """The logical reduction is not subsumed by the physical one."""
    db = reach_db(chain_graph(30))
    query = "SELECT Dst FROM REACH WHERE Src = 25"
    opt_plan = db.optimize(query, rewrite=True).final
    plain_plan = db.optimize(query, rewrite=False).final
    opt_stats, plain_stats = EvalStats(), EvalStats()
    Evaluator(db.catalog, stats=opt_stats, hash_joins=True).evaluate(
        opt_plan
    )
    Evaluator(db.catalog, stats=plain_stats, hash_joins=True).evaluate(
        plain_plan
    )
    assert opt_stats.total_work < plain_stats.total_work


def test_hash_joins_preserve_recursive_answers():
    db = reach_db(chain_graph(15))
    query = "SELECT Dst FROM REACH WHERE Src = 3"
    plan = db.optimize(query).final
    a = Evaluator(db.catalog).evaluate(plan)
    b = Evaluator(db.catalog, hash_joins=True).evaluate(plan)
    assert set(a.rows) == set(b.rows)
