"""Obs-export smoke check (the CI gate for the exporter surfaces).

Run:  python -m benchmarks.obs_smoke

Stands up a served :class:`~repro.engine.database.Database` with a
mounted :class:`~repro.obs.telemetry.Telemetry` hub, drives a small
mixed workload through a retrying client, then validates every export
surface end to end:

* ``Server.metrics_text()`` -- each non-comment line must match the
  Prometheus text exposition line syntax and each ``# TYPE`` family
  must be one of counter/summary/histogram;
* the JSONL sink -- every line must parse as a JSON object carrying
  ``event``, ``ts`` and (for request-scoped events) ``trace_id``;
* the OTLP span export -- must produce well-formed ``resourceSpans``;
* ``explain_json`` -- must validate against schema v6.

Exit code 0 means all surfaces held; any violation prints and fails.
"""

from __future__ import annotations

import json
import os
import re
import sys
import tempfile

# prometheus text exposition 0.0.4: `name{labels} value` or `name value`
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" [0-9eE+.infa-]+$"
)
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|summary|histogram)$"
)


def check_prometheus(text: str) -> list[str]:
    problems = []
    for i, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# TYPE"):
            if not _TYPE_LINE.match(line):
                problems.append(f"line {i}: bad TYPE line: {line!r}")
        elif line.startswith("#"):
            continue
        elif not _METRIC_LINE.match(line):
            problems.append(f"line {i}: bad metric line: {line!r}")
    return problems


def check_jsonl(path: str) -> list[str]:
    problems = []
    with open(path, encoding="utf-8") as handle:
        for i, line in enumerate(handle, 1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                problems.append(f"line {i}: not JSON ({error})")
                continue
            if not isinstance(record, dict):
                problems.append(f"line {i}: not an object")
                continue
            for key in ("event", "ts"):
                if key not in record:
                    problems.append(f"line {i}: missing {key!r}")
    return problems


def main() -> int:
    from repro.core.explain import validate_explain
    from repro.engine.database import Database
    from repro.obs.telemetry import Telemetry
    from repro.server import Server

    workdir = tempfile.mkdtemp(prefix="obs_smoke_")
    log_path = os.path.join(workdir, "events.jsonl")
    telemetry = Telemetry(log_path=log_path, otlp=True)
    db = Database()
    server = Server(db, telemetry=telemetry, slow_query_ms=0.0)
    problems: list[str] = []

    client = server.client()
    client.execute("TABLE T (A : NUMERIC, B : NUMERIC)")
    client.execute("INSERT INTO T VALUES (1, 2), (3, 4), (5, 6)")
    for __ in range(5):
        client.query("SELECT A FROM T WHERE B = 4")
    report = server.explain_json("SELECT B FROM T WHERE A = 3")

    problems += [f"metrics_text: {p}"
                 for p in check_prometheus(server.metrics_text())]
    if "server_requests_read" not in server.metrics_text():
        problems.append("metrics_text: no server_requests_read family")

    server.close()  # flushes and closes the sink
    problems += [f"jsonl: {p}" for p in check_jsonl(log_path)]
    with open(log_path, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    traced = [r for r in records if "trace_id" in r]
    if not traced:
        problems.append("jsonl: no trace-stamped records")

    spans = telemetry.export_spans()
    if "resourceSpans" not in spans:
        problems.append("otlp: no resourceSpans key")

    problems += [f"explain: {p}" for p in validate_explain(report)]
    if not server.slow_queries():
        problems.append("slow-query log: empty at threshold 0")

    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        return 1
    print(f"obs-export smoke OK: {len(records)} JSONL record(s) "
          f"({len(traced)} trace-stamped), metrics text and OTLP "
          f"export well-formed, explain schema v6 valid, "
          f"{len(server.slow_queries())} slow quer(y/ies) captured")
    return 0


if __name__ == "__main__":
    sys.exit(main())
