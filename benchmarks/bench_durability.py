"""A10 -- durability overhead: what does crash safety cost?

Four configurations insert the same batch of rows:

* a plain in-memory database (the null-sink fast path -- the layer must
  be unmeasurable when no path is given);
* a durable database with ``sync=False`` (commit survives a process
  crash: one buffered write + flush per statement);
* a durable database with ``sync=True`` (commit survives power loss:
  one fsync per statement -- the classic orders-of-magnitude trade);
* checkpoint + recovery costs for a grown WAL.

Expected shapes: memory ~= durable(sync off) >> durable(sync on);
recovery from a snapshot beats replaying the full statement history.
"""

import pytest

from repro import Database

ROWS = 50


def _insert_statements(n=ROWS):
    return [f"INSERT INTO T VALUES ({i}, {i * 7})" for i in range(n)]


def _run_script(db):
    db.execute("TABLE T (Id : NUMERIC, V : NUMERIC, PRIMARY KEY (Id))")
    for sql in _insert_statements():
        db.execute(sql)
    return db


def test_memory_baseline(benchmark):
    def scenario():
        _run_script(Database())

    benchmark(scenario)


def test_durable_no_sync(benchmark, tmp_path_factory):
    counter = iter(range(10**9))

    def scenario():
        root = tmp_path_factory.mktemp("wal") / str(next(counter))
        db = _run_script(Database(path=str(root)))
        db.close()

    benchmark(scenario)


def test_durable_fsync_on_commit(benchmark, tmp_path_factory):
    counter = iter(range(10**9))

    def scenario():
        root = tmp_path_factory.mktemp("sync") / str(next(counter))
        db = _run_script(Database(path=str(root), sync=True))
        db.close()

    benchmark(scenario)


def test_checkpoint(benchmark, tmp_path):
    db = _run_script(Database(path=str(tmp_path / "data")))
    benchmark(db.checkpoint)
    db.close()


def test_recovery_replays_wal(benchmark, tmp_path):
    db = _run_script(Database(path=str(tmp_path / "data")))
    db.close()

    def scenario():
        Database(path=str(tmp_path / "data")).close()

    benchmark(scenario)


def test_recovery_from_snapshot(benchmark, tmp_path):
    db = _run_script(Database(path=str(tmp_path / "data")))
    db.checkpoint()
    db.close()

    def scenario():
        Database(path=str(tmp_path / "data")).close()

    benchmark(scenario)


class TestShapes:
    """Deterministic assertions about the trade-offs (no timing)."""

    def test_null_sink_path_is_bypassed(self):
        db = Database()
        assert db.durability is None and db.recovery is None

    def test_wal_grows_per_statement_and_checkpoint_resets(self, tmp_path):
        import os
        db = _run_script(Database(path=str(tmp_path / "data")))
        wal = db.durability.wal.path
        grown = os.path.getsize(wal)
        assert grown > ROWS  # one frame per statement
        db.checkpoint()
        assert os.path.getsize(wal) < grown
        db.close()

    def test_snapshot_recovery_replays_nothing(self, tmp_path):
        db = _run_script(Database(path=str(tmp_path / "data")))
        db.checkpoint()
        db.close()
        db2 = Database(path=str(tmp_path / "data"))
        assert db2.recovery.replayed == 0
        assert db2.recovery.snapshot_lsn == ROWS + 1
        assert len(db2.catalog.rows("T")) == ROWS
        db2.close()

    @pytest.mark.parametrize("sync", [False, True])
    def test_both_policies_recover_identically(self, tmp_path, sync):
        db = _run_script(
            Database(path=str(tmp_path / "data"), sync=sync)
        )
        db.close()
        db2 = Database(path=str(tmp_path / "data"))
        assert len(db2.catalog.rows("T")) == ROWS
        assert db2.fsck().ok
        db2.close()
