"""A2 -- control strategies: block orderings and repeated sequences.

"Optimization strategies may require the application of one or more
rules up to saturation before applying other rules.  For example, rules
pushing restrictions before joins may be applied totally before
permuting joins." (section 4.2)

Measures alternative generated optimizers on the same query: the
standard order, a reversed order, a single-pass sequence and the
two-pass default; plus interleaved vs staged blocks.
"""

import pytest

from repro import Database
from repro.core.rewriter import QueryRewriter
from repro.lera.typecheck import typecheck
from repro.rules.control import Block, RewriteEngine, Seq
from repro.rules.library import standard_blocks
from repro.rules.rule import RuleContext


def stacked_db():
    db = Database()
    db.execute("""
    TABLE SALE (Shop : NUMERIC, Item : NUMERIC, Amount : NUMERIC);
    TABLE SHOP (Sid : NUMERIC, Region : NUMERIC);
    CREATE VIEW BIG (Shop, Item, Amount) AS
      SELECT Shop, Item, Amount FROM SALE WHERE Amount > 50;
    CREATE VIEW REGIONAL (Region, Item, Amount) AS
      SELECT SHOP.Region, BIG.Item, BIG.Amount FROM BIG, SHOP
      WHERE BIG.Shop = SHOP.Sid
    """)
    import random
    rng = random.Random(6)
    db.execute("INSERT INTO SHOP VALUES " + ", ".join(
        f"({s}, {s % 3})" for s in range(1, 9)
    ))
    db.execute("INSERT INTO SALE VALUES " + ", ".join(
        f"({rng.randint(1, 8)}, {rng.randint(1, 30)}, "
        f"{rng.randint(1, 100)})" for __ in range(120)
    ))
    return db


QUERY = "SELECT Item FROM REGIONAL WHERE Region = 1 AND Amount > 80"


def typed_query(db):
    from repro.esql.parser import parse_statement
    term = db.translator.execute(parse_statement(QUERY))
    typed, __ = typecheck(term, db.catalog)
    return typed


@pytest.fixture(scope="module")
def db():
    return stacked_db()


def _engine(blocks, passes):
    return RewriteEngine(Seq(blocks, passes=passes))


def test_standard_order(benchmark, db):
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    result = benchmark(rewriter.rewrite, typed)
    assert result.applications > 0


def test_reversed_order(benchmark, db):
    """Simplify-first ordering: same final correctness, different cost
    profile ('changing the list of blocks may completely change the
    generated optimizer')."""
    typed = typed_query(db)
    blocks = list(reversed(standard_blocks()))
    engine = _engine(blocks, passes=2)
    ctx = RuleContext(catalog=db.catalog)
    result = benchmark(engine.rewrite, typed, ctx)
    assert result.term is not None


def test_single_pass(benchmark, db):
    typed = typed_query(db)
    engine = _engine(standard_blocks(), passes=1)
    ctx = RuleContext(catalog=db.catalog)
    benchmark(engine.rewrite, typed, ctx)


def test_four_passes(benchmark, db):
    typed = typed_query(db)
    engine = _engine(standard_blocks(), passes=4)
    ctx = RuleContext(catalog=db.catalog)
    result = benchmark(engine.rewrite, typed, ctx)
    # global saturation stops early: extra passes must not add work
    assert result.passes <= 3


def test_one_interleaved_block(benchmark, db):
    """All rules in ONE block (no staging): the degenerate strategy."""
    typed = typed_query(db)
    all_rules = []
    for block in standard_blocks():
        all_rules.extend(block.rules)
    engine = _engine([Block("everything", all_rules)], passes=1)
    ctx = RuleContext(catalog=db.catalog)
    result = benchmark(engine.rewrite, typed, ctx)
    assert result.term is not None


def test_orderings_agree_on_results(db):
    """Every generated optimizer must preserve the query's answers."""
    from repro.engine.evaluate import Evaluator
    typed = typed_query(db)
    baseline = set(
        Evaluator(db.catalog).evaluate(typed).rows
    )
    ctx = RuleContext(catalog=db.catalog)
    variants = {
        "standard": _engine(standard_blocks(), 2),
        "reversed": _engine(list(reversed(standard_blocks())), 2),
        "single-pass": _engine(standard_blocks(), 1),
    }
    for name, engine in variants.items():
        rewritten = engine.rewrite(typed, ctx).term
        rows = set(Evaluator(db.catalog).evaluate(rewritten).rows)
        assert rows == baseline, f"{name} changed the answers"


def test_or_split_strategy(benchmark, db):
    """An optimizer variant installing the OR-to-UNION split (kept out
    of the default program): same answers, different plan shape."""
    from repro.rules.syntactic import or_split_rules
    typed = typed_query(db)
    blocks = standard_blocks()
    for block in blocks:
        if block.name == "push":
            block.rules.extend(or_split_rules())
    engine = _engine(blocks, passes=2)
    ctx = RuleContext(catalog=db.catalog)

    result = benchmark(engine.rewrite, typed, ctx)

    from repro.engine.evaluate import Evaluator
    baseline = set(Evaluator(db.catalog).evaluate(typed).rows)
    rows = set(Evaluator(db.catalog).evaluate(result.term).rows)
    assert rows == baseline


def test_or_split_splits_disjunctions(db):
    from repro.rules.syntactic import or_split_rules
    from repro.esql.parser import parse_statement
    from repro.terms.printer import term_to_str
    term = db.translator.execute(parse_statement(
        "SELECT Item FROM SALE WHERE Shop = 1 OR Shop = 3"
    ))
    typed, __ = typecheck(term, db.catalog)
    blocks = standard_blocks()
    for block in blocks:
        if block.name == "push":
            block.rules.extend(or_split_rules())
    engine = _engine(blocks, passes=2)
    result = engine.rewrite(typed, RuleContext(catalog=db.catalog))
    assert "search_or_split" in result.rules_fired()
    assert term_to_str(result.term).startswith("UNION")
