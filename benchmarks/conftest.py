"""Shared workload builders for the benchmark harness.

Every benchmark compares *work done* (evaluator counters) as well as
wall-clock time, and asserts the paper's expected shape (who wins); the
absolute numbers land in EXPERIMENTS.md.
"""

from __future__ import annotations

import random

import pytest

from repro import Database


def chain_graph(n: int) -> list[tuple[int, int]]:
    return [(i, i + 1) for i in range(1, n + 1)]


def binary_tree(depth: int) -> list[tuple[int, int]]:
    edges = []
    for node in range(1, 2 ** depth):
        left, right = 2 * node, 2 * node + 1
        if left < 2 ** (depth + 1) - 1:
            edges.append((node, left))
        if right < 2 ** (depth + 1) - 1:
            edges.append((node, right))
    return edges


def random_graph(nodes: int, edges: int, seed: int = 11):
    rng = random.Random(seed)
    return list({
        (rng.randint(1, nodes), rng.randint(1, nodes))
        for __ in range(edges)
    })


def reach_db(edges) -> Database:
    db = Database()
    db.execute("TABLE EDGE (Src : NUMERIC, Dst : NUMERIC)")
    for a, b in edges:
        db.execute(f"INSERT INTO EDGE VALUES ({a}, {b})")
    db.execute("""
    CREATE VIEW REACH (Src, Dst) AS
    ( SELECT Src, Dst FROM EDGE
      UNION
      SELECT R.Src, E.Dst FROM REACH R, EDGE E WHERE R.Dst = E.Src )
    """)
    return db


def sales_db(rows: int, shops: int = 10, seed: int = 3) -> Database:
    db = Database()
    db.execute("""
    TABLE SALE (Shop : NUMERIC, Item : NUMERIC, Amount : NUMERIC);
    TABLE SHOP (Sid : NUMERIC, Region : NUMERIC);
    CREATE VIEW BIG_SALE (Shop, Item, Amount) AS
      SELECT Shop, Item, Amount FROM SALE WHERE Amount > 50;
    CREATE VIEW REGION_SALE (Region, Item, Amount) AS
      SELECT SHOP.Region, BIG_SALE.Item, BIG_SALE.Amount
      FROM BIG_SALE, SHOP WHERE BIG_SALE.Shop = SHOP.Sid
    """)
    rng = random.Random(seed)
    for sid in range(1, shops + 1):
        db.execute(f"INSERT INTO SHOP VALUES ({sid}, {sid % 3})")
    values = ", ".join(
        f"({rng.randint(1, shops)}, {rng.randint(1, 50)}, "
        f"{rng.randint(1, 100)})"
        for __ in range(rows)
    )
    db.execute(f"INSERT INTO SALE VALUES {values}")
    return db


def film_db(films: int = 20, actors_per_film: int = 4) -> Database:
    db = Database()
    db.execute("""
    TYPE Category ENUMERATION OF ('Comedy', 'Adventure',
                                  'Science Fiction', 'Western');
    TYPE Person OBJECT TUPLE (Name : CHAR);
    TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC);
    TYPE Text LIST OF CHAR;
    TYPE SetCategory SET OF Category;
    TABLE FILM (Numf : NUMERIC, Title : Text, Categories : SetCategory);
    TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor)
    """)
    cats = ["Comedy", "Adventure", "Science Fiction", "Western"]
    for f in range(1, films + 1):
        cat = cats[f % 4]
        db.execute(
            f"INSERT INTO FILM VALUES ({f}, LIST('F'), SET('{cat}'))"
        )
        for a in range(actors_per_film):
            name = "Quinn" if (f + a) % 5 == 0 else f"A{f}_{a}"
            salary = 50000 if name == "Quinn" else 8000 + 1000 * a
            db.execute(
                f"INSERT INTO APPEARS_IN VALUES ({f}, "
                f"NEW Actor('{name}', {salary}))"
            )
    return db


@pytest.fixture(scope="module")
def medium_sales_db():
    return sales_db(rows=150)


@pytest.fixture(scope="module")
def medium_film_db():
    return film_db()
