"""R1 -- resilience overhead: sandboxing and divergence tracking.

The resilience layer is strictly opt-in: with no policy installed the
engine takes the exact same code paths as before (no history, no
try/except around rule application, no budget checks).  These
benchmarks pin that contract down -- the "off" and "policy on" numbers
should be within noise of each other on a realistic rewrite workload,
and the sandboxed run with a hostile rule quantifies what surviving a
buggy extension costs.
"""

import pytest

from repro.core.rewriter import QueryRewriter
from repro.lera.typecheck import typecheck
from repro.resilience import ResiliencePolicy

from benchmarks.bench_control import stacked_db, QUERY
from tests.resilience.chaos import AlwaysRaisingRule


@pytest.fixture(scope="module")
def db():
    return stacked_db()


def typed_query(db):
    from repro.esql.parser import parse_statement
    term = db.translator.execute(parse_statement(QUERY))
    typed, __ = typecheck(term, db.catalog)
    return typed


def test_baseline_no_policy(benchmark, db):
    """The control: resilience entirely absent (None policy)."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    result = benchmark(rewriter.rewrite, typed)
    assert result.applications > 0
    assert result.resilience is None


def test_policy_enabled(benchmark, db):
    """Sandbox + divergence history on a healthy rule set.  Should sit
    within noise of the baseline: the history costs one hash per
    application, the sandbox one try/except per candidate."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    policy = ResiliencePolicy()
    result = benchmark(rewriter.rewrite, typed, resilience=policy)
    assert result.applications > 0
    assert result.resilience.rule_failures == []


def test_policy_without_divergence_tracking(benchmark, db):
    """Sandbox only: isolates the per-application history cost."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    policy = ResiliencePolicy(detect_divergence=False)
    result = benchmark(rewriter.rewrite, typed, resilience=policy)
    assert result.applications > 0


def test_sandboxed_hostile_rule(benchmark, db):
    """A quarantined always-raising rule in the pipeline: the price of
    surviving a buggy extension (one failure, then skip checks)."""
    typed = typed_query(db)

    def run():
        rewriter = QueryRewriter(db.catalog)
        rewriter.add_rule(AlwaysRaisingRule(), "simplify")
        return rewriter.rewrite(typed, resilience=ResiliencePolicy())

    result = benchmark(run)
    assert result.resilience.quarantined == ["bomb"]
    assert result.applications > 0


def test_work_budget_accounting(benchmark, db):
    """A generous budget that never triggers: measures the cost of the
    cooperative exhaustion checks alone."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    policy = ResiliencePolicy(max_applications=10_000)
    result = benchmark(rewriter.rewrite, typed, resilience=policy)
    assert result.degraded is False
