"""R1 -- resilience overhead: sandboxing and divergence tracking.

The resilience layer is strictly opt-in: with no policy installed the
engine takes the exact same code paths as before (no history, no
try/except around rule application, no budget checks).  These
benchmarks pin that contract down -- the "off" and "policy on" numbers
should be within noise of each other on a realistic rewrite workload,
and the sandboxed run with a hostile rule quantifies what surviving a
buggy extension costs.
"""

import pytest

from repro.core.rewriter import QueryRewriter
from repro.lera.typecheck import typecheck
from repro.resilience import ResiliencePolicy

from benchmarks.bench_control import stacked_db, QUERY
from tests.resilience.chaos import AlwaysRaisingRule


@pytest.fixture(scope="module")
def db():
    return stacked_db()


def typed_query(db):
    from repro.esql.parser import parse_statement
    term = db.translator.execute(parse_statement(QUERY))
    typed, __ = typecheck(term, db.catalog)
    return typed


def test_baseline_no_policy(benchmark, db):
    """The control: resilience entirely absent (None policy)."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    result = benchmark(rewriter.rewrite, typed)
    assert result.applications > 0
    assert result.resilience is None


def test_policy_enabled(benchmark, db):
    """Sandbox + divergence history on a healthy rule set.  Should sit
    within noise of the baseline: the history costs one hash per
    application, the sandbox one try/except per candidate."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    policy = ResiliencePolicy()
    result = benchmark(rewriter.rewrite, typed, resilience=policy)
    assert result.applications > 0
    assert result.resilience.rule_failures == []


def test_policy_without_divergence_tracking(benchmark, db):
    """Sandbox only: isolates the per-application history cost."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    policy = ResiliencePolicy(detect_divergence=False)
    result = benchmark(rewriter.rewrite, typed, resilience=policy)
    assert result.applications > 0


def test_sandboxed_hostile_rule(benchmark, db):
    """A quarantined always-raising rule in the pipeline: the price of
    surviving a buggy extension (one failure, then skip checks)."""
    typed = typed_query(db)

    def run():
        rewriter = QueryRewriter(db.catalog)
        rewriter.add_rule(AlwaysRaisingRule(), "simplify")
        return rewriter.rewrite(typed, resilience=ResiliencePolicy())

    result = benchmark(run)
    assert result.resilience.quarantined == ["bomb"]
    assert result.applications > 0


def test_work_budget_accounting(benchmark, db):
    """A generous budget that never triggers: measures the cost of the
    cooperative exhaustion checks alone."""
    typed = typed_query(db)
    rewriter = QueryRewriter(db.catalog)
    policy = ResiliencePolicy(max_applications=10_000)
    result = benchmark(rewriter.rewrite, typed, resilience=policy)
    assert result.degraded is False


# -- lifecycle governance ------------------------------------------------------
#
# The same opt-in contract as the rewrite sandbox, one layer down: with
# no QueryContext minted the evaluator's governance hook is a single
# ``is None`` test per operator, and these benchmarks pin the governed
# path's per-row cost (tick + row charge) plus the number the tentpole
# promises -- wall-clock cancellation latency, cancel() to the victim
# thread observing QueryCancelled and unwinding.

import threading
import time

from repro import Database
from repro.errors import QueryCancelled


def _governed_db(rows: int = 2_000) -> Database:
    db = Database()
    db.execute("TABLE G (A : NUMERIC, B : NUMERIC)")
    db.execute("INSERT INTO G VALUES " + ", ".join(
        f"({i}, {(i * 13) % 100})" for i in range(rows)
    ))
    return db


def test_ungoverned_scan_baseline(benchmark):
    """The control: no context minted, the evaluator hook is one
    ``is None`` test."""
    db = _governed_db()
    result = benchmark(db.query, "SELECT A, B FROM G WHERE B < 50")
    assert len(result.rows) == 1_000


def test_governed_scan(benchmark):
    """Budgets armed: per-row tick + charge against row and memory
    budgets that never trip."""
    db = _governed_db()
    result = benchmark(
        db.query, "SELECT A, B FROM G WHERE B < 50",
        row_budget=1 << 30, memory_budget=1 << 40,
    )
    assert len(result.rows) == 1_000


def test_cancellation_latency(benchmark):
    """cancel() to the victim unwinding: the tentpole's latency bound
    (one cooperative check interval of pure-python evaluation).

    The setup spawns a runaway cross join on a worker thread and waits
    for it to reach the evaluate phase; the measured region is exactly
    cancel + join."""
    db = _governed_db(rows=300)
    db.govern_statements = True
    runaway = ("SELECT G1.A FROM G G1, G G2, G G3 "
               "WHERE G1.B + G2.B + G3.B < -1")

    def setup():
        outcome = {}

        def run():
            try:
                db.query(runaway)
            except QueryCancelled as error:
                outcome["error"] = error

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.time() + 30.0
        context = None
        while context is None and time.time() < deadline:
            for candidate in db.lifecycle.active():
                if candidate.phase == "evaluate":
                    context = candidate
            time.sleep(0.0005)
        assert context is not None
        return (thread, context, outcome), {}

    def cancel_and_join(thread, context, outcome):
        context.cancel("kill")
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert outcome["error"].reason == "kill"

    benchmark.pedantic(cancel_and_join, setup=setup,
                       rounds=5, iterations=1)
