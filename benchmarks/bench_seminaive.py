"""A3 -- fixpoint evaluation ablation: naive vs semi-naive iteration.

Expected shape: semi-naive does strictly less work, and the factor
grows with the recursion depth; non-linear recursion converges in fewer
(but heavier) rounds than its linearized form.
"""

import pytest

from benchmarks.conftest import chain_graph, random_graph, reach_db
from repro import Database
from repro.engine.evaluate import Evaluator
from repro.engine.stats import EvalStats

UNBOUND = "SELECT Src, Dst FROM REACH"


def run_mode(db: Database, query: str, semi: bool) -> EvalStats:
    optimized = db.optimize(query, rewrite=False)
    stats = EvalStats()
    Evaluator(db.catalog, stats=stats, semi_naive=semi).evaluate(
        optimized.final
    )
    return stats


@pytest.fixture(scope="module")
def chain_db():
    return reach_db(chain_graph(18))


@pytest.fixture(scope="module")
def random_db():
    return reach_db(random_graph(14, 28))


def test_semi_naive_chain(benchmark, chain_db):
    optimized = chain_db.optimize(UNBOUND, rewrite=False)
    benchmark(
        lambda: Evaluator(chain_db.catalog, semi_naive=True)
        .evaluate(optimized.final)
    )


def test_naive_chain(benchmark, chain_db):
    optimized = chain_db.optimize(UNBOUND, rewrite=False)
    benchmark(
        lambda: Evaluator(chain_db.catalog, semi_naive=False)
        .evaluate(optimized.final)
    )


def test_semi_naive_random(benchmark, random_db):
    optimized = random_db.optimize(UNBOUND, rewrite=False)
    benchmark(
        lambda: Evaluator(random_db.catalog, semi_naive=True)
        .evaluate(optimized.final)
    )


def test_naive_random(benchmark, random_db):
    optimized = random_db.optimize(UNBOUND, rewrite=False)
    benchmark(
        lambda: Evaluator(random_db.catalog, semi_naive=False)
        .evaluate(optimized.final)
    )


def test_factor_grows_with_depth():
    """The A3 series: chain length vs naive/semi-naive work ratio."""
    ratios = []
    for n in (8, 14, 20):
        db = reach_db(chain_graph(n))
        naive = run_mode(db, UNBOUND, semi=False)
        semi = run_mode(db, UNBOUND, semi=True)
        assert semi.total_work < naive.total_work
        ratios.append(naive.total_work / max(1, semi.total_work))
    assert ratios[-1] > ratios[0], f"expected growth, got {ratios}"


def test_same_answers_both_modes():
    db = reach_db(random_graph(10, 22, seed=5))
    optimized = db.optimize(UNBOUND, rewrite=False)
    a = Evaluator(db.catalog, semi_naive=True).evaluate(optimized.final)
    b = Evaluator(db.catalog, semi_naive=False).evaluate(optimized.final)
    assert set(a.rows) == set(b.rows)


def test_nonlinear_fewer_rounds():
    """Non-linear TC squares the path length per round: fewer fixpoint
    iterations than the linear form on long chains."""
    db = reach_db(chain_graph(24))
    db.execute("""
    CREATE VIEW BT (A, B) AS
    ( SELECT Src, Dst FROM EDGE
      UNION
      SELECT B1.A, B2.B FROM BT B1, BT B2 WHERE B1.B = B2.A )
    """)
    linear = run_mode(db, UNBOUND, semi=True)
    nonlinear = run_mode(db, "SELECT A, B FROM BT", semi=True)
    assert nonlinear.fix_iterations < linear.fix_iterations
