"""Benchmark helpers: prepared plans and work measurement."""

from __future__ import annotations

from repro import Database
from repro.engine.evaluate import Evaluator
from repro.engine.stats import EvalStats


def prepare(db: Database, query: str, rewrite: bool):
    """Optimize once; return a zero-argument plan executor."""
    optimized = db.optimize(query, rewrite=rewrite)

    def run():
        return Evaluator(db.catalog).evaluate(optimized.final)

    return optimized, run


def work_of(db: Database, query: str, rewrite: bool) -> EvalStats:
    """Deterministic work counters for one execution."""
    __, stats, ___ = db.query_with_stats(query, rewrite=rewrite)
    return stats
