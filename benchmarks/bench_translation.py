"""F3 -- translation + rewriting of the Figure 3 query.

Regenerates the section 3.1 artifact: the ESQL query maps to ONE
compound search over (FILM, APPEARS_IN) with conversion functions
inserted.  Measures front-end plus rewriter latency.
"""

from repro.terms.printer import term_to_str
from repro.terms.term import is_fun

FIGURE3 = """
SELECT Title, Categories, Salary(Refactor)
FROM FILM, APPEARS_IN
WHERE FILM.Numf = APPEARS_IN.Numf
AND Name(Refactor) = 'Quinn'
AND MEMBER('Adventure', Categories)
"""


def test_figure3_translation_latency(benchmark, medium_film_db):
    db = medium_film_db

    optimized = benchmark(db.optimize, FIGURE3)

    # shape: section 3.1 -- a single compound SEARCH
    assert is_fun(optimized.final, "SEARCH")
    rendered = term_to_str(optimized.final)
    assert rendered.count("SEARCH") == 1
    assert "PROJECT(VALUE(" in rendered


def test_figure3_execution(benchmark, medium_film_db):
    db = medium_film_db

    result = benchmark(lambda: db.query(FIGURE3))

    assert all(salary == 50000 for *_, salary in result.rows)


def test_figure3_rewrite_off_baseline(benchmark, medium_film_db):
    db = medium_film_db

    benchmark(lambda: db.query(FIGURE3, rewrite=False))
