"""A1 -- the conclusion's block-limit trade-off.

"If the application limit is too high [rules] may lead to long
processing.  If one stops too early (low limit), then the logical
optimization can actually complicate the query.  Thus, a trade-off has
to be found, mainly for semantic query optimization."

The sweep varies the semantic block's budget and measures (a) rewrite
cost -- rule applications and optimizer latency -- and (b) execution
work of the resulting plan.  Expected shape: execution work drops and
then plateaus once saturation is reached, while rewrite cost keeps
growing with the budget until the same plateau.
"""

import pytest

from repro import Database
from repro.engine.evaluate import Evaluator
from repro.engine.stats import EvalStats

LIMITS = (0, 2, 4, 8, 16, 64)

# a query whose win requires several semantic steps (IC addition,
# substitution, folding): the budget controls how far the chain gets
QUERY = "SELECT Id FROM TICKET WHERE State = 'lost' AND Price > 3"


def ticket_db(semantic_limit):
    db = Database(semantic_limit=semantic_limit)
    db.execute("""
    TYPE Status ENUMERATION OF ('open', 'closed', 'void');
    TABLE TICKET (Id : NUMERIC, State : Status, Price : NUMERIC)
    """)
    db.add_integrity_constraint(
        "ic_status: F(x) / ISA(x, Status) --> "
        "F(x) AND MEMBER(x, MAKESET('open', 'closed', 'void')) /"
    )
    states = ["open", "closed", "void"]
    values = ", ".join(
        f"({i}, '{states[i % 3]}', {i % 97})" for i in range(200)
    )
    db.execute(f"INSERT INTO TICKET VALUES {values}")
    return db


@pytest.mark.parametrize("limit", LIMITS)
def test_rewrite_latency_per_limit(benchmark, limit):
    db = ticket_db(limit)
    benchmark(db.optimize, QUERY)


def test_limit_tradeoff_shape():
    """The A1 series: (limit, applications, execution work)."""
    series = []
    for limit in LIMITS:
        db = ticket_db(limit)
        optimized = db.optimize(QUERY)
        stats = EvalStats()
        Evaluator(db.catalog, stats=stats).evaluate(optimized.final)
        series.append((limit, optimized.applications, stats.total_work))

    applications = [a for __, a, ___ in series]
    work = [w for __, ___, w in series]

    # rewrite effort grows (weakly) with the budget...
    assert applications == sorted(applications)
    # ...execution work never increases with more budget...
    assert all(earlier >= later
               for earlier, later in zip(work, work[1:]))
    # ...and both plateau: the largest two budgets behave identically
    assert applications[-1] == applications[-2]
    assert work[-1] == work[-2]
    # the win is real: saturation reads no data, zero budget scans all
    assert work[0] > 0
    assert work[-1] == 0


def test_dynamic_limit_policy():
    """The conclusion suggests allocating limits by query complexity:
    a key-lookup query gets a 0 budget and must not regress."""
    db = ticket_db(0)
    simple = "SELECT Price FROM TICKET WHERE Id = 7"
    assert set(db.query(simple, rewrite=True).rows) == \
        set(db.query(simple, rewrite=False).rows)


@pytest.mark.parametrize("count_mode", ["applications", "checks"])
def test_budget_accounting_modes(benchmark, count_mode):
    """The paper states the limit both as applications and as condition
    checks; both accountings are supported (ablation)."""
    from repro.core.rewriter import QueryRewriter
    from repro.rules.library import standard_blocks
    from repro.rules.control import Seq, Block

    db = ticket_db(64)
    blocks = []
    for b in standard_blocks(db.catalog.integrity_constraints):
        limit = 64 if b.name == "semantic" else b.limit
        blocks.append(Block(b.name, b.rules, limit, count_mode))
    rewriter = QueryRewriter(db.catalog, seq=Seq(blocks, passes=2))
    term = db.translator.execute(
        __import__("repro.esql.parser", fromlist=["parse_statement"])
        .parse_statement(QUERY)
    )
    from repro.lera.typecheck import typecheck
    typed, __ = typecheck(term, db.catalog)

    benchmark(rewriter.rewrite, typed)
