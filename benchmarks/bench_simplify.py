"""F12 -- predicate simplification benchmarks.

Expected shape: simplification shrinks qualifications (measured in term
nodes) and pays for itself on redundant predicates; rewriter throughput
on simplification-heavy inputs is measured for the A1 trade-off.
"""

import pytest

from benchmarks.util import work_of
from repro import Database
from repro.terms.term import term_size


def measure_db(rows: int = 200) -> Database:
    db = Database()
    db.execute("TABLE M (Id : NUMERIC, V : NUMERIC)")
    values = ", ".join(f"({i}, {i % 83})" for i in range(rows))
    db.execute(f"INSERT INTO M VALUES {values}")
    return db


@pytest.fixture(scope="module")
def db():
    return measure_db()


REDUNDANT = ("SELECT Id FROM M WHERE V > 3 AND V > 10 AND V > 50 "
             "AND 1 = 1 AND 2 + 2 = 4")
CONTRADICTORY = "SELECT Id FROM M WHERE V > 10 AND V < 5"
FOLDABLE = "SELECT Id FROM M WHERE V = 6 * 7 AND Id < 100 - 50"


def test_simplification_latency(benchmark, db):
    optimized = benchmark(db.optimize, REDUNDANT)
    assert optimized.applications >= 3


def test_redundant_predicates_shrink(db):
    optimized = db.optimize(REDUNDANT)
    baseline = db.optimize(REDUNDANT, rewrite=False)
    assert term_size(optimized.final) < term_size(baseline.final)
    from repro.terms.printer import term_to_str
    qual = term_to_str(optimized.final.args[1])
    assert qual == "V > 50".replace("V", "#1.2")


def test_redundant_execution_cheaper(db):
    opt = work_of(db, REDUNDANT, rewrite=True)
    plain = work_of(db, REDUNDANT, rewrite=False)
    # same scans, strictly fewer per-row conjunct evaluations
    assert opt.qual_evaluations < plain.qual_evaluations
    assert set(db.query(REDUNDANT, rewrite=True).rows) == \
        set(db.query(REDUNDANT, rewrite=False).rows)


def test_contradiction_detected(db):
    from repro.terms.printer import term_to_str
    optimized = db.optimize(CONTRADICTORY)
    # the contradiction folds to false and the plan prunes to EMPTY
    assert term_to_str(optimized.final) == "EMPTY(1)"
    assert work_of(db, CONTRADICTORY, rewrite=True).tuples_scanned == 0


def test_contradiction_execution(benchmark, db):
    from benchmarks.util import prepare
    __, run = prepare(db, CONTRADICTORY, rewrite=True)
    result = benchmark(run)
    assert result.rows == []


def test_constant_folding(db):
    from repro.terms.printer import term_to_str
    optimized = db.optimize(FOLDABLE)
    rendered = term_to_str(optimized.final)
    assert "42" in rendered and "50" in rendered
    assert "*" not in rendered and "-" not in rendered


def test_folding_latency(benchmark, db):
    benchmark(db.optimize, FOLDABLE)


def test_wide_conjunction_throughput(benchmark, db):
    """Rewriter cost on a 12-conjunct qualification (A1 input)."""
    qual = " AND ".join(f"V > {i}" for i in range(12))
    query = f"SELECT Id FROM M WHERE {qual}"

    optimized = benchmark(db.optimize, query)

    from repro.terms.printer import term_to_str
    assert term_to_str(optimized.final.args[1]) == "#1.2 > 11"
