"""F7 -- Figure 7 merging rules: stacked views vs the merged search.

Expected shape: merging strictly reduces plan size and the evaluator's
intermediate tuple traffic; execution with rewriting is at least as
fast as without.
"""

from repro.engine.stats import EvalStats
from repro.terms.printer import term_to_str
from repro.terms.term import term_size

STACKED_QUERY = "SELECT Item FROM REGION_SALE WHERE Region = 1 AND Amount > 80"


def test_merged_execution(benchmark, medium_sales_db):
    db = medium_sales_db

    result = benchmark(lambda: db.query(STACKED_QUERY, rewrite=True))

    assert result.schema.names == ("Item",)


def test_unmerged_execution_baseline(benchmark, medium_sales_db):
    db = medium_sales_db

    benchmark(lambda: db.query(STACKED_QUERY, rewrite=False))


def test_merging_shape(medium_sales_db):
    """The two stacked views collapse into one SEARCH and the work
    counters drop."""
    db = medium_sales_db
    __, opt_stats, optimized = db.query_with_stats(
        STACKED_QUERY, rewrite=True
    )
    __, plain_stats, baseline = db.query_with_stats(
        STACKED_QUERY, rewrite=False
    )

    assert term_to_str(optimized.final).count("SEARCH") == 1
    assert term_size(optimized.final) < term_size(baseline.final)
    assert opt_stats.tuples_output <= plain_stats.tuples_output
    assert "search_merge" in optimized.rewrite_result.rules_fired()


def test_rewrite_cost_itself(benchmark, medium_sales_db):
    """The price of the merging pass alone (optimizer latency)."""
    db = medium_sales_db

    optimized = benchmark(db.optimize, STACKED_QUERY)

    assert optimized.applications >= 2  # both view layers merged
