"""A4 -- dynamic limit allocation (the section 7 proposal, implemented).

A mixed workload of key lookups and structurally rich queries runs
under three optimizer policies:

* ``static-high`` -- the default budgets for every query;
* ``static-zero`` -- rewriting disabled (all limits 0);
* ``dynamic``     -- budgets allocated per query by complexity.

Expected shape: dynamic spends (almost) no rewrite effort on lookups
while keeping the execution wins on the complex queries -- strictly
better than either static policy on the mixed total.
"""

import pytest

from repro import Database
from repro.engine.evaluate import Evaluator
from repro.engine.stats import EvalStats


def build_db(dynamic: bool, rewrite: bool = True) -> Database:
    db = Database(rewrite=rewrite, dynamic_limits=dynamic)
    db.execute("""
    TYPE Status ENUMERATION OF ('open', 'closed', 'void');
    TABLE TICKET (Id : NUMERIC, State : Status, Price : NUMERIC);
    TABLE LINK (Src : NUMERIC, Dst : NUMERIC)
    """)
    db.add_integrity_constraint(
        "ic_status: F(x) / ISA(x, Status) --> "
        "F(x) AND MEMBER(x, MAKESET('open', 'closed', 'void')) /"
    )
    states = ["open", "closed", "void"]
    db.execute("INSERT INTO TICKET VALUES " + ", ".join(
        f"({i}, '{states[i % 3]}', {i % 90})" for i in range(150)
    ))
    db.execute("INSERT INTO LINK VALUES " + ", ".join(
        f"({i}, {i + 1})" for i in range(1, 25)
    ))
    db.execute("""
    CREATE VIEW REACH (Src, Dst) AS
    ( SELECT Src, Dst FROM LINK
      UNION
      SELECT R.Src, L.Dst FROM REACH R, LINK L WHERE R.Dst = L.Src )
    """)
    return db


LOOKUPS = [f"SELECT Price FROM TICKET WHERE Id = {i}"
           for i in (3, 17, 42, 99, 120)]
COMPLEX = [
    # impossible state, exposed only by the semantic block + a join
    "SELECT A.Id FROM TICKET A, TICKET B "
    "WHERE A.Id = B.Id AND A.State = 'lost'",
    # bound recursive query, reduced by Alexander
    "SELECT Dst FROM REACH WHERE Src = 20",
]
WORKLOAD = LOOKUPS * 3 + COMPLEX


def run_workload(db: Database):
    """Returns (rule applications, condition checks, execution stats)."""
    total = EvalStats()
    applications = checks = 0
    for q in WORKLOAD:
        optimized = db.optimize(q)
        applications += optimized.applications
        checks += optimized.rewrite_result.checks
        Evaluator(db.catalog, stats=total).evaluate(optimized.final)
    return applications, checks, total


@pytest.mark.parametrize("policy", ["static-high", "static-zero",
                                    "dynamic"])
def test_mixed_workload_latency(benchmark, policy):
    if policy == "static-high":
        db = build_db(dynamic=False)
        run = lambda q: db.query(q, rewrite=True)        # noqa: E731
    elif policy == "static-zero":
        db = build_db(dynamic=False)
        run = lambda q: db.query(q, rewrite=False)       # noqa: E731
    else:
        db = build_db(dynamic=True)
        run = lambda q: db.query(q)                      # noqa: E731

    def workload():
        for q in WORKLOAD:
            run(q)

    benchmark(workload)


def test_dynamic_shape():
    """Dynamic rewrites less than static-high but executes as little."""
    static_db = build_db(dynamic=False)
    dynamic_db = build_db(dynamic=True)

    static_apps, static_checks, static_work = run_workload(static_db)
    dynamic_apps, dynamic_checks, dynamic_work = run_workload(dynamic_db)

    # lookups dominate the workload: dynamic saves rewrite effort
    # (measured in rule-condition checks -- lookups skip the engine)...
    assert dynamic_checks < static_checks
    assert dynamic_apps <= static_apps
    # ...while keeping the execution wins of the complex queries
    assert dynamic_work.total_work <= static_work.total_work * 1.05

    # and unoptimized execution pays heavily on the complex queries
    zero_db = build_db(dynamic=False)
    zero_work = EvalStats()
    for q in WORKLOAD:
        optimized = zero_db.optimize(q, rewrite=False)
        Evaluator(zero_db.catalog, stats=zero_work).evaluate(
            optimized.final
        )
    assert dynamic_work.total_work < zero_work.total_work


def test_dynamic_answers_match_static():
    static_db = build_db(dynamic=False)
    dynamic_db = build_db(dynamic=True)
    for q in WORKLOAD:
        assert set(static_db.query(q).rows) == \
            set(dynamic_db.query(q).rows), q
