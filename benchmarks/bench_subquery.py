"""Select migration -- IN/EXISTS subqueries flattened to semi/anti joins.

The paper's introduction lists "redundant sub-query elimination, select
migration" among the query-rewriting tasks.  Expected shapes: the
flattened semijoin probes stop at the first partner (work below the
full-join bound); selections commute below the semijoin; contradictions
inside a subquery prune the whole plan.
"""

import random

import pytest

from benchmarks.util import prepare, work_of
from repro import Database


def shop_db(customers: int, orders: int, seed: int = 8) -> Database:
    db = Database()
    db.execute("""
    TABLE CUSTOMER (Cid : NUMERIC, Region : NUMERIC);
    TABLE ORDERS (Oid : NUMERIC, Cust : NUMERIC, Total : NUMERIC)
    """)
    rng = random.Random(seed)
    db.execute("INSERT INTO CUSTOMER VALUES " + ", ".join(
        f"({c}, {c % 5})" for c in range(1, customers + 1)
    ))
    db.execute("INSERT INTO ORDERS VALUES " + ", ".join(
        f"({o}, {rng.randint(1, customers)}, {rng.randint(1, 100)})"
        for o in range(1, orders + 1)
    ))
    return db


IN_QUERY = ("SELECT Cid FROM CUSTOMER WHERE Cid IN "
            "(SELECT Cust FROM ORDERS WHERE Total > 50)")
EXISTS_QUERY = ("SELECT Cid FROM CUSTOMER C WHERE EXISTS "
                "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")
NOT_EXISTS_QUERY = ("SELECT Cid FROM CUSTOMER C WHERE NOT EXISTS "
                    "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")
FILTERED = ("SELECT Cid FROM CUSTOMER C WHERE Region = 2 AND EXISTS "
            "(SELECT Oid FROM ORDERS O WHERE O.Cust = C.Cid)")


@pytest.fixture(scope="module")
def db():
    return shop_db(customers=60, orders=240)


def test_in_subquery_execution(benchmark, db):
    __, run = prepare(db, IN_QUERY, rewrite=True)
    result = benchmark(run)
    assert len(result.rows) > 0


def test_exists_execution(benchmark, db):
    __, run = prepare(db, EXISTS_QUERY, rewrite=True)
    benchmark(run)


def test_not_exists_execution(benchmark, db):
    __, run = prepare(db, NOT_EXISTS_QUERY, rewrite=True)
    benchmark(run)


def test_translation_latency(benchmark, db):
    benchmark(db.optimize, FILTERED)


def test_semijoin_probe_stops_early(db):
    """The semijoin probe is bounded by customers x orders but exits at
    the first partner: measured pairs stay well below the bound."""
    stats = work_of(db, EXISTS_QUERY, rewrite=True)
    assert stats.join_pairs < 60 * 240


def test_filter_pushes_below_semijoin(db):
    """Only region-2 customers probe the orders."""
    filtered = work_of(db, FILTERED, rewrite=True)
    unfiltered = work_of(db, EXISTS_QUERY, rewrite=True)
    assert filtered.join_pairs < unfiltered.join_pairs


def test_subquery_contradiction_prunes_everything(db):
    q = ("SELECT Cid FROM CUSTOMER WHERE Cid IN "
         "(SELECT Cust FROM ORDERS WHERE Total > 5 AND Total < 2)")
    stats = work_of(db, q, rewrite=True)
    assert stats.tuples_scanned == 0


def test_flattening_equivalence(db):
    for q in (IN_QUERY, EXISTS_QUERY, NOT_EXISTS_QUERY, FILTERED):
        assert set(db.query(q, rewrite=True).rows) == \
            set(db.query(q, rewrite=False).rows)
