"""ANALYZE -- the cost of workload intelligence.

Three questions, per the observability layer's contract:

* what does an analyze-*off* query pay for the instrumentation
  existing at all? (the evaluator's null-object fast path: no
  collector means no wrapper, and the only new per-statement cost is
  one memoized fingerprint lookup);
* what does EXPLAIN ANALYZE mode actually cost? (one timestamped
  enter/exit pair per operator invocation -- measured here so the
  "opt-in" framing in docs/observability.md stays honest);
* is the fingerprint memo really a memo? (re-running the same source
  must not re-render the template).

Wall-clock ratios land in EXPERIMENTS.md; the committed artifact
(``BENCH_analyze.json``, from ``benchmarks.report --only analyze``)
carries only the deterministic counters.
"""

import time

from repro import Database
from repro.engine.analyze import AnalyzeCollector

QUERY = "SELECT Shop, Amount FROM SALE WHERE Amount > 10"


def _sale_db():
    db = Database()
    db.execute("TABLE SALE (Shop : NUMERIC, Amount : NUMERIC)")
    values = ", ".join(f"({i % 7}, {(i * 13) % 60})" for i in range(120))
    db.execute(f"INSERT INTO SALE VALUES {values}")
    return db


# -- per-statement costs -------------------------------------------------------

def test_analyze_off_baseline(benchmark):
    db = _sale_db()
    benchmark(lambda: db.query(QUERY))
    # the fast path really is the null object: nothing was logged
    assert db.plan_log.recorded == 0


def test_analyze_on_cost(benchmark):
    db = _sale_db()
    benchmark(lambda: db.query(QUERY, analyze=True))
    assert db.plan_log.recorded > 0


def test_analyze_off_stays_cheap():
    """Analyze-off must stay clearly cheaper than analyze-on: if the
    two converge, the wrappers leaked onto the default path (the
    bound is lenient so CI machines do not flap)."""
    db = _sale_db()
    rounds = 40

    def loop(analyze):
        started = time.perf_counter()
        for __ in range(rounds):
            db.query(QUERY, analyze=analyze)
        return time.perf_counter() - started

    loop(False)  # warm caches
    off = min(loop(False) for __ in range(3))
    on = min(loop(True) for __ in range(3))
    assert off <= on * 1.25


def test_analyze_answers_match():
    db = _sale_db()
    collector = AnalyzeCollector()
    plain = db.query(QUERY).rows
    analyzed = db.query(QUERY, analyze=collector).rows
    assert sorted(plain) == sorted(analyzed)
    assert collector.observed > 0


# -- fingerprint memo ----------------------------------------------------------

def test_fingerprint_memo_hits(benchmark):
    from repro.esql.fingerprint import fingerprint_source

    first = fingerprint_source(QUERY)
    result = benchmark(lambda: fingerprint_source(QUERY))
    # identity: the memo returns the same object, not a re-render
    assert result is first
