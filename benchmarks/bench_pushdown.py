"""F8 -- Figure 8 permutation rules: pushdown through union and nest.

Execution benchmarks run pre-optimized plans (rewrite latency is
measured separately in bench_limits/bench_translation).  Expected
shape: pushing the selection below the union / nest reduces the tuples
flowing through the upper operators, with the gain growing as the
selection gets more selective.
"""

import random

import pytest

from benchmarks.util import prepare, work_of
from repro import Database


def union_db(rows_per_side: int) -> Database:
    db = Database()
    db.execute("""
    TABLE OLD_SALE (Shop : NUMERIC, Amount : NUMERIC);
    TABLE NEW_SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW ALL_SALE (Shop, Amount) AS
      SELECT Shop, Amount FROM OLD_SALE
      UNION
      SELECT Shop, Amount FROM NEW_SALE
    """)
    rng = random.Random(9)
    for table in ("OLD_SALE", "NEW_SALE"):
        values = ", ".join(
            f"({rng.randint(1, 20)}, {rng.randint(1, 100)})"
            for __ in range(rows_per_side)
        )
        db.execute(f"INSERT INTO {table} VALUES {values}")
    return db


def nest_db(rows: int) -> Database:
    db = Database()
    db.execute("""
    TABLE SALE (Shop : NUMERIC, Amount : NUMERIC);
    CREATE VIEW PER_SHOP (Shop, Amounts) AS
      SELECT Shop, MakeSet(Amount) FROM SALE GROUP BY Shop
    """)
    rng = random.Random(4)
    values = ", ".join(
        f"({rng.randint(1, 25)}, {rng.randint(1, 100)})"
        for __ in range(rows)
    )
    db.execute(f"INSERT INTO SALE VALUES {values}")
    return db


UNION_QUERY = ("SELECT A.Amount FROM ALL_SALE A, OLD_SALE B "
               "WHERE A.Shop = B.Shop AND A.Amount > 95")
NEST_QUERY = "SELECT Amounts FROM PER_SHOP WHERE Shop = 7"


@pytest.fixture(scope="module")
def u_db():
    return union_db(120)


@pytest.fixture(scope="module")
def n_db():
    return nest_db(200)


def test_union_push_execution(benchmark, u_db):
    optimized, run = prepare(u_db, UNION_QUERY, rewrite=True)
    assert "search_union_push" in optimized.rewrite_result.rules_fired()
    result = benchmark(run)
    assert result.schema.names == ("Amount",)


def test_union_push_baseline(benchmark, u_db):
    __, run = prepare(u_db, UNION_QUERY, rewrite=False)
    benchmark(run)


def test_union_push_shape(u_db):
    """Pushing filters each branch before deduplication: fewer scans
    and a smaller union input."""
    opt = work_of(u_db, UNION_QUERY, rewrite=True)
    plain = work_of(u_db, UNION_QUERY, rewrite=False)
    assert opt.tuples_output < plain.tuples_output
    assert opt.tuples_scanned <= plain.tuples_scanned
    assert set(u_db.query(UNION_QUERY, rewrite=True).rows) == \
        set(u_db.query(UNION_QUERY, rewrite=False).rows)


def test_nest_push_execution(benchmark, n_db):
    optimized, run = prepare(n_db, NEST_QUERY, rewrite=True)
    fired = optimized.rewrite_result.rules_fired()
    assert any(name.startswith("search_nest_push") for name in fired)
    result = benchmark(run)
    assert len(result.rows) <= 1


def test_nest_push_baseline(benchmark, n_db):
    __, run = prepare(n_db, NEST_QUERY, rewrite=False)
    benchmark(run)


def test_nest_push_shape(n_db):
    """Pushing the shop selection below the NEST means only one group
    is built instead of all 25."""
    opt = work_of(n_db, NEST_QUERY, rewrite=True)
    plain = work_of(n_db, NEST_QUERY, rewrite=False)
    assert opt.tuples_output < plain.tuples_output


@pytest.mark.parametrize("label,amount", [
    ("broad", 10), ("medium", 60), ("narrow", 98),
])
def test_union_push_selectivity_sweep(benchmark, u_db, label, amount):
    """Gain grows with selectivity; the series goes to EXPERIMENTS.md."""
    query = ("SELECT A.Amount FROM ALL_SALE A, OLD_SALE B "
             f"WHERE A.Shop = B.Shop AND A.Amount > {amount}")
    __, run = prepare(u_db, query, rewrite=True)
    benchmark(run)


def test_selectivity_shape(u_db):
    """The saved output tuples grow as the filter narrows."""
    saved = []
    for amount in (10, 60, 98):
        query = ("SELECT A.Amount FROM ALL_SALE A, OLD_SALE B "
                 f"WHERE A.Shop = B.Shop AND A.Amount > {amount}")
        opt = work_of(u_db, query, rewrite=True)
        plain = work_of(u_db, query, rewrite=False)
        saved.append(plain.tuples_output - opt.tuples_output)
    assert saved[0] <= saved[-1] or saved[1] <= saved[-1]
