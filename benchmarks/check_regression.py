"""Bench-regression smoke gate: fresh run vs the committed baseline.

Run:  python -m benchmarks.check_regression
      python -m benchmarks.check_regression --only engine

For every committed ``BENCH_<group>.json`` baseline (see
``benchmarks/README.md``), re-run that group of ``benchmarks.report``
in-process and compare every numeric counter.  The tolerance is
deliberately generous -- the gate exists to catch *order-of-magnitude*
regressions (a lost rewrite, an accidental O(n^2)), not machine noise:

* a counter may grow or shrink by up to ``RATIO`` (10x) before the
  gate fails;
* a counter whose baseline is 0 may drift up to ``ABSOLUTE`` (100)
  before the gate fails;
* ``schema_version`` must match exactly and ``violations`` must be 0
  -- those are contracts, not measurements.

Non-numeric metrics (trace ids, embedded EXPLAIN reports) are skipped:
they are point-in-time payloads, not trend counters.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import sys

from benchmarks import report

RATIO = 10.0      # fail only on order-of-magnitude drift
ABSOLUTE = 100    # slack for counters whose baseline is 0

BASELINE_DIR = os.path.dirname(os.path.abspath(__file__))

# metrics that are identity payloads, not trend counters
SKIP = {"trace_id", "explain"}
# metrics that are contracts: any drift at all is a failure
EXACT = {"schema_version", "violations"}


def baseline_path(group: str) -> str:
    return os.path.join(
        os.path.dirname(BASELINE_DIR), f"BENCH_{group}.json"
    )


def fresh_run(group: str) -> dict:
    """Re-run one report group in-process and return its artifact,
    scrubbed the same way ``--out`` scrubs the committed baseline so
    both sides of the comparison are canonical."""
    report.ARTIFACT["suites"] = {}
    with contextlib.redirect_stdout(io.StringIO()):
        report.main(["--only", group])
    return report.scrubbed_artifact()


def compare(group: str, baseline: dict, fresh: dict) -> list[str]:
    problems = []
    for suite, metrics in baseline["suites"].items():
        fresh_suite = fresh["suites"].get(suite)
        if fresh_suite is None:
            problems.append(f"{group}/{suite}: suite disappeared")
            continue
        for metric, base_value in metrics.items():
            if metric in SKIP:
                continue
            if not isinstance(base_value, (int, float)) \
                    or isinstance(base_value, bool):
                continue
            if metric not in fresh_suite:
                problems.append(
                    f"{group}/{suite}.{metric}: metric disappeared"
                )
                continue
            new_value = fresh_suite[metric]
            if metric in EXACT:
                if new_value != base_value:
                    problems.append(
                        f"{group}/{suite}.{metric}: contract broken "
                        f"({base_value} -> {new_value})"
                    )
                continue
            problems.extend(
                f"{group}/{suite}.{metric}: {text}"
                for text in _drift(base_value, new_value)
            )
    return problems


def _drift(base, new) -> list[str]:
    if not isinstance(new, (int, float)) or isinstance(new, bool):
        return [f"no longer numeric ({base} -> {new!r})"]
    base_mag, new_mag = abs(base), abs(new)
    if base_mag == 0:
        if new_mag > ABSOLUTE:
            return [f"regressed from 0 to {new}"]
        return []
    if new_mag > base_mag * RATIO:
        return [f"regressed {base} -> {new} (> {RATIO:g}x)"]
    if new_mag * RATIO < base_mag:
        return [f"collapsed {base} -> {new} (< 1/{RATIO:g}x)"]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.check_regression",
        description="compare a fresh report run against the "
                    "committed BENCH_<group>.json baselines",
    )
    parser.add_argument(
        "--only", choices=sorted(report.GROUPS), default=None,
        help="check a single group instead of every committed baseline",
    )
    args = parser.parse_args(argv)

    groups = [args.only] if args.only else sorted(report.GROUPS)
    checked, problems = 0, []
    for group in groups:
        path = baseline_path(group)
        if not os.path.exists(path):
            if args.only:
                print(f"no baseline at {path}", file=sys.stderr)
                return 2
            continue  # group not yet baselined: nothing to gate
        with open(path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems.extend(compare(group, baseline, fresh_run(group)))
        checked += 1

    if checked == 0:
        print("no BENCH_<group>.json baselines found: nothing to "
              "check", file=sys.stderr)
        return 2
    if problems:
        for line in problems:
            print(f"REGRESSION {line}", file=sys.stderr)
        return 1
    print(f"bench-regression gate ok: {checked} baseline(s), "
          f"tolerance {RATIO:g}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
