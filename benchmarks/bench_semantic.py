"""F10/F11 -- semantic optimization benchmarks.

Expected shapes:

* inconsistency detection (Figure 10) answers in O(plan) instead of
  O(data): the rewritten plan reads zero tuples, and its advantage
  grows with the table size;
* implicit knowledge (Figure 11) exposes constant contradictions and
  propagates bounds, shrinking execution work;
* the added constraint conjuncts cost a little on consistent queries --
  the trade-off the conclusion discusses.
"""

import pytest

from benchmarks.util import prepare, work_of
from repro import Database


def ticket_db(rows: int) -> Database:
    db = Database()
    db.execute("""
    TYPE Status ENUMERATION OF ('open', 'closed', 'void');
    TABLE TICKET (Id : NUMERIC, State : Status, Price : NUMERIC)
    """)
    db.add_integrity_constraint(
        "ic_status: F(x) / ISA(x, Status) --> "
        "F(x) AND MEMBER(x, MAKESET('open', 'closed', 'void')) /"
    )
    states = ["open", "closed", "void"]
    values = ", ".join(
        f"({i}, '{states[i % 3]}', {i % 97})" for i in range(rows)
    )
    db.execute(f"INSERT INTO TICKET VALUES {values}")
    return db


IMPOSSIBLE = "SELECT Id FROM TICKET WHERE State = 'lost'"
POSSIBLE = "SELECT Id FROM TICKET WHERE State = 'open'"


@pytest.fixture(scope="module")
def tickets():
    return ticket_db(400)


def test_inconsistent_query_execution(benchmark, tickets):
    __, run = prepare(tickets, IMPOSSIBLE, rewrite=True)
    result = benchmark(run)
    assert result.rows == []


def test_inconsistent_query_baseline(benchmark, tickets):
    __, run = prepare(tickets, IMPOSSIBLE, rewrite=False)
    result = benchmark(run)
    assert result.rows == []


def test_inconsistency_shape(tickets):
    """O(plan) vs O(data): the rewritten plan never touches a tuple."""
    opt = work_of(tickets, IMPOSSIBLE, rewrite=True)
    plain = work_of(tickets, IMPOSSIBLE, rewrite=False)
    assert opt.tuples_scanned == 0
    assert plain.tuples_scanned >= 400


def test_inconsistency_gain_grows_with_data():
    gains = []
    for rows in (100, 400):
        db = ticket_db(rows)
        plain = work_of(db, IMPOSSIBLE, rewrite=False)
        opt = work_of(db, IMPOSSIBLE, rewrite=True)
        gains.append(plain.total_work - opt.total_work)
    assert gains[1] > gains[0]


def test_consistent_query_overhead(benchmark, tickets):
    """The paper's caveat: added constraints can complicate consistent
    queries; measure the per-row evaluation overhead."""
    __, run = prepare(tickets, POSSIBLE, rewrite=True)
    result = benchmark(run)
    assert len(result.rows) > 0


def test_consistent_query_baseline(benchmark, tickets):
    __, run = prepare(tickets, POSSIBLE, rewrite=False)
    benchmark(run)


# -- Figure 11: implicit knowledge -------------------------------------------

def numbers_db(rows: int) -> Database:
    db = Database()
    db.execute("TABLE MEASURE (Id : NUMERIC, Lo : NUMERIC, Hi : NUMERIC)")
    values = ", ".join(
        f"({i}, {i % 50}, {i % 50 + 10})" for i in range(rows)
    )
    db.execute(f"INSERT INTO MEASURE VALUES {values}")
    return db


@pytest.fixture(scope="module")
def measures():
    return numbers_db(300)


CONTRADICTION = "SELECT Id FROM MEASURE WHERE Lo = 5 AND Lo > 7"
TRANSITIVE = ("SELECT Id FROM MEASURE "
              "WHERE Lo = Hi AND Hi = 30")


def test_constant_contradiction_execution(benchmark, measures):
    optimized, run = prepare(measures, CONTRADICTION, rewrite=True)
    result = benchmark(run)
    assert result.rows == []


def test_constant_contradiction_shape(measures):
    """Figure 11 equality substitution: Lo = 5 and Lo > 7 derive
    5 > 7, which folds to false -- zero scans."""
    opt = work_of(measures, CONTRADICTION, rewrite=True)
    plain = work_of(measures, CONTRADICTION, rewrite=False)
    assert opt.tuples_scanned == 0
    assert plain.tuples_scanned >= 300


def test_transitive_equality_execution(benchmark, measures):
    __, run = prepare(measures, TRANSITIVE, rewrite=True)
    result = benchmark(run)
    # Lo = Hi is impossible here (Hi = Lo + 10): empty either way
    assert result.rows == []


def test_transitive_equality_baseline(benchmark, measures):
    __, run = prepare(measures, TRANSITIVE, rewrite=False)
    benchmark(run)


def test_transitivity_adds_usable_conjunct(measures):
    optimized = measures.optimize(TRANSITIVE)
    from repro.terms.printer import term_to_str
    rendered = term_to_str(optimized.final)
    # the derived Lo = 30 constant binding appears in the plan
    assert "30" in rendered
    fired = optimized.rewrite_result.rules_fired()
    assert any(name.startswith("eq_") for name in fired)
