"""F9 -- Figure 9: the Alexander method on bound recursive queries.

Expected shape: on a selection ``REACH WHERE Src = c`` the reduced
(magic) plan beats filter-after-fixpoint by a factor that grows with
the graph size; an unbound query shows the crossover (no reduction
applies, both plans do the same work).
"""

import pytest

from benchmarks.conftest import chain_graph, random_graph, reach_db

BOUND = "SELECT Dst FROM REACH WHERE Src = {c}"
UNBOUND = "SELECT Src, Dst FROM REACH"


@pytest.fixture(scope="module")
def chain30():
    return reach_db(chain_graph(30))


@pytest.fixture(scope="module")
def rand_db():
    return reach_db(random_graph(18, 40))


def test_magic_execution_chain(benchmark, chain30):
    result = benchmark(
        lambda: chain30.query(BOUND.format(c=25), rewrite=True)
    )
    assert len(result.rows) == 6


def test_plain_execution_chain(benchmark, chain30):
    result = benchmark(
        lambda: chain30.query(BOUND.format(c=25), rewrite=False)
    )
    assert len(set(result.rows)) == 6


def test_magic_execution_random(benchmark, rand_db):
    benchmark(lambda: rand_db.query(BOUND.format(c=3), rewrite=True))


def test_plain_execution_random(benchmark, rand_db):
    benchmark(lambda: rand_db.query(BOUND.format(c=3), rewrite=False))


def test_magic_wins_and_factor_grows_with_size():
    """The central Figure 9 claim, measured in work units."""
    factors = []
    for n in (10, 20, 30):
        db = reach_db(chain_graph(n))
        q = BOUND.format(c=n - 4)
        __, opt, optimized = db.query_with_stats(q, rewrite=True)
        __, plain, ___ = db.query_with_stats(q, rewrite=False)
        assert "fix_alexander" in optimized.rewrite_result.rules_fired()
        assert opt.total_work < plain.total_work
        factors.append(plain.total_work / max(1, opt.total_work))
    assert factors[-1] > factors[0], (
        f"speedup should grow with the chain length, got {factors}"
    )


def test_unbound_query_is_the_crossover(chain30):
    """Without a bound column the rule must not fire: both plans do
    equivalent work (the reduction has nothing to seed)."""
    __, opt, optimized = chain30.query_with_stats(UNBOUND, rewrite=True)
    __, plain, ___ = chain30.query_with_stats(UNBOUND, rewrite=False)
    assert "fix_alexander" not in optimized.rewrite_result.rules_fired()
    assert opt.total_work == plain.total_work


def test_nonlinear_linearized_first(benchmark):
    db = reach_db([])  # REACH unused; build BT below
    db.execute("""
    CREATE VIEW BT (A, B) AS
    ( SELECT Src, Dst FROM EDGE
      UNION
      SELECT B1.A, B2.B FROM BT B1, BT B2 WHERE B1.B = B2.A )
    """)
    values = ", ".join(f"({i}, {i + 1})" for i in range(1, 18))
    db.execute(f"INSERT INTO EDGE VALUES {values}")

    optimized = benchmark(db.optimize, "SELECT A FROM BT WHERE B = 9")

    fired = optimized.rewrite_result.rules_fired()
    assert "fix_linearize" in fired and "fix_alexander" in fired


def test_second_column_binding(benchmark):
    """Alexander also reduces Dst-bound queries (backward chains)."""
    db = reach_db(chain_graph(25))
    q = "SELECT Src FROM REACH WHERE Dst = 5"

    result = benchmark(lambda: db.query(q, rewrite=True))

    assert len(set(result.rows)) == 4
    __, opt, optimized = db.query_with_stats(q, rewrite=True)
    __, plain, ___ = db.query_with_stats(q, rewrite=False)
    assert "fix_alexander" in optimized.rewrite_result.rules_fired()
    assert opt.total_work < plain.total_work
