"""The durability manager: one directory, one WAL, one snapshot.

``Database(path=...)`` owns a :class:`DurabilityManager` rooted at
``path`` (created on demand)::

    path/
      wal.log        the append-only statement log
      snapshot.db    the last installed checkpoint (atomic rename)

Recovery contract (see ``docs/durability.md``): reopening a database
after a crash at *any* byte yields the state produced by some
statement-boundary prefix of the statements whose execution was
acknowledged, torn WAL tails are truncated (not errors), and stale WAL
records left by a crash between checkpoint-install and WAL-reset are
skipped by their LSNs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.durability.crash import CrashPoint
from repro.durability.snapshot import (load_snapshot, restore_state,
                                       snapshot_state, write_snapshot)
from repro.durability.wal import WriteAheadLog, scan_wal
from repro.errors import DurabilityError

__all__ = ["DurabilityManager", "RecoveryReport", "CheckpointReport"]

WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snapshot.db"


@dataclass
class RecoveryReport:
    """What opening the database found and repaired."""

    snapshot_lsn: int     # 0 when no snapshot was installed
    replayed: int         # WAL records re-executed
    stale: int            # WAL records skipped (<= snapshot LSN)
    truncated_bytes: int  # torn tail removed from the WAL
    last_lsn: int         # the recovered position
    duration: float = 0.0

    def summary(self) -> str:
        parts = [f"{self.replayed} statement(s) replayed"]
        if self.snapshot_lsn:
            parts.append(f"snapshot at lsn {self.snapshot_lsn}")
        if self.stale:
            parts.append(f"{self.stale} stale record(s) skipped")
        if self.truncated_bytes:
            parts.append(
                f"{self.truncated_bytes} byte(s) of torn tail truncated"
            )
        return f"recovered to lsn {self.last_lsn} ({', '.join(parts)})"


@dataclass
class CheckpointReport:
    last_lsn: int
    bytes_written: int
    relations: int
    duration: float = 0.0

    def summary(self) -> str:
        return (f"checkpoint at lsn {self.last_lsn} "
                f"({self.bytes_written} bytes, "
                f"{self.relations} relation(s))")


class DurabilityManager:
    """Owns the WAL and snapshot of one durable database directory."""

    def __init__(self, path: str, sync: bool = False, obs=None):
        if os.path.exists(path) and not os.path.isdir(path):
            raise DurabilityError(
                f"durable path {path!r} exists and is not a directory"
            )
        os.makedirs(path, exist_ok=True)
        self.root = path
        self.obs = obs
        self.wal = WriteAheadLog(os.path.join(path, WAL_FILE), sync=sync)
        self.snapshot_path = os.path.join(path, SNAPSHOT_FILE)
        self.last_lsn = 0

    # -- crash injection (test hook) -----------------------------------------
    @property
    def crashpoint(self) -> Optional[CrashPoint]:
        return self.wal.crashpoint

    @crashpoint.setter
    def crashpoint(self, point: Optional[CrashPoint]) -> None:
        self.wal.crashpoint = point

    # -- fsync policy ---------------------------------------------------------
    @property
    def sync(self) -> bool:
        return self.wal.sync

    @sync.setter
    def sync(self, value: bool) -> None:
        self.wal.sync = bool(value)

    # -- recovery -------------------------------------------------------------
    def recover(self, database) -> RecoveryReport:
        """Load the snapshot, replay the WAL, repair a torn tail."""
        started = time.perf_counter()
        snapshot_lsn = 0
        snapshot = load_snapshot(self.snapshot_path)
        if snapshot is not None:
            restore_state(database, snapshot)
            snapshot_lsn = self.last_lsn = int(snapshot["last_lsn"])

        scan = scan_wal(self.wal.path)
        if scan.truncated_bytes:
            self.wal.truncate_to(scan.good_offset)
        replayed = stale = 0
        for record in scan.records:
            lsn = record["lsn"]
            if lsn <= self.last_lsn:
                stale += 1  # pre-checkpoint residue; effects already in
                continue    # the snapshot
            database._replay_statement(record["sql"])
            self.last_lsn = lsn
            replayed += 1
        self.wal.open()

        report = RecoveryReport(
            snapshot_lsn=snapshot_lsn, replayed=replayed, stale=stale,
            truncated_bytes=scan.truncated_bytes,
            last_lsn=self.last_lsn,
            duration=time.perf_counter() - started,
        )
        bus = self.obs
        if bus:
            from repro.obs.events import RecoveryCompleted, WalReplay
            bus.emit(WalReplay(
                records=replayed + stale,
                bytes_truncated=scan.truncated_bytes,
                duration=report.duration,
            ))
            bus.emit(RecoveryCompleted(
                snapshot_lsn=snapshot_lsn, replayed=replayed,
                bytes_truncated=scan.truncated_bytes,
                duration=report.duration,
            ))
        return report

    # -- logging --------------------------------------------------------------
    def log_statement(self, sql: str) -> None:
        """Append one committed statement; called *after* it fully
        applied in memory (commit == append: a crash mid-append loses
        exactly this statement, keeping the statement-boundary-prefix
        contract)."""
        lsn = self.last_lsn + 1
        started = time.perf_counter()
        nbytes = self.wal.append({"kind": "stmt", "lsn": lsn, "sql": sql})
        self.last_lsn = lsn
        bus = self.obs
        if bus:
            from repro.obs.events import WalAppend
            bus.emit(WalAppend(
                lsn=lsn, bytes=nbytes, sync=self.wal.sync,
                duration=time.perf_counter() - started,
            ))

    # -- checkpoint -----------------------------------------------------------
    def checkpoint(self, database) -> CheckpointReport:
        """Install a snapshot of the current state, then reset the WAL."""
        started = time.perf_counter()
        state = snapshot_state(
            database.catalog, database._ddl_history, self.last_lsn
        )
        nbytes = write_snapshot(
            self.snapshot_path, state, crashpoint=self.crashpoint
        )
        self.wal.reset()
        report = CheckpointReport(
            last_lsn=self.last_lsn, bytes_written=nbytes,
            relations=len(state["tables"]),
            duration=time.perf_counter() - started,
        )
        bus = self.obs
        if bus:
            from repro.obs.events import CheckpointTaken
            bus.emit(CheckpointTaken(
                lsn=self.last_lsn, bytes=nbytes,
                relations=report.relations, duration=report.duration,
            ))
        return report

    def close(self) -> None:
        self.wal.close()
