"""Crash injection: deterministic process-death simulation.

A :class:`CrashPoint` names a *site* in the durability layer and, for
byte-oriented sites, the exact byte offset at which the "process dies".
The I/O helpers below consult it on every write, emit the allowed
prefix, and then raise :class:`SimulatedCrash` -- leaving the on-disk
files exactly as a killed process would: torn frames, half-written
temp files, installed-but-untruncated logs.

Sites
-----
``wal``                 die once the WAL file reaches ``at_byte`` bytes
``checkpoint-temp``     die once the snapshot temp file reaches
                        ``at_byte`` bytes (snapshot never installed)
``checkpoint-rename``   die after the temp file is complete but before
                        the atomic rename installs it
``wal-reset``           die after a checkpoint installed its snapshot
                        but before the WAL was truncated

Tests catch :class:`SimulatedCrash`, drop the in-memory ``Database``
(the "process" is dead), and reopen from the same path to assert the
recovery contract.  See ``docs/durability.md``.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["CrashPoint", "SimulatedCrash", "guarded_write"]

SITES = ("wal", "checkpoint-temp", "checkpoint-rename", "wal-reset")


class SimulatedCrash(Exception):
    """The injected process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: no library
    error guard may swallow it, exactly as none could survive a real
    ``kill -9``.
    """


class CrashPoint:
    """One scheduled crash; ``fired`` records whether it triggered."""

    __slots__ = ("site", "at_byte", "fired")

    def __init__(self, site: str, at_byte: int = 0):
        if site not in SITES:
            raise ValueError(f"unknown crash site {site!r}; one of {SITES}")
        self.site = site
        self.at_byte = at_byte
        self.fired = False

    def fire(self) -> None:
        self.fired = True
        raise SimulatedCrash(
            f"injected crash at {self.site}+{self.at_byte}"
        )

    def __repr__(self) -> str:
        return f"CrashPoint({self.site!r}, at_byte={self.at_byte})"


def guarded_write(handle, data: bytes, site: str, position: int,
                  crashpoint: Optional[CrashPoint]) -> int:
    """Write ``data`` at byte ``position`` of ``handle``, honouring an
    armed crash point: when the write would cross ``at_byte``, only the
    prefix up to it is emitted (flushed and fsynced, so the torn state
    is really on disk) and :class:`SimulatedCrash` is raised.

    Returns the new position.
    """
    if crashpoint is None or crashpoint.site != site:
        handle.write(data)
        return position + len(data)
    budget = crashpoint.at_byte - position
    if budget >= len(data):
        handle.write(data)
        return position + len(data)
    if budget > 0:
        handle.write(data[:budget])
    handle.flush()
    try:
        os.fsync(handle.fileno())
    except OSError:
        pass
    crashpoint.fire()
    raise AssertionError("unreachable")  # pragma: no cover
