"""Crash safety and restart recovery for the engine.

The paper's rewriter sat on the EDS parallel store; this package gives
our in-memory substrate the equivalent durability story so the whole
pipeline -- not just the rewrite phase hardened by ``repro.resilience``
-- is trustworthy under failure:

* :class:`WriteAheadLog` -- checksummed, append-only, length-prefixed
  statement frames with a configurable fsync-on-commit policy;
* :class:`UndoLog` -- statement-level before-images, making every ESQL
  statement all-or-nothing;
* snapshots -- full-state checkpoints installed by atomic rename, with
  WAL truncation after install;
* :class:`DurabilityManager` -- recovery on ``Database(path=...)``
  open: load snapshot, truncate torn WAL tails, replay the rest;
* :class:`CrashPoint` -- deterministic crash injection at arbitrary
  byte offsets (the CI matrix reopens after every one);
* :func:`check_database` -- fsck-style invariant checking (CLI
  ``.fsck``).

See ``docs/durability.md`` for the file formats and the recovery
contract.
"""

from repro.durability.atomic import UndoLog
from repro.durability.check import (FsckReport, Violation, check_catalog,
                                    check_database)
from repro.durability.crash import CrashPoint, SimulatedCrash
from repro.durability.manager import (CheckpointReport, DurabilityManager,
                                      RecoveryReport)
from repro.durability.snapshot import (decode_value, encode_value,
                                       load_snapshot, snapshot_state,
                                       write_snapshot)
from repro.durability.wal import WriteAheadLog, scan_wal

__all__ = [
    "UndoLog", "WriteAheadLog", "scan_wal",
    "DurabilityManager", "RecoveryReport", "CheckpointReport",
    "CrashPoint", "SimulatedCrash",
    "FsckReport", "Violation", "check_catalog", "check_database",
    "encode_value", "decode_value", "snapshot_state", "write_snapshot",
    "load_snapshot",
]
