"""The write-ahead log: checksummed, append-only statement frames.

File layout::

    RWAL1\\n                                  6-byte magic
    [u32 length][u32 crc32][payload bytes]    frame, repeated
    ...

Both header fields are little-endian; the CRC covers the payload only.
A payload is the compact JSON encoding of one record::

    {"kind": "stmt", "lsn": 7, "sql": "INSERT INTO T VALUES (1)"}

This is *logical* logging: replaying the ``sql`` texts in LSN order
through the translator reproduces the statements' effects exactly
(statement execution is deterministic, including OID allocation, which
:meth:`repro.adt.values.ObjectStore.rewind` keeps dense).

:func:`scan_wal` validates frames strictly in sequence and stops at the
first violation -- short header, implausible length, CRC mismatch,
malformed JSON, or a non-increasing LSN.  Everything from that offset
on is a *torn tail* (the residue of a crash mid-append) and is
truncated on recovery rather than treated as an error.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.durability.crash import CrashPoint, guarded_write
from repro.errors import DurabilityError

__all__ = ["WAL_MAGIC", "WriteAheadLog", "WalScan", "encode_frame",
           "scan_wal"]

WAL_MAGIC = b"RWAL1\n"
_HEADER = struct.Struct("<II")
# a single frame above this is implausible and treated as corruption
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


def encode_frame(record: dict) -> bytes:
    payload = json.dumps(
        record, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise DurabilityError(
            f"WAL record of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte frame limit"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """The result of validating a WAL file front to back."""

    records: list
    good_offset: int      # file is valid up to here
    truncated_bytes: int  # torn tail length (0 when the file is clean)
    reason: Optional[str] = None  # why scanning stopped early


def scan_wal(path: str) -> WalScan:
    """Read and validate ``path``; never raises on torn/corrupt data."""
    if not os.path.exists(path):
        return WalScan([], 0, 0)
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return WalScan([], 0, 0)
    if not data.startswith(WAL_MAGIC):
        # the file died during its very first write; nothing is salvageable
        return WalScan([], 0, len(data), "bad magic")

    records: list = []
    offset = len(WAL_MAGIC)
    last_lsn = None
    reason = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            reason = "torn frame header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_PAYLOAD:
            reason = "implausible frame length"
            break
        body_start = offset + _HEADER.size
        if body_start + length > len(data):
            reason = "torn frame payload"
            break
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            reason = "crc mismatch"
            break
        try:
            record = json.loads(payload)
        except ValueError:
            reason = "malformed record"
            break
        if not isinstance(record, dict) or \
                not isinstance(record.get("lsn"), int):
            reason = "record without lsn"
            break
        if last_lsn is not None and record["lsn"] <= last_lsn:
            reason = "non-increasing lsn"
            break
        records.append(record)
        last_lsn = record["lsn"]
        offset = body_start + length
    return WalScan(records, offset, len(data) - offset, reason)


class WriteAheadLog:
    """Appender over one WAL file.

    ``sync=True`` fsyncs after every append (commit durability across
    power loss); ``sync=False`` only flushes to the OS (commit survives
    a process crash but not a machine crash) -- the classic trade, made
    configurable because the benchmarks quantify it.
    """

    def __init__(self, path: str, sync: bool = False):
        self.path = path
        self.sync = sync
        self.crashpoint: Optional[CrashPoint] = None
        self._handle = None
        self._position = 0

    @property
    def position(self) -> int:
        """Current append offset (== file size while open)."""
        return self._position

    def open(self) -> None:
        """Open for appending; writes the magic into a fresh file."""
        self._handle = open(self.path, "ab")
        self._position = self._handle.tell()
        if self._position == 0:
            self._position = guarded_write(
                self._handle, WAL_MAGIC, "wal", 0, self.crashpoint
            )
            self._handle.flush()

    def append(self, record: dict) -> int:
        """Append one frame; returns its size in bytes."""
        if self._handle is None:
            raise DurabilityError("write-ahead log is not open")
        frame = encode_frame(record)
        self._position = guarded_write(
            self._handle, frame, "wal", self._position, self.crashpoint
        )
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        return len(frame)

    def truncate_to(self, offset: int) -> None:
        """Chop a torn tail found by :func:`scan_wal` (before open())."""
        if self._handle is not None:
            raise DurabilityError("cannot truncate an open log")
        if not os.path.exists(self.path):
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())

    def reset(self) -> None:
        """Atomically replace the log with a fresh one (post-checkpoint).

        Uses write-temp-then-rename so a crash in between leaves either
        the full old log (stale records are skipped on replay by their
        LSNs) or the fresh empty one -- never a half state.
        """
        was_open = self._handle is not None
        self.close()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(WAL_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        if self.crashpoint is not None and \
                self.crashpoint.site == "wal-reset":
            self.crashpoint.fire()
        os.replace(tmp, self.path)
        _fsync_dir(os.path.dirname(self.path))
        if was_open:
            self.open()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _fsync_dir(path: str) -> None:
    """Best-effort directory fsync so a rename itself is durable."""
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
