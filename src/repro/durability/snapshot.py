"""Checkpoints: a full-state snapshot installed by atomic rename.

A snapshot compacts the log: after one is installed, WAL records with
LSN <= its ``last_lsn`` are dead weight (recovery skips them) and the
log is reset.  The file holds::

    RSNAP1 <crc32-hex> <payload-length>\\n
    <JSON payload>

and the payload carries three sections:

``ddl``      the ordered DDL statement texts executed so far; replaying
             them through the translator rebuilds types, tables, views
             and constraints exactly (schema-as-text, the hybrid every
             dump format uses)
``tables``   per-relation row data, values in the tagged encoding of
             :func:`encode_value` (data-as-state: DML history is *not*
             replayed, which is the compaction win)
``objects``  the ObjectStore contents plus its OID counter, so replayed
             WAL statements after the snapshot allocate the same OIDs
             the original execution did

Installation is write-temp + fsync + ``os.replace`` + directory fsync:
a crash at any byte leaves either the previous snapshot or the new one,
never a blend.  The temp file is ignored by :func:`load_snapshot`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Optional

from repro.adt.values import (ArrayValue, BagValue, CollectionValue,
                              ListValue, ObjectRef, SetValue, TupleValue)
from repro.durability.crash import CrashPoint, guarded_write
from repro.errors import DurabilityError

__all__ = ["SNAPSHOT_FORMAT", "encode_value", "decode_value",
           "snapshot_state", "write_snapshot", "load_snapshot",
           "restore_state"]

SNAPSHOT_FORMAT = 1
_SNAP_PREFIX = b"RSNAP1 "

_COLLECTION_TAGS = {
    SetValue: "SET", BagValue: "BAG", ListValue: "LIST",
    ArrayValue: "ARRAY",
}
_COLLECTION_CTORS = {
    "SET": SetValue, "BAG": BagValue, "LIST": ListValue,
    "ARRAY": ArrayValue,
}


def encode_value(value: Any) -> Any:
    """Runtime value -> JSON-safe tagged form (lossless round trip)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, CollectionValue):
        tag = _COLLECTION_TAGS.get(type(value))
        if tag is None:
            raise DurabilityError(
                f"cannot serialise collection kind {type(value).__name__}"
            )
        return {"$c": [tag, [encode_value(e) for e in value.elements]]}
    if isinstance(value, TupleValue):
        return {"$t": [
            [name, encode_value(item)]
            for name, item in zip(value.field_names, value.field_values)
        ]}
    if isinstance(value, ObjectRef):
        return {"$r": [value.oid, value.type_name]}
    raise DurabilityError(f"cannot serialise value {value!r}")


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        if "$c" in encoded:
            kind, elements = encoded["$c"]
            return _COLLECTION_CTORS[kind](
                decode_value(e) for e in elements
            )
        if "$t" in encoded:
            return TupleValue(
                [(name, decode_value(v)) for name, v in encoded["$t"]]
            )
        if "$r" in encoded:
            oid, type_name = encoded["$r"]
            return ObjectRef(oid, type_name)
        raise DurabilityError(f"unknown value tag in {encoded!r}")
    return encoded


def snapshot_state(catalog, ddl_history, last_lsn: int) -> dict:
    """Capture the full engine state as the snapshot payload dict."""
    tables = {}
    for name in catalog.relation_names():
        relation = catalog.table(name)
        tables[name] = [
            [encode_value(v) for v in row] for row in relation.rows
        ]
    return {
        "format": SNAPSHOT_FORMAT,
        "last_lsn": last_lsn,
        "ddl": list(ddl_history),
        "tables": tables,
        "objects": {
            "next_oid": catalog.objects.mark(),
            "items": [
                [oid, type_name, encode_value(value)]
                for oid, type_name, value in catalog.objects.items()
            ],
        },
    }


def write_snapshot(path: str, state: dict,
                   crashpoint: Optional[CrashPoint] = None) -> int:
    """Install ``state`` at ``path`` atomically; returns bytes written."""
    payload = json.dumps(
        state, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    header = b"%s%08x %d\n" % (
        _SNAP_PREFIX, zlib.crc32(payload), len(payload)
    )
    blob = header + payload
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        guarded_write(handle, blob, "checkpoint-temp", 0, crashpoint)
        handle.flush()
        os.fsync(handle.fileno())
    if crashpoint is not None and \
            crashpoint.site == "checkpoint-rename":
        crashpoint.fire()
    os.replace(tmp, path)
    from repro.durability.wal import _fsync_dir
    _fsync_dir(os.path.dirname(path))
    return len(blob)


def load_snapshot(path: str) -> Optional[dict]:
    """Read and verify a snapshot; ``None`` when none is installed."""
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(_SNAP_PREFIX):
        raise DurabilityError(
            f"snapshot {path!r} is corrupt (bad magic); "
            f"delete it to recover from the WAL alone"
        )
    newline = blob.find(b"\n")
    try:
        crc_hex, length_text = blob[len(_SNAP_PREFIX):newline].split()
        expected_crc = int(crc_hex, 16)
        expected_length = int(length_text)
    except ValueError:
        raise DurabilityError(
            f"snapshot {path!r} is corrupt (unreadable header)"
        ) from None
    payload = blob[newline + 1:]
    if len(payload) != expected_length or \
            zlib.crc32(payload) != expected_crc:
        raise DurabilityError(
            f"snapshot {path!r} is corrupt (checksum mismatch); "
            f"delete it to recover from the WAL alone"
        )
    state = json.loads(payload)
    if state.get("format") != SNAPSHOT_FORMAT:
        raise DurabilityError(
            f"snapshot {path!r} has unsupported format "
            f"{state.get('format')!r}"
        )
    return state


def restore_state(database, state: dict) -> None:
    """Load a snapshot payload into a *fresh* Database.

    Objects first (DDL replay never allocates OIDs but row data
    references them), then the DDL history through the normal replay
    path (which rebuilds ``database._ddl_history`` as it goes), then
    the raw row data.
    """
    objects = state["objects"]
    database.catalog.objects.load(
        [(oid, type_name, decode_value(value))
         for oid, type_name, value in objects["items"]],
        objects["next_oid"],
    )
    for sql in state["ddl"]:
        database._replay_statement(sql)
    for name, rows in state["tables"].items():
        relation = database.catalog.table(name)
        relation.replace_rows(
            tuple(decode_value(v) for v in row) for row in rows
        )
