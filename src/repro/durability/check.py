"""fsck for the engine: invariant checking over a live database.

Four invariant families, mirroring what the durability layer promises:

``arity``        every stored row has exactly as many values as its
                 relation's schema has attributes
``key-index``    the materialised ``_key_index`` of every keyed
                 relation equals the recomputed key set, and no key is
                 duplicated among the rows
``dangling-ref`` every ObjectRef reachable from any row or any stored
                 object value resolves in the ObjectStore (and the
                 store's own type/value maps agree)
``wal-sequence`` WAL record LSNs form a strictly consecutive chain,
                 and the manager's position equals the maximum of the
                 snapshot LSN and the last WAL LSN

Violations are *reported*, never repaired -- fsck is a diagnosis tool
(CLI ``.fsck``, the crash-injection CI matrix) and repairs belong to
recovery.  Each violation is also emitted as an
:class:`~repro.obs.events.FsckViolation` event when a bus is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.adt.values import CollectionValue, ObjectRef, TupleValue
from repro.durability.snapshot import load_snapshot
from repro.durability.wal import scan_wal

__all__ = ["Violation", "FsckReport", "check_catalog", "check_database"]


@dataclass(frozen=True)
class Violation:
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class FsckReport:
    violations: list = field(default_factory=list)
    relations_checked: int = 0
    rows_checked: int = 0
    objects_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (f"fsck ok: {self.relations_checked} relation(s), "
                    f"{self.rows_checked} row(s), "
                    f"{self.objects_checked} object(s) checked")
        return f"fsck: {len(self.violations)} violation(s)"


def _iter_refs(value) -> Iterator[ObjectRef]:
    if isinstance(value, ObjectRef):
        yield value
    elif isinstance(value, CollectionValue):
        for element in value.elements:
            yield from _iter_refs(element)
    elif isinstance(value, TupleValue):
        for item in value.field_values:
            yield from _iter_refs(item)
    elif isinstance(value, (tuple, list)):
        # a stored row is a plain Python tuple of values
        for item in value:
            yield from _iter_refs(item)


def check_catalog(catalog, report: Optional[FsckReport] = None,
                  obs=None) -> FsckReport:
    """Run the in-memory invariants (arity, key-index, dangling-ref)."""
    report = report or FsckReport()

    def violate(kind: str, detail: str) -> None:
        violation = Violation(kind, detail)
        report.violations.append(violation)
        if obs:
            from repro.obs.events import FsckViolation
            obs.emit(FsckViolation(kind=kind, detail=detail))

    for name in catalog.relation_names():
        relation = catalog.table(name)
        report.relations_checked += 1
        width = len(relation.schema)
        recomputed: set = set()
        duplicated = False
        for i, row in enumerate(relation.rows):
            report.rows_checked += 1
            if len(row) != width:
                violate(
                    "arity",
                    f"{name} row {i} has {len(row)} values, schema "
                    f"has {width}",
                )
                continue
            if relation.key:
                key_value = relation._key_of(row)
                if key_value in recomputed and not duplicated:
                    duplicated = True
                    violate(
                        "key-index",
                        f"{name} holds duplicate key {key_value!r}",
                    )
                recomputed.add(key_value)
            for ref in _iter_refs(row):
                if ref not in catalog.objects:
                    violate(
                        "dangling-ref",
                        f"{name} row {i} references {ref!r} which is "
                        f"not in the object store",
                    )
        if relation.key and recomputed != relation._key_index:
            violate(
                "key-index",
                f"{name} key index disagrees with its rows "
                f"({len(relation._key_index)} indexed, "
                f"{len(recomputed)} recomputed)",
            )

    store = catalog.objects
    for oid, type_name, value in store.items():
        report.objects_checked += 1
        for ref in _iter_refs(value):
            if ref not in store:
                violate(
                    "dangling-ref",
                    f"object {oid} ({type_name}) references {ref!r} "
                    f"which is not in the object store",
                )
    return report


def check_durability(manager, report: Optional[FsckReport] = None,
                     obs=None) -> FsckReport:
    """WAL/snapshot sequence-number agreement for an attached manager."""
    report = report or FsckReport()

    def violate(kind: str, detail: str) -> None:
        violation = Violation(kind, detail)
        report.violations.append(violation)
        if obs:
            from repro.obs.events import FsckViolation
            obs.emit(FsckViolation(kind=kind, detail=detail))

    snapshot_lsn = 0
    snapshot = load_snapshot(manager.snapshot_path)
    if snapshot is not None:
        snapshot_lsn = int(snapshot["last_lsn"])

    scan = scan_wal(manager.wal.path)
    if scan.truncated_bytes:
        violate(
            "wal-sequence",
            f"WAL carries a {scan.truncated_bytes}-byte torn tail "
            f"({scan.reason}); reopen the database to repair it",
        )
    previous = None
    for record in scan.records:
        lsn = record["lsn"]
        if previous is not None and lsn != previous + 1:
            violate(
                "wal-sequence",
                f"WAL lsn jumps from {previous} to {lsn}",
            )
        previous = lsn
    expected = max(snapshot_lsn, previous if previous is not None else 0)
    if manager.last_lsn != expected:
        violate(
            "wal-sequence",
            f"manager is at lsn {manager.last_lsn} but snapshot/WAL "
            f"agree on {expected}",
        )
    return report


def check_database(database) -> FsckReport:
    """The full fsck: catalog invariants plus, when the database is
    durable, WAL/snapshot agreement."""
    obs = getattr(database, "obs", None)
    report = check_catalog(database.catalog, obs=obs)
    manager = getattr(database, "durability", None)
    if manager is not None:
        check_durability(manager, report, obs=obs)
    return report
