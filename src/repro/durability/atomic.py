"""Statement-level undo records.

Every mutating ESQL statement executed through ``Database.execute``
runs against an :class:`UndoLog`.  The translator notes the
before-image of each structure it is about to touch (a relation's rows
and key index, the ObjectStore's allocation high-water mark); when the
statement raises anywhere -- coercion, key check, expression
evaluation, even the WAL append -- the log is rolled back in reverse
order and the engine is byte-identical to its pre-statement state.

The DML paths are *also* staged (validate-everything-then-swap, see
``BaseRelation.insert_many`` / ``replace_rows``), so atomicity holds
even for callers that bypass the undo log; the undo log is the
defense-in-depth layer that additionally covers ObjectStore allocations
and any future mutation path that stages less carefully.
"""

from __future__ import annotations

__all__ = ["UndoLog"]


def _restore_relation(relation, rows, key_index):
    relation.rows[:] = rows
    relation._key_index = key_index


def _rewind_objects(store, mark):
    store.rewind(mark)


class UndoLog:
    """Before-images for one statement; rollback restores them LIFO."""

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: list[tuple] = []

    def __len__(self) -> int:
        return len(self._entries)

    def note_relation(self, relation) -> None:
        """Record a relation's rows + key index (once per statement)."""
        for fn, args in self._entries:
            if fn is _restore_relation and args[0] is relation:
                return
        self._entries.append((
            _restore_relation,
            (relation, list(relation.rows), set(relation._key_index)),
        ))

    def note_objects(self, store) -> None:
        """Record the ObjectStore allocation mark (once per statement).

        Rollback removes every object created after the mark and rewinds
        the OID counter, keeping OID allocation dense -- which is what
        makes WAL replay reproduce the original OIDs exactly.
        """
        for fn, args in self._entries:
            if fn is _rewind_objects and args[0] is store:
                return
        self._entries.append((_rewind_objects, (store, store.mark())))

    def rollback(self) -> None:
        """Restore every noted before-image, most recent first."""
        while self._entries:
            fn, args = self._entries.pop()
            fn(*args)

    def clear(self) -> None:
        """Commit: discard the before-images."""
        self._entries.clear()
