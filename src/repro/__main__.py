"""``python -m repro`` starts the interactive ESQL shell."""

from repro.cli import main

raise SystemExit(main())
