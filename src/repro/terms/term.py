"""Terms: the uniform representation rewritten by the optimizer.

The paper's rule language is a *term rewriting* formalism (section 4.1):
everything the rewriter touches -- LERA operators, qualifications, ADT
function calls -- is a functional expression.  This module defines the
term algebra:

* :class:`Fun` -- a function application ``F(t1, ..., tn)``.  LERA
  operators (``SEARCH``, ``UNION``, ``FIX``, ...), ADT functions
  (``MEMBER``, ``VALUE``, ...), Boolean connectives and the structural
  constructors ``LIST`` / ``SET`` / ``TUPLE`` are all ``Fun`` terms.
* :class:`Var` -- an ordinary variable (``x``); matches any single term.
* :class:`CollVar` -- a collection variable (``x*``); matches a
  sub-sequence (inside ordered argument lists) or a sub-multiset (inside
  ``SET`` / ``AND`` / ``OR``).
* :class:`Const` -- a literal: int, real, string, boolean or *symbol*
  (a bare upper-case identifier, used for relation names, type names and
  enumeration-ish atoms -- the PROLOG-atom role).
* :class:`AttrRef` -- a positional attribute reference ``#i.j`` (the
  paper writes ``1.2``): attribute ``j`` of the ``i``-th input relation.

Normalising smart constructors
------------------------------

``AND`` / ``OR`` are treated as associative-commutative-idempotent: the
:func:`mk_fun` constructor flattens nested occurrences, removes duplicate
operands and sorts operands into a canonical order.  ``SET`` arguments are
sorted too.  This gives the rewrite engine AC-matching and -- crucially --
a syntactic equality that is stable under commutation, so saturation
detection (a rule application that reproduces the same term is a no-op)
terminates expanding rules such as the transitivity rule of Figure 11.

``APPEND`` and ``SET_UNION`` are the *constructor-level* list/set splicing
functions used in the paper's merging rules (Figure 7): when their
arguments are ``LIST`` / ``SET`` terms or collection-variable bindings
they are evaluated away at construction time.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.errors import TermError

__all__ = [
    "Term", "Fun", "Var", "CollVar", "Const", "AttrRef", "Seq",
    "mk_fun", "conj", "disj", "TRUE", "FALSE",
    "sym", "num", "string", "boolean",
    "term_sort_key", "AC_FUNS", "FUNVARS", "is_fun", "conjuncts",
    "disjuncts",
    "subterms", "walk", "replace_at", "term_size", "variables_of",
    "collvars_of", "is_ground",
]

# Function symbols matched/normalised as unordered multisets.
AC_FUNS = frozenset({"SET", "AND", "OR"})

# Generic function symbols of the Figure 6 grammar: in a pattern they
# match any function name of the same arity (second-order matching),
# binding the name; used by the Figure 10/11 semantic rules.
FUNVARS = frozenset({"F", "G", "H", "I", "J", "K"})

# Commutative comparisons get canonically ordered arguments so that
# semantic rules need not enumerate orientations.
_COMMUTATIVE_BINOPS = frozenset({"=", "<>"})

# Constructor-level splicers (evaluated during term construction).
_SPLICERS = {"APPEND": "LIST", "SET_UNION": "SET"}


class Term:
    """Abstract base class of all terms; immutable and hashable."""

    __slots__ = ("_hash",)

    def __eq__(self, other: Any) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        # late import to avoid a cycle; printer handles all term classes
        from repro.terms.printer import term_to_str
        return term_to_str(self)


class Var(Term):
    """An ordinary rule variable; matches exactly one term."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(("var", name))

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash


class CollVar(Term):
    """A collection variable ``x*``; matches a sequence of terms."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name.rstrip("*")
        self._hash = hash(("collvar", self.name))

    @property
    def display(self) -> str:
        return self.name + "*"

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, CollVar) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash


class Const(Term):
    """A literal constant.

    ``kind`` is one of ``int``, ``real``, ``string``, ``bool`` or
    ``symbol``.  Symbols carry relation names, type names and other bare
    identifiers.
    """

    __slots__ = ("value", "kind")

    KINDS = ("int", "real", "string", "bool", "symbol")

    def __init__(self, value: Any, kind: str):
        if kind not in self.KINDS:
            raise TermError(f"bad constant kind {kind!r}")
        self.value = value
        self.kind = kind
        self._hash = hash(("const", kind, value))

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Const) and self.kind == other.kind
                and self.value == other.value)

    def __hash__(self) -> int:
        return self._hash


class AttrRef(Term):
    """Positional attribute reference ``#rel.pos`` (both 1-based)."""

    __slots__ = ("rel", "pos")

    def __init__(self, rel: int, pos: int):
        if rel < 1 or pos < 1:
            raise TermError(f"attribute reference #{rel}.{pos} must be 1-based")
        self.rel = rel
        self.pos = pos
        self._hash = hash(("attr", rel, pos))

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, AttrRef) and self.rel == other.rel
                and self.pos == other.pos)

    def __hash__(self) -> int:
        return self._hash


class Fun(Term):
    """A function application.  Use :func:`mk_fun` to build instances."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: tuple):
        # Raw constructor: no normalisation.  Library code should call
        # mk_fun; this is exposed for the matcher, which must be able to
        # build intermediate non-normalised nodes.
        self.name = name
        self.args = args
        self._hash = hash(("fun", name, args))

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Fun) and self.name == other.name
                and self.args == other.args)

    def __hash__(self) -> int:
        return self._hash

    @property
    def arity(self) -> int:
        return len(self.args)


class Seq:
    """A binding value for a collection variable: a sequence of terms.

    Not itself a term -- it only exists inside bindings and is spliced
    into argument lists by :func:`mk_fun` during instantiation.
    """

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Term]):
        self.items = tuple(items)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Seq) and self.items == other.items

    def __hash__(self) -> int:
        return hash(("seq", self.items))

    def __repr__(self) -> str:
        return "Seq(" + ", ".join(repr(t) for t in self.items) + ")"


TRUE = Const(True, "bool")
FALSE = Const(False, "bool")


def sym(name: str) -> Const:
    """A symbol constant (relation / type / atom name)."""
    return Const(name, "symbol")


def num(value: Union[int, float]) -> Const:
    if isinstance(value, bool):
        return boolean(value)
    if isinstance(value, int):
        return Const(value, "int")
    return Const(float(value), "real")


def string(value: str) -> Const:
    return Const(value, "string")


def boolean(value: bool) -> Const:
    return TRUE if value else FALSE


# ---------------------------------------------------------------------------
# canonical ordering
# ---------------------------------------------------------------------------

_KIND_RANK = {"bool": 0, "int": 1, "real": 2, "string": 3, "symbol": 4}


def term_sort_key(term: Union[Term, Seq]) -> tuple:
    """A deterministic total order on terms (used to canonicalise AC args)."""
    if isinstance(term, Const):
        return (0, _KIND_RANK[term.kind], str(term.value))
    if isinstance(term, AttrRef):
        return (1, term.rel, term.pos)
    if isinstance(term, Var):
        return (2, term.name)
    if isinstance(term, CollVar):
        return (3, term.name)
    if isinstance(term, Fun):
        return (4, term.name, len(term.args),
                tuple(term_sort_key(a) for a in term.args))
    if isinstance(term, Seq):
        return (5, tuple(term_sort_key(a) for a in term.items))
    raise TermError(f"cannot order {term!r}")


def _splice(args: Sequence[Union[Term, Seq]]) -> tuple:
    """Expand Seq bindings in an argument list."""
    out: list[Term] = []
    for a in args:
        if isinstance(a, Seq):
            out.extend(a.items)
        else:
            out.append(a)
    return tuple(out)


def _flatten(name: str, args: Iterable[Term]) -> list[Term]:
    out: list[Term] = []
    for a in args:
        if isinstance(a, Fun) and a.name == name:
            out.extend(a.args)
        else:
            out.append(a)
    return out


def _dedupe_sorted(args: Iterable[Term]) -> tuple:
    uniq = {}
    for a in args:
        uniq.setdefault(a, None)
    return tuple(sorted(uniq, key=term_sort_key))


def mk_fun(name: str, args: Iterable[Union[Term, Seq]]) -> Term:
    """The normalising term constructor.

    * splices collection-variable bindings (:class:`Seq`) into the
      argument list of any function;
    * evaluates the constructor-level ``APPEND`` / ``SET_UNION`` splicers
      when their arguments are structural lists/sets;
    * flattens, deduplicates and canonically sorts ``AND`` / ``OR``
      (returning ``TRUE`` / ``FALSE`` for the empty case and the sole
      operand for the singleton case) and sorts ``SET`` arguments.
    """
    name = name.upper()
    raw = tuple(args)

    if name in _SPLICERS and any(
        isinstance(a, Seq)
        or (isinstance(a, Fun) and a.name in ("LIST", "SET"))
        for a in raw
    ):
        target = _SPLICERS[name]
        out: list[Term] = []
        for a in raw:
            if isinstance(a, Seq):
                out.extend(a.items)
            elif isinstance(a, Fun) and a.name in ("LIST", "SET"):
                out.extend(a.args)
            else:
                out.append(a)
        return mk_fun(target, out)

    spliced = _splice(raw)

    if name == "AND":
        flat = _flatten("AND", spliced)
        flat = [a for a in flat if a != TRUE]
        ordered = _dedupe_sorted(flat)
        if not ordered:
            return TRUE
        if len(ordered) == 1 and not isinstance(ordered[0], CollVar):
            return ordered[0]
        return Fun("AND", ordered)

    if name == "OR":
        flat = _flatten("OR", spliced)
        flat = [a for a in flat if a != FALSE]
        ordered = _dedupe_sorted(flat)
        if not ordered:
            return FALSE
        if len(ordered) == 1 and not isinstance(ordered[0], CollVar):
            return ordered[0]
        return Fun("OR", ordered)

    if name == "SET":
        return Fun("SET", _dedupe_sorted(spliced))

    if name in _COMMUTATIVE_BINOPS and len(spliced) == 2:
        ordered_pair = sorted(spliced, key=term_sort_key)
        return Fun(name, tuple(ordered_pair))

    return Fun(name, spliced)


def conj(args: Iterable[Term]) -> Term:
    """Build the conjunction of ``args`` (normalised)."""
    return mk_fun("AND", args)


def disj(args: Iterable[Term]) -> Term:
    """Build the disjunction of ``args`` (normalised)."""
    return mk_fun("OR", args)


def is_fun(term: Term, name: str) -> bool:
    return isinstance(term, Fun) and term.name == name.upper()


def conjuncts(term: Term) -> tuple[Term, ...]:
    """The operands of a conjunction (a non-AND term is one conjunct)."""
    if is_fun(term, "AND"):
        return term.args  # type: ignore[union-attr]
    if term == TRUE:
        return ()
    return (term,)


def disjuncts(term: Term) -> tuple[Term, ...]:
    if is_fun(term, "OR"):
        return term.args  # type: ignore[union-attr]
    if term == FALSE:
        return ()
    return (term,)


# ---------------------------------------------------------------------------
# traversal
# ---------------------------------------------------------------------------

def walk(term: Term) -> Iterator[Term]:
    """Pre-order traversal of every subterm (including the term itself)."""
    stack = [term]
    while stack:
        t = stack.pop()
        yield t
        if isinstance(t, Fun):
            stack.extend(reversed(t.args))


def subterms(term: Term,
             path: tuple = ()) -> Iterator[tuple[tuple, Term]]:
    """Pre-order traversal yielding ``(path, subterm)`` pairs.

    A path is a tuple of argument indices from the root.
    """
    yield path, term
    if isinstance(term, Fun):
        for i, a in enumerate(term.args):
            yield from subterms(a, path + (i,))


def replace_at(term: Term, path: tuple, new: Term) -> Term:
    """Return ``term`` with the subterm at ``path`` replaced by ``new``.

    Parent nodes are rebuilt through :func:`mk_fun`, so AC nodes
    re-normalise (the replacement may therefore collapse or reorder
    them); the *semantics* of the replacement is preserved.
    """
    if not path:
        return new
    if not isinstance(term, Fun):
        raise TermError(f"path {path} does not exist in {term!r}")
    index = path[0]
    if index >= len(term.args):
        raise TermError(f"path {path} does not exist in {term!r}")
    new_args = list(term.args)
    new_args[index] = replace_at(term.args[index], path[1:], new)
    return mk_fun(term.name, new_args)


def term_size(term: Term) -> int:
    """Number of nodes in the term (the paper's rule-termination measure)."""
    return sum(1 for __ in walk(term))


def variables_of(term: Term) -> set[str]:
    return {t.name for t in walk(term) if isinstance(t, Var)}


def collvars_of(term: Term) -> set[str]:
    return {t.name for t in walk(term) if isinstance(t, CollVar)}


def is_ground(term: Term) -> bool:
    return not any(isinstance(t, (Var, CollVar)) for t in walk(term))
