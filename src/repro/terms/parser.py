"""Parser for the rule language of Figure 6.

Concrete syntax (one rule)::

    [name :] lhs / constraint, ... --> rhs / method(...), ...

with both ``/`` sections optional.  Terms::

    SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)
    x = y AND y = z
    MEMBER('Adventure', #2.3)
    ISA(x, Point)

Lexical conventions (divergences from the paper's typeset syntax are
noted in the printer module):

* an all-lowercase identifier is a variable (the paper's ``u`` ... ``z``,
  generalised to whole words);
* ``ident*`` (no space before the star) is a collection variable;
* any identifier directly followed by ``(`` is a function application,
  whatever its case;
* other identifiers (``Point``, ``DOMINATE``, ``CONSTANT``) are symbol
  constants -- they name types, relations and atoms;
* ``#i.j`` is an attribute reference;
* ``/`` is reserved as the section separator, so division inside rule
  text must be written ``DIV(x, y)``;
* keywords (case-insensitive): AND OR NOT TRUE FALSE CONSTANT.

Several rules may be given in one string, separated by ``;``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ParseError
from repro.terms.term import (AttrRef, CollVar, Const, Fun, Term, Var,
                              boolean, mk_fun, num, string, sym)

__all__ = ["Token", "tokenize", "parse_term", "parse_rule_text",
           "parse_rules_text", "ParsedRule"]

_PUNCT = [
    ("-->", "ARROW"),
    ("<=", "OP"), (">=", "OP"), ("<>", "OP"),
    ("(", "LPAREN"), (")", "RPAREN"), ("{", "LBRACE"), ("}", "RBRACE"),
    (",", "COMMA"), (";", "SEMI"), ("/", "SLASH"), (":", "COLON"),
    ("=", "OP"), ("<", "OP"), (">", "OP"),
    ("+", "OP"), ("-", "OP"), ("*", "STAR"),
]

_KEYWORDS = {"AND", "OR", "NOT", "TRUE", "FALSE"}


@dataclass(frozen=True)
class Token:
    kind: str      # IDENT COLLVAR NUMBER STRING ATTR OP ARROW ... EOF
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Split rule-language source text into tokens."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "%":  # comment to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = col

        if ch == "#":  # attribute reference  #i.j
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            if j == i + 1 or j >= n or source[j] != ".":
                raise ParseError("malformed attribute reference", line, col)
            k = j + 1
            while k < n and source[k].isdigit():
                k += 1
            if k == j + 1:
                raise ParseError("malformed attribute reference", line, col)
            text = source[i:k]
            tokens.append(Token("ATTR", text, line, start_col))
            col += k - i
            i = k
            continue

        if ch == "'":
            j = i + 1
            buf = []
            while True:
                if j >= n:
                    raise ParseError("unterminated string", line, start_col)
                if source[j] == "'":
                    if j + 1 < n and source[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    j += 1
                    break
                buf.append(source[j])
                j += 1
            tokens.append(Token("STRING", "".join(buf), line, start_col))
            col += j - i
            i = j
            continue

        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_real = False
            if j < n and source[j] == "." and j + 1 < n and \
                    source[j + 1].isdigit():
                is_real = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            kind = "NUMBER"
            tokens.append(Token(kind, source[i:j], line, start_col))
            col += j - i
            i = j
            continue

        if ch.isalpha() or ch == "_":
            j = i
            # '$' continues an identifier: generated names such as
            # TC$MAGIC1 must round-trip through the printer
            while j < n and (source[j].isalnum() or source[j] in "_$"):
                j += 1
            text = source[i:j]
            if j < n and source[j] == "*":
                tokens.append(Token("COLLVAR", text, line, start_col))
                j += 1
            elif text.upper() in _KEYWORDS:
                tokens.append(Token(text.upper(), text, line, start_col))
            else:
                tokens.append(Token("IDENT", text, line, start_col))
            col += j - i
            i = j
            continue

        for literal, kind in _PUNCT:
            if source.startswith(literal, i):
                tokens.append(Token(kind, literal, line, start_col))
                i += len(literal)
                col += len(literal)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("EOF", "", line, col))
    return tokens


@dataclass
class ParsedRule:
    """The syntactic pieces of one rule, before compilation."""

    name: Optional[str]
    lhs: Term
    constraints: tuple[Term, ...]
    rhs: Term
    methods: tuple[Term, ...]


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise ParseError(
                f"expected {kind}, found {tok.kind} ({tok.text!r})",
                tok.line, tok.column,
            )
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    # -- grammar ---------------------------------------------------------
    def parse_rule(self) -> ParsedRule:
        name = None
        if (self.peek().kind == "IDENT"
                and self.peek(1).kind == "COLON"):
            name = self.advance().text
            self.advance()

        lhs = self.parse_term()
        constraints: tuple[Term, ...] = ()
        if self.accept("SLASH"):
            constraints = self._parse_term_list(stop_kinds=("ARROW",))
        self.expect("ARROW")
        rhs = self.parse_term()
        methods: tuple[Term, ...] = ()
        if self.accept("SLASH"):
            methods = self._parse_term_list(stop_kinds=("SEMI", "EOF"))
        return ParsedRule(name, lhs, constraints, rhs, methods)

    def _parse_term_list(self, stop_kinds: tuple) -> tuple[Term, ...]:
        if self.peek().kind in stop_kinds:
            return ()
        items = [self.parse_term()]
        while self.accept("COMMA"):
            items.append(self.parse_term())
        return tuple(items)

    def parse_term(self) -> Term:
        return self._or_expr()

    def _or_expr(self) -> Term:
        left = self._and_expr()
        parts = [left]
        while self.accept("OR"):
            parts.append(self._and_expr())
        if len(parts) == 1:
            return left
        return mk_fun("OR", parts)

    def _and_expr(self) -> Term:
        left = self._not_expr()
        parts = [left]
        while self.accept("AND"):
            parts.append(self._not_expr())
        if len(parts) == 1:
            return left
        return mk_fun("AND", parts)

    def _not_expr(self) -> Term:
        if self.accept("NOT"):
            if self.accept("LPAREN"):
                inner = self.parse_term()
                self.expect("RPAREN")
            else:
                inner = self._not_expr()
            return mk_fun("NOT", [inner])
        return self._comparison()

    def _comparison(self) -> Term:
        left = self._additive()
        tok = self.peek()
        if tok.kind == "OP" and tok.text in ("=", "<>", "<", ">", "<=", ">="):
            self.advance()
            right = self._additive()
            return mk_fun(tok.text, [left, right])
        return left

    def _additive(self) -> Term:
        left = self._multiplicative()
        while True:
            tok = self.peek()
            if tok.kind == "OP" and tok.text in ("+", "-"):
                self.advance()
                right = self._multiplicative()
                left = mk_fun(tok.text, [left, right])
            else:
                return left

    def _multiplicative(self) -> Term:
        left = self._atom()
        while self.peek().kind == "STAR":
            self.advance()
            right = self._atom()
            left = mk_fun("*", [left, right])
        return left

    def _atom(self) -> Term:
        tok = self.peek()

        # prefix connective form: AND(t1, ..., tn) / OR(t1, ..., tn) --
        # needed to splice collection variables into conjunctions
        if tok.kind in ("AND", "OR") and self.peek(1).kind == "LPAREN":
            self.advance()
            self.expect("LPAREN")
            args: list[Term] = []
            if self.peek().kind != "RPAREN":
                args.append(self.parse_term())
                while self.accept("COMMA"):
                    args.append(self.parse_term())
            self.expect("RPAREN")
            return mk_fun(tok.kind, args)

        if tok.kind == "LPAREN":
            self.advance()
            inner = self.parse_term()
            self.expect("RPAREN")
            return inner

        if tok.kind == "NUMBER":
            self.advance()
            if "." in tok.text:
                return num(float(tok.text))
            return num(int(tok.text))

        if tok.kind == "OP" and tok.text == "-":
            self.advance()
            operand = self._atom()
            if isinstance(operand, Const) and operand.kind in ("int", "real"):
                return num(-operand.value)
            return mk_fun("-", [num(0), operand])

        if tok.kind == "STRING":
            self.advance()
            return string(tok.text)

        if tok.kind == "TRUE":
            self.advance()
            return boolean(True)

        if tok.kind == "FALSE":
            self.advance()
            return boolean(False)

        if tok.kind == "ATTR":
            self.advance()
            rel_text, pos_text = tok.text[1:].split(".")
            return AttrRef(int(rel_text), int(pos_text))

        if tok.kind == "COLLVAR":
            self.advance()
            return CollVar(tok.text)

        if tok.kind == "IDENT":
            self.advance()
            if self.accept("LPAREN"):
                args: list[Term] = []
                if self.peek().kind != "RPAREN":
                    args.append(self.parse_term())
                    while self.accept("COMMA"):
                        args.append(self.parse_term())
                self.expect("RPAREN")
                return mk_fun(tok.text, args)
            if tok.text.islower():
                return Var(tok.text)
            return sym(tok.text.upper())

        raise ParseError(
            f"unexpected token {tok.kind} ({tok.text!r})",
            tok.line, tok.column,
        )


def parse_term(source: str) -> Term:
    """Parse a single term from ``source``."""
    parser = _Parser(tokenize(source))
    term = parser.parse_term()
    tok = parser.peek()
    if tok.kind != "EOF":
        raise ParseError(
            f"trailing input after term: {tok.text!r}", tok.line, tok.column
        )
    return term


def parse_rule_text(source: str) -> ParsedRule:
    """Parse one rule from ``source``."""
    parser = _Parser(tokenize(source))
    rule = parser.parse_rule()
    parser.accept("SEMI")
    tok = parser.peek()
    if tok.kind != "EOF":
        raise ParseError(
            f"trailing input after rule: {tok.text!r}", tok.line, tok.column
        )
    return rule


def parse_rules_text(source: str) -> list[ParsedRule]:
    """Parse a ``;``-separated sequence of rules."""
    parser = _Parser(tokenize(source))
    rules: list[ParsedRule] = []
    while not parser.at_end():
        rules.append(parser.parse_rule())
        if not parser.accept("SEMI"):
            break
    tok = parser.peek()
    if tok.kind != "EOF":
        raise ParseError(
            f"trailing input after rules: {tok.text!r}", tok.line, tok.column
        )
    return rules
