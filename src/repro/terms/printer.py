"""Pretty printer for terms, round-tripping with the rule-language parser.

The syntax follows Figure 6 of the paper with three small divergences
forced by plain-text round-tripping:

* attribute references are written ``#1.2`` (the paper writes ``1.2``,
  ambiguous with real literals);
* conjunction / disjunction are written with the keywords ``AND`` /
  ``OR`` (the paper typesets the logical wedge);
* infix comparison and arithmetic operators print infix, everything else
  prefix.
"""

from __future__ import annotations

from repro.terms.term import (AttrRef, CollVar, Const, Fun, Seq, Term, Var)

__all__ = ["term_to_str"]

_INFIX = {"=", "<>", "<", ">", "<=", ">=", "+", "-", "*", "/"}
_CONNECTIVES = {"AND", "OR"}


def _needs_parens(term: Term) -> bool:
    return isinstance(term, Fun) and (
        term.name in _CONNECTIVES or term.name in _INFIX
    )


def term_to_str(term) -> str:
    """Render a term (or a Seq binding) in rule-language syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, CollVar):
        return term.display
    if isinstance(term, AttrRef):
        return f"#{term.rel}.{term.pos}"
    if isinstance(term, Const):
        if term.kind == "string":
            escaped = str(term.value).replace("'", "''")
            return f"'{escaped}'"
        if term.kind == "bool":
            return "true" if term.value else "false"
        return str(term.value)
    if isinstance(term, Seq):
        return "<" + ", ".join(term_to_str(t) for t in term.items) + ">"
    if isinstance(term, Fun):
        if term.name in _CONNECTIVES and term.args:
            sep = f" {term.name} "
            parts = []
            for a in term.args:
                rendered = term_to_str(a)
                if _needs_parens(a):
                    rendered = f"({rendered})"
                parts.append(rendered)
            return sep.join(parts)
        if term.name in _INFIX and len(term.args) == 2:
            left, right = term.args
            lhs = term_to_str(left)
            rhs = term_to_str(right)
            if _needs_parens(left):
                lhs = f"({lhs})"
            if _needs_parens(right):
                rhs = f"({rhs})"
            return f"{lhs} {term.name} {rhs}"
        inner = ", ".join(term_to_str(a) for a in term.args)
        return f"{term.name}({inner})"
    raise TypeError(f"cannot print {term!r}")
