"""Structural matching with collection variables (the PROLOG role).

The matcher implements the semantics section 4.1 needs:

* ordinary variables match exactly one term (non-linear patterns are
  supported -- a repeated variable must match equal terms);
* collection variables (``x*``) match a *sub-sequence* of the argument
  list inside ordered functions (``LIST`` and any uninterpreted
  function), and a *sub-multiset* inside the unordered functions
  (``SET`` and the connectives ``AND`` / ``OR``);
* matching inside unordered functions is performed modulo permutation
  (AC matching), with backtracking: :func:`match` is a generator over
  all bindings, so the rewrite engine can reject a candidate (constraint
  failure, no-op result) and resume the search.

Enumeration order is tuned for the rule library: inside unordered
functions, the *first* collection variable of a pattern is offered the
largest sub-multisets first, which makes rules of the form
``quali* AND qualj*`` (Figure 8, search-through-nest) push the maximal
set of conjuncts in one application.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

from repro.errors import RuleError
from repro.terms.subst import collvar_key
from repro.terms.term import (AC_FUNS, FUNVARS, AttrRef, CollVar, Const,
                              Fun, Seq, Term, Var)

__all__ = ["match", "match_first", "matches"]

# structural constructors that a generic function symbol must not match
_NON_GENERIC_FUNS = frozenset(
    {"LIST", "SET", "AND", "OR", "AS", "TUPLE"}
) | FUNVARS


def match(pattern: Term, subject: Term,
          binding: Optional[dict] = None) -> Iterator[dict]:
    """Yield every binding under which ``pattern`` matches ``subject``."""
    yield from _match(pattern, subject, dict(binding or {}))


def match_first(pattern: Term, subject: Term,
                binding: Optional[dict] = None) -> Optional[dict]:
    """The first matching binding, or None."""
    for b in match(pattern, subject, binding):
        return b
    return None


def matches(pattern: Term, subject: Term) -> bool:
    return match_first(pattern, subject) is not None


def _match(pattern: Term, subject: Term, binding: dict) -> Iterator[dict]:
    if isinstance(pattern, Var):
        bound = binding.get(pattern.name)
        if bound is None:
            child = dict(binding)
            child[pattern.name] = subject
            yield child
        elif bound == subject:
            yield binding
        return

    if isinstance(pattern, CollVar):
        raise RuleError(
            f"collection variable {pattern.display} may only appear inside "
            f"an argument list"
        )

    if isinstance(pattern, (Const, AttrRef)):
        if pattern == subject:
            yield binding
        return

    if isinstance(pattern, Fun):
        if pattern.name in FUNVARS:
            # second-order matching: F(x, ...) matches any function
            # application of the same shape, binding the function name
            if not isinstance(subject, Fun) or \
                    subject.name in _NON_GENERIC_FUNS:
                return
            key = "§" + pattern.name
            bound = binding.get(key)
            if bound is not None and bound != subject.name:
                return
            child = dict(binding)
            child[key] = subject.name
            yield from _match_seq(pattern.args, subject.args, child)
            return
        if not isinstance(subject, Fun) or subject.name != pattern.name:
            return
        if pattern.name in AC_FUNS:
            yield from _match_unordered(pattern.args, subject.args, binding)
        else:
            yield from _match_seq(pattern.args, subject.args, binding)
        return

    raise RuleError(f"invalid pattern {pattern!r}")


def _quick_reject(pattern: Term, subject: Term, binding: dict) -> bool:
    """Cheap discriminator to prune backtracking branches."""
    if isinstance(pattern, Fun):
        if pattern.name in FUNVARS:
            return not isinstance(subject, Fun)
        return not (isinstance(subject, Fun) and subject.name == pattern.name)
    if isinstance(pattern, (Const, AttrRef)):
        return pattern != subject
    if isinstance(pattern, Var):
        bound = binding.get(pattern.name)
        return bound is not None and bound != subject
    return False


# ---------------------------------------------------------------------------
# ordered argument lists
# ---------------------------------------------------------------------------

def _match_seq(patterns: Sequence[Term], subjects: Sequence[Term],
               binding: dict) -> Iterator[dict]:
    # early arity pruning: every non-collvar pattern consumes one subject
    plain = sum(1 for p in patterns if not isinstance(p, CollVar))
    if plain > len(subjects):
        return
    if plain == len(subjects) and not any(
        isinstance(p, CollVar) for p in patterns
    ) and len(patterns) != len(subjects):
        return
    yield from _match_seq_rec(tuple(patterns), tuple(subjects), binding)


def _match_seq_rec(patterns: tuple, subjects: tuple,
                   binding: dict) -> Iterator[dict]:
    if not patterns:
        if not subjects:
            yield binding
        return
    head, rest = patterns[0], patterns[1:]
    if isinstance(head, CollVar):
        key = collvar_key(head.name)
        bound = binding.get(key)
        if bound is not None:
            items = bound.items
            if subjects[:len(items)] == items:
                yield from _match_seq_rec(rest, subjects[len(items):], binding)
            return
        remaining_plain = sum(
            1 for p in rest if not isinstance(p, CollVar)
        )
        max_take = len(subjects) - remaining_plain
        for take in range(max_take + 1):
            child = dict(binding)
            child[key] = Seq(subjects[:take])
            yield from _match_seq_rec(rest, subjects[take:], child)
        return
    if not subjects or _quick_reject(head, subjects[0], binding):
        return
    for b in _match(head, subjects[0], binding):
        yield from _match_seq_rec(rest, subjects[1:], b)


# ---------------------------------------------------------------------------
# unordered argument lists (SET, AND, OR)
# ---------------------------------------------------------------------------

def _match_unordered(patterns: Sequence[Term], subjects: Sequence[Term],
                     binding: dict) -> Iterator[dict]:
    plain = [p for p in patterns if not isinstance(p, CollVar)]
    collvars = [p for p in patterns if isinstance(p, CollVar)]

    # Pre-consume collection variables that are already bound.
    remaining = list(subjects)
    free_collvars: list[CollVar] = []
    for cv in collvars:
        bound = binding.get(collvar_key(cv.name))
        if bound is None:
            free_collvars.append(cv)
            continue
        for item in bound.items:
            try:
                remaining.remove(item)
            except ValueError:
                return  # bound sequence not contained in the subject
    if len(plain) > len(remaining):
        return
    if not free_collvars and len(plain) != len(remaining):
        return
    yield from _match_plain_then_distribute(
        plain, free_collvars, remaining, binding
    )


def _match_plain_then_distribute(plain: list, collvars: list,
                                 remaining: list,
                                 binding: dict) -> Iterator[dict]:
    if plain:
        head, rest = plain[0], plain[1:]
        for i, candidate in enumerate(remaining):
            if _quick_reject(head, candidate, binding):
                continue
            next_remaining = remaining[:i] + remaining[i + 1:]
            for b in _match(head, candidate, binding):
                yield from _match_plain_then_distribute(
                    rest, collvars, next_remaining, b
                )
        return

    if not collvars:
        if not remaining:
            yield binding
        return

    if len(collvars) == 1:
        child = dict(binding)
        child[collvar_key(collvars[0].name)] = Seq(remaining)
        yield child
        return

    # Several free collection variables: give the first one sub-multisets
    # in decreasing size order, recurse on the rest.
    head_cv, rest_cvs = collvars[0], collvars[1:]
    indices = range(len(remaining))
    for size in range(len(remaining), -1, -1):
        for combo in itertools.combinations(indices, size):
            taken = [remaining[i] for i in combo]
            left = [remaining[i] for i in indices if i not in combo]
            child = dict(binding)
            child[collvar_key(head_cv.name)] = Seq(taken)
            yield from _match_plain_then_distribute(
                [], rest_cvs, left, child
            )
