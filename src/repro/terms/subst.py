"""Substitutions: bindings produced by matching, applied to build terms.

A binding maps variable names to terms and collection-variable names to
:class:`~repro.terms.term.Seq` sequences.  Instantiation rebuilds function
nodes through :func:`~repro.terms.term.mk_fun`, so collection variables
splice into argument lists and AC nodes re-normalise.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.errors import RuleError
from repro.terms.term import (FUNVARS, AttrRef, CollVar, Const, Fun, Seq,
                              Term, Var, mk_fun)

__all__ = ["Binding", "instantiate", "instantiate_spliceable", "merge_bindings"]

# variable name -> Term; collection variable name (no star) -> Seq
Binding = Mapping[str, Union[Term, Seq]]

_COLLVAR_PREFIX = "*"


def collvar_key(name: str) -> str:
    """Binding key for a collection variable (kept distinct from vars)."""
    return _COLLVAR_PREFIX + name


def instantiate_spliceable(term: Term, binding: Binding,
                           strict: bool = True) -> Union[Term, Seq]:
    """Instantiate ``term``; a bare collection variable yields a Seq."""
    if isinstance(term, Var):
        value = binding.get(term.name)
        if value is None:
            if strict:
                raise RuleError(f"unbound variable {term.name!r}")
            return term
        return value
    if isinstance(term, CollVar):
        value = binding.get(collvar_key(term.name))
        if value is None:
            if strict:
                raise RuleError(f"unbound collection variable {term.display}")
            return term
        return value
    if isinstance(term, (Const, AttrRef)):
        return term
    if isinstance(term, Fun):
        name = term.name
        if name in FUNVARS:
            bound_name = binding.get("§" + name)
            if bound_name is None:
                if strict:
                    raise RuleError(
                        f"unbound generic function symbol {name}"
                    )
            else:
                name = bound_name
        return mk_fun(
            name,
            [instantiate_spliceable(a, binding, strict) for a in term.args],
        )
    raise RuleError(f"cannot instantiate {term!r}")


def instantiate(term: Term, binding: Binding, strict: bool = True) -> Term:
    """Instantiate ``term`` under ``binding``; the result must be a term.

    With ``strict=False`` unbound variables are left in place (useful for
    partial instantiation in tests and in method implementations).
    """
    result = instantiate_spliceable(term, binding, strict)
    if isinstance(result, Seq):
        raise RuleError(
            "a collection variable cannot stand alone at the top level"
        )
    return result


def merge_bindings(base: dict, extra: Binding) -> dict:
    """Merge ``extra`` into a copy of ``base``; conflicts raise RuleError."""
    merged = dict(base)
    for key, value in extra.items():
        if key in merged and merged[key] != value:
            raise RuleError(f"conflicting binding for {key!r}")
        merged[key] = value
    return merged
