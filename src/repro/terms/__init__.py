"""Term substrate: the rewriting formalism of section 4.

Terms, matching with collection variables, substitutions, and the
parser / printer pair for the Figure 6 rule language.
"""

from repro.terms.match import match, match_first, matches
from repro.terms.parser import (ParsedRule, parse_rule_text, parse_rules_text,
                                parse_term, tokenize)
from repro.terms.printer import term_to_str
from repro.terms.subst import (Binding, collvar_key, instantiate,
                               instantiate_spliceable, merge_bindings)
from repro.terms.term import (AC_FUNS, FALSE, TRUE, AttrRef, CollVar, Const,
                              Fun, Seq, Term, Var, boolean, collvars_of, conj,
                              conjuncts, disj, disjuncts, is_fun, is_ground,
                              mk_fun, num, replace_at, string, subterms, sym,
                              term_size, term_sort_key, variables_of, walk)

__all__ = [
    "AC_FUNS", "FALSE", "TRUE", "AttrRef", "CollVar", "Const", "Fun",
    "Seq", "Term", "Var",
    "boolean", "collvars_of", "conj", "conjuncts", "disj", "disjuncts",
    "is_fun", "is_ground", "mk_fun", "num", "replace_at", "string",
    "subterms", "sym", "term_size", "term_sort_key", "variables_of", "walk",
    "match", "match_first", "matches",
    "ParsedRule", "parse_rule_text", "parse_rules_text", "parse_term",
    "tokenize", "term_to_str",
    "Binding", "collvar_key", "instantiate", "instantiate_spliceable",
    "merge_bindings",
]
