"""Extensible function registry -- the ADT method library.

The paper's extensibility story rests on a library of functions attached
to ADTs: built-in collection functions (Figure 1), user ADT methods, and
optimizer external functions.  The registry maps a case-insensitive name
(plus optional arity) to an implementation and an optional result-type
rule, and is the single place the evaluator, the type checker and the
rule engine look functions up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.adt.types import DataType
from repro.errors import FunctionError, UnknownFunctionError

__all__ = ["FunctionDef", "FunctionRegistry"]

# An implementation receives the evaluated argument values and an
# evaluation context (anything exposing ``objects`` -- the ObjectStore --
# and ``type_system``); it returns the result value.
Impl = Callable[[list, Any], Any]

# A result-type rule receives the argument types and the type system and
# returns the result type (used by the LERA type checker).
TypeRule = Callable[[list, Any], DataType]


@dataclass(frozen=True)
class FunctionDef:
    """One registered function.

    Attributes
    ----------
    name:
        Upper-cased function name.
    impl:
        Python implementation (the paper's C/C++ method body).
    arity:
        Required argument count, or None for variadic.
    type_rule:
        Optional result-type computation for the type checker.
    adt:
        The ADT the function belongs to (``"set"``, ``"collection"``,
        a user type name, ...) -- purely documentary, mirrors Figure 1.
    commutative / associative:
        Algebraic properties usable by rewrite rules.
    pure:
        True when the function is side-effect free and may be constant
        folded by the EVALUATE simplification method.
    """

    name: str
    impl: Impl
    arity: Optional[int] = None
    type_rule: Optional[TypeRule] = None
    adt: str = ""
    commutative: bool = False
    associative: bool = False
    pure: bool = True


class FunctionRegistry:
    """Name -> FunctionDef mapping with arity overloading.

    A name may be registered several times with different arities
    (e.g. ``SUBSTITUTE/3`` and ``SUBSTITUTE/4`` in the rule method
    library); a variadic definition (arity None) acts as the fallback.
    """

    def __init__(self):
        self._defs: dict[str, dict[Optional[int], FunctionDef]] = {}

    def register(self, fdef: FunctionDef, replace: bool = False) -> FunctionDef:
        key = fdef.name.upper()
        by_arity = self._defs.setdefault(key, {})
        if fdef.arity in by_arity and not replace:
            raise FunctionError(
                f"function {key}/{fdef.arity} already registered"
            )
        by_arity[fdef.arity] = fdef
        return fdef

    def define(self, name: str, impl: Impl, arity: Optional[int] = None,
               **kwargs) -> FunctionDef:
        """Convenience wrapper building and registering a FunctionDef."""
        replace = kwargs.pop("replace", False)
        fdef = FunctionDef(name.upper(), impl, arity, **kwargs)
        return self.register(fdef, replace=replace)

    def lookup(self, name: str, arity: Optional[int] = None) -> FunctionDef:
        """Find the definition for ``name`` called with ``arity`` args.

        Exact-arity matches win over a variadic fallback.
        """
        by_arity = self._defs.get(name.upper())
        if not by_arity:
            raise UnknownFunctionError(f"unknown function {name.upper()!r}")
        if arity in by_arity:
            return by_arity[arity]
        if None in by_arity:
            return by_arity[None]
        arities = sorted(a for a in by_arity if a is not None)
        raise FunctionError(
            f"function {name.upper()!r} not defined for arity {arity}; "
            f"known arities: {arities}"
        )

    def lookup_or_none(self, name: str,
                       arity: Optional[int] = None) -> Optional[FunctionDef]:
        try:
            return self.lookup(name, arity)
        except FunctionError:
            return None

    def knows(self, name: str) -> bool:
        return name.upper() in self._defs

    def call(self, name: str, args: list, ctx: Any) -> Any:
        """Dispatch a call through the registry."""
        fdef = self.lookup(name, len(args))
        if fdef.arity is not None and fdef.arity != len(args):
            raise FunctionError(
                f"{fdef.name} expects {fdef.arity} arguments, got {len(args)}"
            )
        return fdef.impl(args, ctx)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._defs))

    def copy(self) -> "FunctionRegistry":
        clone = FunctionRegistry()
        for by_arity in self._defs.values():
            for fdef in by_arity.values():
                clone.register(fdef)
        return clone

    def merge(self, other: "FunctionRegistry") -> None:
        """Add every definition from ``other`` (later wins on conflict)."""
        for by_arity in other._defs.values():
            for fdef in by_arity.values():
                self.register(fdef, replace=True)
