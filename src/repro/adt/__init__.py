"""ADT substrate: the ESQL type system, runtime values and function library.

Implements section 2.1 of the paper: user-definable ADTs, the generic
collection ADTs of Figure 1 with their inheritance hierarchy, objects
with identity, and the extensible function registry the optimizer and
the execution engine share.
"""

from repro.adt.functions import default_registry, install_builtins
from repro.adt.registry import FunctionDef, FunctionRegistry
from repro.adt.types import (ANY, BOOLEAN, CHAR, INT, NUMERIC, REAL,
                             AnyType, AtomicType, CollectionType, DataType,
                             EnumerationType, ObjectType, TupleType,
                             TypeSystem)
from repro.adt.values import (ArrayValue, BagValue, CollectionValue,
                              ListValue, ObjectRef, ObjectStore, SetValue,
                              TupleValue)

__all__ = [
    "ANY", "BOOLEAN", "CHAR", "INT", "NUMERIC", "REAL",
    "AnyType", "AtomicType", "CollectionType", "DataType",
    "EnumerationType", "ObjectType", "TupleType", "TypeSystem",
    "ArrayValue", "BagValue", "CollectionValue", "ListValue",
    "ObjectRef", "ObjectStore", "SetValue", "TupleValue",
    "FunctionDef", "FunctionRegistry",
    "default_registry", "install_builtins",
]
