"""The built-in ADT function library (paper Figure 1 plus scalars).

Functions are grouped the way the generic-ADT hierarchy groups them:

* at the ``collection`` root: CONVERT, ISEMPTY, EQUAL, INSERT, REMOVE,
  COUNT;
* ``set``: MAKESET, MEMBER, CHOICE, UNION, INTERSECTION, DIFFERENCE,
  INCLUDE, EXIST, ALL;
* ``bag``: MAKEBAG (plus the shared MEMBER/UNION/INTERSECTION/DIFFERENCE);
* ``list``: MAKELIST, APPEND, CONCAT, FIRST, LAST, SUBLIST;
* ``array``: MAKEARRAY, AT, SETAT;
* ``tuple``: PROJECT (attribute-as-function access);
* objects: VALUE (dereference an object identifier);
* scalar operators used inside qualifications: arithmetic, comparisons
  and the Boolean connectives (registered as functions so the EVALUATE
  constant-folding method can run them);
* aggregate helpers over collections: SUM, MIN, MAX, AVG.

Scalar functions *broadcast* over collections where the paper requires it
("the system will automatically apply the appropriate type conversion"):
``PROJECT`` applied to a set of tuples yields the set of projections, and
a comparison between a collection and a scalar yields the collection of
element-wise comparison results, which is what the ALL / EXIST set
quantifiers consume (Figure 4).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.adt.registry import FunctionDef, FunctionRegistry
from repro.adt.types import (ANY, BOOLEAN, CHAR, INT, NUMERIC, REAL,
                             CollectionType, DataType, ObjectType, TupleType)
from repro.adt.values import (ArrayValue, BagValue, CollectionValue,
                              ListValue, ObjectRef, SetValue, TupleValue)
from repro.errors import FunctionError

__all__ = ["default_registry", "install_builtins", "COMPARISON_NAMES",
           "ARITHMETIC_NAMES", "broadcast1"]

COMPARISON_NAMES = ("=", "<>", "<", ">", "<=", ">=")
ARITHMETIC_NAMES = ("+", "-", "*", "/")

_COLLECTION_CTORS = {
    "SET": SetValue,
    "BAG": BagValue,
    "LIST": ListValue,
    "ARRAY": ArrayValue,
}


def _want_collection(value: Any, fn: str) -> CollectionValue:
    if not isinstance(value, CollectionValue):
        raise FunctionError(f"{fn} expects a collection, got {value!r}")
    return value


def _same_kind(a: CollectionValue, b: CollectionValue,
               fn: str) -> Callable[[list], CollectionValue]:
    if type(a) is not type(b):
        raise FunctionError(
            f"{fn} expects collections of the same kind, got "
            f"{a.kind} and {b.kind}"
        )
    return type(a)


def broadcast1(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Lift a unary scalar function to map over collections."""
    def lifted(value: Any) -> Any:
        if isinstance(value, CollectionValue):
            return type(value)(lifted(e) for e in value)
        return fn(value)
    return lifted


# ---------------------------------------------------------------------------
# collection-level functions
# ---------------------------------------------------------------------------

def _convert(args: list, ctx: Any) -> Any:
    coll = _want_collection(args[0], "CONVERT")
    target = str(args[1]).upper()
    try:
        ctor = _COLLECTION_CTORS[target]
    except KeyError:
        raise FunctionError(f"CONVERT target must be one of "
                            f"{sorted(_COLLECTION_CTORS)}, got {target!r}")
    return ctor(coll.elements)


def _isempty(args: list, ctx: Any) -> bool:
    return _want_collection(args[0], "ISEMPTY").is_empty()


def _equal(args: list, ctx: Any) -> bool:
    a = _want_collection(args[0], "EQUAL")
    b = _want_collection(args[1], "EQUAL")
    return a == b


def _insert(args: list, ctx: Any) -> CollectionValue:
    coll = _want_collection(args[1], "INSERT")
    return type(coll)(coll.elements + (args[0],))


def _remove(args: list, ctx: Any) -> CollectionValue:
    coll = _want_collection(args[1], "REMOVE")
    elems = list(coll.elements)
    if args[0] in elems:
        elems.remove(args[0])
    return type(coll)(elems)


def _count(args: list, ctx: Any) -> int:
    return len(_want_collection(args[0], "COUNT"))


# ---------------------------------------------------------------------------
# set / bag functions
# ---------------------------------------------------------------------------

def _makeset(args: list, ctx: Any) -> SetValue:
    return SetValue(args)


def _makebag(args: list, ctx: Any) -> BagValue:
    return BagValue(args)


def _member(args: list, ctx: Any) -> bool:
    coll = _want_collection(args[1], "MEMBER")
    return args[0] in coll


def _choice(args: list, ctx: Any) -> Any:
    coll = _want_collection(args[0], "CHOICE")
    if coll.is_empty():
        raise FunctionError("CHOICE on an empty collection")
    # deterministic "arbitrary" element: the first in insertion order
    return coll.elements[0]


def _union(args: list, ctx: Any) -> CollectionValue:
    a = _want_collection(args[0], "UNION")
    b = _want_collection(args[1], "UNION")
    ctor = _same_kind(a, b, "UNION")
    return ctor(a.elements + b.elements)


def _intersection(args: list, ctx: Any) -> CollectionValue:
    a = _want_collection(args[0], "INTERSECTION")
    b = _want_collection(args[1], "INTERSECTION")
    ctor = _same_kind(a, b, "INTERSECTION")
    b_elems = list(b.elements)
    out = []
    for e in a.elements:
        if e in b_elems:
            out.append(e)
            if isinstance(a, (BagValue, ListValue, ArrayValue)):
                b_elems.remove(e)
    return ctor(out)


def _difference(args: list, ctx: Any) -> CollectionValue:
    a = _want_collection(args[0], "DIFFERENCE")
    b = _want_collection(args[1], "DIFFERENCE")
    ctor = _same_kind(a, b, "DIFFERENCE")
    b_elems = list(b.elements)
    out = []
    for e in a.elements:
        if e in b_elems:
            if isinstance(a, (BagValue, ListValue, ArrayValue)):
                b_elems.remove(e)
        else:
            out.append(e)
    return ctor(out)


def _include(args: list, ctx: Any) -> bool:
    """INCLUDE(x, y): every element of y is in x (set inclusion y <= x)."""
    outer = _want_collection(args[0], "INCLUDE")
    inner = _want_collection(args[1], "INCLUDE")
    return all(e in outer for e in inner)


def _quantifier_all(args: list, ctx: Any) -> bool:
    coll = _want_collection(args[0], "ALL")
    return all(bool(e) for e in coll)


def _quantifier_exist(args: list, ctx: Any) -> bool:
    coll = _want_collection(args[0], "EXIST")
    return any(bool(e) for e in coll)


# ---------------------------------------------------------------------------
# list / array functions
# ---------------------------------------------------------------------------

def _makelist(args: list, ctx: Any) -> ListValue:
    return ListValue(args)


def _makearray(args: list, ctx: Any) -> ArrayValue:
    return ArrayValue(args)


def _append(args: list, ctx: Any) -> ListValue:
    lst = args[0]
    if not isinstance(lst, ListValue):
        raise FunctionError(f"APPEND expects a list, got {lst!r}")
    return lst.append_element(args[1])


def _concat(args: list, ctx: Any) -> ListValue:
    a, b = args
    if not isinstance(a, ListValue) or not isinstance(b, ListValue):
        raise FunctionError("CONCAT expects two lists")
    return a.concat(b)


def _first(args: list, ctx: Any) -> Any:
    lst = args[0]
    if not isinstance(lst, (ListValue, ArrayValue)):
        raise FunctionError(f"FIRST expects a list or array, got {lst!r}")
    if lst.is_empty():
        raise FunctionError("FIRST on an empty collection")
    return lst.elements[0]


def _last(args: list, ctx: Any) -> Any:
    lst = args[0]
    if not isinstance(lst, (ListValue, ArrayValue)):
        raise FunctionError(f"LAST expects a list or array, got {lst!r}")
    if lst.is_empty():
        raise FunctionError("LAST on an empty collection")
    return lst.elements[-1]


def _sublist(args: list, ctx: Any) -> ListValue:
    lst, start, stop = args
    if not isinstance(lst, ListValue):
        raise FunctionError("SUBLIST expects a list")
    return lst.sublist(int(start), int(stop))


def _at(args: list, ctx: Any) -> Any:
    coll, index = args
    if not isinstance(coll, (ArrayValue, ListValue)):
        raise FunctionError("AT expects an array or list")
    return coll[int(index)]


def _setat(args: list, ctx: Any) -> ArrayValue:
    arr, index, value = args
    if not isinstance(arr, ArrayValue):
        raise FunctionError("SETAT expects an array")
    return arr.set_at(int(index), value)


# ---------------------------------------------------------------------------
# tuple and object functions
# ---------------------------------------------------------------------------

def _maketuple(args: list, ctx: Any) -> TupleValue:
    if len(args) % 2:
        raise FunctionError("MAKETUPLE expects name/value pairs")
    pairs = [(str(args[i]), args[i + 1]) for i in range(0, len(args), 2)]
    return TupleValue(pairs)


def _project(args: list, ctx: Any) -> Any:
    """PROJECT(tuple, field) -- broadcasts over collections of tuples."""
    value, fieldname = args
    field = str(fieldname)

    def access(v: Any) -> Any:
        if isinstance(v, TupleValue):
            return v.project(field)
        raise FunctionError(f"PROJECT expects a tuple, got {v!r}")
    return broadcast1(access)(value)


def _value(args: list, ctx: Any) -> Any:
    """VALUE(ref) -- object dereference, broadcasting over collections."""
    def deref(v: Any) -> Any:
        if isinstance(v, ObjectRef):
            return ctx.objects.value_of(v)
        return v  # VALUE on a value is the identity (paper section 3.3)
    return broadcast1(deref)(args[0])


# ---------------------------------------------------------------------------
# scalar operators (broadcasting comparisons)
# ---------------------------------------------------------------------------

def _broadcasting_binop(name: str,
                        op: Callable[[Any, Any], Any]) -> Callable:
    def impl(args: list, ctx: Any) -> Any:
        a, b = args
        if isinstance(a, CollectionValue) and not isinstance(b, CollectionValue):
            return type(a)(impl([e, b], ctx) for e in a)
        if isinstance(b, CollectionValue) and not isinstance(a, CollectionValue):
            return type(b)(impl([a, e], ctx) for e in b)
        try:
            return op(a, b)
        except TypeError as exc:
            raise FunctionError(f"{name} cannot combine "
                                f"{a!r} and {b!r}") from exc
    return impl


def _div(a: Any, b: Any) -> Any:
    if b == 0:
        raise FunctionError("division by zero")
    result = a / b
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return result


def _not(args: list, ctx: Any) -> bool:
    return not bool(args[0])


def _and(args: list, ctx: Any) -> bool:
    return all(bool(a) for a in args)


def _or(args: list, ctx: Any) -> bool:
    return any(bool(a) for a in args)


def _sum(args: list, ctx: Any) -> Any:
    coll = _want_collection(args[0], "SUM")
    return sum(coll.elements)


def _min(args: list, ctx: Any) -> Any:
    coll = _want_collection(args[0], "MIN")
    if coll.is_empty():
        raise FunctionError("MIN on an empty collection")
    return min(coll.elements)


def _max(args: list, ctx: Any) -> Any:
    coll = _want_collection(args[0], "MAX")
    if coll.is_empty():
        raise FunctionError("MAX on an empty collection")
    return max(coll.elements)


def _avg(args: list, ctx: Any) -> Any:
    coll = _want_collection(args[0], "AVG")
    if coll.is_empty():
        raise FunctionError("AVG on an empty collection")
    return sum(coll.elements) / len(coll)


# ---------------------------------------------------------------------------
# type rules (used by the LERA type checker)
# ---------------------------------------------------------------------------

def _bool_rule(arg_types: list, ts: Any) -> DataType:
    return BOOLEAN


def _int_rule(arg_types: list, ts: Any) -> DataType:
    return INT


def _numeric_rule(arg_types: list, ts: Any) -> DataType:
    return NUMERIC


def _element_rule(arg_types: list, ts: Any) -> DataType:
    t = arg_types[0]
    return t.element if isinstance(t, CollectionType) else ANY


def _same_rule(arg_types: list, ts: Any) -> DataType:
    return arg_types[0]


def _set_of_first_rule(arg_types: list, ts: Any) -> DataType:
    element = arg_types[0] if arg_types else ANY
    return CollectionType("SET", element)


def _bag_of_first_rule(arg_types: list, ts: Any) -> DataType:
    element = arg_types[0] if arg_types else ANY
    return CollectionType("BAG", element)


def _list_of_first_rule(arg_types: list, ts: Any) -> DataType:
    element = arg_types[0] if arg_types else ANY
    return CollectionType("LIST", element)


def _value_rule(arg_types: list, ts: Any) -> DataType:
    t = arg_types[0]
    if isinstance(t, ObjectType):
        return t.value_type
    if isinstance(t, CollectionType) and isinstance(t.element, ObjectType):
        return CollectionType(t.kind, t.element.value_type)
    return t


def _project_rule(arg_types: list, ts: Any) -> DataType:
    # PROJECT(tuple, field); the field name is a symbol constant whose
    # "type" slot carries the name -- the checker special-cases this, so
    # here fall back to ANY when it cannot be resolved.
    return ANY


# ---------------------------------------------------------------------------
# registry assembly
# ---------------------------------------------------------------------------

def install_builtins(registry: FunctionRegistry) -> FunctionRegistry:
    """Register the whole built-in library into ``registry``."""
    defs = [
        # collection root (Figure 1)
        FunctionDef("CONVERT", _convert, 2, adt="collection"),
        FunctionDef("ISEMPTY", _isempty, 1, _bool_rule, adt="collection"),
        FunctionDef("EQUAL", _equal, 2, _bool_rule, adt="collection",
                    commutative=True),
        FunctionDef("INSERT", _insert, 2, adt="collection"),
        FunctionDef("REMOVE", _remove, 2, adt="collection"),
        FunctionDef("COUNT", _count, 1, _int_rule, adt="collection"),
        # set
        FunctionDef("MAKESET", _makeset, None, _set_of_first_rule, adt="set"),
        FunctionDef("MEMBER", _member, 2, _bool_rule, adt="set"),
        FunctionDef("CHOICE", _choice, 1, _element_rule, adt="set"),
        FunctionDef("UNION", _union, 2, _same_rule, adt="set",
                    commutative=True, associative=True),
        FunctionDef("INTERSECTION", _intersection, 2, _same_rule, adt="set",
                    commutative=True, associative=True),
        FunctionDef("DIFFERENCE", _difference, 2, _same_rule, adt="set"),
        FunctionDef("INCLUDE", _include, 2, _bool_rule, adt="set"),
        FunctionDef("ALL", _quantifier_all, 1, _bool_rule, adt="set"),
        FunctionDef("EXIST", _quantifier_exist, 1, _bool_rule, adt="set"),
        # bag
        FunctionDef("MAKEBAG", _makebag, None, _bag_of_first_rule, adt="bag"),
        # list
        FunctionDef("MAKELIST", _makelist, None, _list_of_first_rule,
                    adt="list"),
        FunctionDef("APPEND", _append, 2, _same_rule, adt="list"),
        FunctionDef("CONCAT", _concat, 2, _same_rule, adt="list",
                    associative=True),
        FunctionDef("FIRST", _first, 1, _element_rule, adt="list"),
        FunctionDef("LAST", _last, 1, _element_rule, adt="list"),
        FunctionDef("SUBLIST", _sublist, 3, _same_rule, adt="list"),
        # array
        FunctionDef("MAKEARRAY", _makearray, None, adt="array"),
        FunctionDef("AT", _at, 2, _element_rule, adt="array"),
        FunctionDef("SETAT", _setat, 3, _same_rule, adt="array"),
        # tuple / object
        FunctionDef("MAKETUPLE", _maketuple, None, adt="tuple"),
        FunctionDef("PROJECT", _project, 2, _project_rule, adt="tuple"),
        FunctionDef("VALUE", _value, 1, _value_rule, adt="object"),
        # scalar operators
        FunctionDef("=", _broadcasting_binop("=", lambda a, b: a == b), 2,
                    _bool_rule, commutative=True),
        FunctionDef("<>", _broadcasting_binop("<>", lambda a, b: a != b), 2,
                    _bool_rule, commutative=True),
        FunctionDef("<", _broadcasting_binop("<", lambda a, b: a < b), 2,
                    _bool_rule),
        FunctionDef(">", _broadcasting_binop(">", lambda a, b: a > b), 2,
                    _bool_rule),
        FunctionDef("<=", _broadcasting_binop("<=", lambda a, b: a <= b), 2,
                    _bool_rule),
        FunctionDef(">=", _broadcasting_binop(">=", lambda a, b: a >= b), 2,
                    _bool_rule),
        FunctionDef("+", _broadcasting_binop("+", lambda a, b: a + b), 2,
                    _numeric_rule, commutative=True, associative=True),
        FunctionDef("-", _broadcasting_binop("-", lambda a, b: a - b), 2,
                    _numeric_rule),
        FunctionDef("*", _broadcasting_binop("*", lambda a, b: a * b), 2,
                    _numeric_rule, commutative=True, associative=True),
        FunctionDef("/", _broadcasting_binop("/", _div), 2, _numeric_rule),
        # DIV is the spelling of division inside rule-language text,
        # where '/' is reserved as the section separator
        FunctionDef("DIV", _broadcasting_binop("DIV", _div), 2,
                    _numeric_rule),
        FunctionDef("NOT", _not, 1, _bool_rule),
        FunctionDef("AND", _and, None, _bool_rule, commutative=True,
                    associative=True),
        FunctionDef("OR", _or, None, _bool_rule, commutative=True,
                    associative=True),
        # aggregates over collections
        FunctionDef("SUM", _sum, 1, _numeric_rule, adt="collection"),
        FunctionDef("MIN", _min, 1, _element_rule, adt="collection"),
        FunctionDef("MAX", _max, 1, _element_rule, adt="collection"),
        FunctionDef("AVG", _avg, 1, _numeric_rule, adt="collection"),
    ]
    for fdef in defs:
        registry.register(fdef, replace=True)
    return registry


def default_registry() -> FunctionRegistry:
    """A fresh registry populated with the whole built-in library."""
    return install_builtins(FunctionRegistry())
