"""The ESQL type system: ADTs, generic collection ADTs and subtyping.

The paper's model (section 2.1):

* a fixed set of atomic types extended by user-declared ADTs;
* *generic* ADTs -- ``tuple``, ``set``, ``bag``, ``list``, ``array`` --
  that are higher-order constructors combinable at multiple levels;
* collections organised along an inheritance hierarchy rooted at
  ``collection`` (Figure 1);
* ``OBJECT`` types whose instances carry an identifier, with single
  inheritance (``SUBTYPE OF``) between object types;
* the ISA predicate for subtype checking used in rule constraints.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import TypeSystemError

__all__ = [
    "DataType",
    "AtomicType",
    "AnyType",
    "EnumerationType",
    "TupleType",
    "CollectionType",
    "ObjectType",
    "TypeSystem",
    "BOOLEAN",
    "INT",
    "REAL",
    "NUMERIC",
    "CHAR",
    "STRING",
    "ANY",
]


class DataType:
    """Abstract base of every ESQL type."""

    name: str

    def is_collection(self) -> bool:
        return False

    def is_object(self) -> bool:
        return False

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.name == other.name

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


class AtomicType(DataType):
    """A built-in scalar type (NUMERIC, INT, REAL, CHAR, BOOLEAN)."""

    def __init__(self, name: str):
        self.name = name.upper()


class AnyType(DataType):
    """The top type; every type is a subtype of ANY.

    Used for untyped intermediate expressions and as the element type of
    empty collection literals.
    """

    def __init__(self):
        self.name = "ANY"


BOOLEAN = AtomicType("BOOLEAN")
INT = AtomicType("INT")
REAL = AtomicType("REAL")
NUMERIC = AtomicType("NUMERIC")
CHAR = AtomicType("CHAR")
STRING = AtomicType("CHAR")  # the paper uses CHAR for strings
ANY = AnyType()


class EnumerationType(DataType):
    """``TYPE name ENUMERATION OF ('a', 'b', ...)`` (Figure 2, Category)."""

    def __init__(self, name: str, literals: Sequence[str]):
        if not literals:
            raise TypeSystemError(f"enumeration {name!r} needs literals")
        self.name = name
        self.literals = tuple(literals)
        if len(set(self.literals)) != len(self.literals):
            raise TypeSystemError(f"duplicate literal in enumeration {name!r}")

    def contains(self, literal: str) -> bool:
        return literal in self.literals


class TupleType(DataType):
    """``TUPLE (field : type, ...)`` -- named for user ADTs, or anonymous."""

    def __init__(self, name: str,
                 fields: Mapping[str, DataType] | Iterable[tuple[str, DataType]]):
        self.name = name
        items = tuple(fields.items()) if isinstance(fields, Mapping) \
            else tuple(fields)
        if not items:
            raise TypeSystemError(f"tuple type {name!r} needs fields")
        self.fields = items
        self._by_name = {fname.upper(): ftype for fname, ftype in items}
        if len(self._by_name) != len(items):
            raise TypeSystemError(f"duplicate field in tuple type {name!r}")

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(fname for fname, __ in self.fields)

    def field_type(self, field: str) -> DataType:
        try:
            return self._by_name[field.upper()]
        except KeyError:
            raise TypeSystemError(
                f"tuple type {self.name!r} has no field {field!r}; "
                f"fields are {list(self.field_names)}"
            ) from None

    def has_field(self, field: str) -> bool:
        return field.upper() in self._by_name


# The collection hierarchy of Figure 1: collection is the root, the four
# concrete kinds are its direct subtypes.
COLLECTION_KINDS = ("COLLECTION", "SET", "BAG", "LIST", "ARRAY")


class CollectionType(DataType):
    """``SET OF t``, ``BAG OF t``, ``LIST OF t``, ``ARRAY OF t``.

    ``COLLECTION OF t`` is the abstract root used for functions defined at
    the collection level (Convert, IsEmpty, Equal, Insert, Remove).
    """

    def __init__(self, kind: str, element: DataType,
                 name: Optional[str] = None):
        kind = kind.upper()
        if kind not in COLLECTION_KINDS:
            raise TypeSystemError(f"unknown collection kind {kind!r}")
        self.kind = kind
        self.element = element
        self.name = name or f"{kind} OF {element.name}"

    def is_collection(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return (isinstance(other, CollectionType)
                and self.kind == other.kind
                and self.element == other.element)

    def __hash__(self) -> int:
        return hash(("collection", self.kind, self.element))


class ObjectType(DataType):
    """``TYPE name OBJECT TUPLE (...)`` with optional ``SUBTYPE OF``.

    Instances are object references; the bound value has the (merged)
    tuple type.  Methods declared with ``FUNCTION`` are recorded by name so
    the rewriter can type-check method calls.
    """

    def __init__(self, name: str, value_type: TupleType,
                 supertype: Optional["ObjectType"] = None,
                 methods: Iterable[str] = ()):
        self.name = name
        self.supertype = supertype
        self.own_value_type = value_type
        merged: list[tuple[str, DataType]] = []
        if supertype is not None:
            merged.extend(supertype.value_type.fields)
        own_names = {f.upper() for f, __ in value_type.fields}
        merged = [(f, t) for f, t in merged if f.upper() not in own_names]
        merged.extend(value_type.fields)
        self.value_type = TupleType(f"{name}$value", merged)
        self.methods = tuple(methods)

    def is_object(self) -> bool:
        return True

    def ancestors(self) -> Iterable["ObjectType"]:
        t: Optional[ObjectType] = self
        while t is not None:
            yield t
            t = t.supertype


class TypeSystem:
    """The catalog of named types plus the subtype (ISA) relation.

    This is the extensibility surface of section 2.1: a database
    implementor registers new ADTs here, and the generic ADT constructors
    combine them at multiple levels.
    """

    def __init__(self):
        self._types: dict[str, DataType] = {}
        for atom in (BOOLEAN, INT, REAL, NUMERIC, CHAR):
            self._types[atom.name] = atom
        self._types["ANY"] = ANY

    # -- definition --------------------------------------------------------
    def define(self, dtype: DataType) -> DataType:
        key = dtype.name.upper()
        if key in self._types:
            raise TypeSystemError(f"type {dtype.name!r} already defined")
        self._types[key] = dtype
        return dtype

    def define_enumeration(self, name: str,
                           literals: Sequence[str]) -> EnumerationType:
        return self.define(EnumerationType(name, literals))  # type: ignore

    def define_tuple(self, name: str,
                     fields: Iterable[tuple[str, DataType]]) -> TupleType:
        return self.define(TupleType(name, fields))  # type: ignore

    def define_collection(self, name: str, kind: str,
                          element: DataType) -> CollectionType:
        return self.define(CollectionType(kind, element, name))  # type: ignore

    def define_object(self, name: str, fields: Iterable[tuple[str, DataType]],
                      supertype: Optional[str] = None,
                      methods: Iterable[str] = ()) -> ObjectType:
        parent: Optional[ObjectType] = None
        if supertype is not None:
            candidate = self.lookup(supertype)
            if not isinstance(candidate, ObjectType):
                raise TypeSystemError(
                    f"SUBTYPE OF target {supertype!r} is not an object type"
                )
            parent = candidate
        value_type = TupleType(f"{name}$own", fields)
        return self.define(  # type: ignore[return-value]
            ObjectType(name, value_type, parent, methods)
        )

    # -- lookup ------------------------------------------------------------
    def lookup(self, name: str) -> DataType:
        try:
            return self._types[name.upper()]
        except KeyError:
            raise TypeSystemError(f"unknown type {name!r}") from None

    def lookup_or_none(self, name: str) -> Optional[DataType]:
        return self._types.get(name.upper())

    def is_defined(self, name: str) -> bool:
        return name.upper() in self._types

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._types))

    # -- subtyping (the ISA predicate) --------------------------------------
    def isa(self, sub: DataType, sup: DataType) -> bool:
        """True when ``sub`` is ``sup`` or a subtype of ``sup``.

        The rules, following the paper:

        * every type ISA ANY;
        * object types follow the declared SUBTYPE OF chain;
        * SET/BAG/LIST/ARRAY OF t ISA COLLECTION OF t (Figure 1) and
          collections are covariant in their element type;
        * INT and REAL are subtypes of NUMERIC;
        * an enumeration is a subtype of CHAR (its literals are strings).
        """
        if isinstance(sup, AnyType):
            return True
        if isinstance(sub, AnyType):
            return False
        if sub == sup:
            return True
        if isinstance(sub, ObjectType) and isinstance(sup, ObjectType):
            return any(anc.name == sup.name for anc in sub.ancestors())
        if isinstance(sub, CollectionType) and isinstance(sup, CollectionType):
            kind_ok = sup.kind == "COLLECTION" or sup.kind == sub.kind
            return kind_ok and self.isa(sub.element, sup.element)
        if isinstance(sub, AtomicType) and isinstance(sup, AtomicType):
            return sub.name in ("INT", "REAL") and sup.name == "NUMERIC"
        if isinstance(sub, EnumerationType) and isinstance(sup, AtomicType):
            return sup.name == "CHAR"
        return False

    def isa_name(self, sub_name: str, sup_name: str) -> bool:
        return self.isa(self.lookup(sub_name), self.lookup(sup_name))
