"""Runtime values for the ESQL/LERA data model.

ESQL data is partitioned into *values* and *objects* (paper, section 2.1).
A value is an instance of an ADT; an object has a unique identifier (OID)
with a value bound to it.  Only objects may be referentially shared.

All value classes here are immutable and hashable so they can be stored in
sets and used as grouping keys.  The generic collection ADTs of Figure 1
(``set``, ``bag``, ``list``, ``array``) are represented by
:class:`SetValue`, :class:`BagValue`, :class:`ListValue` and
:class:`ArrayValue`, all subclasses of :class:`CollectionValue`, mirroring
the paper's inheritance hierarchy rooted at ``collection``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ValueError_

__all__ = [
    "CollectionValue",
    "SetValue",
    "BagValue",
    "ListValue",
    "ArrayValue",
    "TupleValue",
    "ObjectRef",
    "ObjectStore",
    "is_atomic",
    "value_repr",
]


def is_atomic(value: Any) -> bool:
    """Return True for atomic (non-constructed) runtime values."""
    return isinstance(value, (int, float, str, bool)) or value is None


class CollectionValue:
    """Abstract base of the four generic collection ADTs.

    Subclasses store their elements in ``_elems`` (a tuple) and expose the
    shared protocol of the paper's ``collection`` root type: emptiness
    testing, membership, iteration, length and conversion.
    """

    __slots__ = ("_elems", "_hash")

    kind: str = "collection"

    def __init__(self, elems: Iterable[Any]):
        self._elems = self._normalize(tuple(elems))
        self._hash: int | None = None

    @staticmethod
    def _normalize(elems: tuple) -> tuple:
        return elems

    def __iter__(self) -> Iterator[Any]:
        return iter(self._elems)

    def __len__(self) -> int:
        return len(self._elems)

    def __contains__(self, item: Any) -> bool:
        return item in self._elems

    def is_empty(self) -> bool:
        return not self._elems

    @property
    def elements(self) -> tuple:
        return self._elems

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and self._cmp_key() == other._cmp_key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((type(self).__name__, self._cmp_key()))
        return self._hash

    def _cmp_key(self):
        return self._elems

    def __repr__(self) -> str:
        inner = ", ".join(value_repr(e) for e in self._elems)
        return f"{self.kind}({inner})"

    # -- conversions (the paper's Convert function at collection level) ----
    def to_set(self) -> "SetValue":
        return SetValue(self._elems)

    def to_bag(self) -> "BagValue":
        return BagValue(self._elems)

    def to_list(self) -> "ListValue":
        return ListValue(self._elems)

    def to_array(self) -> "ArrayValue":
        return ArrayValue(self._elems)


def _stable_unique(elems: Iterable[Any]) -> tuple:
    """Deduplicate preserving first-occurrence order."""
    seen = set()
    out = []
    for e in elems:
        if e not in seen:
            seen.add(e)
            out.append(e)
    return tuple(out)


class SetValue(CollectionValue):
    """An unordered collection without duplicates.

    Element order is normalised away for comparison and hashing but a
    deterministic insertion order is kept for display and iteration.
    """

    __slots__ = ()
    kind = "set"

    @staticmethod
    def _normalize(elems: tuple) -> tuple:
        return _stable_unique(elems)

    def _cmp_key(self):
        return frozenset(self._elems)

    def __contains__(self, item: Any) -> bool:
        # Sets are the membership workhorse (MEMBER); keep O(n) simple scan
        # because elements may be arbitrary values -- they are hashable, so
        # use a frozenset probe for larger sets.
        if len(self._elems) > 8:
            return item in self._cmp_key()
        return item in self._elems


class BagValue(CollectionValue):
    """An unordered collection with duplicates (the ESQL default)."""

    __slots__ = ()
    kind = "bag"

    def _cmp_key(self):
        return frozenset(Counter(self._elems).items())


class ListValue(CollectionValue):
    """An ordered collection with duplicates."""

    __slots__ = ()
    kind = "list"

    def __getitem__(self, index: int) -> Any:
        return self._elems[index]

    def first(self) -> Any:
        if not self._elems:
            raise ValueError_("first() on an empty list")
        return self._elems[0]

    def last(self) -> Any:
        if not self._elems:
            raise ValueError_("last() on an empty list")
        return self._elems[-1]

    def append_element(self, item: Any) -> "ListValue":
        return ListValue(self._elems + (item,))

    def concat(self, other: "ListValue") -> "ListValue":
        return ListValue(self._elems + tuple(other))

    def sublist(self, start: int, stop: int) -> "ListValue":
        return ListValue(self._elems[start:stop])


class ArrayValue(CollectionValue):
    """A fixed-length ordered collection with positional access."""

    __slots__ = ()
    kind = "array"

    def __getitem__(self, index: int) -> Any:
        try:
            return self._elems[index]
        except IndexError as exc:
            raise ValueError_(
                f"array index {index} out of range (size {len(self)})"
            ) from exc

    def set_at(self, index: int, item: Any) -> "ArrayValue":
        if not 0 <= index < len(self._elems):
            raise ValueError_(
                f"array index {index} out of range (size {len(self)})"
            )
        elems = list(self._elems)
        elems[index] = item
        return ArrayValue(elems)


class TupleValue(Mapping):
    """An instance of the generic ``tuple`` ADT: named, typed fields.

    Field order is significant for display and positional access, mirroring
    the paper's nested-tuple attributes (an attribute name is applied as a
    function, i.e. a projection on the tuple).
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields: Mapping[str, Any] | Iterable[tuple[str, Any]]):
        if isinstance(fields, Mapping):
            items = tuple(fields.items())
        else:
            items = tuple(fields)
        names = [name for name, __ in items]
        if len(set(names)) != len(names):
            raise ValueError_(f"duplicate tuple field in {names}")
        self._fields = items
        self._hash: int | None = None

    def __getitem__(self, name: str) -> Any:
        for field, value in self._fields:
            if field == name:
                return value
        raise KeyError(name)

    def project(self, name: str) -> Any:
        """Attribute-as-function access (PROJECT in LERA)."""
        try:
            return self[name]
        except KeyError:
            raise ValueError_(
                f"tuple has no field {name!r}; fields are "
                f"{[f for f, __ in self._fields]}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return (name for name, __ in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, __ in self._fields)

    @property
    def field_values(self) -> tuple:
        return tuple(value for __, value in self._fields)

    def replace(self, name: str, value: Any) -> "TupleValue":
        if name not in self.field_names:
            raise ValueError_(f"tuple has no field {name!r}")
        return TupleValue(
            tuple((f, value if f == name else v) for f, v in self._fields)
        )

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, TupleValue) and self._fields == other._fields

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._fields)
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}: {value_repr(value)}" for name, value in self._fields
        )
        return f"tuple({inner})"


class ObjectRef:
    """A reference to an object: an OID plus the object's type name.

    The value bound to the OID lives in an :class:`ObjectStore`; going from
    a reference to its value is the VALUE built-in function.
    """

    __slots__ = ("oid", "type_name")

    def __init__(self, oid: int, type_name: str):
        self.oid = oid
        self.type_name = type_name

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ObjectRef) and self.oid == other.oid

    def __hash__(self) -> int:
        return hash(("oid", self.oid))

    def __repr__(self) -> str:
        return f"<{self.type_name}:{self.oid}>"


class ObjectStore:
    """Maps OIDs to object values; the object manager substrate.

    The EDS server would persist objects; here an in-memory dictionary is
    enough for the rewriter and its benchmarks (the rewriter never touches
    object *state*, only references).
    """

    def __init__(self):
        self._objects: dict[int, Any] = {}
        self._types: dict[int, str] = {}
        self._next_oid = 1

    def create(self, type_name: str, value: Any) -> ObjectRef:
        """Allocate a fresh OID bound to ``value``."""
        oid = self._next_oid
        self._next_oid += 1
        self._objects[oid] = value
        self._types[oid] = type_name
        return ObjectRef(oid, type_name)

    # -- statement rollback and durability hooks ---------------------------
    def mark(self) -> int:
        """The next OID to be allocated; pass to :meth:`rewind` to undo
        every creation made after the mark (statement rollback)."""
        return self._next_oid

    def rewind(self, mark: int) -> None:
        """Discard objects created at or after ``mark`` and rewind the
        OID counter, so a rolled-back statement leaves no trace (and a
        WAL replay re-allocates identical OIDs)."""
        for oid in [o for o in self._objects if o >= mark]:
            del self._objects[oid]
            del self._types[oid]
        self._next_oid = mark

    def items(self) -> list[tuple[int, str, Any]]:
        """Every live object as ``(oid, type_name, value)``."""
        return [
            (oid, self._types[oid], value)
            for oid, value in sorted(self._objects.items())
        ]

    def load(self, items: Iterable[tuple[int, str, Any]],
             next_oid: int) -> None:
        """Replace the whole store (snapshot restore)."""
        self._objects = {oid: value for oid, __, value in items}
        self._types = {oid: type_name for oid, type_name, __ in items}
        self._next_oid = next_oid

    def value_of(self, ref: ObjectRef) -> Any:
        """Dereference (the VALUE built-in)."""
        try:
            return self._objects[ref.oid]
        except KeyError:
            raise ValueError_(f"dangling object reference {ref!r}") from None

    def update(self, ref: ObjectRef, value: Any) -> None:
        if ref.oid not in self._objects:
            raise ValueError_(f"dangling object reference {ref!r}")
        self._objects[ref.oid] = value

    def type_of(self, ref: ObjectRef) -> str:
        try:
            return self._types[ref.oid]
        except KeyError:
            raise ValueError_(f"dangling object reference {ref!r}") from None

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, ref: ObjectRef) -> bool:
        return isinstance(ref, ObjectRef) and ref.oid in self._objects


def value_repr(value: Any) -> str:
    """A compact, stable display form for any runtime value."""
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    return repr(value)
