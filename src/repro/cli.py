"""An interactive ESQL shell.

Run::

    python -m repro                # interactive
    python -m repro script.esql    # execute a file, then exit

Statements end with ``;``.  Dot-commands:

=================  =====================================================
``.explain <q>``   show the plans before/after rewriting plus the trace
``.load <file>``   run an ESQL script file
``.engine hash``   switch to hash joins (also ``nested``)
``.schema``        list relations, views and their columns
``.rules``         show the generated optimizer's rule inventory
``.rewrite on``    toggle rewriting (also ``off``)
``.checked on``    toggle checked mode (also ``off``): every rewrite
                   block is validated against a sampled database and
                   rolled back when its results diverge
``.deadline N``    give every rewrite a deadline of N milliseconds
                   (best-so-far plans past it; ``off`` clears)
``.profile on``    toggle profiling (also ``off``): ``.explain`` and
                   ``.stats`` then include per-rule/per-block telemetry
``.stats <q>``     run a query and print the evaluator work counters
``.open PATH``     open (or create) a durable database at PATH: the
                   snapshot is loaded, torn WAL tails are truncated and
                   the remaining statements replayed; prints the
                   recovery summary
``.checkpoint``    install a snapshot and reset the WAL
``.fsck``          run the invariant checker (arity, key index,
                   dangling references, WAL/snapshot agreement)
``.sync on``       fsync the WAL on every commit (also ``off``)
``.quit``          leave
=================  =====================================================
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator, Optional

from repro.engine.database import Database
from repro.errors import ReproError

__all__ = ["Shell", "main"]

_BANNER = (
    "repro " + "1.0.0" + " -- an extensible rule-based query rewriter\n"
    "ESQL statements end with ';'.  Try .help"
)

_HELP = __doc__.split("Statements end", 1)[1]


class Shell:
    """Line-oriented driver around a Database (testable in isolation)."""

    def __init__(self, db: Optional[Database] = None):
        self.db = db or Database()
        self.rewrite = True
        self.profile = False
        self._buffer: list[str] = []

    # -- statement assembly -------------------------------------------------
    def feed(self, line: str) -> list[str]:
        """Consume one input line; return the outputs it produced."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            try:
                return self._dot_command(stripped)
            except ReproError as error:
                # one failing command must not kill the shell
                return [f"error: {error}"]
        self._buffer.append(line)
        if not stripped.endswith(";"):
            return []
        statement = "\n".join(self._buffer)
        self._buffer.clear()
        return self._execute(statement)

    def run(self, lines: Iterable[str]) -> Iterator[str]:
        for line in lines:
            for output in self.feed(line):
                yield output
        if self._buffer:
            for output in self._execute("\n".join(self._buffer)):
                yield output
            self._buffer.clear()

    # -- execution ------------------------------------------------------------
    def _execute(self, statement: str) -> list[str]:
        statement = statement.strip().rstrip(";").strip()
        if not statement:
            return []
        try:
            upper = statement.upper()
            if upper.startswith("SELECT") or upper.startswith("(SELECT"):
                result = self.db.query(statement, rewrite=self.rewrite)
                return [result.to_table()]
            self.db.execute(statement)
            return ["ok"]
        except ReproError as error:
            return [f"error: {error}"]

    def _dot_command(self, line: str) -> list[str]:
        parts = line.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip().rstrip(";") if len(parts) > 1 else ""

        if command in (".quit", ".exit"):
            raise SystemExit(0)
        if command == ".help":
            return [_HELP.strip()]
        if command == ".rewrite":
            if argument.lower() in ("on", "off"):
                self.rewrite = argument.lower() == "on"
                return [f"rewriting {'on' if self.rewrite else 'off'}"]
            return [f"rewriting is "
                    f"{'on' if self.rewrite else 'off'}"]
        if command == ".checked":
            if argument.lower() in ("on", "off"):
                self.db.checked = argument.lower() == "on"
                return [f"checked mode "
                        f"{'on' if self.db.checked else 'off'}"]
            return [f"checked mode is "
                    f"{'on' if self.db.checked else 'off'}"]
        if command == ".deadline":
            if argument.lower() in ("off", "none"):
                self.db.deadline_ms = None
                return ["deadline off"]
            if argument:
                try:
                    value = float(argument)
                except ValueError:
                    return ["usage: .deadline <milliseconds>|off"]
                if value <= 0:
                    return ["usage: .deadline <milliseconds>|off"]
                self.db.deadline_ms = value
                return [f"deadline {value:g} ms"]
            if self.db.deadline_ms is None:
                return ["no deadline"]
            return [f"deadline is {self.db.deadline_ms:g} ms"]
        if command == ".profile":
            if argument.lower() in ("on", "off"):
                self.profile = argument.lower() == "on"
                return [f"profiling {'on' if self.profile else 'off'}"]
            return [f"profiling is "
                    f"{'on' if self.profile else 'off'}"]
        if command == ".schema":
            lines = []
            catalog = self.db.catalog
            for name in catalog.relation_names():
                schema = catalog.relation_schema(name)
                cols = ", ".join(
                    f"{n} : {t.name}" for n, t in schema
                )
                key = catalog.primary_key_of(name)
                suffix = f"  [key: {key}]" if key else ""
                lines.append(f"table {name} ({cols}){suffix}")
            for name in catalog.view_names():
                view = catalog.view(name)
                cols = ", ".join(view.schema.names)
                kind = "recursive view" if view.recursive else "view"
                lines.append(f"{kind} {name} ({cols})")
            return lines or ["(empty catalog)"]
        if command == ".rules":
            inventory = self.db.optimizer.rewriter.rule_inventory()
            return [
                f"{block}: {', '.join(rules)}"
                for block, rules in inventory.items()
            ]
        if command == ".engine":
            if argument.lower() in ("hash", "nested"):
                self.db.hash_joins = argument.lower() == "hash"
                return [f"join strategy: {argument.lower()}"]
            return [f"join strategy: "
                    f"{'hash' if self.db.hash_joins else 'nested'}"]
        if command == ".open":
            if not argument:
                return ["usage: .open <path>"]
            try:
                # recovery runs inside the constructor; a corrupt or
                # truncated file surfaces as a ReproError (handled by
                # the caller's guard), never a traceback
                db = Database(
                    path=argument,
                    checked=self.db.checked,
                    deadline_ms=self.db.deadline_ms,
                    hash_joins=self.db.hash_joins,
                )
            except OSError as error:
                return [f"error: {error}"]
            self.db.close()
            self.db = db
            return [f"opened {argument}: {db.recovery.summary()}"]
        if command == ".checkpoint":
            if self.db.durability is None:
                return ["error: no durable database open "
                        "(use .open <path>)"]
            return [self.db.checkpoint().summary()]
        if command == ".fsck":
            report = self.db.fsck()
            if report.ok:
                return [report.summary()]
            return [report.summary()] + [
                f"  {v}" for v in report.violations
            ]
        if command == ".sync":
            if self.db.durability is None:
                return ["error: no durable database open "
                        "(use .open <path>)"]
            if argument.lower() in ("on", "off"):
                self.db.sync = argument.lower() == "on"
                return [f"fsync on commit "
                        f"{'on' if self.db.sync else 'off'}"]
            return [f"fsync on commit is "
                    f"{'on' if self.db.sync else 'off'}"]
        if command == ".load":
            if not argument:
                return ["usage: .load <file.esql>"]
            try:
                with open(argument) as handle:
                    return list(self.run(handle))
            except OSError as error:
                return [f"error: {error}"]
        if command == ".explain":
            if not argument:
                return ["usage: .explain SELECT ..."]
            try:
                return [self.db.explain(argument, profile=self.profile)]
            except ReproError as error:
                return [f"error: {error}"]
        if command == ".stats":
            if not argument:
                return ["usage: .stats SELECT ..."]
            profiler = None
            if self.profile:
                from repro.obs.profile import Profiler
                profiler = Profiler()
            try:
                result, stats, optimized = self.db.query_with_stats(
                    argument, rewrite=self.rewrite,
                    obs=profiler.bus if profiler else None,
                )
            except ReproError as error:
                return [f"error: {error}"]
            fired = optimized.rewrite_result.rules_fired()
            lines = [
                result.to_table(),
                f"rules fired: {fired}" if fired else "rules fired: none",
                ", ".join(f"{k}={v}"
                          for k, v in stats.snapshot().items()),
            ]
            if optimized.degraded:
                lines.append(
                    f"degraded: best-so-far plan "
                    f"({optimized.rewrite_result.degraded_reason} "
                    f"exhausted)"
                )
            if profiler is not None:
                profiler.absorb_eval_stats(stats)
                for rule, row in sorted(profiler.rule_table().items()):
                    lines.append(
                        f"  rule {rule}: {row.get('attempts', 0)} "
                        f"attempt(s), {row.get('hits', 0)} hit(s), "
                        f"{row.get('fired', 0)} fired"
                    )
                for block, row in sorted(profiler.block_table().items()):
                    lines.append(
                        f"  block {block}: "
                        f"{row.get('applications', 0)} application(s), "
                        f"{row.get('checks', 0)} check(s), budget "
                        f"consumed {row.get('budget_consumed', 0)}"
                    )
            return lines
        return [f"unknown command {command}; try .help"]


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    shell = Shell()

    if argv:
        with open(argv[0]) as handle:
            try:
                for output in shell.run(handle):
                    print(output)
            except ReproError as error:
                print(f"error: {error}")
                return 1
        return 0

    print(_BANNER)
    try:
        while True:
            prompt = "....> " if shell._buffer else "esql> "
            try:
                line = input(prompt)
            except EOFError:
                break
            try:
                for output in shell.feed(line):
                    print(output)
            except SystemExit:
                break
            except ReproError as error:
                # last-resort guard: a failing statement prints one
                # diagnostic line and the REPL stays alive
                print(f"error: {error}")
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
