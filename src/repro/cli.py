"""An interactive ESQL shell.

Run::

    python -m repro                # interactive
    python -m repro script.esql    # execute a file, then exit

Statements end with ``;``.  Dot-commands:

=================  =====================================================
``.explain <q>``   show the plans before/after rewriting plus the trace
``.load <file>``   run an ESQL script file
``.engine hash``   switch to hash joins (also ``nested``)
``.schema``        list relations, views and their columns
``.rules``         show the generated optimizer's rule inventory
``.rewrite on``    toggle rewriting (also ``off``)
``.checked on``    toggle checked mode (also ``off``): every rewrite
                   block is validated against a sampled database and
                   rolled back when its results diverge
``.deadline N``    give every rewrite a deadline of N milliseconds
                   (best-so-far plans past it; ``off`` clears)
``.profile on``    toggle profiling (also ``off``): ``.explain`` and
                   ``.stats`` then include per-rule/per-block telemetry
``.stats <q>``     run a query and print the evaluator work counters
``.fuzz N [S]``    run N randomized differential-equivalence cases
                   (seed S, default 0) against a scratch database:
                   rewritten vs unrewritten answers, leave-one-block-
                   out sweeps; prints any minimized counterexample
``.open PATH``     open (or create) a durable database at PATH: the
                   snapshot is loaded, torn WAL tails are truncated and
                   the remaining statements replayed; prints the
                   recovery summary
``.checkpoint``    install a snapshot and reset the WAL
``.fsck``          run the invariant checker (arity, key index,
                   dangling references, WAL/snapshot agreement)
``.sync on``       fsync the WAL on every commit (also ``off``)
``.serve on``      route statements through the concurrent serving
                   layer (also ``off``/``status``): sessions, reader-
                   writer isolation, admission control
``.sessions``      list serving sessions; ``new [id]`` opens one,
                   ``use <id>`` switches, ``close <id>`` ends one
``.shed``          show admission/shedding stats; ``queue N``,
                   ``readers N``, ``writers N``, ``timeout MS`` tune
                   the limits
``.top [N]``       one dashboard frame of the serving layer: req/s,
                   per-class latency percentiles (p50/p95/p99), queue
                   depth, shed rate, the N (default 10) hottest
                   rewrite rules and the slow-query tail;
                   ``.top [N] by-statement`` ranks the workload by
                   statement fingerprint instead (``sys.statements``)
``.analyze <q>``   EXPLAIN ANALYZE: execute the query with per-operator
                   actuals collected (rows, loops, self/total time,
                   budget bytes) and print the operator tree
``.queries``       in-flight and recent statements (the ``sys.queries``
                   view): id, phase, rows/bytes consumed, elapsed,
                   queue wait and the executing pool worker (if any)
``.workers``       the process-pool execution tier (needs ``.serve
                   on``): ``on`` mounts it, ``off`` unmounts, ``N``
                   resizes to N worker processes, bare/``status``
                   lists the workers (pid, state, restarts)
``.kill <id>``     cancel one in-flight statement by its ``q<N>`` id
``.timeout N``     give every statement a wall-clock budget of N
                   milliseconds, rewrite and evaluation combined
                   (``off`` clears)
``.budget``        per-statement budgets: ``rows N``, ``memory N``
                   (bytes), ``off`` clears both
``.degrade on``    truncate instead of fail when a budget trips (also
                   ``off``): partial results are flagged
``.quit``          leave
=================  =====================================================

The ``.rewrite`` / ``.checked`` / ``.deadline`` / ``.profile`` toggles
-- and the lifecycle knobs ``.timeout`` / ``.budget`` / ``.degrade`` --
are *session* state: they never mutate the shared Database, so two
shells (or serving sessions) over one database cannot leak settings
into each other.

Ctrl-C during a long statement pulls the statement's cancel token (the
same mechanism as ``.kill``): the evaluator unwinds cooperatively at
its next check, the shell prints the typed cancellation error, and the
prompt returns.  Ctrl-C at the prompt just clears any half-typed
statement; only EOF (Ctrl-D) or ``.quit`` leave the shell.
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator, Optional

from repro.engine.database import Database
from repro.errors import ReproError
from repro.server.session import SessionSettings

__all__ = ["Shell", "main"]

_BANNER = (
    "repro " + "1.0.0" + " -- an extensible rule-based query rewriter\n"
    "ESQL statements end with ';'.  Try .help"
)

_HELP = __doc__.split("Statements end", 1)[1]


class Shell:
    """Line-oriented driver around a Database (testable in isolation)."""

    def __init__(self, db: Optional[Database] = None):
        self.db = db or Database()
        # every interactive statement runs under a QueryContext so
        # Ctrl-C / .kill always have a cancel token to pull
        self.db.govern_statements = True
        # per-shell settings: applied as per-call overrides, never
        # written into the shared Database (see the module docstring)
        self.settings = SessionSettings(rewrite=True)
        self.server = None    # repro.server.Server when .serve on
        self.session = None   # the active serving Session
        self._buffer: list[str] = []

    # legacy aliases (older tests/scripts poke these directly)
    @property
    def rewrite(self) -> bool:
        return self.settings.rewrite is not False

    @rewrite.setter
    def rewrite(self, value: bool) -> None:
        self.settings.rewrite = bool(value)

    @property
    def profile(self) -> bool:
        return self.settings.profile

    @profile.setter
    def profile(self, value: bool) -> None:
        self.settings.profile = bool(value)

    @property
    def serving(self) -> bool:
        return self.server is not None

    # -- statement assembly -------------------------------------------------
    def feed(self, line: str) -> list[str]:
        """Consume one input line; return the outputs it produced."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            try:
                return self._dot_command(stripped)
            except ReproError as error:
                # one failing command must not kill the shell
                return [f"error: {error}"]
        self._buffer.append(line)
        if not stripped.endswith(";"):
            return []
        statement = "\n".join(self._buffer)
        self._buffer.clear()
        return self._execute(statement)

    def run(self, lines: Iterable[str]) -> Iterator[str]:
        for line in lines:
            for output in self.feed(line):
                yield output
        if self._buffer:
            for output in self._execute("\n".join(self._buffer)):
                yield output
            self._buffer.clear()

    # -- execution ------------------------------------------------------------
    def _execute(self, statement: str) -> list[str]:
        statement = statement.strip().rstrip(";").strip()
        if not statement:
            return []
        try:
            upper = statement.upper()
            is_query = (upper.startswith("SELECT")
                        or upper.startswith("(SELECT"))
            if self.server is not None:
                sid = self.session.id
                if is_query:
                    result = self.server.query(statement, session=sid)
                    return [result.to_table()]
                self.server.execute(statement, session=sid)
                return ["ok"]
            s = self.settings
            if is_query:
                result = self.db.query(
                    statement, rewrite=s.rewrite, checked=s.checked,
                    deadline_ms=s.deadline_ms,
                    timeout_ms=s.timeout_ms, row_budget=s.row_budget,
                    memory_budget=s.memory_budget, degrade=s.degrade,
                )
                return [result.to_table()]
            self.db.execute(
                statement, timeout_ms=s.timeout_ms,
                row_budget=s.row_budget,
                memory_budget=s.memory_budget, degrade=s.degrade,
            )
            return ["ok"]
        except ReproError as error:
            return [f"error: {error}"]

    def cancel_inflight(self, reason: str = "keyboard-interrupt"
                        ) -> list[str]:
        """Pull every in-flight cancel token (the Ctrl-C path);
        returns the cancelled query ids."""
        return self.db.lifecycle.cancel_all(reason)

    def _dot_command(self, line: str) -> list[str]:
        parts = line.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip().rstrip(";") if len(parts) > 1 else ""

        if command in (".quit", ".exit"):
            raise SystemExit(0)
        if command == ".help":
            return [_HELP.strip()]
        if command == ".rewrite":
            if argument.lower() in ("on", "off"):
                self.settings.rewrite = argument.lower() == "on"
                return [f"rewriting {'on' if self.rewrite else 'off'}"]
            return [f"rewriting is "
                    f"{'on' if self.rewrite else 'off'}"]
        if command == ".checked":
            if argument.lower() in ("on", "off"):
                self.settings.checked = argument.lower() == "on"
                return [f"checked mode "
                        f"{'on' if self.settings.checked else 'off'}"]
            return [f"checked mode is "
                    f"{'on' if self.settings.checked else 'off'}"]
        if command == ".deadline":
            if argument.lower() in ("off", "none"):
                self.settings.deadline_ms = None
                return ["deadline off"]
            if argument:
                try:
                    value = float(argument)
                except ValueError:
                    return ["usage: .deadline <milliseconds>|off"]
                if value <= 0:
                    return ["usage: .deadline <milliseconds>|off"]
                self.settings.deadline_ms = value
                return [f"deadline {value:g} ms"]
            if self.settings.deadline_ms is None:
                return ["no deadline"]
            return [f"deadline is {self.settings.deadline_ms:g} ms"]
        if command == ".profile":
            if argument.lower() in ("on", "off"):
                self.settings.profile = argument.lower() == "on"
                return [f"profiling {'on' if self.profile else 'off'}"]
            return [f"profiling is "
                    f"{'on' if self.profile else 'off'}"]
        if command == ".timeout":
            if argument.lower() in ("off", "none"):
                self.settings.timeout_ms = None
                return ["statement timeout off"]
            if argument:
                try:
                    value = float(argument)
                except ValueError:
                    return ["usage: .timeout <milliseconds>|off"]
                if value <= 0:
                    return ["usage: .timeout <milliseconds>|off"]
                self.settings.timeout_ms = value
                return [f"statement timeout {value:g} ms"]
            if self.settings.timeout_ms is None:
                return ["no statement timeout"]
            return [f"statement timeout is "
                    f"{self.settings.timeout_ms:g} ms"]
        if command == ".budget":
            return self._budget_command(argument)
        if command == ".degrade":
            if argument.lower() in ("on", "off"):
                self.settings.degrade = argument.lower() == "on"
                return [f"degrade mode "
                        f"{'on' if self.settings.degrade else 'off'}"]
            return [f"degrade mode is "
                    f"{'on' if self.settings.degrade else 'off'}"]
        if command == ".kill":
            if not argument:
                return ["usage: .kill <query-id>   (see .queries)"]
            if self.db.kill(argument):
                return [f"{argument} cancelled"]
            return [f"no such in-flight statement: {argument}"]
        if command == ".queries":
            return self._queries_command()
        if command == ".workers":
            return self._workers_command(argument)
        if command == ".serve":
            return self._serve_command(argument)
        if command == ".sessions":
            return self._sessions_command(argument)
        if command == ".shed":
            return self._shed_command(argument)
        if command == ".top":
            return self._top_command(argument)
        if command == ".analyze":
            return self._analyze_command(argument)
        if command == ".schema":
            lines = []
            catalog = self.db.catalog
            for name in catalog.relation_names():
                schema = catalog.relation_schema(name)
                cols = ", ".join(
                    f"{n} : {t.name}" for n, t in schema
                )
                key = catalog.primary_key_of(name)
                suffix = f"  [key: {key}]" if key else ""
                lines.append(f"table {name} ({cols}){suffix}")
            for name in catalog.view_names():
                view = catalog.view(name)
                cols = ", ".join(view.schema.names)
                kind = "recursive view" if view.recursive else "view"
                lines.append(f"{kind} {name} ({cols})")
            for name in catalog.virtual_names():
                virtual = catalog.virtual(name)
                cols = ", ".join(virtual.schema.names)
                lines.append(f"system {name.lower()} ({cols})")
            return lines or ["(empty catalog)"]
        if command == ".rules":
            inventory = self.db.optimizer.rewriter.rule_inventory()
            return [
                f"{block}: {', '.join(rules)}"
                for block, rules in inventory.items()
            ]
        if command == ".engine":
            if argument.lower() in ("hash", "nested"):
                self.db.hash_joins = argument.lower() == "hash"
                return [f"join strategy: {argument.lower()}"]
            return [f"join strategy: "
                    f"{'hash' if self.db.hash_joins else 'nested'}"]
        if command == ".open":
            if not argument:
                return ["usage: .open <path>"]
            try:
                # recovery runs inside the constructor; a corrupt or
                # truncated file surfaces as a ReproError (handled by
                # the caller's guard), never a traceback.  The shell's
                # checked/deadline settings are session state and carry
                # over untouched.
                db = Database(
                    path=argument,
                    hash_joins=self.db.hash_joins,
                )
            except OSError as error:
                return [f"error: {error}"]
            self.db.close()
            self.db = db
            lines = [f"opened {argument}: {db.recovery.summary()}"]
            if self.server is not None:
                self._start_serving()
                lines.append("serving restarted on the new database")
            return lines
        if command == ".checkpoint":
            if self.db.durability is None:
                return ["error: no durable database open "
                        "(use .open <path>)"]
            return [self.db.checkpoint().summary()]
        if command == ".fsck":
            report = self.db.fsck()
            if report.ok:
                return [report.summary()]
            return [report.summary()] + [
                f"  {v}" for v in report.violations
            ]
        if command == ".sync":
            if self.db.durability is None:
                return ["error: no durable database open "
                        "(use .open <path>)"]
            if argument.lower() in ("on", "off"):
                self.db.sync = argument.lower() == "on"
                return [f"fsync on commit "
                        f"{'on' if self.db.sync else 'off'}"]
            return [f"fsync on commit is "
                    f"{'on' if self.db.sync else 'off'}"]
        if command == ".load":
            if not argument:
                return ["usage: .load <file.esql>"]
            try:
                with open(argument) as handle:
                    return list(self.run(handle))
            except OSError as error:
                return [f"error: {error}"]
        if command == ".explain":
            if not argument:
                return ["usage: .explain SELECT ..."]
            try:
                s = self.settings
                return [self.db.explain(
                    argument, profile=s.profile, checked=s.checked,
                    deadline_ms=s.deadline_ms,
                )]
            except ReproError as error:
                return [f"error: {error}"]
        if command == ".fuzz":
            return self._fuzz_command(argument)
        if command == ".stats":
            if not argument:
                return ["usage: .stats SELECT ..."]
            profiler = None
            if self.profile:
                from repro.obs.profile import Profiler
                profiler = Profiler()
            try:
                s = self.settings
                result, stats, optimized = self.db.query_with_stats(
                    argument, rewrite=s.rewrite,
                    obs=profiler.bus if profiler else None,
                    checked=s.checked, deadline_ms=s.deadline_ms,
                )
            except ReproError as error:
                return [f"error: {error}"]
            fired = optimized.rewrite_result.rules_fired()
            lines = [
                result.to_table(),
                f"rules fired: {fired}" if fired else "rules fired: none",
                ", ".join(f"{k}={v}"
                          for k, v in stats.snapshot().items()),
            ]
            if optimized.degraded:
                lines.append(
                    f"degraded: best-so-far plan "
                    f"({optimized.rewrite_result.degraded_reason} "
                    f"exhausted)"
                )
            if profiler is not None:
                profiler.absorb_eval_stats(stats)
                for rule, row in sorted(profiler.rule_table().items()):
                    lines.append(
                        f"  rule {rule}: {row.get('attempts', 0)} "
                        f"attempt(s), {row.get('hits', 0)} hit(s), "
                        f"{row.get('fired', 0)} fired"
                    )
                for block, row in sorted(profiler.block_table().items()):
                    lines.append(
                        f"  block {block}: "
                        f"{row.get('applications', 0)} application(s), "
                        f"{row.get('checks', 0)} check(s), budget "
                        f"consumed {row.get('budget_consumed', 0)}"
                    )
            return lines
        return [f"unknown command {command}; try .help"]

    def _fuzz_command(self, argument: str) -> list[str]:
        # scratch databases only -- the harness never touches self.db
        parts = argument.split()
        try:
            n = int(parts[0]) if parts else 100
            seed = int(parts[1]) if len(parts) > 1 else 0
        except ValueError:
            return ["usage: .fuzz [cases] [seed]"]
        if n <= 0 or len(parts) > 2:
            return ["usage: .fuzz [cases] [seed]"]
        from repro.qa import fuzz
        lines: list[str] = []
        report = fuzz(
            n, seed=seed,
            on_finding=lambda f: lines.extend(f.describe().splitlines()),
        )
        lines.append(report.summary())
        return lines

    def _budget_command(self, argument: str) -> list[str]:
        s = self.settings
        if argument.lower() in ("off", "none"):
            s.row_budget = None
            s.memory_budget = None
            return ["budgets off"]
        if argument:
            parts = argument.split()
            if len(parts) != 2 or parts[0].lower() not in (
                    "rows", "memory"):
                return ["usage: .budget [rows N | memory BYTES | off]"]
            try:
                value = int(parts[1])
            except ValueError:
                return [f"error: {parts[1]!r} is not an integer"]
            if value <= 0:
                return ["error: the budget must be positive"]
            if parts[0].lower() == "rows":
                s.row_budget = value
                return [f"row budget {value}"]
            s.memory_budget = value
            return [f"memory budget {value} bytes"]
        parts = []
        if s.row_budget is not None:
            parts.append(f"rows {s.row_budget}")
        if s.memory_budget is not None:
            parts.append(f"memory {s.memory_budget} bytes")
        return [", ".join(parts) or "no budgets"]

    def _queries_command(self) -> list[str]:
        registry = self.db.lifecycle
        lines = []
        for context in registry.active() + registry.recent():
            snap = context.snapshot()
            source = snap["source"].replace("\n", " ")
            if len(source) > 48:
                source = source[:45] + "..."
            flags = []
            if snap["cancelled"]:
                flags.append(f"cancelled({snap['cancel_reason']})")
            if snap["truncated"]:
                flags.append("truncated")
            where = (f"@{snap['worker']}" if snap["worker"]
                     else "inproc")
            lines.append(
                f"{snap['query_id']:>5s}  {snap['phase']:<9s} "
                f"{where:<8s} "
                f"{snap['rows_charged']:>8d} row(s) "
                f"{snap['bytes_peak']:>10d} B  "
                f"wait {snap['queue_wait_ms']:>6.1f} ms  "
                f"{snap['elapsed_ms']:>8.1f} ms"
                + (f"  [{', '.join(flags)}]" if flags else "")
                + (f"  {source}" if source else "")
            )
        return lines or ["(no statements)"]

    def _workers_command(self, argument: str) -> list[str]:
        if self.server is None:
            return ["error: not serving (use .serve on)"]
        arg = argument.lower()
        if arg in ("on",) or arg.isdigit():
            count = int(arg) if arg.isdigit() else 2
            if count <= 0:
                return ["usage: .workers [on | off | N | status]"]
            pool = self.server.enable_pool(count)
            pool.wait_ready(timeout_s=30.0, workers=1)
            return [f"pool on: {count} worker(s)"]
        if arg == "off":
            if self.server.pool is None:
                return ["pool is off"]
            self.server.disable_pool()
            return ["pool off"]
        if arg not in ("", "status"):
            return ["usage: .workers [on | off | N | status]"]
        pool = self.server.pool
        if pool is None:
            return ["pool is off"]
        summary = pool.summary()
        lines = [
            f"pool {summary['state']}: {summary['workers']} worker(s), "
            f"{summary['ready']} ready, {summary['busy']} busy, "
            f"{summary['dispatched']} dispatched, "
            f"{summary['retries']} retried, "
            f"{summary['crashes']} crash(es)"
        ]
        for (worker, pid, state, statements, restarts, query_id,
             source, beat_age, version) in pool.rows():
            busy = f"  {query_id} {source}" if query_id else ""
            lines.append(
                f"  {worker}: pid {pid}, {state}, "
                f"{statements} statement(s), {restarts} restart(s), "
                f"v{version}" + busy
            )
        return lines

    # -- serving commands -----------------------------------------------------
    def _start_serving(self) -> None:
        from repro.obs.telemetry import Telemetry
        from repro.server import Server
        # the interactive server mounts a collecting telemetry hub (no
        # exporters, just the registry .top reads) and a slow-query log
        self.server = Server(
            self.db, telemetry=Telemetry(collect=True),
            slow_query_ms=100.0,
        )
        # the active session shares the shell's settings object, so
        # .checked/.deadline keep applying to it in place
        self.session = self.server.open_session(settings=self.settings)

    def _serve_command(self, argument: str) -> list[str]:
        arg = argument.lower()
        if arg == "on":
            if self.server is not None:
                return ["already serving"]
            self._start_serving()
            return [f"serving on (session {self.session.id})"]
        if arg == "off":
            if self.server is None:
                return ["not serving"]
            self.server.close()
            self.server = None
            self.session = None
            return ["serving off"]
        if self.server is None:
            return ["serving is off"]
        stats = self.server.stats()
        admission = stats["admission"]
        return [
            f"serving is on (session {self.session.id}, "
            f"{stats['sessions']} session(s), "
            f"version {stats['snapshot_version']}, "
            f"{admission['admitted_total']} admitted, "
            f"{admission['shed_total']} shed)"
        ]

    def _sessions_command(self, argument: str) -> list[str]:
        if self.server is None:
            return ["error: not serving (use .serve on)"]
        parts = argument.split(None, 1)
        action = parts[0].lower() if parts else ""
        name = parts[1].strip() if len(parts) > 1 else None
        if action == "new":
            session = self.server.open_session(name)
            self.session = session
            self.settings = session.settings
            return [f"session {session.id} opened and active"]
        if action == "use":
            if not name:
                return ["usage: .sessions use <id>"]
            session = self.server.sessions.get(name)
            self.session = session
            self.settings = session.settings
            return [f"session {session.id} active"]
        if action == "close":
            if not name:
                return ["usage: .sessions close <id>"]
            self.server.close_session(name)
            lines = [f"session {name} closed"]
            if self.session is not None and self.session.id == name:
                self._start_serving()
                lines.append(f"session {self.session.id} active")
            return lines
        if action:
            return ["usage: .sessions [new [id] | use <id> "
                    "| close <id>]"]
        lines = []
        for session in self.server.sessions.sessions():
            marker = "*" if (self.session is not None
                             and session.id == self.session.id) else " "
            lines.append(
                f"{marker} {session.id}: {session.settings.describe()}, "
                f"{session.statements} statement(s), idle "
                f"{session.idle_for():.1f}s"
            )
        return lines or ["(no sessions)"]

    def _analyze_command(self, argument: str) -> list[str]:
        if not argument:
            return ["usage: .analyze SELECT ..."]
        try:
            if self.server is not None and self.session is not None:
                report = self.server.explain_json(
                    argument, session=self.session.id, analyze=True,
                )
            else:
                s = self.settings
                report = self.db.explain_json(
                    argument, analyze=True, rewrite=s.rewrite,
                    checked=s.checked, deadline_ms=s.deadline_ms,
                )
        except ReproError as error:
            return [f"error: {error}"]
        nodes = report["analyze"]["nodes"]
        fingerprint = report["trace"].get("fingerprint") or "(none)"
        lines = [f"statement fingerprint {fingerprint}"]
        for node in nodes:
            indent = "  " * node["depth"]
            lines.append(
                f"  {indent}{node['operator']} [{node['hash']}]  "
                f"rows={node['rows']} loops={node['loops']} "
                f"self={node['self_ms']:.3f}ms "
                f"total={node['total_ms']:.3f}ms "
                f"bytes={node['bytes']}"
            )
        total_self = sum(n["self_ms"] for n in nodes)
        lines.append(
            f"  {len(nodes)} operator(s), "
            f"{total_self:.3f} ms self-time total"
        )
        return lines

    def _top_command(self, argument: str = "") -> list[str]:
        if self.server is None:
            return ["error: not serving (use .serve on)"]
        limit = 10
        by_statement = False
        for token in argument.split():
            if token.isdigit() and int(token) > 0:
                limit = int(token)
            elif token.lower() == "by-statement":
                by_statement = True
            else:
                return ["usage: .top [N] [by-statement]"]
        if by_statement:
            rows = self.server.top_statements(limit)
            if not rows:
                return ["(no statements recorded)"]
            lines = ["hottest statements:"]
            for row in rows:
                template = row["template"].replace("\n", " ")
                if len(template) > 60:
                    template = template[:57] + "..."
                lines.append(
                    f"  [{row['fingerprint']}] {row['calls']} call(s), "
                    f"{row['rows']} row(s), "
                    f"{row['total_ms']:.2f} ms total "
                    f"({row['mean_ms']:.2f} ms mean), "
                    f"{row['rule_firings']} rule firing(s)  {template}"
                )
            return lines
        top = self.server.top(limit)
        lines = [
            f"uptime {top['uptime_s']:.1f}s, {top['qps']:.2f} req/s, "
            f"queue {top['queue_depth']}, shed {top['shed_total']} "
            f"({top['shed_rate'] * 100:.1f}%), {top['sessions']} "
            f"session(s), version {top['snapshot_version']}"
        ]
        for klass in ("read", "write"):
            row = top["requests"][klass]
            lines.append(
                f"  {klass:5s}: {row['count']} request(s), "
                f"p50 {row['p50_ms']:.2f} ms, "
                f"p95 {row['p95_ms']:.2f} ms, "
                f"p99 {row['p99_ms']:.2f} ms"
            )
        if top["rule_heat"]:
            lines.append("  hot rules:")
            for row in top["rule_heat"]:
                lines.append(
                    f"    {row['block']}/{row['rule']}: "
                    f"fired {row['fired']}, "
                    f"complexity {row['complexity_delta']:+d}"
                )
        if top["slow_queries"]:
            lines.append(f"  slow queries (>= "
                         f"{self.server.slow_query_ms:g} ms):")
            for entry in top["slow_queries"]:
                source = entry["source"].replace("\n", " ")
                if len(source) > 60:
                    source = source[:57] + "..."
                lines.append(
                    f"    [{entry['trace_id']}] "
                    f"{entry['duration_ms']:.1f} ms  {source}"
                )
        return lines

    def _shed_command(self, argument: str) -> list[str]:
        if self.server is None:
            return ["error: not serving (use .serve on)"]
        admission = self.server.admission
        if argument:
            from dataclasses import replace
            parts = argument.split()
            if len(parts) != 2:
                return ["usage: .shed [queue N | readers N | "
                        "writers N | timeout MS]"]
            knob, raw = parts[0].lower(), parts[1]
            try:
                value = float(raw) if knob == "timeout" else int(raw)
            except ValueError:
                return [f"error: {raw!r} is not a number"]
            if value <= 0:
                return ["error: the limit must be positive"]
            field = {
                "queue": "max_queue", "readers": "max_readers",
                "writers": "max_writers", "timeout": "queue_timeout_ms",
            }.get(knob)
            if field is None:
                return ["usage: .shed [queue N | readers N | "
                        "writers N | timeout MS]"]
            admission.limits = replace(
                admission.limits, **{field: value}
            )
            return [f"{field} = {value:g}"]
        snap = admission.snapshot()
        limits = snap["limits"]
        return [
            f"admitted {snap['admitted_total']}, shed "
            f"{snap['shed_total']}, waiting "
            f"{snap['waiting']['read'] + snap['waiting']['write']}",
            f"limits: {limits['max_readers']} reader(s), "
            f"{limits['max_writers']} writer(s), queue "
            f"{limits['max_queue']}, timeout "
            f"{limits['queue_timeout_ms']:g} ms",
            f"service ewma: read "
            f"{snap['service_ewma_ms']['read']:.2f} ms, write "
            f"{snap['service_ewma_ms']['write']:.2f} ms",
        ]


def _feed_interruptible(shell: Shell, line: str) -> list[str]:
    """Run one input line on a worker thread so Ctrl-C cancels the
    in-flight statement *cooperatively*.

    The old loop caught KeyboardInterrupt at the top level and exited
    the whole REPL -- and because the statement ran on the interrupted
    thread, the evaluator was unwound at an arbitrary bytecode
    boundary rather than a statement boundary.  Running the statement
    on a worker turns Ctrl-C into exactly what ``.kill`` does: the
    cancel token is pulled, the evaluator raises
    :class:`~repro.errors.QueryCancelled` at its next cooperative
    check (undo logs and lock releases run normally on the worker),
    and the shell prints the typed error and prompts again.
    """
    import threading

    box: dict = {}

    def work():
        try:
            box["out"] = shell.feed(line)
        except BaseException as error:  # includes SystemExit from .quit
            box["err"] = error

    worker = threading.Thread(
        target=work, name="repro-cli-statement", daemon=True
    )
    worker.start()
    while worker.is_alive():
        try:
            worker.join(timeout=0.1)
        except KeyboardInterrupt:
            cancelled = shell.cancel_inflight()
            if cancelled:
                print(f"^C cancelling {', '.join(cancelled)} ...")
            else:
                print("^C (nothing in flight yet; waiting)")
    if "err" in box:
        raise box["err"]
    return box.get("out", [])


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    shell = Shell()

    if argv:
        with open(argv[0]) as handle:
            try:
                for output in shell.run(handle):
                    print(output)
            except ReproError as error:
                print(f"error: {error}")
                return 1
        return 0

    print(_BANNER)
    while True:
        prompt = "....> " if shell._buffer else "esql> "
        try:
            line = input(prompt)
        except EOFError:
            break
        except KeyboardInterrupt:
            # Ctrl-C at the prompt: drop any half-typed statement and
            # keep the shell alive (only EOF / .quit leave)
            shell._buffer.clear()
            print("^C")
            continue
        try:
            for output in _feed_interruptible(shell, line):
                print(output)
        except SystemExit:
            break
        except KeyboardInterrupt:
            # raced the worker handoff; the token is already pulled
            print("^C")
        except ReproError as error:
            # last-resort guard: a failing statement prints one
            # diagnostic line and the REPL stays alive
            print(f"error: {error}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
