"""``repro.pool`` -- the supervised multi-process execution tier.

The :class:`Supervisor` owns N crash-isolated worker processes, each a
private replica of the database rebuilt from a snapshot payload and
kept fresh by log-shipped committed statements.  The server routes
eligible reads through it (past the GIL), detects worker death and
hangs via heartbeats, retries reads transparently, and degrades to
in-process execution whenever the pool cannot help.  See
``docs/architecture.md`` for the supervision tree and
``docs/robustness.md`` for the failure matrix.
"""

from repro.pool.chaos import WorkerChaos
from repro.pool.protocol import (FrameError, MAX_FRAME_BYTES, recv_frame,
                                 send_frame)
from repro.pool.supervisor import PoolConfig, Supervisor

__all__ = [
    "Supervisor",
    "PoolConfig",
    "WorkerChaos",
    "send_frame",
    "recv_frame",
    "FrameError",
    "MAX_FRAME_BYTES",
]
