"""Length-prefixed framed messages between supervisor and workers.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The framing is deliberately primitive: both ends
must survive the other dying at *any* byte, and a fixed-width length
prefix makes a torn frame detectable as a short read instead of a
parser wedge.  Values that are not JSON-native (collections, tuples,
object references) ride in the tagged encoding of the durability
layer's :func:`~repro.durability.snapshot.encode_value` -- the same
codec the WAL's snapshot payloads use, so the pool adds no second
serialisation dialect.

Message taxonomy (``type`` field):

==============  ==========================================================
supervisor -> worker
``boot``        first frame: snapshot-codable database state, the
                statement feed, heartbeat config
``execute``     one statement: source, sync delta, budgets, trace ids
``cancel``      pull the cancel token of the in-flight statement
``shutdown``    drain and exit 0
``stall``       test/chaos hook: stop heartbeating and sleep (simulates
                a wedged worker that holds the GIL or a native call)
``exit``        test/chaos hook: ``os._exit(code)`` immediately
worker -> supervisor
``hello``       boot finished; carries the pid
``heartbeat``   liveness beacon, every ``heartbeat_interval_s``
``result``      statement finished: rows, schema, work counters
``error``       statement raised: the typed :func:`error_payload` dict
==============  ==========================================================

Frame writes are locked by the caller (the worker's heartbeat thread
and result writes share one stdout), reads are single-threaded on both
ends.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

__all__ = ["send_frame", "recv_frame", "FrameError", "MAX_FRAME_BYTES"]

_LENGTH = struct.Struct(">I")

# a boot frame carries the whole database snapshot; everything else is
# tiny.  The cap exists to turn a corrupt length prefix into a typed
# error instead of a multi-gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(Exception):
    """A torn or malformed frame (usually: the peer died mid-write)."""


def send_frame(stream, message: dict) -> int:
    """Write one framed message; returns the bytes written.

    Raises whatever the stream raises when the peer is gone
    (``BrokenPipeError`` and friends) -- the caller decides whether
    that is a crash or a shutdown.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    stream.write(_LENGTH.pack(len(payload)) + payload)
    stream.flush()
    return _LENGTH.size + len(payload)


def recv_frame(stream) -> Optional[dict]:
    """Read one framed message; ``None`` on a clean EOF at a frame
    boundary (the peer closed its end), :class:`FrameError` on a torn
    or malformed frame."""
    header = _read_exact(stream, _LENGTH.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the cap")
    payload = _read_exact(stream, length, at_boundary=False)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"undecodable frame payload: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise FrameError(f"frame is not a typed message: {message!r}")
    return message


def _read_exact(stream, n: int, at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes.  EOF at a frame boundary is a clean
    ``None``; EOF inside a frame is a torn write -- the peer died."""
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if at_boundary and remaining == n:
                return None
            raise FrameError(
                f"stream ended {remaining} byte(s) short of a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
