"""Kill-storm chaos for the worker pool.

Two chaos paths exist for the pool:

* the per-statement path lives on
  :class:`~repro.lifecycle.chaos.ChaosInjector` (``worker_kill_rate``):
  the supervisor probes it right after dispatch and kill -9s the
  executing worker, so a single statement's failover is exercised
  deterministically from its seed;
* this module's :class:`WorkerChaos` is the *time-based* storm used by
  the CI ``pool-chaos`` job: a background thread that, at random
  intervals, SIGKILLs a random live worker while a multi-threaded
  stress suite hammers the server.  It validates the whole supervision
  loop -- detection, settle, backoff respawn, read retry -- under
  sustained fire rather than one staged crash.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

__all__ = ["WorkerChaos"]


class WorkerChaos:
    """Kill -9 a random pool worker every ``interval_s`` (jittered).

    Start with :meth:`start`, stop with :meth:`stop`; ``kills`` counts
    delivered signals.  Uses only the supervisor's public ``rows()``
    view to pick victims, so it exercises exactly what an external
    fault would.
    """

    def __init__(self, supervisor, interval_s: float = 0.2,
                 seed: int = 0):
        self.supervisor = supervisor
        self.interval_s = float(interval_s)
        self.kills = 0
        self._random = random.Random(seed)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "WorkerChaos":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-pool-chaos", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(
            self.interval_s * self._random.uniform(0.5, 1.5)
        ):
            self.kill_one()

    def kill_one(self) -> bool:
        """SIGKILL one random live worker; ``False`` if none is up."""
        live = [row for row in self.supervisor.rows()
                if row[2] in ("idle", "busy") and row[1]]
        if not live:
            return False
        victim = self._random.choice(live)
        try:
            os.kill(victim[1], signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return False
        self.kills += 1
        return True
