"""The :class:`Supervisor`: N crash-isolated worker processes behind
the admission controller.

Supervision-tree shape (see ``docs/architecture.md``)::

    Server
     ├── Watchdog ──────────── sweeps the registry *and* the pool
     └── Supervisor (pool)
          ├── monitor thread ── heartbeats, death, backoff respawn
          ├── w1 ── worker process (private Database replica)
          ├── w2 ── worker process
          └── wN ── worker process

Each worker is spawned with a snapshot-codable view of the database --
the durability layer's :func:`~repro.durability.snapshot.snapshot_state`
payload, shipped over the boot frame -- and kept fresh by *log
shipping*: every committed write lands in the supervisor's statement
feed (via ``Database.commit_hooks``, inside the writer lock, so feed
order is commit order), and each dispatch carries the delta the worker
has not applied yet.  A read dispatched at feed version V therefore
evaluates against exactly the committed state at V: statement-boundary
snapshot semantics, the same isolation a guard-held in-process read
gets.

Failure policy (the retry/no-retry matrix of ``docs/robustness.md``):

* a worker that dies mid-read (crash, kill -9, missed heartbeats) is
  detected, the read is retried transparently on a fresh worker up to
  ``read_retry_limit`` times, then surfaces as a typed
  :class:`~repro.errors.WorkerCrashed`;
* statements with side effects never retry -- the worker's undo log
  rolled its private copy back, and the parent database was never
  touched, so the crash surfaces immediately;
* dead workers respawn with exponential backoff; too many crashes
  inside ``crash_loop_window_s`` open a crash-loop circuit breaker
  (state ``broken``) and the pool refuses work until the cooldown
  elapses -- the server degrades to in-process execution, it does not
  fail requests;
* cancellation is real: a pulled cancel token is forwarded to the
  worker, and a worker that does not unwind within ``kill_grace_s``
  is SIGKILLed (the statement still surfaces as
  :class:`~repro.errors.QueryCancelled`, not as a crash).

The monitor thread owns failure detection; the server's
:class:`~repro.lifecycle.watchdog.Watchdog` additionally calls
:meth:`Supervisor.sweep` each tick, so orphaned processes are reaped
even if the monitor itself is wedged (idempotent by construction).
"""

from __future__ import annotations

import os
import signal as signal_mod
import subprocess
import sys
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

import repro
import repro.errors as errors_mod
from repro.adt.types import ANY, BOOLEAN, CHAR, INT, NUMERIC, REAL
from repro.durability.snapshot import decode_value, snapshot_state
from repro.engine.evaluate import Result
from repro.errors import (PoolUnavailable, QueryCancelled, ReproError,
                          WorkerCrashed)
from repro.lera.schema import Schema
from repro.pool.protocol import FrameError, recv_frame, send_frame

__all__ = ["PoolConfig", "Supervisor"]

_ATOMIC_TYPES = {t.name: t for t in (BOOLEAN, INT, REAL, NUMERIC, CHAR)}
_SOURCE_PREVIEW = 80  # sys.workers shows at most this much statement


@dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs of one :class:`Supervisor`."""

    workers: int = 2
    heartbeat_interval_s: float = 0.25
    heartbeat_miss_limit: int = 8       # hang after limit * interval
    boot_timeout_s: float = 30.0
    restart_backoff_base_s: float = 0.05
    restart_backoff_max_s: float = 2.0
    crash_loop_threshold: int = 5       # crashes inside the window ...
    crash_loop_window_s: float = 10.0   # ... that open the breaker
    crash_loop_cooldown_s: float = 2.0
    read_retry_limit: int = 2           # transparent read retries
    kill_grace_s: float = 0.5           # cancel -> SIGKILL escalation
    monitor_interval_s: float = 0.05
    feed_high_water: int = 512          # trim the shipped-log feed


class _Pending:
    """One in-flight dispatch: the waiter parks on ``event``."""

    __slots__ = ("event", "reply", "crash")

    def __init__(self):
        self.event = threading.Event()
        self.reply: Optional[dict] = None
        self.crash: Optional[WorkerCrashed] = None


class _Slot:
    """One worker seat: survives respawns (the ``w<N>`` identity)."""

    def __init__(self, slot_id: str):
        self.id = slot_id
        self.proc: Optional[subprocess.Popen] = None
        self.state = "dead"  # starting | idle | busy | dead | stopped
        self.version = 0
        self.last_beat = 0.0
        self.spawned_at = 0.0
        self.next_spawn = 0.0
        self.statements = 0
        self.restarts = 0
        self.consecutive_crashes = 0
        self.pending: Optional[_Pending] = None
        self.current: Optional[tuple] = None  # (query_id, source)
        self.cancel_sent_at: Optional[float] = None
        self.deliberate_kill = False  # escalation/shutdown, not a crash


class Supervisor:
    """Owns the worker processes; the server's pooled-read entry point."""

    def __init__(self, db, config: Optional[PoolConfig] = None,
                 obs=None, metrics=None):
        self.db = db
        self.config = config or PoolConfig()
        self.obs = obs
        self.metrics = metrics
        self.state = "stopped"  # running | broken | stopped
        self.dispatched = 0
        self.retries = 0
        self.crashes = 0
        self.escalated_kills = 0
        self._lock = threading.Lock()
        self._slots = [_Slot(f"w{i + 1}")
                       for i in range(max(1, self.config.workers))]
        self._feed: list[str] = []
        self._feed_base = 0
        self._version = 0
        self._crash_times: list[float] = []
        self._broken_until = 0.0
        self._ids = 0
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "Supervisor":
        if self.state != "stopped":
            return self
        self.state = "running"
        self._stop_event.clear()
        for slot in self._slots:
            self._spawn(slot)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-pool-monitor",
            daemon=True,
        )
        self._monitor.start()
        self._emit_state("started")
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        with self._lock:
            if self.state == "stopped":
                return
            self.state = "stopped"
        self._stop_event.set()
        for slot in self._slots:
            proc = slot.proc
            if proc is None or proc.poll() is not None:
                continue
            slot.deliberate_kill = True
            try:
                send_frame(proc.stdin, {"type": "shutdown"})
            except (OSError, ValueError):
                pass
            try:
                proc.wait(timeout=1.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            slot.state = "stopped"
            # a dispatcher parked on this worker must not hang forever
            pending = slot.pending
            if pending is not None and not pending.event.is_set():
                pending.crash = WorkerCrashed(
                    f"pool stopped while {slot.id} was executing",
                    worker_id=slot.id,
                )
                pending.event.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=timeout_s)
            self._monitor = None
        self._emit_state("stopped")

    def wait_ready(self, timeout_s: float = 30.0, workers: int = 1) -> bool:
        """Block until at least ``workers`` workers are idle (tests and
        the CLI's ``.workers on`` use this for determinism)."""
        deadline = time.perf_counter() + timeout_s
        while time.perf_counter() < deadline:
            with self._lock:
                ready = sum(1 for s in self._slots if s.state == "idle")
            if ready >= workers:
                return True
            time.sleep(0.01)
        return False

    # -- the committed-write feed (log shipping) -------------------------------
    def note_write(self, source: str) -> None:
        """Record one committed write; invoked by
        ``Database.commit_hooks`` *inside* the writer lock, so feed
        order is commit order and snapshots taken under the read lock
        are always consistent with the version counter."""
        with self._lock:
            self._feed.append(source)
            self._version += 1
            if len(self._feed) > self.config.feed_high_water:
                # "starting" seats count: they snapshotted at their
                # spawn version and still need every statement after
                # it -- trimming past them would leave the replica
                # permanently stale (whole committed batches missing)
                live = [s.version for s in self._slots
                        if s.state in ("starting", "idle", "busy")]
                floor = min(live) if live else self._version
                drop = floor - self._feed_base
                if drop > 0:
                    del self._feed[:drop]
                    self._feed_base = floor

    # -- eligibility -----------------------------------------------------------
    def eligible(self, source: str) -> bool:
        """Pool-routable statements: anything not about the ``sys.*``
        catalog (a worker's replica has its own -- empty -- registry
        and metrics, so introspection must stay in-process)."""
        return "sys." not in source.lower()

    # -- dispatch --------------------------------------------------------------
    def submit(self, source: str, request_class: str = "read",
               context=None, settings=None):
        """Execute one statement on a worker; the server's pooled read
        path.  Reads retry transparently on :class:`WorkerCrashed` up
        to the budget; anything else fails fast (the matrix in
        ``docs/robustness.md``)."""
        attempts = 0
        while True:
            attempts += 1
            slot = self._acquire()
            try:
                return self._dispatch(slot, source, request_class,
                                      context, settings)
            except WorkerCrashed as crash:
                crash.attempts = attempts
                if context is not None:
                    crash.query_id = context.query_id
                retryable = (request_class == "read"
                             and attempts <= self.config.read_retry_limit)
                if not retryable:
                    raise
                self.retries += 1
                self._inc("pool.retries")
                from repro.esql.fingerprint import fingerprint_source
                fp = fingerprint_source(source)
                self.db.workload.note(fp.fingerprint, fp.template,
                                      "retries")
                self._wait_for_seat()

    def _wait_for_seat(self) -> None:
        """Between retry attempts, wait for a replacement worker to
        come up (the crashed seat respawns with backoff); give up and
        let :meth:`_acquire` raise its typed refusal if the pool
        breaks or the boot window elapses."""
        deadline = time.perf_counter() + self.config.boot_timeout_s
        while time.perf_counter() < deadline:
            with self._lock:
                if self.state != "running" or any(
                        s.state == "idle" for s in self._slots):
                    return
            time.sleep(0.01)

    def _acquire(self) -> _Slot:
        with self._lock:
            if self.state == "stopped":
                raise PoolUnavailable("the pool is stopped",
                                      reason="stopped")
            if self.state == "broken":
                raise PoolUnavailable(
                    "the pool's crash-loop circuit breaker is open",
                    reason="circuit-open",
                    retry_after=max(
                        0.0, self._broken_until - time.perf_counter()
                    ),
                )
            for slot in self._slots:
                if slot.state == "idle":
                    slot.state = "busy"
                    return slot
            raise PoolUnavailable(
                "every pool worker is busy", reason="saturated",
                retry_after=self.config.heartbeat_interval_s,
            )

    def _dispatch(self, slot: _Slot, source: str, request_class: str,
                  context, settings):
        config = self.config
        with self._lock:
            self._ids += 1
            request_id = self._ids
            version = self._version
            behind = slot.version - self._feed_base
            sync = (list(self._feed[behind:version - self._feed_base])
                    if behind >= 0 else None)
            if sync is not None:
                slot.pending = pending = _Pending()
                slot.current = (
                    context.query_id if context is not None else "",
                    source,
                )
                slot.cancel_sent_at = None
        if sync is None:
            # the feed was trimmed past this replica (cannot happen
            # while the trim floor honours every live seat, but a
            # stale replica must never serve): respawn it
            self._kill_worker(slot, "stale")
            self._handle_death(slot)
            raise WorkerCrashed(
                f"{slot.id} fell behind the statement feed",
                worker_id=slot.id,
            )
        if context is not None:
            context.worker = slot.id
            context.enter_phase("pool")
        message = {
            "type": "execute", "id": request_id, "source": source,
            "sync": sync, "version": version,
            "timeout_ms": (context.remaining_ms()
                           if context is not None else None),
            "row_budget": getattr(context, "row_budget", None),
            "memory_budget": getattr(context, "memory_budget", None),
            "degrade": getattr(context, "degrade", None),
        }
        if settings is not None:
            message["rewrite"] = settings.rewrite
            message["checked"] = settings.checked
            message["deadline_ms"] = settings.deadline_ms
            message["analyze"] = getattr(settings, "analyze", False)
        try:
            try:
                send_frame(slot.proc.stdin, message)
            except (OSError, ValueError):
                self._handle_death(slot)
                raise pending.crash or WorkerCrashed(
                    f"{slot.id} died before accepting the statement",
                    worker_id=slot.id,
                )
            self.dispatched += 1
            self._inc("pool.dispatched")
            chaos = getattr(context, "chaos", None)
            if chaos is not None and chaos.should_kill_worker():
                # the ChaosInjector extension: kill -9 this worker
                # mid-statement and let the failover machinery answer
                self._kill_worker(slot, "chaos")
            self._await(slot, pending, context)
            return self._settle(slot, pending, version, context,
                                source)
        finally:
            with self._lock:
                slot.pending = None
                slot.current = None
                slot.cancel_sent_at = None
                if slot.state == "busy":
                    slot.state = "idle"

    def _await(self, slot: _Slot, pending: _Pending, context) -> None:
        config = self.config
        while not pending.event.wait(0.02):
            now = time.perf_counter()
            if context is not None and context.cancelled \
                    and slot.cancel_sent_at is None:
                slot.cancel_sent_at = now
                try:
                    send_frame(slot.proc.stdin, {
                        "type": "cancel",
                        "reason": context.cancel_reason or "kill",
                    })
                except (OSError, ValueError):
                    pass  # already dying; poll() below settles it
            if slot.cancel_sent_at is not None \
                    and now - slot.cancel_sent_at > config.kill_grace_s:
                # the worker ignored the cancel frame for a whole grace
                # period: escalate to SIGKILL (a stuck native call has
                # no cooperative check to unwind from)
                self.escalated_kills += 1
                self._inc("pool.kills.escalated")
                self._kill_worker(slot, "cancel", deliberate=True)
                slot.cancel_sent_at = now  # one escalation only
            if slot.proc.poll() is not None:
                self._handle_death(slot)

    def _settle(self, slot: _Slot, pending: _Pending, version: int,
                context, source: str = ""):
        reply = pending.reply
        if reply is None:
            crash = pending.crash or WorkerCrashed(
                f"{slot.id} died mid-statement", worker_id=slot.id
            )
            if isinstance(crash, WorkerCrashed):
                self._inc("pool.requests.crashed")
            raise crash
        slot.version = max(slot.version, reply.get("version", version))
        slot.statements += 1
        slot.consecutive_crashes = 0  # a served statement proves health
        if context is not None:
            context.rows_charged += int(reply.get("rows_charged", 0))
            peak = int(reply.get("bytes_peak", 0))
            if peak > context.memory.peak:
                context.memory.peak = peak
            if reply.get("truncated"):
                context.truncated = True
        self._observe("pool.request.seconds",
                      float(reply.get("elapsed_ms", 0.0)) / 1e3)
        # workload intelligence: the statement executed on the worker's
        # replica, so its per-fingerprint record (and, under analyze
        # mode, the per-operator actuals) ride home in the reply frame
        # and fold into the *parent* database's aggregates
        statement = reply.get("statement")
        if statement:
            self.db.workload.merge_call(statement)
        nodes = reply.get("analyze")
        if nodes:
            from repro.obs.telemetry import current_trace
            trace = current_trace()
            fingerprint = (statement or {}).get("fingerprint", "")
            if not fingerprint and source:
                from repro.esql.fingerprint import fingerprint_source
                fingerprint = fingerprint_source(source).fingerprint
            self.db.plan_log.push(
                fingerprint, trace.trace_id if trace else "", nodes,
            )
        if reply["type"] == "error":
            raise self._remote_error(reply.get("payload") or {})
        return self._decode_result(reply)

    # -- failure detection -----------------------------------------------------
    def sweep(self) -> None:
        """One supervision pass: reap dead/hung workers, settle their
        in-flight statements, re-arm the circuit breaker, respawn due
        seats.  Called by the monitor thread every
        ``monitor_interval_s`` *and* by the server's watchdog -- both
        callers are safe because every action is idempotent."""
        if self.state == "stopped":
            return
        now = time.perf_counter()
        config = self.config
        for slot in self._slots:
            proc = slot.proc
            if slot.state in ("starting", "idle", "busy"):
                if proc is None or proc.poll() is not None:
                    self._handle_death(slot)
                    continue
                hang_after = (config.heartbeat_miss_limit
                              * config.heartbeat_interval_s)
                if slot.state == "starting":
                    if now - slot.spawned_at > config.boot_timeout_s:
                        self._kill_worker(slot, "boot-timeout")
                        self._handle_death(slot)
                elif slot.last_beat and now - slot.last_beat > hang_after:
                    self._inc("pool.heartbeat_misses")
                    self._kill_worker(slot, "hang")
                    self._handle_death(slot)
        with self._lock:
            if self.state == "broken" and now >= self._broken_until:
                self.state = "running"
                self._crash_times.clear()
                rearm = True
            else:
                rearm = False
        if rearm:
            self._emit_state("cooldown-elapsed")
        if self.state == "running":
            for slot in self._slots:
                if slot.state == "dead" and now >= slot.next_spawn:
                    self._spawn(slot)

    # watchdog-facing alias: the supervision tree's second, independent
    # reaper (see the module docstring)
    reap_orphans = sweep

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.config.monitor_interval_s):
            try:
                self.sweep()
            except Exception:  # the supervisor must never die
                pass

    def _kill_worker(self, slot: _Slot, reason: str,
                     deliberate: bool = False) -> None:
        proc = slot.proc
        if proc is None or proc.poll() is not None:
            return
        slot.deliberate_kill = deliberate
        try:
            os.kill(proc.pid, signal_mod.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return
        self._inc(f"pool.kills.{reason}")
        bus = self.obs
        if bus:
            from repro.obs.events import WorkerKilled
            bus.emit(WorkerKilled(worker=slot.id, pid=proc.pid,
                                  reason=reason))

    def _handle_death(self, slot: _Slot) -> None:
        """Settle one dead worker: reap the process, fail or cancel
        its in-flight statement, count the crash, schedule the
        respawn.  Idempotent -- the monitor, the watchdog and a
        dispatcher may all notice the same death."""
        with self._lock:
            if slot.state in ("dead", "stopped"):
                return
            slot.state = "dead"
            pending = slot.pending
            cancelling = slot.cancel_sent_at is not None
            deliberate = slot.deliberate_kill
            slot.deliberate_kill = False
        proc = slot.proc
        returncode = None
        if proc is not None:
            try:
                returncode = proc.wait(timeout=1.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                returncode = proc.wait()
        exit_code = returncode if (returncode or 0) >= 0 else None
        died_signal = -returncode if (returncode or 0) < 0 else None
        crashed = not deliberate
        if crashed:
            self.crashes += 1
            self._inc("pool.crashes")
        slot.consecutive_crashes += 1
        slot.restarts += 1
        backoff = min(
            self.config.restart_backoff_max_s,
            self.config.restart_backoff_base_s
            * (2 ** (slot.consecutive_crashes - 1)),
        )
        slot.next_spawn = time.perf_counter() + backoff
        bus = self.obs
        if bus:
            from repro.obs.events import WorkerExited
            bus.emit(WorkerExited(
                worker=slot.id, pid=proc.pid if proc else 0,
                exit_code=exit_code, signal=died_signal,
                crashed=crashed,
            ))
        if pending is not None and not pending.event.is_set():
            if cancelling:
                # a cancel escalation is a successful kill, not a fault
                pending.crash = QueryCancelled(
                    f"statement killed with its worker {slot.id}",
                    query_id=slot.current[0] if slot.current else "",
                    reason="kill", phase="pool",
                )
            else:
                pending.crash = WorkerCrashed(
                    f"worker {slot.id} died mid-statement "
                    f"(exit_code={exit_code}, signal={died_signal})",
                    worker_id=slot.id,
                    query_id=slot.current[0] if slot.current else "",
                    exit_code=exit_code, signal=died_signal,
                )
            pending.event.set()
        if crashed:
            self._note_crash_for_breaker()

    def _note_crash_for_breaker(self) -> None:
        config = self.config
        now = time.perf_counter()
        opened = False
        with self._lock:
            self._crash_times.append(now)
            floor = now - config.crash_loop_window_s
            self._crash_times = [t for t in self._crash_times
                                 if t >= floor]
            if (self.state == "running"
                    and len(self._crash_times)
                    >= config.crash_loop_threshold):
                self.state = "broken"
                self._broken_until = now + config.crash_loop_cooldown_s
                opened = True
        if opened:
            self._inc("pool.circuit_opened")
            self._emit_state("crash-loop")

    # -- spawning --------------------------------------------------------------
    def _spawn(self, slot: _Slot) -> None:
        db = self.db
        guard = db.guard
        hold = nullcontext() if guard is None else guard.read()
        with hold:
            # under the read lock no write is mid-commit, and
            # note_write runs inside the writer lock, so state and
            # version cannot disagree
            state = snapshot_state(db.catalog, db._ddl_history, 0)
            with self._lock:
                version = self._version
        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
            else ""
        )
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.pool.worker"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL, env=env,
            )
        except OSError:
            slot.next_spawn = (time.perf_counter()
                               + self.config.restart_backoff_max_s)
            return
        with self._lock:
            slot.proc = proc
            slot.state = "starting"
            slot.version = version
            slot.spawned_at = time.perf_counter()
            slot.last_beat = 0.0
        boot = {
            "type": "boot", "state": state, "feed": [],
            "version": version,
            "heartbeat_interval_s": self.config.heartbeat_interval_s,
            "engine": {
                "rewrite": db.rewrite_default,
                "semantic_limit": db.semantic_limit,
                "semi_naive": db.semi_naive,
                "hash_joins": db.hash_joins,
                "dynamic_limits": db.dynamic_limits,
            },
        }
        try:
            send_frame(proc.stdin, boot)
        except (OSError, ValueError):
            return  # sweep() reaps and reschedules
        threading.Thread(
            target=self._read_loop, args=(slot, proc), daemon=True,
            name=f"repro-pool-{slot.id}-reader",
        ).start()
        if slot.restarts:
            self._inc("pool.restarts")
        bus = self.obs
        if bus:
            from repro.obs.events import WorkerSpawned
            bus.emit(WorkerSpawned(worker=slot.id, pid=proc.pid,
                                   restarts=slot.restarts))

    def _read_loop(self, slot: _Slot, proc: subprocess.Popen) -> None:
        """Per-worker frame pump: heartbeats refresh liveness, results
        complete the parked dispatcher.  Exits on EOF; death itself is
        settled by :meth:`sweep` / :meth:`_handle_death`."""
        stream = proc.stdout
        while True:
            try:
                frame = recv_frame(stream)
            except FrameError:
                return
            if frame is None:
                return
            kind = frame["type"]
            if kind == "heartbeat":
                slot.last_beat = time.perf_counter()
            elif kind == "hello":
                with self._lock:
                    slot.last_beat = time.perf_counter()
                    if slot.state == "starting" and slot.proc is proc:
                        slot.state = "idle"
            elif kind in ("result", "error"):
                pending = slot.pending
                if pending is not None and not pending.event.is_set():
                    pending.reply = frame
                    pending.event.set()

    # -- result / error reconstruction -----------------------------------------
    def _decode_result(self, reply: dict) -> Result:
        rows = reply.get("rows")
        if rows is None:
            return Result([], Schema([]))
        schema = Schema([
            (name, _ATOMIC_TYPES.get(type_name, ANY))
            for name, type_name in zip(reply.get("columns", ()),
                                       reply.get("types", ()))
        ])
        return Result(
            [tuple(decode_value(v) for v in row) for row in rows],
            schema,
        )

    def _remote_error(self, payload: dict) -> ReproError:
        name = payload.get("error", "ReproError")
        message = payload.get("message", name)
        cls = getattr(errors_mod, name, None)
        error: ReproError
        if isinstance(cls, type) and issubclass(cls, ReproError):
            try:
                error = cls(message)
            except TypeError:
                error = ReproError(f"{name}: {message}")
        else:
            error = ReproError(f"{name}: {message}")
        for attr in errors_mod._PAYLOAD_ATTRS:
            if attr in payload:
                try:
                    setattr(error, attr, payload[attr])
                except AttributeError:
                    pass
        return error

    # -- introspection ---------------------------------------------------------
    def rows(self) -> list[tuple]:
        """The ``sys.workers`` rows."""
        now = time.perf_counter()
        out = []
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            proc = slot.proc
            query_id, source = slot.current or ("", "")
            beat_age = ((now - slot.last_beat) * 1e3
                        if slot.last_beat else -1.0)
            out.append((
                slot.id, proc.pid if proc is not None else 0,
                slot.state, slot.statements, slot.restarts,
                query_id, source[:_SOURCE_PREVIEW], beat_age,
                slot.version,
            ))
        return out

    def summary(self) -> dict:
        """The explain ``execution.pool`` object and ``.workers status``."""
        with self._lock:
            busy = sum(1 for s in self._slots if s.state == "busy")
            ready = sum(1 for s in self._slots if s.state == "idle")
        return {
            "workers": len(self._slots), "busy": busy, "ready": ready,
            "state": self.state, "dispatched": self.dispatched,
            "retries": self.retries, "crashes": self.crashes,
            "restarts": sum(s.restarts for s in self._slots),
            "version": self._version,
        }

    # -- telemetry -------------------------------------------------------------
    def _inc(self, name: str) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.inc(name)

    def _observe(self, name: str, value: float) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.observe(name, value)

    def _emit_state(self, reason: str) -> None:
        bus = self.obs
        if bus:
            from repro.obs.events import PoolStateChanged
            bus.emit(PoolStateChanged(
                state=self.state, reason=reason,
                workers=len(self._slots),
            ))
