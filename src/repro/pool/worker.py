"""The worker process: a crash-isolated replica executing one
statement at a time.

``python -m repro.pool.worker`` is what the
:class:`~repro.pool.supervisor.Supervisor` spawns.  The first frame on
stdin is a ``boot`` message carrying a snapshot-codable view of the
parent database (the durability layer's
:func:`~repro.durability.snapshot.snapshot_state` payload) plus the
committed-statement feed; the worker rebuilds a private
:class:`~repro.engine.database.Database` from it and then serves
``execute`` requests until stdin closes or a ``shutdown`` frame
arrives.

Three threads:

* the **main** thread pulls requests off an internal queue and
  evaluates them -- one statement at a time, matching the parent-side
  contract that a worker is either idle or owns exactly one statement;
* a **reader** thread drains stdin so ``cancel`` frames are observed
  *while* a statement is evaluating (it pulls the local registry's
  cancel token; the evaluating thread unwinds cooperatively).  EOF on
  stdin means the supervisor is gone: the worker ``os._exit(0)``s
  rather than orphan itself;
* a **heartbeat** thread writes a beacon frame every
  ``heartbeat_interval_s`` so the supervisor can tell a wedged worker
  from a busy one.  The ``stall`` test hook pauses it, which is how
  the suite simulates a worker stuck in a native call.

Statement errors are not crashes: any :class:`~repro.errors.ReproError`
(or stray exception) becomes a typed ``error`` frame and the worker
lives on.  Only process death -- a real crash, a kill -9, a missed
heartbeat -- is handled by the supervisor's failover machinery.
"""

from __future__ import annotations

import os
import queue
import sys
import threading
import time

from repro.durability.snapshot import encode_value, restore_state
from repro.engine.database import Database
from repro.errors import ReproError, error_payload
from repro.esql import ast
from repro.esql.parser import parse_script_with_sources
from repro.pool.protocol import FrameError, recv_frame, send_frame

__all__ = ["worker_main"]


class _Worker:
    def __init__(self, stdin, stdout):
        self.stdin = stdin
        self.stdout = stdout
        self.out_lock = threading.Lock()
        self.requests: queue.Queue = queue.Queue()
        self.db: Database | None = None
        self.version = 0
        self.heartbeat_interval_s = 0.2
        self.heartbeat_paused = False
        self.statements = 0

    # -- framing ---------------------------------------------------------------
    def send(self, message: dict) -> None:
        try:
            with self.out_lock:
                send_frame(self.stdout, message)
        except (BrokenPipeError, OSError):
            # the supervisor is gone; there is nobody to report to
            os._exit(0)

    # -- boot ------------------------------------------------------------------
    def boot(self) -> None:
        frame = recv_frame(self.stdin)
        if frame is None or frame.get("type") != "boot":
            os._exit(2)
        self.heartbeat_interval_s = float(
            frame.get("heartbeat_interval_s", 0.2)
        )
        engine = frame.get("engine") or {}
        db = Database(
            rewrite=engine.get("rewrite", True),
            semantic_limit=engine.get("semantic_limit"),
            semi_naive=engine.get("semi_naive", True),
            hash_joins=engine.get("hash_joins", False),
            dynamic_limits=engine.get("dynamic_limits", False),
        )
        # every statement killable: the supervisor's cancel frame pulls
        # the local registry's token from the reader thread
        db.govern_statements = True
        restore_state(db, frame["state"])
        for sql in frame.get("feed", ()):
            db._replay_statement(sql)
        self.version = int(frame.get("version", 0))
        self.db = db
        self.send({"type": "hello", "pid": os.getpid(),
                   "version": self.version})

    # -- threads ---------------------------------------------------------------
    def reader(self) -> None:
        while True:
            try:
                frame = recv_frame(self.stdin)
            except FrameError:
                frame = None
            if frame is None:
                # supervisor died or closed us out: self-reap, never
                # linger as an orphan evaluating into a closed pipe
                self.requests.put({"type": "shutdown"})
                return
            if frame["type"] == "cancel":
                # observed mid-statement on purpose; cancel_all is
                # exact because a worker owns at most one statement
                self.db.lifecycle.cancel_all(
                    frame.get("reason", "kill")
                )
                continue
            self.requests.put(frame)

    def heartbeat(self) -> None:
        while True:
            time.sleep(self.heartbeat_interval_s)
            if not self.heartbeat_paused:
                self.send({"type": "heartbeat", "pid": os.getpid(),
                           "statements": self.statements})

    # -- the statement loop ----------------------------------------------------
    def run(self) -> None:
        self.boot()
        threading.Thread(target=self.reader, daemon=True).start()
        threading.Thread(target=self.heartbeat, daemon=True).start()
        while True:
            frame = self.requests.get()
            kind = frame["type"]
            if kind == "shutdown":
                os._exit(0)
            if kind == "exit":  # chaos hook: die like a native crash
                os._exit(int(frame.get("code", 1)))
            if kind == "stall":  # chaos hook: wedge without heartbeats
                self.heartbeat_paused = not frame.get("beat", False)
                time.sleep(float(frame.get("seconds", 1.0)))
                self.heartbeat_paused = False
                continue
            if kind == "execute":
                self.execute(frame)

    def execute(self, frame: dict) -> None:
        db = self.db
        request_id = frame.get("id")
        started = time.perf_counter()
        try:
            for sql in frame.get("sync", ()):
                db._replay_statement(sql)
            self.version = int(frame.get("version", self.version))
            reply = self._run_statement(frame)
        except ReproError as error:
            reply = {"type": "error", "payload": error_payload(error)}
        except Exception as error:  # never die on a statement error
            reply = {"type": "error", "payload": error_payload(error)}
        reply["id"] = request_id
        reply["version"] = self.version
        reply["elapsed_ms"] = (time.perf_counter() - started) * 1e3
        self.statements += 1
        self.send(reply)

    def _run_statement(self, frame: dict) -> dict:
        db = self.db
        source = frame["source"]
        statements = parse_script_with_sources(source)
        is_read = (len(statements) == 1
                   and ast.is_query(statements[0][0]))
        budgets = {
            "timeout_ms": frame.get("timeout_ms"),
            "row_budget": frame.get("row_budget"),
            "memory_budget": frame.get("memory_budget"),
            "degrade": frame.get("degrade"),
        }
        if not is_read:
            # the isolation-test path: DML applies to this worker's
            # private copy under its own undo log; the parent database
            # is untouched (the server never routes DML here)
            db.execute(source, **budgets)
            return {"type": "result", "rows": None, "columns": [],
                    "types": [], **self._work_counters(),
                    **self._statement_record(source)}
        collector = None
        if frame.get("analyze"):
            from repro.engine.analyze import AnalyzeCollector
            collector = AnalyzeCollector()
        result = db.query(
            source, rewrite=frame.get("rewrite"),
            checked=frame.get("checked"),
            deadline_ms=frame.get("deadline_ms"),
            analyze=collector, **budgets,
        )
        reply = {
            "type": "result",
            "rows": [[encode_value(v) for v in row]
                     for row in result.rows],
            "columns": list(result.schema.names),
            "types": [getattr(t, "name", None) or str(t)
                      for __, t in result.schema],
            **self._work_counters(),
            **self._statement_record(source),
        }
        if collector is not None:
            # per-operator actuals ride the reply so the supervisor can
            # fold them into the parent's sys.plan_nodes ring
            reply["analyze"] = collector.snapshot()
        return reply

    def _statement_record(self, source: str) -> dict:
        """The statement's per-call workload record (this replica's
        ``sys.statements`` entry for its last call), shipped so the
        parent aggregates pooled executions too."""
        from repro.esql.fingerprint import fingerprint_source
        record = self.db.workload.last(
            fingerprint_source(source).fingerprint
        )
        return {"statement": record} if record is not None else {}

    def _work_counters(self) -> dict:
        recent = self.db.lifecycle.recent()
        if not recent:
            return {"rows_charged": 0, "bytes_peak": 0,
                    "truncated": False}
        context = recent[-1]
        return {
            "rows_charged": context.rows_charged,
            "bytes_peak": context.memory.peak,
            "truncated": context.truncated,
        }


def worker_main() -> None:
    _Worker(sys.stdin.buffer, sys.stdout.buffer).run()


if __name__ == "__main__":
    worker_main()
