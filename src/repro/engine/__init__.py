"""Execution engine: catalog, storage and the LERA evaluator."""

from repro.engine.catalog import Catalog, ViewDef
from repro.engine.evaluate import Evaluator, Result, evaluate
from repro.engine.stats import EvalStats
from repro.engine.storage import BaseRelation, coerce_row, coerce_value

__all__ = [
    "Catalog", "ViewDef",
    "Evaluator", "Result", "evaluate",
    "EvalStats",
    "BaseRelation", "coerce_row", "coerce_value",
]
