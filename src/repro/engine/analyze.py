"""EXPLAIN ANALYZE: per-operator actuals for one evaluation.

:class:`AnalyzeCollector` is the opt-in counterpart of the planner's
estimated plan tree: when attached to an
:class:`~repro.engine.evaluate.Evaluator` it records, for every LERA
operator node that actually executes, the actual row count, the loop
count (semi-naive fixpoints re-evaluate their delta bodies once per
iteration), wall time split into *self* and *total* (children
subtracted, so self times sum to the eval stage time within clock
tolerance), and the budget-byte estimate the memory accountant would
charge for the node's output.

Design notes:

- The evaluator calls ``enter(term)`` / ``exit(term, rows, elapsed,
  nbytes)`` around each dispatched node.  Enter/exit nest exactly like
  the recursive evaluation itself, so a one-list stack of accumulated
  child time is enough to compute self time -- no tree building during
  the hot loop.
- During evaluation, nodes are keyed by ``id(term)``; the record keeps
  a reference to the term, so the id cannot be recycled underneath us.
  Semi-naive fixpoints build *fresh* delta-body terms every iteration
  (``_replace_nth_symbol``), which would show up as hundreds of
  distinct one-loop nodes -- so :meth:`snapshot` re-keys by the
  printed term form and merges equal forms into one node with a loop
  count, exactly how EXPLAIN ANALYZE reports an inner relation
  scanned N times.
- Common-subexpression cache hits in the evaluator never reach the
  dispatch wrapper, so counters reflect *actual executions only*; a
  node evaluated once and reused twice shows ``loops = 1``.
- Everything is plain-dict serializable: pool workers run a collector
  in-process and ship :meth:`snapshot` back in the result frame.

When analyze mode is off the evaluator holds ``None`` instead of a
collector -- the usual null-object fast path, one ``is None`` test per
node.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AnalyzeCollector"]


class _Node:
    __slots__ = ("term", "depth", "order", "rows", "loops",
                 "self_s", "total_s", "bytes")

    def __init__(self, term, depth: int, order: int):
        self.term = term
        self.depth = depth
        self.order = order
        self.rows = 0
        self.loops = 0
        self.self_s = 0.0
        self.total_s = 0.0
        self.bytes = 0


class AnalyzeCollector:
    """Accumulates per-operator actuals during one evaluation."""

    __slots__ = ("_nodes", "_stack")

    def __init__(self):
        self._nodes: dict[int, _Node] = {}
        self._stack: list[float] = []

    # -- hot path -----------------------------------------------------------
    def enter(self, term) -> None:
        self._stack.append(0.0)

    def exit(self, term, rows: int, elapsed: float, nbytes: int) -> None:
        child_time = self._stack.pop()
        depth = len(self._stack)
        if self._stack:
            self._stack[-1] += elapsed
        node = self._nodes.get(id(term))
        if node is None:
            node = self._nodes[id(term)] = _Node(
                term, depth, len(self._nodes))
        elif depth < node.depth:
            node.depth = depth
        node.loops += 1
        node.rows += rows
        node.total_s += elapsed
        # child intervals are disjoint sub-intervals of this one, so the
        # difference is non-negative up to float rounding; clamp so a
        # last-bit error can never produce a negative self time
        node.self_s += max(0.0, elapsed - child_time)
        node.bytes += nbytes

    # -- reporting ----------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """The merged per-operator node list, execution order.

        Nodes whose terms print to the same form (the semi-naive delta
        bodies rebuilt each iteration) merge into one entry; ``loops``
        counts the merged executions.  Hashing happens here, once per
        distinct node, never in the evaluation loop.
        """
        from repro.lera import ops
        from repro.terms.printer import term_to_str
        from repro.terms.term import Fun

        merged: dict[str, dict] = {}
        for node in sorted(self._nodes.values(), key=lambda n: n.order):
            form = term_to_str(node.term)
            entry = merged.get(form)
            if entry is None:
                term = node.term
                operator = (term.name if isinstance(term, Fun)
                            else "SCAN" if ops.is_relation_name(term)
                            else type(term).__name__)
                entry = merged[form] = {
                    "node": len(merged),
                    "operator": operator,
                    "hash": _form_hash(form),
                    "depth": node.depth,
                    "rows": 0,
                    "loops": 0,
                    "self_ms": 0.0,
                    "total_ms": 0.0,
                    "bytes": 0,
                }
            elif node.depth < entry["depth"]:
                entry["depth"] = node.depth
            entry["rows"] += node.rows
            entry["loops"] += node.loops
            entry["self_ms"] += node.self_s * 1000.0
            entry["total_ms"] += node.total_s * 1000.0
            entry["bytes"] += node.bytes
        return list(merged.values())

    def total_self_ms(self) -> float:
        """Sum of per-node self time -- should match the eval stage
        wall time within clock-resolution tolerance."""
        return sum(n.self_s for n in self._nodes.values()) * 1000.0

    @property
    def observed(self) -> int:
        """Distinct (unmerged) term objects seen."""
        return len(self._nodes)

    def clear(self) -> None:
        self._nodes.clear()
        self._stack.clear()


def _form_hash(form: str) -> str:
    """Same 12-hex convention as :func:`repro.core.rewriter.term_hash`
    (which hashes a *term*; analyze already has the printed form)."""
    import hashlib
    return hashlib.sha1(form.encode("utf-8")).hexdigest()[:12]
