"""Work counters for the evaluator.

Benchmarks compare plans by *work done*, not only wall-clock time:
``tuples_scanned`` counts every tuple read from a stored or intermediate
relation, ``join_pairs`` every partial combination extended inside a
SEARCH/JOIN, ``fix_iterations`` the rounds of a fixpoint.  The counters
are deliberately deterministic so the paper-shape assertions in
EXPERIMENTS.md are reproducible.

``truncated`` is the degrade-mode flag (0 or 1): a governed statement
whose budget tripped under degrade mode kept a partial result; see
``docs/robustness.md``.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["EvalStats"]


class EvalStats:
    """Mutable evaluation counters."""

    TRACKED = (
        "tuples_scanned", "tuples_output", "join_pairs",
        "fix_iterations", "qual_evaluations", "operators_evaluated",
        "truncated",
    )

    def __init__(self):
        self.counters: Counter = Counter()

    def incr(self, key: str, amount: int = 1) -> None:
        self.counters[key] += amount

    def __getattr__(self, key: str) -> int:
        # Dunder probes (copy.copy, pickle, inspect) must fail fast and
        # never touch the counter table.
        if key.startswith("__") and key.endswith("__"):
            raise AttributeError(
                f"EvalStats does not implement {key}"
            )
        if key in EvalStats.TRACKED:
            return self.counters[key]
        raise AttributeError(
            f"EvalStats has no counter {key!r}; tracked counters are: "
            f"{', '.join(EvalStats.TRACKED)}"
        )

    def merge(self, other: "EvalStats") -> "EvalStats":
        self.counters.update(other.counters)
        return self

    def reset(self) -> None:
        self.counters.clear()

    def snapshot(self) -> dict:
        return {key: self.counters[key] for key in self.TRACKED}

    def to_metrics(self, registry, prefix: str = "eval.") -> None:
        """Fold these counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` (breaking the
        historical counter silo)."""
        registry.absorb_eval_stats(self, prefix)

    @property
    def total_work(self) -> int:
        """A single scalar summary: scans plus join extensions."""
        return (self.counters["tuples_scanned"]
                + self.counters["join_pairs"])

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={self.counters[k]}" for k in self.TRACKED)
        return f"EvalStats({inner})"
